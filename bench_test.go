package repro_test

// The root benchmark suite regenerates the paper's evaluation, one
// benchmark family per table/figure (see DESIGN.md's experiment
// index), plus ablation and substrate micro-benchmarks. Quality
// numbers (precision/recall/bloat) are attached to each benchmark via
// b.ReportMetric, so `go test -bench=.` prints both the cost and the
// reproduced result shape.
//
// For the full formatted tables, run `go run ./cmd/kondo-bench -exp all`.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/carve"
	"repro/internal/dataserve"
	"repro/internal/debloat"
	"repro/internal/fuzz"
	"repro/internal/ioevent"
	"repro/internal/kondo"
	"repro/internal/metrics"
	kobs "repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/sdf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchBudget is the per-campaign debloat-test budget used by the
// comparison benchmarks (the §V-B max_iter is 2000; a tighter budget
// keeps -bench runs fast while preserving the comparison shape).
const benchBudget = 1500

func truthOf(b *testing.B, p workload.Program) *array.IndexSet {
	b.Helper()
	gt, err := workload.GroundTruth(p)
	if err != nil {
		b.Fatal(err)
	}
	return gt
}

// --- Fig. 7: recall at a fixed budget, Kondo vs BF vs AFL ---

func BenchmarkFig7Kondo(b *testing.B) {
	for _, p := range workload.Micro(workload.Default2D) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = benchBudget
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Approx)
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

func BenchmarkFig7BF(b *testing.B) {
	for _, p := range workload.Micro(workload.Default2D) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var recall float64
			for i := 0; i < b.N; i++ {
				res, err := baseline.BruteForce(context.Background(), p, benchBudget, 0)
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Indices)
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

func BenchmarkFig7AFL(b *testing.B) {
	for _, p := range workload.Micro(workload.Default2D) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := baseline.DefaultAFLConfig()
				cfg.MaxEvals = benchBudget
				cfg.Seed = int64(i + 1)
				res, err := baseline.AFL(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Indices)
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// --- Fig. 8: precision, Kondo vs SC (BF/AFL are 1 by construction) ---

func BenchmarkFig8KondoPrecision(b *testing.B) {
	for _, p := range workload.All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var prec float64
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = benchBudget
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				prec = metrics.Precision(gt, res.Approx)
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

func BenchmarkFig8SCPrecision(b *testing.B) {
	for _, p := range workload.Micro(workload.Default2D) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var prec float64
			for i := 0; i < b.N; i++ {
				cfg := fuzz.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.MaxEvals = benchBudget
				res, err := baseline.SimpleConvex(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				prec = metrics.Precision(gt, res.Approx)
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// --- Fig. 9: bloat identified ---

func BenchmarkFig9Bloat(b *testing.B) {
	for _, p := range workload.All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			var bloat float64
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = benchBudget
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bloat = metrics.BloatFraction(p.Space(), res.Approx)
			}
			b.ReportMetric(100*bloat, "%bloat")
		})
	}
}

// --- Fig. 10: budget for BF to reach Kondo's recall ---

func BenchmarkFig10BFToKondoRecall(b *testing.B) {
	for _, p := range workload.Micro(workload.Default2D) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			cfg := kondo.DefaultConfig()
			cfg.Fuzz.Seed = 1
			cfg.Fuzz.MaxEvals = benchBudget
			res, err := kondo.Debloat(context.Background(), p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			target := metrics.Recall(gt, res.Approx)
			kondoTests := res.Fuzz.Evaluations
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bf, err := baseline.BruteForceUntil(context.Background(), p, 128, func(r *baseline.Result) bool {
					return metrics.Recall(gt, r.Indices) >= target
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(bf.Evaluations) / float64(kondoTests)
			}
			b.ReportMetric(ratio, "bf-tests/kondo-tests")
		})
	}
}

// --- Table III: ARD and MSI ---

func BenchmarkTableIII(b *testing.B) {
	for _, p := range []workload.Program{workload.DefaultARD(), workload.DefaultMSI()} {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			gt := truthOf(b, p)
			var recall, bloat float64
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = 4000
				cfg.Fuzz.MaxIter = 8000
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Approx)
				bloat = metrics.BloatFraction(p.Space(), res.Approx)
			}
			b.ReportMetric(recall, "recall")
			b.ReportMetric(100*bloat, "%debloat")
		})
	}
}

// --- Fig. 11a: data-size sweep on CS3 ---

func BenchmarkFig11aSize(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		n := n
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			p := workload.MustCS(3, n)
			gt := truthOf(b, p)
			var recall float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = benchBudget
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Approx)
			}
			b.ReportMetric(recall, "recall")
		})
	}
}

// --- Fig. 11b/c: center_d_thresh sweep ---

func BenchmarkFig11bcThreshold(b *testing.B) {
	p := workload.MustCS(2, workload.Default2D)
	gt := truthOf(b, p)
	for _, th := range []float64{5, 20, 80} {
		th := th
		b.Run(fmt.Sprintf("thresh=%g", th), func(b *testing.B) {
			var prec, recall float64
			for i := 0; i < b.N; i++ {
				cfg := kondo.DefaultConfig()
				cfg.Fuzz.Seed = int64(i + 1)
				cfg.Fuzz.MaxEvals = benchBudget
				cfg.Carve.CenterDistThresh = th
				res, err := kondo.Debloat(context.Background(), p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				prec = metrics.Precision(gt, res.Approx)
				recall = metrics.Recall(gt, res.Approx)
			}
			b.ReportMetric(prec, "precision")
			b.ReportMetric(recall, "recall")
		})
	}
}

// --- §V-D6: audit overhead ---

func BenchmarkAuditOverhead(b *testing.B) {
	dir := b.TempDir()
	space := array.MustSpace(128, 128)
	path := filepath.Join(dir, "data.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.LongDouble, []int{16, 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 { return 0 }); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	p := workload.MustPRL(128, 128)
	v := []float64{100, 100}

	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := sdf.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			ds, _ := f.Dataset("data")
			if err := p.Run(v, &workload.Env{Acc: workload.NewFileAccessor(ds)}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store := ioevent.NewStore()
			tr := trace.NewTracer(store)
			tf, err := tr.Open(tr.NewProcess(), path)
			if err != nil {
				b.Fatal(err)
			}
			f, err := sdf.OpenFrom(tf)
			if err != nil {
				b.Fatal(err)
			}
			ds, _ := f.Dataset("data")
			if err := p.Run(v, &workload.Env{Acc: workload.NewFileAccessor(ds)}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
}

// --- Ablation: boundary-based EE vs plain EE (Fig. 4's point) ---

func BenchmarkAblationSchedule(b *testing.B) {
	p := workload.MustCS(5, workload.Default2D)
	gt := truthOf(b, p)
	for _, boundary := range []bool{false, true} {
		boundary := boundary
		name := "plainEE"
		if boundary {
			name = "boundaryEE"
		}
		b.Run(name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				cfg := fuzz.DefaultConfig()
				cfg.Seed = int64(i + 1)
				cfg.MaxEvals = 800
				cfg.Boundary = boundary
				cfg.DecayIter = 50
				cfg.Decay = 0.8
				f, err := fuzz.ForProgram(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := f.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				recall = metrics.Recall(gt, res.Indices)
			}
			b.ReportMetric(recall, "raw-recall")
		})
	}
}

// --- Ablation: cell-merge carver vs single hull on merged precision ---

func BenchmarkAblationCarver(b *testing.B) {
	p := workload.MustLDC(workload.Default2D, workload.Default2D)
	gt := truthOf(b, p)
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 1
	cfg.MaxEvals = benchBudget
	f, err := fuzz.ForProgram(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	obs, err := f.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bottomUpMerge", func(b *testing.B) {
		var prec float64
		for i := 0; i < b.N; i++ {
			hulls, err := carve.Carve(obs.Indices, carve.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			approx, err := carve.Rasterize(hulls, p.Space())
			if err != nil {
				b.Fatal(err)
			}
			prec = metrics.Precision(gt, approx)
		}
		b.ReportMetric(prec, "precision")
	})
	b.Run("singleHull", func(b *testing.B) {
		var prec float64
		for i := 0; i < b.N; i++ {
			h, err := carve.SimpleConvex(obs.Indices)
			if err != nil {
				b.Fatal(err)
			}
			approx, err := h.Rasterize(p.Space())
			if err != nil {
				b.Fatal(err)
			}
			prec = metrics.Precision(gt, approx)
		}
		b.ReportMetric(prec, "precision")
	})
}

// --- Substrate micro-benchmarks ---

// BenchmarkEventStore justifies the interval B-tree: merged inserts
// against the tree stay cheap as the range count grows.
func BenchmarkEventStore(b *testing.B) {
	b.Run("sequentialMerging", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := ioevent.NewIntervalSet()
			for off := int64(0); off < 10000; off += 10 {
				s.Add(off, 10) // all merge into one range
			}
		}
	})
	b.Run("scatteredRanges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := ioevent.NewIntervalSet()
			for off := int64(0); off < 10000; off += 20 {
				s.Add(off, 10) // 500 disjoint ranges
			}
		}
	})
	b.Run("lookup", func(b *testing.B) {
		s := ioevent.NewIntervalSet()
		for off := int64(0); off < 100000; off += 20 {
			s.Add(off, 10)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Contains(int64(i*37) % 100000)
		}
	})
}

func BenchmarkOffsetResolution(b *testing.B) {
	dir := b.TempDir()
	space := array.MustSpace(256, 256)
	path := filepath.Join(dir, "d.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, []int{16, 16})
	if err != nil {
		b.Fatal(err)
	}
	if err := dw.Fill(func(array.Index) float64 { return 0 }); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	f, err := sdf.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	offs := make([]int64, 0, 1024)
	for i := 0; i < 1024; i++ {
		ix, _ := space.Unlinear(int64(i * 61 % int(space.Size())))
		off, err := ds.FileOffset(ix)
		if err != nil {
			b.Fatal(err)
		}
		offs = append(offs, off)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.ResolveOffset(offs[i%len(offs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperslabRead(b *testing.B) {
	dir := b.TempDir()
	space := array.MustSpace(256, 256)
	path := filepath.Join(dir, "d.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, []int{32, 32})
	if err != nil {
		b.Fatal(err)
	}
	if err := dw.Fill(func(array.Index) float64 { return 1 }); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	f, err := sdf.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.ReadHyperslab(sdf.Slab([]int{64, 64}, []int{64, 64})); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCarve(b *testing.B) {
	p := workload.MustCS(2, workload.Default2D)
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 1
	cfg.MaxEvals = benchBudget
	f, err := fuzz.ForProgram(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	obs, err := f.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := carve.Carve(obs.Indices, carve.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// carveBenchField builds a many-hull blob field (the regime the
// candidate-pair engine targets); see the carve bench experiment.
func carveBenchField(b *testing.B, side int) *array.IndexSet {
	b.Helper()
	space := array.MustSpace(side, side)
	cfg := carve.DefaultConfig()
	set := array.NewIndexSet(space)
	for r := cfg.CellSize; r+2*cfg.CellSize < side; r += 96 {
		for c := cfg.CellSize; c+2*cfg.CellSize < side; c += 96 {
			for _, off := range [][2]int{{0, 0}, {cfg.CellSize, 0}, {0, cfg.CellSize}} {
				for dr := 0; dr < 3; dr++ {
					for dc := 0; dc < 3; dc++ {
						if _, err := set.Add(array.NewIndex(r+off[0]+dr*5, c+off[1]+dc*5)); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	}
	return set
}

// BenchmarkCarveEngine and BenchmarkCarveNaive measure the
// candidate-pair merge engine against the retained one-merge-per-pass
// reference on the same many-hull field; compare the two for the
// engine's wall-clock speedup.
func BenchmarkCarveEngine(b *testing.B) {
	set := carveBenchField(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := carve.Carve(set, carve.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCarveNaive(b *testing.B) {
	set := carveBenchField(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := carve.CarveNaive(set, carve.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuzzCampaign(b *testing.B) {
	p := workload.MustCS(2, workload.Default2D)
	for i := 0; i < b.N; i++ {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.MaxEvals = benchBudget
		f, err := fuzz.ForProgram(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMain keeps the benchmark binary from accidentally inheriting a
// polluted working directory for relative paths.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// BenchmarkExperimentHarness runs the full quick experiment suite once
// per iteration — a one-stop regeneration of every table and figure.
func BenchmarkExperimentHarness(b *testing.B) {
	for _, id := range bench.Experiments() {
		id := id
		b.Run(id, func(b *testing.B) {
			opts := bench.QuickOptions()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Run(context.Background(), id, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §VI: recovery throughput over the data plane ---

// BenchmarkRecoveryThroughput measures the missing-data recovery path
// end-to-end over loopback HTTP: a debloated ARD file whose accessed
// region was carved away recovers it from the origin server, once with
// the element-per-round-trip client and once with the chunk-granular
// caching fetcher. Reported metrics: recovered elements per second,
// HTTP round trips per run, and the fetcher's cache hit rate.
func BenchmarkRecoveryThroughput(b *testing.B) {
	ard, err := workload.NewARD(48, 64, 32, 4, 16, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	space := ard.Space()
	dir := b.TempDir()
	origin := filepath.Join(dir, "origin.sdf")
	w := sdf.NewWriter(origin)
	dw, err := w.CreateDataset("data", space, array.Float64, []int{8, 8, 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 0.5
	}); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	// Keep only the first 8 time planes; the benchmarked slab reads
	// plane 20, so every element misses locally.
	keep := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[2] < 8 {
			keep.Add(ix)
		}
		return true
	})
	deb := filepath.Join(dir, "deb.sdf")
	if _, err := debloat.WriteSubset(origin, deb, "data", keep, []int{8, 8, 8}); err != nil {
		b.Fatal(err)
	}

	srv, err := dataserve.NewServer(origin)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	f, err := sdf.Open(deb)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		b.Fatal(err)
	}

	const slabElems = 16 * 8 // the recovered region per iteration
	readSlab := func(fetcher debloat.Fetcher) {
		rt := debloat.NewRuntime(ds, fetcher)
		vals, err := rt.ReadSlab([]int{0, 0, 20}, []int{16, 8, 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != slabElems || rt.Misses() == 0 {
			b.Fatalf("run recovered %d values with %d misses", len(vals), rt.Misses())
		}
	}

	b.Run("element", func(b *testing.B) {
		client := remote.NewClient(ts.URL, nil)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			readSlab(client)
		}
		elapsed := time.Since(start).Seconds()
		b.ReportMetric(float64(slabElems*b.N)/elapsed, "elems/s")
		b.ReportMetric(float64(client.Fetched())/float64(b.N), "round-trips/run")
	})
	b.Run("cached", func(b *testing.B) {
		fetcher := dataserve.NewFetcher(ts.URL, nil)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			readSlab(fetcher)
		}
		elapsed := time.Since(start).Seconds()
		st := fetcher.Stats()
		b.ReportMetric(float64(slabElems*b.N)/elapsed, "elems/s")
		b.ReportMetric(float64(st.RoundTrips)/float64(b.N), "round-trips/run")
		b.ReportMetric(100*st.HitRate(), "%cache-hit")
	})
	// The overhead guard for the observability layer: the same cached
	// recovery path with a live trace and metrics registry in the
	// context. Compare elems/s against "cached" above — with tracing
	// only on the miss path, the gap must stay within noise (≤2%).
	b.Run("cached+traced", func(b *testing.B) {
		fetcher := dataserve.NewFetcher(ts.URL, nil)
		tr := kobs.NewTrace()
		reg := kobs.NewRegistry()
		fetcher.Register(reg)
		ctx := kobs.WithRegistry(kobs.WithTrace(context.Background(), tr), reg)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			rt := debloat.NewRuntimeContext(ctx, ds, fetcher)
			vals, err := rt.ReadSlab([]int{0, 0, 20}, []int{16, 8, 1})
			if err != nil {
				b.Fatal(err)
			}
			if len(vals) != slabElems || rt.Misses() == 0 {
				b.Fatalf("run recovered %d values with %d misses", len(vals), rt.Misses())
			}
		}
		elapsed := time.Since(start).Seconds()
		b.ReportMetric(float64(slabElems*b.N)/elapsed, "elems/s")
		b.ReportMetric(float64(tr.Len())/float64(b.N), "trace-events/run")
	})
}
