package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
)

func TestParseDims(t *testing.T) {
	got, err := parseDims("128x64")
	if err != nil || len(got) != 2 || got[0] != 128 || got[1] != 64 {
		t.Fatalf("parseDims = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0x4", "-1x2", "ax4", "4x"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) should error", bad)
		}
	}
}

func TestFillFuncs(t *testing.T) {
	space := array.MustSpace(4, 4)
	for _, kind := range []string{"linear", "zero", "sine"} {
		fn, err := fillFunc(kind, space)
		if err != nil || fn == nil {
			t.Fatalf("fillFunc(%q): %v", kind, err)
		}
		fn(array.NewIndex(1, 2)) // must not panic
	}
	if _, err := fillFunc("bogus", space); err == nil {
		t.Error("unknown fill should error")
	}
	lin, _ := fillFunc("linear", space)
	if v := lin(array.NewIndex(1, 1)); v != 5 {
		t.Errorf("linear fill (1,1) = %v, want 5", v)
	}
}

func TestRunGeneratesReadableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.sdf")
	if err := run(context.Background(), path, "8x8", "float64", "4x4", "data", "linear"); err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds.ReadElement(array.NewIndex(1, 1))
	if err != nil || v != 9 {
		t.Errorf("generated value = %v, %v", v, err)
	}
	// Bad inputs error out.
	if err := run(context.Background(), path, "0x8", "float64", "", "data", "linear"); err == nil {
		t.Error("bad dims should error")
	}
	if err := run(context.Background(), path, "8x8", "quux", "", "data", "linear"); err == nil {
		t.Error("bad dtype should error")
	}
}
