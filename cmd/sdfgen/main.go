// Command sdfgen generates self-describing data files for the
// benchmark programs.
//
//	sdfgen -out mnist.sdf -dims 128x128 -dtype longdouble -chunk 16x16
//	sdfgen -out cube.sdf -dims 64x64x64 -dtype float64 -fill linear
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/sdf"
)

func main() {
	var (
		out     = flag.String("out", "", "output file path")
		dims    = flag.String("dims", "128x128", "array extents, e.g. 128x128 or 64x64x64")
		dtype   = flag.String("dtype", "longdouble", "element type: float32, float64, int32, int64, longdouble")
		chunk   = flag.String("chunk", "", "chunk extents (empty = contiguous), e.g. 16x16")
		dataset = flag.String("dataset", "data", "dataset name")
		fill    = flag.String("fill", "linear", "fill pattern: linear, zero, sine")

		traceOut  = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of the generation")
		logLevel  = flag.String("log-level", "warn", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if _, err := obs.SetupCLILogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "sdfgen:", err)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: sdfgen -out <path> [-dims 128x128] [-dtype longdouble] [-chunk 16x16]")
		os.Exit(2)
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	err := run(ctx, *out, *dims, *dtype, *chunk, *dataset, *fill)
	if tr != nil {
		if werr := tr.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "sdfgen: writing trace:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "sdfgen: trace written to %s (%d events)\n", *traceOut, tr.Len())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdfgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out, dimsArg, dtypeArg, chunkArg, dataset, fill string) error {
	extents, err := parseDims(dimsArg)
	if err != nil {
		return err
	}
	space, err := array.NewSpace(extents...)
	if err != nil {
		return err
	}
	dt, err := array.ParseDType(dtypeArg)
	if err != nil {
		return err
	}
	var chunkDims []int
	if chunkArg != "" {
		chunkDims, err = parseDims(chunkArg)
		if err != nil {
			return err
		}
	}
	fillFn, err := fillFunc(fill, space)
	if err != nil {
		return err
	}

	sp := obs.Start(ctx, "sdfgen.write").Arg("out", out).Arg("dims", dimsArg)
	w := sdf.NewWriter(out)
	dw, err := w.CreateDataset(dataset, space, dt, chunkDims)
	if err != nil {
		sp.End()
		return err
	}
	if err := dw.Fill(fillFn); err != nil {
		sp.End()
		return err
	}
	if err := w.Close(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: dataset %q, %s %s, %d bytes\n", out, dataset, space, dt, info.Size())
	return nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid extent %q in %q", p, s)
		}
		dims[i] = v
	}
	return dims, nil
}

func fillFunc(kind string, space array.Space) (func(array.Index) float64, error) {
	switch kind {
	case "linear":
		return func(ix array.Index) float64 {
			lin, _ := space.Linear(ix)
			return float64(lin)
		}, nil
	case "zero":
		return func(array.Index) float64 { return 0 }, nil
	case "sine":
		return func(ix array.Index) float64 {
			var s float64
			for _, v := range ix {
				s += math.Sin(float64(v) / 8)
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("unknown fill %q (linear, zero, sine)", kind)
	}
}
