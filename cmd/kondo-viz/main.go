// Command kondo-viz regenerates the paper's visual figures as SVG
// files:
//
//	kondo-viz -out ./figures
//
// It renders, for each benchmark program, the ground-truth region
// (Fig. 1 / Table I), and for the cross-stencil base program the
// exploit-explore vs boundary-based EE scatter (Fig. 4) and the
// observed-points-plus-hulls view of the carver (Fig. 6-style).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var (
		out    = flag.String("out", "figures", "output directory")
		size   = flag.Int("size", 128, "2D array extent")
		budget = flag.Int("budget", 1500, "fuzz budget for the scatter/hull figures")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*out, *size, *budget, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "kondo-viz:", err)
		os.Exit(1)
	}
}

func run(out string, size, budget int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Ground-truth maps of the 2D programs (Fig. 1 / Table I).
	for _, p := range []workload.Program{
		workload.MustCS(2, size), workload.MustCS(1, size), workload.MustCS(3, size),
		workload.MustCS(5, size), workload.MustPRL(size, size),
		workload.MustLDC(size, size), workload.MustRDC(size, size),
	} {
		gt, err := workload.GroundTruth(p)
		if err != nil {
			return err
		}
		if err := writeSVG(filepath.Join(out, "truth-"+p.Name()+".svg"), func(f *os.File) error {
			return viz.IndexSetSVG(f, gt, p.Name()+" ground truth I_Θ")
		}); err != nil {
			return err
		}
	}

	// Fig. 4: schedule scatter, plain EE vs boundary-based EE.
	p := workload.MustCS(2, size)
	for _, boundary := range []bool{false, true} {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = seed
		cfg.MaxEvals = budget
		cfg.MaxIter = 4 * budget
		cfg.StopIter = 0
		cfg.Boundary = boundary
		if boundary {
			cfg.DecayIter = 50
			cfg.Decay = 0.8
		}
		f, err := fuzz.ForProgram(p, cfg)
		if err != nil {
			return err
		}
		res, err := f.Run(context.Background())
		if err != nil {
			return err
		}
		name := "fig4-exploit-explore.svg"
		title := "exploit-explore schedule"
		if boundary {
			name = "fig4-boundary-ee.svg"
			title = "boundary-based EE schedule"
		}
		ps := p.Params()
		if err := writeSVG(filepath.Join(out, name), func(file *os.File) error {
			return viz.ScatterSVG(file, res.Seeds,
				float64(ps[0].Lo), float64(ps[0].Hi), float64(ps[1].Lo), float64(ps[1].Hi), title)
		}); err != nil {
			return err
		}

		// Fig. 6-style: observations + carved hulls (boundary run).
		if boundary {
			hulls, err := carve.Carve(res.Indices, carve.DefaultConfig())
			if err != nil {
				return err
			}
			if err := writeSVG(filepath.Join(out, "fig6-hulls.svg"), func(file *os.File) error {
				return viz.HullsSVG(file, res.Indices, hulls, "observed indices and carved hulls")
			}); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote figures to %s\n", out)
	return nil
}

func writeSVG(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
