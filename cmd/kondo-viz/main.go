// Command kondo-viz regenerates the paper's visual figures as SVG
// files:
//
//	kondo-viz -out ./figures
//
// It renders, for each benchmark program, the ground-truth region
// (Fig. 1 / Table I), and for the cross-stencil base program the
// exploit-explore vs boundary-based EE scatter (Fig. 4) and the
// observed-points-plus-hulls view of the carver (Fig. 6-style).
//
// It also doubles as the trace validator for the observability layer:
//
//	kondo-viz -check-trace trace.json
//
// parses a Chrome trace-event JSON file (as written by kondo
// -trace-out; gzip-compressed .json.gz accepted) and verifies it is
// well-formed: every event has a name and a known phase, complete
// spans carry non-negative durations, instants carry no duration, and
// process_name metadata events name their process. With -min-pids N
// it additionally requires the trace to span at least N distinct
// process lanes — `make fleet-demo` uses this to assert a stitched
// fleet trace really contains the coordinator plus every worker.
// On success it prints a per-category summary and exits 0; malformed
// input exits 1.
//
// And as the convergence-plot renderer for campaign telemetry:
//
//	kondo-viz -coverage coverage.json [-coverage-svg out.svg]
//
// reads a coverage time series (as written by kondo -coverage-out)
// and renders the convergence plot — an ASCII chart on stdout, or an
// SVG when -coverage-svg names a destination.
package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var (
		out         = flag.String("out", "figures", "output directory")
		size        = flag.Int("size", 128, "2D array extent")
		budget      = flag.Int("budget", 1500, "fuzz budget for the scatter/hull figures")
		seed        = flag.Int64("seed", 1, "random seed")
		checkTrace  = flag.String("check-trace", "", "validate a Chrome trace-event JSON (or .json.gz) file and exit (no figures are rendered)")
		minPids     = flag.Int("min-pids", 0, "with -check-trace: require at least this many distinct process lanes (0 = any)")
		coverage    = flag.String("coverage", "", "render a coverage time series (kondo -coverage-out) as a convergence plot and exit")
		coverageSVG = flag.String("coverage-svg", "", "with -coverage: write an SVG plot here instead of the ASCII chart")
	)
	flag.Parse()
	if *checkTrace != "" {
		if err := checkTraceFile(os.Stdout, *checkTrace, *minPids); err != nil {
			fmt.Fprintln(os.Stderr, "kondo-viz:", err)
			os.Exit(1)
		}
		return
	}
	if *coverage != "" {
		if err := coverageMode(os.Stdout, *coverage, *coverageSVG); err != nil {
			fmt.Fprintln(os.Stderr, "kondo-viz:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *size, *budget, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "kondo-viz:", err)
		os.Exit(1)
	}
}

// coverageMode renders the convergence plot of a recorded coverage
// series: ASCII to w, or SVG to svgPath when given.
func coverageMode(w *os.File, seriesPath, svgPath string) error {
	s, err := fuzz.LoadCoverageSeries(seriesPath)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("campaign coverage (%s)", filepath.Base(seriesPath))
	if svgPath != "" {
		if err := writeSVG(svgPath, func(f *os.File) error {
			return viz.CoverageSVG(f, s, title)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote convergence plot to %s (%d points)\n", svgPath, len(s.Points))
		return nil
	}
	return viz.CoverageASCII(w, s, 72, 18)
}

// traceEvent mirrors the subset of the Chrome trace-event format that
// internal/obs emits: complete spans (ph "X"), instants (ph "i"), and
// process metadata (ph "M", e.g. process_name for fleet lanes).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// checkTraceFile validates path as a trace-event JSON file and writes
// a summary (event counts per span name, tid lanes seen) to w. A
// .gz-suffixed file (long campaigns produce large exports worth
// compressing) is transparently decompressed.
func checkTraceFile(w *os.File, path string, minPids int) error {
	raw, err := readMaybeGzip(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []traceEvent   `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: not a trace-event JSON object: %w", path, err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("%s: missing traceEvents array", path)
	}
	spans := map[string]int{}
	tids := map[int]bool{}
	pids := map[int]bool{}
	procNames := map[int]string{}
	instants := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		// Metadata events carry no timestamp; everything else must.
		if e.Ph != "M" && e.Ts == nil {
			return fmt.Errorf("%s: event %d (%s) has no timestamp", path, i, e.Name)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("%s: span %d (%s) has missing or negative dur", path, i, e.Name)
			}
			spans[e.Name]++
			tids[e.TID] = true
			pids[e.PID] = true
		case "i":
			if e.Dur != nil {
				return fmt.Errorf("%s: instant %d (%s) must not carry a dur", path, i, e.Name)
			}
			instants++
			pids[e.PID] = true
		case "M":
			if e.Name == "process_name" {
				name, ok := e.Args["name"].(string)
				if !ok || name == "" {
					return fmt.Errorf("%s: metadata event %d (process_name, pid %d) has no args.name", path, i, e.PID)
				}
				procNames[e.PID] = name
				pids[e.PID] = true
			}
		default:
			return fmt.Errorf("%s: event %d (%s) has unknown phase %q", path, i, e.Name, e.Ph)
		}
	}
	if minPids > 0 && len(pids) < minPids {
		return fmt.Errorf("%s: trace spans %d distinct process lane(s), want at least %d", path, len(pids), minPids)
	}
	names := make([]string, 0, len(spans))
	for n := range spans {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%s: %d events ok (%d span names, %d instants, %d lanes, %d processes)\n",
		path, len(doc.TraceEvents), len(names), instants, len(tids), len(pids))
	for _, n := range names {
		fmt.Fprintf(w, "  %-24s %d\n", n, spans[n])
	}
	if len(procNames) > 0 {
		ids := make([]int, 0, len(procNames))
		for pid := range procNames {
			ids = append(ids, pid)
		}
		sort.Ints(ids)
		for _, pid := range ids {
			fmt.Fprintf(w, "  pid %-4d %s\n", pid, procNames[pid])
		}
	}
	if d, ok := doc.Metadata["dropped_events"]; ok {
		fmt.Fprintf(w, "  (dropped_events: %v)\n", d)
	}
	return nil
}

func run(out string, size, budget int, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Ground-truth maps of the 2D programs (Fig. 1 / Table I).
	for _, p := range []workload.Program{
		workload.MustCS(2, size), workload.MustCS(1, size), workload.MustCS(3, size),
		workload.MustCS(5, size), workload.MustPRL(size, size),
		workload.MustLDC(size, size), workload.MustRDC(size, size),
	} {
		gt, err := workload.GroundTruth(p)
		if err != nil {
			return err
		}
		if err := writeSVG(filepath.Join(out, "truth-"+p.Name()+".svg"), func(f *os.File) error {
			return viz.IndexSetSVG(f, gt, p.Name()+" ground truth I_Θ")
		}); err != nil {
			return err
		}
	}

	// Fig. 4: schedule scatter, plain EE vs boundary-based EE.
	p := workload.MustCS(2, size)
	for _, boundary := range []bool{false, true} {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = seed
		cfg.MaxEvals = budget
		cfg.MaxIter = 4 * budget
		cfg.StopIter = 0
		cfg.Boundary = boundary
		if boundary {
			cfg.DecayIter = 50
			cfg.Decay = 0.8
		}
		f, err := fuzz.ForProgram(p, cfg)
		if err != nil {
			return err
		}
		res, err := f.Run(context.Background())
		if err != nil {
			return err
		}
		name := "fig4-exploit-explore.svg"
		title := "exploit-explore schedule"
		if boundary {
			name = "fig4-boundary-ee.svg"
			title = "boundary-based EE schedule"
		}
		ps := p.Params()
		if err := writeSVG(filepath.Join(out, name), func(file *os.File) error {
			return viz.ScatterSVG(file, res.Seeds,
				float64(ps[0].Lo), float64(ps[0].Hi), float64(ps[1].Lo), float64(ps[1].Hi), title)
		}); err != nil {
			return err
		}

		// Fig. 6-style: observations + carved hulls (boundary run).
		if boundary {
			hulls, err := carve.Carve(res.Indices, carve.DefaultConfig())
			if err != nil {
				return err
			}
			if err := writeSVG(filepath.Join(out, "fig6-hulls.svg"), func(file *os.File) error {
				return viz.HullsSVG(file, res.Indices, hulls, "observed indices and carved hulls")
			}); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote figures to %s\n", out)
	return nil
}

// readMaybeGzip reads a file, decompressing it when the name ends in
// .gz.
func readMaybeGzip(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: not a gzip file: %w", path, err)
		}
		defer zr.Close()
		return io.ReadAll(zr)
	}
	return io.ReadAll(f)
}

func writeSVG(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
