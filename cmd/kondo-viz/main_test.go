package main

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fuzz"
)

const sampleTrace = `{"traceEvents":[` +
	`{"name":"kondo.fuzz","cat":"kondo","ph":"X","ts":0,"dur":1200,"pid":1,"tid":0},` +
	`{"name":"fuzz.round","cat":"kondo","ph":"X","ts":10,"dur":500,"pid":1,"tid":0},` +
	`{"name":"note","cat":"kondo","ph":"i","ts":20,"pid":1,"tid":0}` +
	`],"metadata":{}}`

// outFile returns an *os.File the checker can write its summary to.
func outFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestCheckTracePlainJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkTraceFile(outFile(t), path, 0); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestCheckTraceGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(sampleTrace)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := checkTraceFile(outFile(t), path, 0); err != nil {
		t.Fatalf("gzip trace rejected: %v", err)
	}
}

func TestCheckTraceRejectsNonGzipWithGzSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json.gz")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	err := checkTraceFile(outFile(t), path, 0)
	if err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("uncompressed .gz file accepted: %v", err)
	}
}

// fleetTrace is a stitched multi-process trace as the coordinator
// writes after merging worker sub-traces: process_name metadata per
// lane plus spans under distinct pids.
const fleetTrace = `{"traceEvents":[` +
	`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"coordinator"}},` +
	`{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"worker:alice"}},` +
	`{"name":"process_name","ph":"M","pid":3,"tid":0,"args":{"name":"worker:bob"}},` +
	`{"name":"orchestra.campaign","cat":"kondo","ph":"X","ts":0,"dur":9000,"pid":1,"tid":0},` +
	`{"name":"orchestra.lease","cat":"kondo","ph":"X","ts":100,"dur":400,"pid":2,"tid":0},` +
	`{"name":"orchestra.lease","cat":"kondo","ph":"X","ts":150,"dur":380,"pid":3,"tid":0},` +
	`{"name":"orchestra.lease_completed","cat":"kondo","ph":"i","ts":520,"pid":1,"tid":0,"args":{"worker":"alice"}}` +
	`],"metadata":{}}`

func TestCheckTraceMultiPID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(fleetTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkTraceFile(outFile(t), path, 3); err != nil {
		t.Fatalf("stitched fleet trace rejected: %v", err)
	}
}

func TestCheckTraceMinPidsFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	err := checkTraceFile(outFile(t), path, 2)
	if err == nil || !strings.Contains(err.Error(), "process lane") {
		t.Fatalf("single-pid trace passed -min-pids 2: %v", err)
	}
}

func TestCheckTraceRejectsNamelessProcessMetadata(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	bad := `{"traceEvents":[{"name":"process_name","ph":"M","pid":2,"args":{}}]}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkTraceFile(outFile(t), path, 0); err == nil {
		t.Fatal("process_name metadata without args.name accepted")
	}
}

func TestCheckTraceRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"ph":"X","ts":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkTraceFile(outFile(t), path, 0); err == nil {
		t.Fatal("nameless event accepted")
	}
}

func TestCoverageModeASCIIAndSVG(t *testing.T) {
	dir := t.TempDir()
	series := &fuzz.CoverageSeries{
		Dims:      []int{32, 32},
		SpaceSize: 1024,
		Points: []fuzz.CoveragePoint{
			{Round: 1, Evaluations: 10, Covered: 100, New: 100},
			{Round: 2, Evaluations: 20, Covered: 150, New: 50, Saturation: 0.5},
		},
	}
	seriesPath := filepath.Join(dir, "coverage.json")
	if err := series.WriteFile(seriesPath); err != nil {
		t.Fatal(err)
	}

	// ASCII chart to a file we can read back.
	asciiOut := outFile(t)
	if err := coverageMode(asciiOut, seriesPath, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(asciiOut.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "150/1024") {
		t.Fatalf("ASCII chart missing summary:\n%s", raw)
	}

	// SVG render.
	svgPath := filepath.Join(dir, "coverage.svg")
	if err := coverageMode(outFile(t), seriesPath, svgPath); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "polyline") {
		t.Fatalf("SVG output malformed:\n%s", svg)
	}

	if err := coverageMode(outFile(t), filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Fatal("missing series accepted")
	}
}
