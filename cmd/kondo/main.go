// Command kondo runs the Kondo data-debloating pipeline.
//
// Two modes:
//
//	kondo -program CS2 [-budget 2000] [-seed 1] [-data in.sdf -dataset data -out debloated.sdf]
//	    Debloat a benchmark program. With -data/-out, also materialize
//	    the debloated data file.
//
//	kondo -spec container.spec -src ./payload -image ./image -debloated ./image-debloated
//	    Parse a container specification, build the image, debloat its
//	    data file for the advertised PARAM space, and rebuild the
//	    image with the carved file. Prints the size reduction.
//
//	kondo explain -prov index.json <file> <offset|i,j,k>
//	    Attribute one kept position of a debloated file to the hull
//	    and seed valuation that caused its inclusion (see -prov).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/sdf"
	"repro/internal/status"
	"repro/internal/workload"
	"repro/kondo"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := explainMode(os.Stdout, os.Stderr, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "kondo:", err)
			os.Exit(1)
		}
		return
	}
	var (
		program  = flag.String("program", "", "benchmark program name (CS1..CS5, PRL2D/3D, LDC2D/3D, RDC2D/3D, ARD, MSI)")
		budget   = flag.Int("budget", 2000, "debloat-test budget (number of audited executions)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "fuzz worker-pool size (0 = one per CPU); results are identical at any value")
		timeout  = flag.Duration("timeout", 0, "overall deadline for the run (0 = none), e.g. 30s or 5m")
		data     = flag.String("data", "", "optional: sdf data file to debloat")
		dataset  = flag.String("dataset", "data", "dataset name within the data file")
		out      = flag.String("out", "", "optional: path of the debloated data file")
		chunkArg = flag.String("chunk", "16", "debloating chunk extent per dimension (single value or AxBxC)")
		gran     = flag.String("granularity", "chunk", "debloating granularity: chunk or element")
		manifest = flag.String("manifest", "", "optional: path to write the debloat manifest (JSON)")

		spec      = flag.String("spec", "", "container specification file (container mode)")
		src       = flag.String("src", ".", "source directory for ADD entries (container mode)")
		image     = flag.String("image", "", "directory to build the image into (container mode)")
		debloated = flag.String("debloated", "", "directory to build the debloated image into (container mode)")

		traceOut    = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
		logLevel    = flag.String("log-level", "warn", "diagnostic log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		statusAddr  = flag.String("status-addr", "", "optional: serve live campaign status on this address (/statusz JSON, /statusz/stream SSE, /metrics) while the run executes")
		coverageOut = flag.String("coverage-out", "", "optional: write the campaign's coverage time series JSON (render with kondo-viz -coverage)")
		provOut     = flag.String("prov", "", "optional: write the inclusion-provenance index JSON (query with kondo explain)")
	)
	flag.Parse()

	if _, err := obs.SetupCLILogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "kondo:", err)
		os.Exit(2)
	}

	// Interrupts cancel the campaign instead of killing the process:
	// the pipeline stops within one evaluation batch.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	if *statusAddr != "" {
		// The status endpoint's /metrics view needs a registry in the
		// context for the pipeline to publish into.
		ctx = obs.WithRegistry(ctx, obs.NewRegistry())
	}

	var err error
	switch {
	case *spec != "":
		err = containerMode(ctx, *spec, *src, *image, *debloated, *dataset, *budget, *seed, *workers, *chunkArg)
	case *program != "":
		tel := telemetryOpts{statusAddr: *statusAddr, coverageOut: *coverageOut, provOut: *provOut}
		err = programMode(ctx, *program, *data, *dataset, *out, *budget, *seed, *workers, *chunkArg, *gran, *manifest, tel)
	default:
		fmt.Fprintln(os.Stderr, "usage: kondo -program <name> | kondo -spec <file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// Write the trace even for failed runs — a stopped campaign's trace
	// is exactly what diagnoses it.
	if tr != nil {
		if werr := tr.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "kondo: writing trace:", werr)
			if err == nil {
				err = werr
			}
		} else {
			fmt.Fprintf(os.Stderr, "kondo: trace written to %s (%d events)\n", *traceOut, tr.Len())
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "kondo: campaign stopped:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "kondo:", err)
		os.Exit(1)
	}
}

// telemetryOpts are the campaign-introspection outputs of one run.
type telemetryOpts struct {
	statusAddr  string // live /statusz + SSE endpoint while running
	coverageOut string // coverage time-series JSON artifact
	provOut     string // inclusion-provenance index JSON artifact
}

func programMode(ctx context.Context, name, data, dataset, out string, budget int, seed int64, workers int, chunkArg, gran, manifestPath string, tel telemetryOpts) error {
	p, err := resolveProgram(name, data, dataset)
	if err != nil {
		return err
	}
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = seed
	cfg.Fuzz.MaxEvals = budget
	cfg.Fuzz.Workers = workers
	cfg.Carve.Workers = workers
	cfg.Fuzz.Witnesses = tel.provOut != ""

	var st *status.Server
	if tel.statusAddr != "" {
		ln, lerr := net.Listen("tcp", tel.statusAddr)
		if lerr != nil {
			return fmt.Errorf("status endpoint: %w", lerr)
		}
		st = status.NewServer(status.Campaign{
			Program: p.Name(),
			Dataset: dataset,
			Workers: workers,
		}, p.Space().Dims(), p.Space().Size(), obs.RegistryOf(ctx))
		cfg.Fuzz.OnCoverage = st.Publish
		srv := &http.Server{Handler: st.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "kondo: status endpoint on http://%s/statusz\n", ln.Addr())
	}

	res, err := kondo.Debloat(ctx, p, cfg)
	if st != nil {
		st.Finish()
	}
	if res != nil && res.Fuzz != nil && tel.coverageOut != "" {
		// Written even for stopped campaigns: a partial trajectory is
		// exactly what diagnoses them.
		if werr := res.Fuzz.Coverage.WriteFile(tel.coverageOut); werr != nil {
			fmt.Fprintln(os.Stderr, "kondo: writing coverage series:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "kondo: coverage series written to %s (%d points)\n",
				tel.coverageOut, len(res.Fuzz.Coverage.Points))
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("program:     %s (%s)\n", p.Name(), p.Description())
	fmt.Printf("array:       %s, |Θ| = %d\n", p.Space(), p.Params().Valuations())
	fmt.Printf("tests run:   %d (useful %d, non-useful %d)\n",
		res.Fuzz.Evaluations, res.Fuzz.Useful, res.Fuzz.NonUseful)
	fmt.Printf("campaign:    %s\n", kondo.CampaignOf(res))
	fmt.Printf("hulls:       %d\n", len(res.Hulls))
	fmt.Printf("carve:       %d cells -> %d hulls (%d merges in %d passes, %d pair tests, shrinkage %.2f), waste ratio %.2f, saturation %.2f\n",
		res.CarveStats.Cells, res.CarveStats.FinalHulls, res.CarveStats.Merges,
		res.CarveStats.MergePasses, res.CarveStats.PairTests, res.CarveStats.Shrinkage(),
		res.WasteRatio(), res.Fuzz.Coverage.Saturation())
	fmt.Printf("subset:      %d of %d indices (%.2f%% bloat identified)\n",
		res.Approx.Len(), p.Space().Size(),
		100*kondo.BloatFraction(p.Space(), res.Approx))
	fmt.Printf("time:        fuzz %v, carve %v\n", res.FuzzTime, res.CarveTime)

	truth, err := kondo.GroundTruth(p)
	if err != nil {
		return fmt.Errorf("computing ground truth: %w", err)
	}
	pr := kondo.Evaluate(truth, res.Approx)
	fmt.Printf("quality:     precision %.3f, recall %.3f\n", pr.Precision, pr.Recall)

	if data != "" && out != "" {
		wspan := obs.Start(ctx, "kondo.write")
		if wspan != nil {
			wspan.Arg("granularity", gran).Arg("out", out)
		}
		defer wspan.End()
		var stats kondo.DebloatStats
		var chunk []int
		switch gran {
		case "chunk":
			chunk, err = parseChunk(chunkArg, p.Space().Rank())
			if err != nil {
				return err
			}
			stats, err = kondo.WriteSubset(data, out, dataset, res.Approx, chunk)
			if err != nil {
				return err
			}
			fmt.Printf("debloated:   %s (%d -> %d bytes, %.2f%% reduction, %d/%d chunks kept)\n",
				out, stats.OriginalBytes, stats.DebloatedBytes,
				100*stats.Reduction(), stats.KeptChunks, stats.TotalChunks)
		case "element":
			stats, err = kondo.WritePacked(data, out, dataset, res.Approx)
			if err != nil {
				return err
			}
			fmt.Printf("debloated:   %s (%d -> %d bytes, %.2f%% reduction, element-granular)\n",
				out, stats.OriginalBytes, stats.DebloatedBytes, 100*stats.Reduction())
		default:
			return fmt.Errorf("unknown granularity %q (chunk, element)", gran)
		}
		if manifestPath != "" {
			m := kondo.NewManifest(p.Name(), dataset, p.Space().Dims(), gran, chunk, res, stats)
			// Root the manifest over the ORIGINAL data file — the bytes
			// an origin will serve during recovery — so clients can
			// verify every recovered chunk (DESIGN.md §15).
			if err := m.EmbedMerkle(data); err != nil {
				return fmt.Errorf("embedding merkle root: %w", err)
			}
			if err := m.Save(manifestPath); err != nil {
				return err
			}
			fmt.Printf("manifest:    %s (%d hulls, merkle root %s)\n", manifestPath, len(m.Hulls), m.Merkle.Root[:12])
		}
	}
	if tel.provOut != "" {
		var chunk []int
		if gran == "chunk" {
			if c, cerr := parseChunk(chunkArg, p.Space().Rank()); cerr == nil {
				chunk = c
			}
		}
		idx := prov.New(p.Name(), dataset, p.Space(), gran, chunk,
			res.Hulls, res.Fuzz.Seeds, res.Fuzz.Witnesses)
		if err := idx.Save(tel.provOut); err != nil {
			return err
		}
		fmt.Printf("provenance:  %s (%d witnessed indices, %d tests)\n",
			tel.provOut, len(idx.WitnessLins), len(idx.Seeds))
	}
	return nil
}

// resolveProgram picks the program, sized to the data file when one is
// given.
func resolveProgram(name, data, dataset string) (kondo.Program, error) {
	if data == "" {
		return kondo.ProgramByName(name)
	}
	f, err := sdf.Open(data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := f.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	return kondo.ProgramForSpace(name, ds.Space().Dims())
}

func containerMode(ctx context.Context, specPath, src, imageDir, debloatedDir, dataset string, budget int, seed int64, workers int, chunkArg string) error {
	if imageDir == "" || debloatedDir == "" {
		return fmt.Errorf("container mode needs -image and -debloated directories")
	}
	sf, err := os.Open(specPath)
	if err != nil {
		return err
	}
	spec, err := kondo.ParseSpec(sf)
	sf.Close()
	if err != nil {
		return err
	}
	img, err := kondo.BuildImage(spec, src, imageDir)
	if err != nil {
		return err
	}
	origSize, err := img.Size()
	if err != nil {
		return err
	}
	dataPath, err := spec.DataFile()
	if err != nil {
		return err
	}
	hostData, err := img.HostPath(dataPath)
	if err != nil {
		return err
	}
	f, err := sdf.Open(hostData)
	if err != nil {
		return err
	}
	ds, err := f.Dataset(dataset)
	if err != nil {
		f.Close()
		return err
	}
	dims := ds.Space().Dims()
	f.Close()

	p, err := workload.ForSpace(spec.Entrypoint, dims)
	if err != nil {
		return err
	}
	// The PARAM line narrows the supported parameter space; the
	// debloated subset follows the advertised Θ, not the program's
	// maximal one (paper §I-A).
	if len(spec.Params) > 0 {
		p, err = workload.WithParams(p, spec.Params)
		if err != nil {
			return err
		}
	}
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = seed
	cfg.Fuzz.MaxEvals = budget
	cfg.Fuzz.Workers = workers
	cfg.Carve.Workers = workers
	res, err := kondo.Debloat(ctx, p, cfg)
	if err != nil {
		return err
	}
	chunk, err := parseChunk(chunkArg, len(dims))
	if err != nil {
		return err
	}
	deb, stats, err := img.DebloatData(debloatedDir, dataPath, dataset, res.Approx, chunk)
	if err != nil {
		return err
	}
	debSize, err := deb.Size()
	if err != nil {
		return err
	}
	fmt.Printf("entrypoint:      %s over %v\n", spec.Entrypoint, dims)
	fmt.Printf("parameter space: |Θ| = %d\n", spec.Params.Valuations())
	fmt.Printf("tests run:       %d\n", res.Fuzz.Evaluations)
	fmt.Printf("data file:       %d -> %d bytes (%.2f%% reduction)\n",
		stats.OriginalBytes, stats.DebloatedBytes, 100*stats.Reduction())
	fmt.Printf("image:           %d -> %d bytes (%.2f%% reduction)\n",
		origSize, debSize, 100*(1-float64(debSize)/float64(origSize)))
	fmt.Printf("debloated image: %s\n", filepath.Clean(debloatedDir))
	return nil
}

// parseChunk parses "16" or "8x8x4" into per-dimension chunk extents.
func parseChunk(arg string, rank int) ([]int, error) {
	parts := strings.Split(arg, "x")
	if len(parts) == 1 {
		var v int
		if _, err := fmt.Sscanf(parts[0], "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid chunk %q", arg)
		}
		chunk := make([]int, rank)
		for k := range chunk {
			chunk[k] = v
		}
		return chunk, nil
	}
	if len(parts) != rank {
		return nil, fmt.Errorf("chunk %q has %d extents, array rank is %d", arg, len(parts), rank)
	}
	chunk := make([]int, rank)
	for k, s := range parts {
		if _, err := fmt.Sscanf(s, "%d", &chunk[k]); err != nil || chunk[k] <= 0 {
			return nil, fmt.Errorf("invalid chunk extent %q", s)
		}
	}
	return chunk, nil
}
