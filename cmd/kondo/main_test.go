package main

import "testing"

func TestParseChunk(t *testing.T) {
	cases := []struct {
		arg  string
		rank int
		want []int
		ok   bool
	}{
		{"16", 2, []int{16, 16}, true},
		{"16", 3, []int{16, 16, 16}, true},
		{"8x4", 2, []int{8, 4}, true},
		{"8x4x2", 3, []int{8, 4, 2}, true},
		{"8x4", 3, nil, false},  // rank mismatch
		{"0", 2, nil, false},    // non-positive
		{"axb", 2, nil, false},  // not a number
		{"8x-1", 2, nil, false}, // negative extent
		{"", 2, nil, false},     // empty
	}
	for _, c := range cases {
		got, err := parseChunk(c.arg, c.rank)
		if (err == nil) != c.ok {
			t.Errorf("parseChunk(%q, %d) err = %v, want ok=%v", c.arg, c.rank, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseChunk(%q) = %v, want %v", c.arg, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseChunk(%q) = %v, want %v", c.arg, got, c.want)
				break
			}
		}
	}
}
