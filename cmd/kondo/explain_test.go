package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/prov"
	"repro/internal/sdf"
	"repro/internal/workload"
	"repro/kondo"
)

// TestExplainEndToEnd pins the acceptance criterion: debloat a small
// ARD data file with witness recording on, build the
// inclusion-provenance index, and attribute a kept byte of the
// debloated file back to its originating hull and seed valuation via
// `kondo explain`.
func TestExplainEndToEnd(t *testing.T) {
	p, err := workload.NewARD(24, 36, 16, 4, 8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = 7
	cfg.Fuzz.MaxEvals = 120
	cfg.Fuzz.Workers = 2
	cfg.Fuzz.Witnesses = true
	res, err := kondo.Debloat(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fuzz.Witnesses) == 0 {
		t.Fatal("campaign recorded no witnesses")
	}
	if len(res.Hulls) == 0 {
		t.Fatal("campaign carved no hulls")
	}

	// Materialize the origin and the chunk-granular debloated file.
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.sdf")
	w := sdf.NewWriter(orig)
	dw, err := w.CreateDataset("data", p.Space(), array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 { return float64(ix[0]) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deb := filepath.Join(dir, "deb.sdf")
	chunk := []int{6, 6, 4}
	if _, err := kondo.WriteSubset(orig, deb, "data", res.Approx, chunk); err != nil {
		t.Fatal(err)
	}

	// Build and save the inclusion-provenance index.
	provPath := filepath.Join(dir, "prov.json")
	idx := prov.New(p.Name(), "data", p.Space(), "chunk", chunk,
		res.Hulls, res.Fuzz.Seeds, res.Fuzz.Witnesses)
	if err := idx.Save(provPath); err != nil {
		t.Fatal(err)
	}

	// Pick a witnessed index and find the byte of the debloated file
	// that stores it.
	var witnessIx array.Index
	var wantSeed int
	for lin, seed := range res.Fuzz.Witnesses {
		ix, err := p.Space().Unlinear(lin)
		if err != nil {
			t.Fatal(err)
		}
		witnessIx = ix
		wantSeed = seed
		break
	}
	f, err := sdf.Open(deb)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Dataset("data")
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	offset, err := ds.FileOffset(witnessIx)
	f.Close()
	if err != nil {
		t.Fatalf("witnessed index %v not stored in debloated file: %v", witnessIx, err)
	}

	// Offset-form query, JSON output.
	var stdout, stderr bytes.Buffer
	args := []string{"-prov", provPath, "-dataset", "data", "-json", deb, fmt.Sprint(offset)}
	if err := explainMode(&stdout, &stderr, args); err != nil {
		t.Fatalf("explain failed: %v\nstderr: %s", err, stderr.String())
	}
	var att prov.Attribution
	if err := json.Unmarshal(stdout.Bytes(), &att); err != nil {
		t.Fatalf("bad explain JSON: %v\n%s", err, stdout.String())
	}
	if !reflect.DeepEqual(att.Index, witnessIx) {
		t.Fatalf("offset %d attributed to index %v, want %v", offset, att.Index, witnessIx)
	}
	if !att.Witnessed {
		t.Fatalf("witnessed index reported unwitnessed: %+v", att)
	}
	if att.Seed != wantSeed {
		t.Fatalf("attributed to seed %d, want %d", att.Seed, wantSeed)
	}
	if !reflect.DeepEqual(att.SeedValue, res.Fuzz.Seeds[wantSeed].V) {
		t.Fatalf("seed valuation %v, want %v", att.SeedValue, res.Fuzz.Seeds[wantSeed].V)
	}
	if att.Hull < 0 || att.Hull >= len(res.Hulls) {
		t.Fatalf("attributed to hull %d of %d", att.Hull, len(res.Hulls))
	}

	// Index-form query, prose output, against the same position.
	stdout.Reset()
	q := fmt.Sprintf("%d,%d,%d", witnessIx[0], witnessIx[1], witnessIx[2])
	if err := explainMode(&stdout, &stderr, []string{"-prov", provPath, "-", q}); err != nil {
		t.Fatalf("index-form explain failed: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, fmt.Sprintf("debloat test #%d", wantSeed)) {
		t.Fatalf("prose output does not name the debloat test:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("hull:      #%d", att.Hull)) {
		t.Fatalf("prose output does not name the hull:\n%s", out)
	}
}

func TestExplainRejectsBadInvocations(t *testing.T) {
	var out bytes.Buffer
	if err := explainMode(&out, &out, []string{"x.sdf", "12"}); err == nil {
		t.Fatal("expected error without -prov")
	}
	if err := explainMode(&out, &out, []string{"-prov", "nope.json"}); err == nil {
		t.Fatal("expected error with missing positional args")
	}
	if err := explainMode(&out, &out, []string{"-prov", "nope.json", "x.sdf", "12"}); err == nil {
		t.Fatal("expected error for unreadable index")
	}
}
