package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/array"
	"repro/internal/prov"
	"repro/internal/sdf"
)

// explainMode implements `kondo explain`: attribute one position of a
// debloated file to the hull and debloat test that caused its
// inclusion, using the inclusion-provenance index written by
// `kondo -prov`.
//
//	kondo explain -prov index.json [-dataset data] [-json] <file> <offset|i,j,k>
//
// The query is either a comma-separated array index (resolved against
// the index's dims) or an absolute byte offset into <file> (resolved
// through the file's layout metadata). With an index-form query the
// file may be "-" (only the provenance index is consulted).
func explainMode(stdout, stderr io.Writer, args []string) error {
	fs := flag.NewFlagSet("kondo explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	provPath := fs.String("prov", "", "inclusion-provenance index JSON written by kondo -prov (required)")
	dsName := fs.String("dataset", "data", "dataset name within the file (offset queries)")
	jsonOut := fs.Bool("json", false, "emit the attribution as JSON instead of prose")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: kondo explain -prov index.json [-dataset data] [-json] <file> <offset|i,j,k>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *provPath == "" {
		fs.Usage()
		return fmt.Errorf("explain: -prov is required")
	}
	rest := fs.Args()
	if len(rest) != 2 {
		fs.Usage()
		return fmt.Errorf("explain: want <file> and <offset|i,j,k>, got %d args", len(rest))
	}
	file, query := rest[0], rest[1]

	idx, err := prov.Load(*provPath)
	if err != nil {
		return err
	}

	var ix array.Index
	if strings.Contains(query, ",") {
		ix, err = parseIndexQuery(query)
		if err != nil {
			return err
		}
	} else {
		off, perr := strconv.ParseInt(query, 10, 64)
		if perr != nil {
			return fmt.Errorf("explain: query %q is neither a byte offset nor an i,j,k index", query)
		}
		ix, err = resolveFileOffset(file, *dsName, off)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "kondo explain: offset %d of %s resolves to index %v\n", off, file, ix)
	}

	att, err := idx.Explain(ix)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(att)
	}
	fmt.Fprintf(stdout, "index:     %v (lin %d)\n", att.Index, att.Lin)
	if att.Hull >= 0 {
		fmt.Fprintf(stdout, "hull:      #%d (%d vertices)\n", att.Hull, att.HullVertices)
	} else {
		fmt.Fprintf(stdout, "hull:      none (outside every carved hull)\n")
	}
	if att.Seed >= 0 {
		how := "first observed by"
		if !att.Witnessed {
			how = fmt.Sprintf("nearest observed access (lin %d) from", att.NearestLin)
		}
		fmt.Fprintf(stdout, "test:      %s debloat test #%d\n", how, att.Seed)
		fmt.Fprintf(stdout, "valuation: %v (useful=%v)\n", att.SeedValue, att.Useful)
	} else {
		fmt.Fprintf(stdout, "test:      unknown (index carries no witness map)\n")
	}
	fmt.Fprintf(stdout, "because:   %s\n", att.Note)
	return nil
}

// parseIndexQuery parses "i,j,k" into an array index.
func parseIndexQuery(q string) (array.Index, error) {
	parts := strings.Split(q, ",")
	ix := make(array.Index, len(parts))
	for k, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("explain: bad index component %q", s)
		}
		ix[k] = v
	}
	return ix, nil
}

// resolveFileOffset maps an absolute byte offset of the debloated file
// to the array index stored there.
func resolveFileOffset(path, dataset string, off int64) (array.Index, error) {
	f, err := sdf.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := f.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	ix, err := ds.ResolveOffset(off)
	if err != nil {
		return nil, fmt.Errorf("explain: offset %d: %w", off, err)
	}
	return ix, nil
}
