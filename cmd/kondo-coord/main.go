// Command kondo-coord is the distributed-campaign coordinator: it
// owns one or more fuzz campaigns' seed schedules and leases seed
// batches to kondo-worker evaluators over TCP, merging results in
// seed order so a fixed-seed distributed campaign is bit-identical to
// a single-process run.
//
//	kondo-coord -program CS2 -budget 2000                 # lease on :9400
//	kondo-coord -program CS2 -addr 127.0.0.1:0 -addr-file coord.addr
//	kondo-coord -program CS2 -local                       # no workers: in-process baseline
//	kondo-coord -program CS2 -campaigns 3 -concurrent 2   # queued campaigns
//
// The -digest-out file records each campaign's result digest (one
// `<id> <digest>` line); two runs with equal digests made identical
// decisions and observed identical data, which is how `make
// orchestra-demo` asserts distributed/local bit-identity. With
// -status-addr the first campaign's live coverage is served exactly
// as `kondo -status-addr` does (/statusz, /statusz/stream, /metrics —
// including the kondo_orchestra_* series). SIGINT drains gracefully:
// campaigns stop within one batch and workers are sent bye.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/orchestra"
	"repro/internal/status"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":9400", "lease-protocol listen address (use port 0 with -addr-file for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "optional: write the resolved listen address to this file (for scripts using port 0)")
		local    = flag.Bool("local", false, "run the campaigns in-process instead of leasing to workers (baseline for digest comparison)")

		program   = flag.String("program", "", "benchmark program name (CS1..CS5, PRL2D/3D, LDC2D/3D, RDC2D/3D, ARD, MSI)")
		dimsArg   = flag.String("dims", "", "optional: array extents to size the program to, e.g. 64x64")
		budget    = flag.Int("budget", 2000, "debloat-test budget per campaign")
		seed      = flag.Int64("seed", 1, "random seed of the first campaign; campaign k uses seed+k")
		campaigns = flag.Int("campaigns", 1, "number of campaigns to run")

		concurrent  = flag.Int("concurrent", 1, "campaigns running at once (the rest queue)")
		leaseTO     = flag.Duration("lease-timeout", orchestra.DefaultLeaseTimeout, "inflight lease deadline before re-issue")
		workerWait  = flag.Duration("worker-wait", orchestra.DefaultWorkerWait, "how long a batch tolerates zero connected workers before the campaign fails")
		span        = flag.Int("span", 0, "seeds per lease (0 = split each batch across connected workers)")
		digestOut   = flag.String("digest-out", "", "optional: write '<campaign> <digest>' lines to this file")
		coverageOut = flag.String("coverage-out", "", "optional: write the first campaign's coverage time series JSON (render with kondo-viz -coverage)")
		statusAddr  = flag.String("status-addr", "", "optional: serve live campaign status on this address (/statusz JSON, /statusz/stream SSE, /metrics) while campaigns run")
		traceOut    = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of the run")
		logLevel    = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if *program == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-coord -program <name> [-addr :9400] [-budget N]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := obs.SetupCLILogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-coord:", err)
		os.Exit(2)
	}
	if err := run(log, *addr, *addrFile, *local, *program, *dimsArg, *budget, *seed,
		*campaigns, *concurrent, *leaseTO, *workerWait, *span,
		*digestOut, *coverageOut, *statusAddr, *traceOut); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "kondo-coord: stopped:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "kondo-coord:", err)
		os.Exit(1)
	}
}

type logger interface {
	Info(msg string, args ...any)
	Warn(msg string, args ...any)
}

func run(log logger, addr, addrFile string, local bool, program, dimsArg string,
	budget int, seed int64, campaigns, concurrent int,
	leaseTO, workerWait time.Duration, span int,
	digestOut, coverageOut, statusAddr, traceOut string) error {

	dims, err := parseDims(dimsArg)
	if err != nil {
		return err
	}
	spec := orchestra.Spec{Program: program, Dims: dims}
	params, space, err := orchestra.ParamsForSpec(spec)
	if err != nil {
		return err
	}

	// Interrupts drain: campaigns stop within one batch, workers get a
	// bye on their next exchange.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	reg := obs.NewRegistry()
	ctx = obs.WithRegistry(ctx, reg)
	var tr *obs.Trace
	if traceOut != "" {
		// The trace on the Serve context doubles as the merged fleet
		// trace: leases request worker sub-traces and every result
		// stitches its spans in under the worker's pid, so one
		// -trace-out file shows the whole fleet in Perfetto.
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
		obs.RegisterTraceMetrics(reg, tr)
	}

	mkConfig := func(k int) fuzz.Config {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = seed + int64(k)
		cfg.MaxEvals = budget
		return cfg
	}

	// Live status: the first campaign publishes its per-batch coverage
	// points, so /statusz and kondo-viz work unchanged on a
	// distributed campaign.
	var st *status.Server
	if statusAddr != "" {
		ln, lerr := net.Listen("tcp", statusAddr)
		if lerr != nil {
			return fmt.Errorf("status endpoint: %w", lerr)
		}
		st = status.NewServer(status.Campaign{Program: spec.String()},
			space.Dims(), space.Size(), reg)
		srv := &http.Server{Handler: st.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		log.Info("status endpoint", "url", fmt.Sprintf("http://%s/statusz", ln.Addr()))
	}

	var results []*fuzz.Result
	switch {
	case local:
		results, err = runLocal(ctx, params, space, spec, mkConfig, campaigns, st)
	default:
		results, err = runDistributed(ctx, log, addr, addrFile, spec, mkConfig,
			campaigns, concurrent, leaseTO, workerWait, span, reg, st)
	}
	if st != nil {
		st.Finish()
	}

	// Digests and coverage are written even for failed/partial runs —
	// a stopped campaign's artifacts are exactly what diagnoses it.
	var digests strings.Builder
	for k, res := range results {
		if res == nil {
			continue
		}
		id := campaignID(k)
		d := orchestra.Digest(res)
		fmt.Printf("%s: evals %d, indices %d, stop %s, digest %s\n",
			id, res.Evaluations, res.Indices.Len(), res.StopReason, d)
		fmt.Fprintf(&digests, "%s %s\n", id, d)
		if k == 0 && coverageOut != "" && res.Coverage != nil {
			if werr := res.Coverage.WriteFile(coverageOut); werr != nil {
				log.Warn("writing coverage series", "err", werr)
			}
		}
	}
	if digestOut != "" {
		if werr := os.WriteFile(digestOut, []byte(digests.String()), 0o644); werr != nil {
			log.Warn("writing digests", "err", werr)
		}
	}
	if tr != nil {
		if werr := tr.WriteFile(traceOut); werr != nil {
			log.Warn("writing trace", "err", werr)
		} else {
			log.Info("trace written", "path", traceOut, "events", tr.Len())
		}
	}
	return err
}

// runLocal is the in-process baseline: the same campaigns evaluated
// through the ordinary fuzz pool, for digest comparison against a
// distributed run.
func runLocal(ctx context.Context, params workload.ParamSpace, space array.Space,
	spec orchestra.Spec, mkConfig func(int) fuzz.Config, campaigns int, st *status.Server) ([]*fuzz.Result, error) {

	eval, err := orchestra.EvaluatorForSpec(spec)
	if err != nil {
		return nil, err
	}
	results := make([]*fuzz.Result, campaigns)
	for k := 0; k < campaigns; k++ {
		cfg := mkConfig(k)
		if k == 0 && st != nil {
			cfg.OnCoverage = st.Publish
		}
		f, err := fuzz.New(params, space, eval, cfg)
		if err != nil {
			return results, err
		}
		res, err := f.Run(ctx)
		results[k] = res
		if err != nil {
			return results, fmt.Errorf("campaign %s: %w", campaignID(k), err)
		}
	}
	return results, nil
}

// runDistributed serves the lease protocol and queues the campaigns.
func runDistributed(ctx context.Context, log logger, addr, addrFile string,
	spec orchestra.Spec, mkConfig func(int) fuzz.Config,
	campaigns, concurrent int, leaseTO, workerWait time.Duration, span int,
	reg *obs.Registry, st *status.Server) ([]*fuzz.Result, error) {

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lease listener: %w", err)
	}
	if addrFile != "" {
		if werr := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			ln.Close()
			return nil, fmt.Errorf("writing addr file: %w", werr)
		}
	}
	log.Info("leasing", "addr", ln.Addr().String(), "program", spec.String(), "campaigns", campaigns)

	cfg := orchestra.Config{
		LeaseTimeout:  leaseTO,
		WorkerWait:    workerWait,
		SpanSeeds:     span,
		MaxConcurrent: concurrent,
		Registry:      reg,
	}
	if st != nil {
		cfg.OnFleetEvent = func(ev orchestra.FleetEvent) { st.PublishFleetEvent(ev) }
	}
	coord := orchestra.NewCoordinator(cfg)
	if st != nil {
		// /fleetz answers per-worker health straight off the
		// coordinator's federation state.
		st.SetFleetSource(func() any { return coord.FleetSnapshot() })
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = coord.Serve(serveCtx, ln)
	}()
	defer func() {
		stopServe()
		<-served
	}()

	pending := make([]*orchestra.Pending, campaigns)
	for k := 0; k < campaigns; k++ {
		cfg := mkConfig(k)
		if k == 0 && st != nil {
			cfg.OnCoverage = st.Publish
		}
		pending[k] = coord.Submit(orchestra.Campaign{ID: campaignID(k), Spec: spec, Fuzz: cfg})
	}
	results := make([]*fuzz.Result, campaigns)
	for k, p := range pending {
		res, err := p.Wait(ctx)
		results[k] = res
		if err != nil && ctx.Err() == nil {
			return results, fmt.Errorf("campaign %s: %w", p.Campaign.ID, err)
		}
	}
	return results, ctx.Err()
}

func campaignID(k int) string { return "campaign-" + strconv.Itoa(k) }

func parseDims(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	parts := strings.Split(arg, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -dims %q: want e.g. 64x64", arg)
		}
		dims[i] = n
	}
	return dims, nil
}
