package main

import "testing"

func TestParseParams(t *testing.T) {
	got, err := parseParams("1, 2.5 ,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseParams = %v, want %v", got, want)
		}
	}
	if _, err := parseParams("1,x"); err == nil {
		t.Error("bad parameter should error")
	}
	if _, err := parseParams(""); err == nil {
		t.Error("empty parameters should error")
	}
}
