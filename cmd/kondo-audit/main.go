// Command kondo-audit runs a benchmark program against a real data
// file under the I/O event audit and prints what the audit observed:
// event counts, merged byte ranges, and the resolved index subset.
//
//	kondo-audit -data mnist.sdf -program CS2 -params 1,1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/ioevent"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/sdf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		data    = flag.String("data", "", "sdf data file")
		dataset = flag.String("dataset", "data", "dataset name")
		program = flag.String("program", "", "benchmark program name")
		params  = flag.String("params", "", "comma-separated parameter values")
		ranges  = flag.Bool("ranges", false, "print every merged byte range")
		logPath = flag.String("log", "", "optional: write the event log to this path")
		replay  = flag.String("replay", "", "replay an event log instead of running (still needs -data for offset resolution)")
		dotPath = flag.String("dot", "", "optional: write the run's provenance graph (Graphviz DOT) to this path")

		traceOut  = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of the audited run")
		logLevel  = flag.String("log-level", "warn", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	if _, err := obs.SetupCLILogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "kondo-audit:", err)
		os.Exit(2)
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	writeTrace := func() {
		if tr == nil {
			return
		}
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "kondo-audit: writing trace:", err)
		} else {
			fmt.Fprintf(os.Stderr, "kondo-audit: trace written to %s (%d events)\n", *traceOut, tr.Len())
		}
	}

	if *replay != "" {
		if *data == "" {
			fmt.Fprintln(os.Stderr, "usage: kondo-audit -replay <log> -data <file>")
			os.Exit(2)
		}
		err := runReplay(ctx, *replay, *data, *dataset, *ranges)
		writeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "kondo-audit:", err)
			os.Exit(1)
		}
		return
	}
	if *data == "" || *program == "" || *params == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-audit -data <file> -program <name> -params v1,v2[,v3]")
		os.Exit(2)
	}
	err := run(ctx, *data, *dataset, *program, *params, *ranges, *logPath, *dotPath)
	writeTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-audit:", err)
		os.Exit(1)
	}
}

// runReplay loads a recorded event log and resolves its ranges against
// the data file's metadata — the decoupled analysis path the paper's
// "data store" of system-call arguments enables.
func runReplay(ctx context.Context, logPath, data, dataset string, printRanges bool) error {
	sp := obs.Start(ctx, "audit.replay").Arg("log", logPath)
	defer sp.End()
	lf, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	store := ioevent.NewStore()
	if err := ioevent.Replay(lf, store); err != nil {
		return err
	}

	f, err := sdf.Open(data)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := f.Dataset(dataset)
	if err != nil {
		return err
	}
	fileName := filepath.Base(data)
	merged := store.FileRanges(fileName)
	indices, err := trace.ResolveIndices(ds, merged)
	if err != nil {
		return err
	}
	fmt.Printf("replayed:      %d events from %s\n", store.Events(), logPath)
	var covered int64
	for _, r := range merged {
		covered += r.Len()
	}
	fmt.Printf("byte ranges:   %d merged ranges covering %d bytes\n", len(merged), covered)
	fmt.Printf("index subset:  %d of %d indices\n", indices.Len(), ds.Space().Size())
	if printRanges {
		for _, r := range merged {
			fmt.Printf("  [%d, %d)\n", r.Start, r.End)
		}
	}
	return nil
}

func run(ctx context.Context, data, dataset, program, paramArg string, printRanges bool, logPath, dotPath string) error {
	v, err := parseParams(paramArg)
	if err != nil {
		return err
	}

	// Open untraced once to size the program.
	plain, err := sdf.Open(data)
	if err != nil {
		return err
	}
	ds, err := plain.Dataset(dataset)
	if err != nil {
		plain.Close()
		return err
	}
	p, err := workload.ForSpace(program, ds.Space().Dims())
	plain.Close()
	if err != nil {
		return err
	}

	// Audited run.
	store := ioevent.NewStore()
	tr := trace.NewTracer(store)
	var logFile *os.File
	var logWriter *ioevent.LogWriter
	if logPath != "" {
		logFile, err = os.Create(logPath)
		if err != nil {
			return err
		}
		defer logFile.Close()
		logWriter = ioevent.NewLogWriter(logFile)
		tr.TeeLog(logWriter)
	}
	tf, err := tr.Open(tr.NewProcess(), data)
	if err != nil {
		return err
	}
	af, err := sdf.OpenFrom(tf)
	if err != nil {
		tf.Close()
		return err
	}
	ads, err := af.Dataset(dataset)
	if err != nil {
		af.Close()
		return err
	}
	env := &workload.Env{Acc: workload.NewFileAccessor(ads)}
	sp := obs.Start(ctx, "audit.run").Arg("program", p.Name())
	if err := p.Run(v, env); err != nil {
		sp.End()
		af.Close()
		return err
	}
	sp.End()

	fileName := filepath.Base(data)
	rsp := obs.Start(ctx, "audit.resolve")
	merged := store.FileRanges(fileName)
	indices, err := trace.AccessedIndices(store, fileName, ads)
	rsp.End()
	if err != nil {
		af.Close()
		return err
	}
	af.Close()

	fmt.Printf("program:       %s, parameters %v\n", p.Name(), v)
	fmt.Printf("events:        %d system-call events\n", store.Events())
	if w := store.Writes(); len(w) > 0 {
		fmt.Printf("WARNING:       %d write events (data array is not read-only!)\n", len(w))
	}
	var covered int64
	for _, r := range merged {
		covered += r.Len()
	}
	fmt.Printf("byte ranges:   %d merged ranges covering %d bytes\n", len(merged), covered)
	fmt.Printf("index subset:  %d of %d indices (I_v)\n", indices.Len(), ads.Space().Size())
	if printRanges {
		for _, r := range merged {
			fmt.Printf("  [%d, %d)\n", r.Start, r.End)
		}
	}
	if logWriter != nil {
		if err := logWriter.Flush(); err != nil {
			return err
		}
		info, err := logFile.Stat()
		if err != nil {
			return err
		}
		fmt.Printf("event log:     %s (%d bytes)\n", logPath, info.Size())
	}
	if dotPath != "" {
		g := prov.FromStore(store)
		df, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := g.DOT(df); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Printf("provenance:    %s (%d vertices)\n", dotPath, len(g.Vertices()))
	}
	return nil
}

func parseParams(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid parameter %q", p)
		}
		out[i] = v
	}
	return out, nil
}
