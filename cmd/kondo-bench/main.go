// Command kondo-bench regenerates the tables and figures of the
// paper's evaluation (§V).
//
//	kondo-bench -exp fig7            # one experiment
//	kondo-bench -exp all             # every experiment
//	kondo-bench -exp fig8 -quick     # reduced sizes/repetitions
//	kondo-bench -list                # available experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id, or \"all\"")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "reduced sizes and repetitions")
		runs    = flag.Int("runs", 0, "override repetition count for Kondo/BF")
		budget  = flag.Int("budget", 0, "override debloat-test budget")
		seed    = flag.Int64("seed", 1, "base random seed")
		workers = flag.Int("workers", 0, "fuzz worker-pool size per campaign (0 = one per CPU)")
		timeout = flag.Duration("timeout", 0, "overall deadline across all experiments (0 = none)")
		csvDir  = flag.String("csv", "", "also write each report as <dir>/<exp>.csv")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-bench -exp <id>|all [-quick]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *budget > 0 {
		opts.EvalBudget = *budget
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(ctx, id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kondo-bench:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
		}
	}
}
