// Command kondo-bench regenerates the tables and figures of the
// paper's evaluation (§V).
//
//	kondo-bench -exp fig7            # one experiment
//	kondo-bench -exp all             # every experiment
//	kondo-bench -exp fig8 -quick     # reduced sizes/repetitions
//	kondo-bench -list                # available experiment ids
//	kondo-bench -exp perf -json .    # machine-readable BENCH_perf.json
//	kondo-bench -exp carve -check .  # gate deterministic metrics vs <dir>/BENCH_carve.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id, or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		quick    = flag.Bool("quick", false, "reduced sizes and repetitions")
		runs     = flag.Int("runs", 0, "override repetition count for Kondo/BF")
		budget   = flag.Int("budget", 0, "override debloat-test budget")
		seed     = flag.Int64("seed", 1, "base random seed")
		workers  = flag.Int("workers", 0, "fuzz worker-pool size per campaign (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 0, "overall deadline across all experiments (0 = none)")
		csvDir   = flag.String("csv", "", "also write each report as <dir>/<exp>.csv")
		jsonDir  = flag.String("json", "", "also write each report as <dir>/BENCH_<exp>.json (table + metrics map)")
		checkDir = flag.String("check", "", "compare deterministic metrics against <dir>/BENCH_<exp>.json and exit 1 on regression")

		traceOut  = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of the experiments")
		logLevel  = flag.String("log-level", "warn", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()

	if _, err := obs.SetupCLILogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "kondo-bench:", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-bench -exp <id>|all [-quick]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *budget > 0 {
		opts.EvalBudget = *budget
	}

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	defer func() {
		if tr == nil {
			return
		}
		if err := tr.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "kondo-bench: writing trace:", err)
		} else {
			fmt.Fprintf(os.Stderr, "kondo-bench: trace written to %s (%d events)\n", *traceOut, tr.Len())
		}
	}()

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	var checkFailed []string
	for _, id := range ids {
		start := time.Now()
		sp := obs.Start(ctx, "bench.experiment")
		if sp != nil {
			sp.Arg("id", id)
		}
		rep, err := bench.Run(ctx, id, opts)
		sp.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "kondo-bench:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
			doc, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+id+".json")
			if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "kondo-bench: wrote %s\n", path)
		}
		if *checkDir != "" {
			// Keep checking the remaining experiments on failure so one
			// run reports the complete regression picture; each failed
			// gate prints its full aligned metric diff.
			path := filepath.Join(*checkDir, "BENCH_"+id+".json")
			if err := bench.Check(rep, path); err != nil {
				fmt.Fprintln(os.Stderr, "kondo-bench:", err)
				checkFailed = append(checkFailed, id)
			} else {
				fmt.Fprintf(os.Stderr, "kondo-bench: %s metrics match %s\n", id, path)
			}
		}
	}
	if len(checkFailed) > 0 {
		fmt.Fprintf(os.Stderr, "kondo-bench: regression gate failed: %s\n", strings.Join(checkFailed, ", "))
		os.Exit(1)
	}
}
