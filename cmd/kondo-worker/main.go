// Command kondo-worker is a remote campaign evaluator: it connects to
// a kondo-coord coordinator, pulls leased seed spans, runs the debloat
// tests through the ordinary in-process fuzz pool, and streams
// per-seed results back. Workers are stateless — start as many as the
// hardware allows, on any machine that can reach the coordinator; a
// worker that dies mid-lease is harmless (the coordinator re-issues
// its leases and results stay bit-identical).
//
//	kondo-worker -coord 127.0.0.1:9400
//	kondo-worker -coord coord-host:9400 -name gpu-box -workers 8
//	kondo-worker -coord 127.0.0.1:9400 -idle-exit 30s   # exit when drained
//
// With -status-addr the worker serves its kondo_orchestra_worker_*
// metrics in Prometheus text form on /metrics. SIGINT sends the
// coordinator an orderly bye and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/orchestra"
)

func main() {
	var (
		coord      = flag.String("coord", "", "coordinator lease-protocol address")
		name       = flag.String("name", "", "worker name in coordinator logs (default: the connection's local address)")
		workers    = flag.Int("workers", 0, "evaluation pool size per lease (0 = 1, inline)")
		idleExit   = flag.Duration("idle-exit", 0, "exit successfully after this long without a lease (0 = run until interrupted)")
		maxLeases  = flag.Int("max-leases", 0, "crash while holding the next lease after completing this many (fault-injection hook; 0 = unlimited)")
		statusAddr = flag.String("status-addr", "", "optional: serve worker /metrics (Prometheus text) on this address")
		traceOut   = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of evaluated leases")
		logLevel   = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-worker -coord <host:port>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := obs.SetupCLILogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-worker:", err)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	reg := obs.NewRegistry()
	ctx = obs.WithRegistry(ctx, reg)
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
		obs.RegisterTraceMetrics(reg, tr)
	}

	if *statusAddr != "" {
		ln, lerr := net.Listen("tcp", *statusAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "kondo-worker: status endpoint:", lerr)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		log.Info("metrics endpoint", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	}

	w := &orchestra.Worker{
		Addr:      *coord,
		Name:      *name,
		Workers:   *workers,
		IdleExit:  *idleExit,
		MaxLeases: *maxLeases,
		Registry:  reg,
	}
	log.Info("kondo-worker starting", "coord", *coord, "pool", *workers)
	start := time.Now()
	err = w.Run(ctx)
	if tr != nil {
		if werr := tr.WriteFile(*traceOut); werr != nil {
			log.Warn("writing trace", "err", werr)
		} else {
			log.Info("trace written", "path", *traceOut, "events", tr.Len())
		}
	}
	evals := reg.Counter("kondo_orchestra_worker_evals_total").Value()
	leases := reg.Counter("kondo_orchestra_worker_leases_total").Value()
	log.Info("kondo-worker done", "leases", leases, "evals", evals, "elapsed", time.Since(start).Round(time.Millisecond))
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		// Interrupted: the drain already said bye.
	default:
		fmt.Fprintln(os.Stderr, "kondo-worker:", err)
		os.Exit(1)
	}
}
