// Command kondo-load is the heavy-traffic harness for the recovery
// plane: it drives a kondo-serve origin through the real caching
// client in open-loop (fixed arrival rate) or closed-loop (fixed
// concurrency) mode and reports throughput, exact tail-latency
// quantiles, cache hit rate, and — in soak mode — whether the origin's
// error budget survived the run.
//
//	kondo-load -url http://127.0.0.1:8080 -requests 10000 -concurrency 16
//	kondo-load -url http://127.0.0.1:8080 -mode open -rate 500 -duration 10s
//	kondo-load -url ... -popularity uniform -warmup 1000 -json result.json
//	kondo-load -url ... -stages "req=500:conc=2,req=2000:conc=8"   # ramp
//	kondo-load -url ... -duration 60s -soak-interval 5s            # soak
//	kondo-load -url ... -requests 5000 -trace-out stitched.json    # 2-pid trace
//
// With -trace-out the run records every client fetch span (retry,
// cache verdict, singleflight) into a trace, stamps each request's
// trace context onto the wire, then pulls the server's /tracez export
// and stitches it in under pid 2 — one Chrome/Perfetto file covering
// both processes, checkable with kondo-viz -check-trace -min-pids 2.
//
// With -manifest pointing at a Merkle-rooted debloat manifest every
// chunk miss is fetched with an inclusion proof and verified against
// the pinned root before entering the cache; tampered origin bytes are
// rejected terminally and fail the run. -no-verify is the explicit
// escape hatch for origins that predate proof serving.
//
// Exit status: 0 on success, 1 when the run errored, any chunk failed
// verification, or any soak poll found an exhausted error budget, 2 on
// usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataserve"
	"repro/internal/debloat"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sdf"
	"repro/internal/status"
)

func main() {
	var (
		url         = flag.String("url", "", "base URL of the kondo-serve origin (e.g. http://127.0.0.1:8080)")
		dataset     = flag.String("dataset", "data", "dataset to drive")
		mode        = flag.String("mode", "closed", "load mode: closed (fixed concurrency) or open (fixed arrival rate)")
		popularity  = flag.String("popularity", "zipf", "chunk popularity: zipf or uniform")
		zipfS       = flag.Float64("zipf-s", 1.2, "Zipf skew parameter (> 1)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in requests/second")
		concurrency = flag.Int("concurrency", 8, "worker count (closed) / in-flight cap (open)")
		requests    = flag.Int("requests", 0, "bound the run by request count")
		duration    = flag.Duration("duration", 0, "bound the run by wall time")
		stagesArg   = flag.String("stages", "", "ramp schedule: comma-separated stages of colon-joined k=v pairs (keys: rate, conc, req, dur); unset keys inherit the top-level flags")
		warmup      = flag.Int("warmup", 0, "requests issued before the measurement window (warm cache); 0 measures cold")
		seed        = flag.Int64("seed", 0, "popularity rng seed (0 = from clock)")
		soakEvery   = flag.Duration("soak-interval", 0, "poll the origin's /sloz at this interval and fail if any error budget is exhausted")
		manifest    = flag.String("manifest", "", "debloat manifest JSON; when it carries a merkle section, every miss is proof-verified against its root")
		noVerify    = flag.Bool("no-verify", false, "escape hatch: skip chunk verification even when -manifest carries a merkle root")
		statusAddr  = flag.String("status-addr", "", "optional: serve /statusz (with live verify counters) and /metrics on this address during the run")
		statusFile  = flag.String("status-addr-file", "", "optional: write the resolved -status-addr listen address to this file (for scripts using port 0)")
		jsonOut     = flag.String("json", "", "optional: write the result JSON to this file")
		traceOut    = flag.String("trace-out", "", "optional: write a stitched client+server Chrome trace to this file")
		dumpMetrics = flag.Bool("dump-metrics", false, "print the kondo_load_* Prometheus exposition after the run")
		logLevel    = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-load -url http://host:port [-requests N | -duration D]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := obs.SetupCLILogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-load:", err)
		os.Exit(2)
	}

	stages, err := parseStages(*stagesArg)
	if err != nil {
		log.Error("bad -stages", "err", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	cfg := load.Config{
		BaseURL:      strings.TrimSuffix(*url, "/"),
		Dataset:      *dataset,
		Mode:         load.Mode(*mode),
		Popularity:   load.Popularity(*popularity),
		ZipfS:        *zipfS,
		Rate:         *rate,
		Concurrency:  *concurrency,
		Requests:     *requests,
		Duration:     *duration,
		Stages:       stages,
		Warmup:       *warmup,
		Seed:         *seed,
		SoakInterval: *soakEvery,
		Registry:     reg,
	}

	// -manifest arms the verifying client: the manifest's merkle section
	// pins the root every miss is checked against. A manifest without
	// one (written before verified recovery) degrades to unverified
	// serving with a warning; -no-verify makes that choice explicit.
	var spec *sdf.MerkleSpec
	if *manifest != "" {
		m, err := debloat.LoadManifest(*manifest)
		if err != nil {
			log.Error("loading manifest", "path", *manifest, "err", err)
			os.Exit(2)
		}
		spec, err = m.MerkleSpec()
		if err != nil {
			log.Error("manifest merkle section rejected", "path", *manifest, "err", err)
			os.Exit(2)
		}
		switch {
		case spec == nil:
			log.Warn("manifest has no merkle section; recovery is UNVERIFIED", "path", *manifest)
		case *noVerify:
			log.Warn("chunk verification disabled by -no-verify; recovery is UNVERIFIED")
		default:
			cfg.Verify = spec
			log.Info("chunk verification armed", "root", spec.RootHex()[:12], "leaves", spec.Leaves)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -status-addr exposes the run's own observability while it drives
	// load: /statusz (with the live verify view), /metrics, /healthz.
	if *statusAddr != "" {
		ln, err := net.Listen("tcp", *statusAddr)
		if err != nil {
			log.Error("listening on -status-addr", "addr", *statusAddr, "err", err)
			os.Exit(2)
		}
		if *statusFile != "" {
			if werr := os.WriteFile(*statusFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
				log.Error("writing status addr file", "path", *statusFile, "err", werr)
				os.Exit(2)
			}
		}
		sv := status.NewServer(status.Campaign{Program: "kondo-load", Dataset: *dataset}, nil, 0, reg)
		if spec != nil {
			verifying := cfg.Verify != nil
			root := spec.RootHex()
			cfg.OnFetcher = func(f *dataserve.Fetcher) {
				sv.SetVerifySource(func() any {
					st := f.Stats()
					return map[string]any{
						"enabled":       verifying,
						"algo":          spec.Algo,
						"root":          root,
						"leaves":        spec.Leaves,
						"verify_ok":     st.VerifyOK,
						"verify_failed": st.VerifyFailed,
					}
				})
			}
		}
		hs := &http.Server{Handler: sv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		log.Info("status server listening", "addr", ln.Addr().String())
	}

	// With -trace-out every request records into tr (and stamps its
	// trace context onto the wire for the server's child spans).
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		tr.SetProcessName(obs.LocalPID, "kondo-load")
		ctx = obs.WithTrace(ctx, tr)
	}

	log.Info("kondo-load starting", "url", cfg.BaseURL, "mode", *mode,
		"popularity", *popularity, "requests", *requests, "duration", duration.String())
	res, err := load.Run(ctx, cfg)
	if err != nil {
		log.Error("load run failed", "err", err)
		os.Exit(1)
	}
	fmt.Println(res.String())

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			log.Error("writing result json", "path", *jsonOut, "err", err)
			os.Exit(1)
		}
		log.Info("result written", "path", *jsonOut)
	}

	if tr != nil {
		stitchAndWrite(log, tr, cfg.BaseURL, *traceOut)
	}
	if *dumpMetrics {
		_ = reg.WritePrometheus(os.Stdout)
	}
	if res.Fetch.VerifyFailed > 0 {
		log.Error("chunk verification FAILED: origin bytes do not match the manifest's merkle root",
			"failed", res.Fetch.VerifyFailed, "verified", res.Fetch.VerifyOK)
		os.Exit(1)
	}
	if res.SoakViolations > 0 {
		log.Error("error budget exhausted during soak",
			"violations", res.SoakViolations, "polls", res.SoakPolls)
		os.Exit(1)
	}
}

// stitchAndWrite pulls the origin's /tracez export, merges it into the
// client trace under pid 2, and writes the combined Chrome trace. A
// missing /tracez (server started without tracing) degrades to a
// single-pid trace with a warning rather than failing the run.
func stitchAndWrite(log interface {
	Info(string, ...any)
	Warn(string, ...any)
}, tr *obs.Trace, baseURL, path string) {
	resp, err := http.Get(baseURL + "/tracez")
	if err != nil {
		log.Warn("fetching /tracez", "err", err)
	} else {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Warn("origin has no trace to stitch (start kondo-serve with -trace)", "status", resp.Status)
		} else {
			var wt obs.WireTrace
			if err := json.NewDecoder(resp.Body).Decode(&wt); err != nil {
				log.Warn("decoding /tracez", "err", err)
			} else {
				tr.MergeWire(2, wt)
				if wt.Omitted > 0 || wt.Dropped > 0 {
					log.Warn("server trace truncated", "omitted", wt.Omitted, "dropped", wt.Dropped)
				}
			}
		}
	}
	if err := tr.WriteFile(path); err != nil {
		log.Warn("writing trace", "path", path, "err", err)
		return
	}
	log.Info("stitched trace written", "path", path, "events", tr.Len(), "pids", len(tr.PIDs()))
}

// parseStages decodes the -stages grammar: stages separated by commas,
// each a colon-joined list of k=v pairs. Example:
// "rate=100:dur=2s,rate=400:dur=2s" ramps an open-loop run.
func parseStages(s string) ([]load.Stage, error) {
	if s == "" {
		return nil, nil
	}
	var out []load.Stage
	for i, stanza := range strings.Split(s, ",") {
		var st load.Stage
		for _, pair := range strings.Split(stanza, ":") {
			k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("stage %d: %q is not k=v", i, pair)
			}
			switch k {
			case "rate":
				if _, err := fmt.Sscanf(v, "%g", &st.Rate); err != nil {
					return nil, fmt.Errorf("stage %d: bad rate %q", i, v)
				}
			case "conc":
				if _, err := fmt.Sscanf(v, "%d", &st.Concurrency); err != nil {
					return nil, fmt.Errorf("stage %d: bad conc %q", i, v)
				}
			case "req":
				if _, err := fmt.Sscanf(v, "%d", &st.Requests); err != nil {
					return nil, fmt.Errorf("stage %d: bad req %q", i, v)
				}
			case "dur":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("stage %d: bad dur %q: %v", i, v, err)
				}
				st.Duration = d
			default:
				return nil, fmt.Errorf("stage %d: unknown key %q (want rate, conc, req, dur)", i, k)
			}
		}
		out = append(out, st)
	}
	return out, nil
}
