// Command kondo-serve is the recovery origin daemon of paper §VI: it
// serves the original (un-debloated) data file to debloated-container
// runtimes, chunk- and hyperslab-granular, so data-missing exceptions
// resolve over single round trips.
//
//	kondo-serve -origin mnist.sdf                    # serve on :8080
//	kondo-serve -origin mnist.sdf -addr 127.0.0.1:9090 -concurrency 64
//
// Endpoints: /meta, /chunk, /slab (binary value frames), /element and
// /datasets (internal/remote JSON compatibility), /metrics (request
// counts, bytes served, latency histogram), /healthz. SIGINT/SIGTERM
// drain in-flight requests, print the metrics summary, and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataserve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		origin      = flag.String("origin", "", "path to the origin (un-debloated) sdf file")
		concurrency = flag.Int("concurrency", 0, "max concurrent requests (0 = unlimited)")
		readTO      = flag.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()
	if *origin == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-serve -origin <file.sdf> [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv, err := dataserve.NewServer(*origin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-serve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      dataserve.LimitConcurrency(srv.Handler(), *concurrency),
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("kondo-serve: serving %s on %s\n", *origin, *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "kondo-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("\nkondo-serve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "kondo-serve: shutdown:", err)
		}
	}
	fmt.Println(srv.Metrics().String())
}
