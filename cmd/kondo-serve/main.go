// Command kondo-serve is the recovery origin daemon of paper §VI: it
// serves the original (un-debloated) data file to debloated-container
// runtimes, chunk- and hyperslab-granular, so data-missing exceptions
// resolve over single round trips.
//
//	kondo-serve -origin mnist.sdf                    # serve on :8080
//	kondo-serve -origin mnist.sdf -addr 127.0.0.1:9090 -concurrency 64
//	kondo-serve -origin mnist.sdf -addr 127.0.0.1:0 -addr-file serve.addr
//	kondo-serve -origin mnist.sdf -slo-endpoints chunk,slab -slo-latency 50ms
//
// Endpoints: /meta, /chunk, /slab (binary value frames), /element and
// /datasets (internal/remote JSON compatibility), /metrics (request
// counts, bytes served, latency histogram; ?format=prom for Prometheus
// text exposition), /healthz (503 while draining), /buildz, /tracez
// (with -trace-out or -trace: the live trace as an obs.WireTrace for
// cross-process stitching), /sloz (with -slo-endpoints: the live SLO
// report). With -debug-addr a second mux exposes /debug/pprof/* and
// /debug/vars for runtime profiling. SIGINT/SIGTERM flip /healthz to
// 503, wait -drain-delay for balancers to notice, drain in-flight
// requests, print the metrics summary, and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"expvar"

	"repro/internal/dataserve"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use port 0 with -addr-file for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "optional: write the resolved listen address to this file (for scripts using port 0)")
		origin      = flag.String("origin", "", "path to the origin (un-debloated) sdf file")
		concurrency = flag.Int("concurrency", 0, "max concurrent requests (0 = unlimited)")
		readTO      = flag.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		drainDelay  = flag.Duration("drain-delay", 0, "lame-duck window between flipping /healthz to 503 and starting shutdown")

		sloEndpoints = flag.String("slo-endpoints", "", "comma-separated endpoints to put under SLO (e.g. chunk,slab); enables /sloz and kondo_slo_* metrics")
		sloLatency   = flag.Duration("slo-latency", 50*time.Millisecond, "per-request latency bound of the SLO objectives")
		sloTarget    = flag.Float64("slo-target", 0.99, "good-event fraction the SLO objectives require (0,1)")
		sloWindow    = flag.Duration("slo-window", 30*time.Second, "SLO sliding-window length")

		debugAddr = flag.String("debug-addr", "", "optional: listen address for the debug mux (/debug/pprof/*, /debug/vars); keep it loopback-only")
		traceFlag = flag.Bool("trace", false, "record request spans and expose them at /tracez (implied by -trace-out)")
		traceOut  = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of served requests at shutdown")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if *origin == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-serve -origin <file.sdf> [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := obs.SetupCLILogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-serve:", err)
		os.Exit(2)
	}

	srv, err := dataserve.NewServer(*origin)
	if err != nil {
		log.Error("opening origin", "err", err)
		os.Exit(1)
	}
	defer srv.Close()

	bi := obs.Build()
	log.Info("kondo-serve starting",
		"origin", *origin, "addr", *addr,
		"go_version", bi.GoVersion, "revision", bi.Revision, "modified", bi.Modified)

	// Request tracing: the server stamps serve.<endpoint> spans (child
	// hops when the caller propagated a trace context) into tr, exposed
	// live at /tracez for stitching and optionally dumped at shutdown.
	var tr *obs.Trace
	if *traceFlag || *traceOut != "" {
		tr = obs.NewTrace()
		srv.EnableTracing(tr, "kondo-serve")
		obs.RegisterTraceMetrics(srv.Registry(), tr)
	}

	// SLO engine: one objective per listed endpoint, all sharing the
	// configured bound/target, ticked in the background for the life of
	// the process, exposed at /sloz and as kondo_slo_* instruments.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *sloEndpoints != "" {
		var objectives []obs.SLOObjective
		for _, ep := range strings.Split(*sloEndpoints, ",") {
			ep = strings.TrimSpace(ep)
			if ep == "" {
				continue
			}
			objectives = append(objectives, obs.SLOObjective{
				Name:         ep,
				Quantile:     0.99,
				LatencyBound: *sloLatency,
				Target:       *sloTarget,
				Source:       srv.Recorder().SLOSource(ep),
			})
		}
		slo := obs.NewSLO(*sloWindow, objectives...)
		slo.Register(srv.Registry())
		srv.SetSLO(slo)
		go slo.Run(ctx, 0)
		log.Info("slo engine armed",
			"endpoints", *sloEndpoints, "latency_bound", sloLatency.String(),
			"target", *sloTarget, "window", sloWindow.String())
	}

	httpSrv := &http.Server{
		Handler:      dataserve.LimitConcurrency(srv.Handler(), *concurrency),
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
	}

	// The debug mux is opt-in and separate from the data plane, so
	// profiling endpoints are never reachable through the serving
	// address.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			log.Info("debug mux listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug mux failed", "err", err)
			}
		}()
	}

	// Listen explicitly (rather than ListenAndServe) so port 0 resolves
	// before -addr-file is written — scripts poll the file, then dial.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if werr := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			log.Error("writing addr file", "path", *addrFile, "err", werr)
			os.Exit(1)
		}
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("serving", "origin", *origin, "addr", ln.Addr().String())
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		// Drain: flip /healthz to 503 first so load balancers stop
		// routing, give them the lame-duck window, then shut down.
		srv.SetDraining(true)
		log.Info("draining", "delay", drainDelay.String(), "grace", grace.String())
		if *drainDelay > 0 {
			time.Sleep(*drainDelay)
		}
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	if tr != nil && *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			log.Warn("writing trace", "err", err)
		} else {
			log.Info("trace written", "path", *traceOut, "events", tr.Len())
		}
	}
	fmt.Println(srv.Metrics().String())
}
