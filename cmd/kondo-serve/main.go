// Command kondo-serve is the recovery origin daemon of paper §VI: it
// serves the original (un-debloated) data file to debloated-container
// runtimes, chunk- and hyperslab-granular, so data-missing exceptions
// resolve over single round trips.
//
//	kondo-serve -origin mnist.sdf                    # serve on :8080
//	kondo-serve -origin mnist.sdf -addr 127.0.0.1:9090 -concurrency 64
//	kondo-serve -origin mnist.sdf -debug-addr 127.0.0.1:6060
//
// Endpoints: /meta, /chunk, /slab (binary value frames), /element and
// /datasets (internal/remote JSON compatibility), /metrics (request
// counts, bytes served, latency histogram; ?format=prom for Prometheus
// text exposition), /healthz, /buildz. With -debug-addr a second mux
// exposes /debug/pprof/* and /debug/vars for runtime profiling.
// SIGINT/SIGTERM drain in-flight requests, print the metrics summary,
// and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"expvar"

	"repro/internal/dataserve"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		origin      = flag.String("origin", "", "path to the origin (un-debloated) sdf file")
		concurrency = flag.Int("concurrency", 0, "max concurrent requests (0 = unlimited)")
		readTO      = flag.Duration("read-timeout", 10*time.Second, "per-request read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")

		debugAddr = flag.String("debug-addr", "", "optional: listen address for the debug mux (/debug/pprof/*, /debug/vars); keep it loopback-only")
		traceOut  = flag.String("trace-out", "", "optional: write a Chrome trace-event JSON of served requests at shutdown")
		logLevel  = flag.String("log-level", "info", "diagnostic log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	if *origin == "" {
		fmt.Fprintln(os.Stderr, "usage: kondo-serve -origin <file.sdf> [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := obs.SetupCLILogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kondo-serve:", err)
		os.Exit(2)
	}

	srv, err := dataserve.NewServer(*origin)
	if err != nil {
		log.Error("opening origin", "err", err)
		os.Exit(1)
	}
	defer srv.Close()

	bi := obs.Build()
	log.Info("kondo-serve starting",
		"origin", *origin, "addr", *addr,
		"go_version", bi.GoVersion, "revision", bi.Revision, "modified", bi.Modified)

	var tr *obs.Trace
	handler := srv.Handler()
	if *traceOut != "" {
		tr = obs.NewTrace()
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		})
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      dataserve.LimitConcurrency(handler, *concurrency),
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
	}

	// The debug mux is opt-in and separate from the data plane, so
	// profiling endpoints are never reachable through the serving
	// address.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			log.Info("debug mux listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug mux failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("serving", "origin", *origin, "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Info("shutting down", "grace", grace.String())
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			log.Warn("writing trace", "err", err)
		} else {
			log.Info("trace written", "path", *traceOut, "events", tr.Len())
		}
	}
	fmt.Println(srv.Metrics().String())
}
