package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionLabelEscaping pins the three characters the text
// format requires escaping in label values: backslash, double quote,
// and newline. A scraper must see one well-formed line per series.
func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("kondo_test_total", L("path", `C:\data\file`)).Inc()
	r.Counter("kondo_test_total", L("path", `say "hi"`)).Add(2)
	r.Counter("kondo_test_total", L("path", "line1\nline2")).Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`kondo_test_total{path="C:\\data\\file"} 1` + "\n",
		`kondo_test_total{path="say \"hi\""} 2` + "\n",
		`kondo_test_total{path="line1\nline2"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The literal newline must not survive into the output: exactly
	// one # TYPE line plus one line per series, nothing split apart.
	if lines := strings.Split(strings.TrimRight(out, "\n"), "\n"); len(lines) != 4 {
		t.Errorf("expected 4 exposition lines (TYPE + 3 series), got %d:\n%s", len(lines), out)
	}
}

// TestExpositionHistogramBuckets pins bucket semantics: bounds are
// sorted at registration even when given out of order, bucket counts
// are cumulative, the +Inf bucket equals _count, and exact-boundary
// observations land in their own bucket (v <= bound).
func TestExpositionHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kondo_test_seconds", []float64{1, 0.01, 0.1}) // unsorted on purpose
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE kondo_test_seconds histogram\n",
		`kondo_test_seconds_bucket{le="0.01"} 2` + "\n", // 0.005 and the exact 0.01
		`kondo_test_seconds_bucket{le="0.1"} 3` + "\n",
		`kondo_test_seconds_bucket{le="1"} 4` + "\n",
		`kondo_test_seconds_bucket{le="+Inf"} 6` + "\n",
		"kondo_test_seconds_count 6\n",
	}
	last := -1
	for _, want := range wants {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
		if i < last {
			t.Fatalf("exposition out of order at %q:\n%s", want, out)
		}
		last = i
	}
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, "kondo_test_seconds_sum "); ok {
			var sum float64
			if _, err := fmt.Sscanf(v, "%g", &sum); err != nil || math.Abs(sum-5.565) > 1e-9 {
				t.Errorf("histogram sum %q, want ~5.565 (err %v)", v, err)
			}
			return
		}
	}
	t.Fatalf("exposition missing _sum series:\n%s", out)
}

// TestExpositionInfGaugeRendering: ±Inf gauge values render as the
// format's +Inf/-Inf tokens, not Go's "+Inf"/"NaN" accidents of %g.
func TestExpositionInfGaugeRendering(t *testing.T) {
	r := NewRegistry()
	r.Gauge("kondo_test_hi").Set(math.Inf(1))
	r.Gauge("kondo_test_lo").Set(math.Inf(-1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "kondo_test_hi +Inf\n") || !strings.Contains(out, "kondo_test_lo -Inf\n") {
		t.Errorf("Inf gauges render wrong:\n%s", out)
	}
}

// TestExpositionConcurrentWithRegistration races WritePrometheus
// against ongoing registration and updates; run under -race this pins
// that a scrape during campaign startup is safe, and that every
// exposition observed is internally well-formed.
func TestExpositionConcurrentWithRegistration(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("kondo_test_total", "Counter registered under concurrency.")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				r.Counter("kondo_test_total", L("worker", fmt.Sprint(w)), L("i", fmt.Sprint(i%8))).Inc()
				r.Gauge("kondo_test_depth", L("worker", fmt.Sprint(w))).Set(float64(i))
				r.Histogram("kondo_test_seconds", []float64{0.1, 1}, L("worker", fmt.Sprint(w))).Observe(0.05)
				r.SetHelp("kondo_test_total", "Counter registered under concurrency.")
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			continue // scrape raced ahead of the first registration
		}
		for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
			if line == "" || (!strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2) {
				t.Fatalf("malformed line under concurrency: %q", line)
			}
		}
	}
	close(stop)
	wg.Wait()

	// A final scrape must be well-formed and include the help text.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP kondo_test_total Counter registered under concurrency.") {
		t.Errorf("help text lost under concurrent registration:\n%s", b.String())
	}
}

// TestExpositionNilRegistry: a nil registry writes nothing and does
// not error — scrape handlers need no nil guard.
func TestExpositionNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}
