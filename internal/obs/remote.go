package obs

// Cross-process trace federation: a worker exports its (sub-)trace as
// compact WireEvents relative to its own epoch; the coordinator
// re-bases them onto its epoch with an estimated clock offset and
// records them under a per-process pid, so one Chrome trace shows the
// whole fleet (DESIGN.md §13).

import (
	"sort"
	"time"
)

// WireEvent is the compact serializable form of one trace event, for
// shipping a sub-trace between processes (a worker piggybacking its
// lease evaluation spans on a result message). Timestamps are
// nanoseconds relative to the origin trace's epoch; the receiver
// re-bases them via MergeRemote.
type WireEvent struct {
	Name string `json:"n"`
	// Ph is the event phase: "" or "X" for a complete span, "i" for
	// an instant.
	Ph string `json:"ph,omitempty"`
	// TS is the event start in nanoseconds since the origin trace's
	// epoch.
	TS int64 `json:"ts"`
	// Dur is the span duration in nanoseconds (complete spans only).
	Dur int64 `json:"d,omitempty"`
	// TID is the origin's display lane.
	TID int64 `json:"t,omitempty"`
	// Args carries the event's annotations.
	Args map[string]any `json:"a,omitempty"`
}

// ExportEvents snapshots the trace's retained events in wire form, in
// recorded order. max bounds the export (<= 0 means all retained
// events); the second return value is how many retained events were
// omitted by the bound — callers surface it so a truncated remote
// sub-trace is visible, not silent.
func (t *Trace) ExportEvents(max int) ([]WireEvent, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	events := append([]event(nil), t.events...)
	epoch := t.epoch
	t.mu.Unlock()

	omitted := 0
	if max > 0 && len(events) > max {
		omitted = len(events) - max
		events = events[:max]
	}
	out := make([]WireEvent, 0, len(events))
	for _, e := range events {
		we := WireEvent{
			Name: e.name,
			TS:   int64(e.start.Sub(epoch)),
			TID:  e.tid,
		}
		if e.ph == 'i' {
			we.Ph = "i"
		} else {
			we.Dur = int64(e.dur)
		}
		if len(e.args) > 0 {
			we.Args = make(map[string]any, len(e.args))
			for _, a := range e.args {
				we.Args[a.Key] = a.Value
			}
		}
		out = append(out, we)
	}
	return out, omitted
}

// MergeRemote splices a remote process's exported events into t under
// the given pid, labeling the lane name (empty keeps any existing
// label). clockOffset re-bases the remote timeline onto t's epoch: a
// remote event at TS nanoseconds past the remote epoch is recorded at
// t.epoch + TS + clockOffset, so the caller's offset estimate is
// "remote epoch-relative clock → local epoch-relative clock" (see
// the NTP-style estimate in internal/orchestra). Events with unknown
// phases are skipped; the trace limit applies as usual, counting
// overflow in Dropped. Nil-safe.
func (t *Trace) MergeRemote(pid int, name string, clockOffset time.Duration, events []WireEvent) {
	if t == nil {
		return
	}
	if name != "" {
		t.SetProcessName(pid, name)
	}
	for _, we := range events {
		e := event{
			name:  we.Name,
			start: t.epoch.Add(time.Duration(we.TS) + clockOffset),
			pid:   pid,
			tid:   we.TID,
		}
		switch we.Ph {
		case "", "X":
			e.ph = 'X'
			e.dur = time.Duration(we.Dur)
		case "i":
			e.ph = 'i'
		default:
			continue // a newer peer's phase we don't know; drop it, not the merge
		}
		if len(we.Args) > 0 {
			keys := make([]string, 0, len(we.Args))
			for k := range we.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			e.args = make([]Arg, 0, len(keys))
			for _, k := range keys {
				e.args = append(e.args, Arg{Key: k, Value: we.Args[k]})
			}
		}
		t.add(e)
	}
}

// ImportEvents records exported events onto t's own process lane with
// no clock adjustment — the same-process round-trip of ExportEvents.
func (t *Trace) ImportEvents(events []WireEvent) {
	t.MergeRemote(LocalPID, "", 0, events)
}

// WireTrace is a self-describing exported trace: the events plus the
// epoch they are relative to and the process's display name, so a peer
// can merge them without out-of-band clock agreement. It is the JSON
// body of the recovery plane's /tracez endpoint; all fields are
// additive, so old decoders that only know Events keep working.
type WireTrace struct {
	// ProcessName labels the exporting process's lane in the merged
	// trace (e.g. "kondo-serve").
	ProcessName string `json:"process_name,omitempty"`
	// EpochUnixNS is the exporter's trace epoch as a Unix timestamp in
	// nanoseconds; event TS values are relative to it.
	EpochUnixNS int64 `json:"epoch_unix_ns"`
	// Events are the retained events in recorded order.
	Events []WireEvent `json:"events"`
	// Omitted counts retained events cut by the export bound; Dropped
	// counts events the exporter discarded over its buffer limit.
	Omitted int   `json:"omitted,omitempty"`
	Dropped int64 `json:"dropped,omitempty"`
}

// ExportWire snapshots the trace as a self-describing WireTrace named
// name; max bounds the event count as in ExportEvents. Nil-safe
// (returns a zero WireTrace).
func (t *Trace) ExportWire(name string, max int) WireTrace {
	if t == nil {
		return WireTrace{ProcessName: name}
	}
	events, omitted := t.ExportEvents(max)
	return WireTrace{
		ProcessName: name,
		EpochUnixNS: t.Epoch().UnixNano(),
		Events:      events,
		Omitted:     omitted,
		Dropped:     t.Dropped(),
	}
}

// MergeWire splices a self-describing exported trace into t under the
// given pid, deriving the clock offset from the two epochs' wall
// clocks — exact on one machine (the load-demo loopback case), and
// within wall-clock skew across machines (peers needing better use the
// orchestra's min-RTT estimate with MergeRemote directly). Nil-safe.
func (t *Trace) MergeWire(pid int, wt WireTrace) {
	if t == nil {
		return
	}
	offset := time.Unix(0, wt.EpochUnixNS).Sub(t.Epoch())
	t.MergeRemote(pid, wt.ProcessName, offset, wt.Events)
}
