package obs

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kondo_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("kondo_test_total") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("kondo_test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2", got)
	}

	r.GaugeFunc("kondo_test_fn", func() float64 { return 42 })
	if got := r.Gauge("kondo_test_fn").Value(); got != 42 {
		t.Errorf("gauge func = %v, want 42", got)
	}

	// Label sets are distinct series; label order does not matter.
	a := r.Counter("kondo_labeled_total", L("ep", "chunk"), L("zone", "a"))
	b := r.Counter("kondo_labeled_total", L("zone", "a"), L("ep", "chunk"))
	if a != b {
		t.Error("label order created a distinct series")
	}
	other := r.Counter("kondo_labeled_total", L("ep", "slab"), L("zone", "a"))
	if other == a {
		t.Error("distinct label values shared a series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kondo_test_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	// 0.05 and 0.1 land in <=0.1 (boundary is inclusive), 0.5 in <=1,
	// 2 in <=10, 100 overflows.
	want := []int64{2, 1, 1, 1}
	got := h.BucketCounts()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("buckets = %v, want %v", got, want)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if s := h.Sum(); s < 102.64 || s > 102.66 {
		t.Errorf("sum = %v, want ~102.65", s)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kondo_mismatch")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("kondo_mismatch")
}

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("z", []float64{1})
	h.Observe(2)
	r.GaugeFunc("f", func() float64 { return 1 })
	r.SetHelp("x", "ignored")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments accumulated state")
	}
}

// TestPrometheusExposition validates the text format: headers,
// cumulative buckets, sum/count, sorted deterministic output.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("kondo_serve_requests_total", "Requests per endpoint.")
	r.Counter("kondo_serve_requests_total", L("endpoint", "chunk")).Add(3)
	r.Counter("kondo_serve_requests_total", L("endpoint", "slab")).Add(1)
	r.Gauge("kondo_cache_bytes").Set(1024)
	h := r.Histogram("kondo_serve_request_seconds", []float64{0.001, 0.1}, L("endpoint", "chunk"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP kondo_serve_requests_total Requests per endpoint.\n",
		"# TYPE kondo_serve_requests_total counter\n",
		`kondo_serve_requests_total{endpoint="chunk"} 3` + "\n",
		`kondo_serve_requests_total{endpoint="slab"} 1` + "\n",
		"# TYPE kondo_cache_bytes gauge\n",
		"kondo_cache_bytes 1024\n",
		"# TYPE kondo_serve_request_seconds histogram\n",
		`kondo_serve_request_seconds_bucket{endpoint="chunk",le="0.001"} 1` + "\n",
		`kondo_serve_request_seconds_bucket{endpoint="chunk",le="0.1"} 2` + "\n",
		`kondo_serve_request_seconds_bucket{endpoint="chunk",le="+Inf"} 3` + "\n",
		`kondo_serve_request_seconds_count{endpoint="chunk"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if err := validatePromText(out); err != nil {
		t.Errorf("exposition does not parse: %v\n%s", err, out)
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

// validatePromText is a minimal Prometheus text-format parser: every
// line is a comment, blank, or `name{labels} value`.
func validatePromText(s string) error {
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("line %q: want 2 fields", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %q: unterminated labels", line)
			}
			name = name[:i]
		}
		for _, ch := range name {
			if !(ch == '_' || ch == ':' ||
				(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')) {
				return fmt.Errorf("line %q: bad metric name char %q", line, ch)
			}
		}
		v := fields[1]
		if v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := parseFloat(v); err != nil {
				return fmt.Errorf("line %q: bad value: %v", line, err)
			}
		}
	}
	return sc.Err()
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

// TestRegistryConcurrent hammers get-or-create, increments, histogram
// observes, and exposition from many goroutines; run under -race this
// is the registry's concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := fmt.Sprintf("ep%d", w%2)
			for i := 0; i < perWorker; i++ {
				r.Counter("kondo_conc_total", L("endpoint", ep)).Inc()
				r.Gauge("kondo_conc_gauge").Set(float64(i))
				r.Histogram("kondo_conc_seconds", []float64{0.01, 0.1, 1}).Observe(float64(i) / perWorker)
				if i%50 == 0 {
					// Exposition concurrent with observes must not race.
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	total := r.Counter("kondo_conc_total", L("endpoint", "ep0")).Value() +
		r.Counter("kondo_conc_total", L("endpoint", "ep1")).Value()
	if total != workers*perWorker {
		t.Errorf("counter total = %d, want %d", total, workers*perWorker)
	}
	if got := r.Histogram("kondo_conc_seconds", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "kondo_build_info{") || !strings.Contains(out, "go_version=\"go") {
		t.Errorf("build info gauge missing from exposition:\n%s", out)
	}
	if bi := Build(); bi.GoVersion == "" {
		t.Error("Build() lacks a Go version")
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
