package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestDefaultLoggerDiscards(t *testing.T) {
	// The default must be installed and must drop everything without
	// erroring — library code logs through it unconditionally.
	l := Log()
	if l == nil {
		t.Fatal("no default logger")
	}
	l.Debug("dropped", "k", 1)
	l.Error("also dropped")
	if l.Enabled(nil, slog.LevelError) {
		t.Error("default logger claims to be enabled")
	}
}

func TestSetLoggerAndRestore(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	SetLogger(l)
	defer SetLogger(nil) // restore the discarding default
	Log().Info("hello", "n", 7)
	Log().Debug("filtered")
	out := sb.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "n=7") {
		t.Errorf("text log = %q", out)
	}
	if strings.Contains(out, "filtered") {
		t.Error("debug line passed an info-level logger")
	}

	SetLogger(nil)
	if Log().Enabled(nil, slog.LevelError) {
		t.Error("SetLogger(nil) did not restore the discard default")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("structured", "elems", 3)
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("JSON log line does not parse: %v (%q)", err, sb.String())
	}
	if rec["msg"] != "structured" || rec["elems"] != float64(3) {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&strings.Builder{}, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := ParseLevel("warning"); err != nil {
		t.Error("warning alias rejected")
	}
}
