package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestExportWireMergeWireStitches(t *testing.T) {
	base := time.Now()

	// "Server" trace: its epoch lags the client's by 5ms of wall clock.
	server := NewTraceAt(base.Add(5 * time.Millisecond))
	sctx := WithTrace(context.Background(), server)
	sp := Start(sctx, "serve.chunk", A("chunk", 7))
	sp.End()
	server.RecordInstant("serve.evict", 0)

	wt := server.ExportWire("kondo-serve", 0)
	if wt.ProcessName != "kondo-serve" {
		t.Fatalf("ProcessName = %q", wt.ProcessName)
	}
	if wt.EpochUnixNS != server.Epoch().UnixNano() {
		t.Fatalf("EpochUnixNS = %d want %d", wt.EpochUnixNS, server.Epoch().UnixNano())
	}
	if len(wt.Events) != 2 {
		t.Fatalf("exported %d events, want 2", len(wt.Events))
	}
	// The server epoch sits ~5ms in the future of the span's actual
	// start, so the exported epoch-relative TS is negative — exactly
	// what MergeWire's epoch-delta offset must undo.
	if wt.Events[0].TS > -4*int64(time.Millisecond) {
		t.Fatalf("exported TS = %dns, want <= -4ms (epoch in the future)", wt.Events[0].TS)
	}

	// Round-trip through JSON as the /tracez endpoint would.
	raw, err := json.Marshal(wt)
	if err != nil {
		t.Fatal(err)
	}
	var back WireTrace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	// "Client" trace merges it under pid 2.
	client := NewTraceAt(base)
	cctx := WithTrace(context.Background(), client)
	Start(cctx, "dataserve.fetch").End()
	client.MergeWire(2, back)

	if got := client.Len(); got != 3 {
		t.Fatalf("merged trace has %d events, want 3", got)
	}
	pids := client.PIDs()
	if len(pids) != 2 || pids[0] != LocalPID || pids[1] != 2 {
		t.Fatalf("PIDs = %v, want [1 2]", pids)
	}

	// The merged export re-bases the remote events by the epoch delta
	// and labels the lane.
	var buf bytes.Buffer
	if err := client.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	foundName, foundServe := false, false
	for _, e := range out.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.PID == 2 {
			foundName = true
			if e.Args["name"] != "kondo-serve" {
				t.Fatalf("lane label = %v", e.Args["name"])
			}
		}
		if e.Name == "serve.chunk" {
			foundServe = true
			if e.PID != 2 {
				t.Fatalf("serve.chunk on pid %d, want 2", e.PID)
			}
			// MergeWire's epoch-delta offset cancels the negative raw TS:
			// the merged timestamp is the span's true wall time relative
			// to the client epoch — near zero, not -5ms.
			if e.TS < 0 || e.TS > 4000 {
				t.Fatalf("serve.chunk ts = %vus, want re-based into [0, 4ms)", e.TS)
			}
		}
	}
	if !foundName || !foundServe {
		t.Fatalf("missing merged lane (name=%v serve=%v)", foundName, foundServe)
	}
}

func TestExportWireNilAndBounds(t *testing.T) {
	var nilTrace *Trace
	wt := nilTrace.ExportWire("x", 0)
	if wt.ProcessName != "x" || len(wt.Events) != 0 {
		t.Fatalf("nil export: %+v", wt)
	}
	nilTrace.MergeWire(2, wt) // must not panic

	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		Start(ctx, "s").End()
	}
	wt = tr.ExportWire("svc", 3)
	if len(wt.Events) != 3 || wt.Omitted != 2 {
		t.Fatalf("bounded export: events=%d omitted=%d", len(wt.Events), wt.Omitted)
	}
}
