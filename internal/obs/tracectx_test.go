package obs

import (
	"context"
	"net/http"
	"testing"
)

func TestTraceContextValidAndChild(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Fatal("zero TraceContext reported valid")
	}
	root := NewTraceContext()
	if !root.Valid() {
		t.Fatalf("NewTraceContext invalid: %+v", root)
	}
	if len(root.TraceID) != 16 || len(root.SpanID) != 16 {
		t.Fatalf("want 16-hex ids, got trace=%q span=%q", root.TraceID, root.SpanID)
	}
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("Child changed trace id: %q -> %q", root.TraceID, child.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatalf("Child kept span id %q", root.SpanID)
	}
	// Child of an invalid context mints a root rather than propagating
	// emptiness.
	orphan := zero.Child()
	if !orphan.Valid() {
		t.Fatalf("Child of zero context invalid: %+v", orphan)
	}
}

func TestTraceContextRoundTripContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceContextOf(ctx); ok {
		t.Fatal("empty context reported a trace context")
	}
	tc := NewTraceContext()
	ctx = WithTraceContext(ctx, tc)
	got, ok := TraceContextOf(ctx)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v want %+v", got, ok, tc)
	}
	// Invalid contexts are not stored.
	ctx2 := WithTraceContext(context.Background(), TraceContext{TraceID: "only"})
	if _, ok := TraceContextOf(ctx2); ok {
		t.Fatal("invalid context was stored")
	}
}

func TestEnsureTraceContext(t *testing.T) {
	// Without a Trace in ctx, nothing is minted: the tracing-off path
	// stays free.
	ctx, tc, ok := EnsureTraceContext(context.Background())
	if ok || tc.Valid() {
		t.Fatalf("minted %+v without a trace", tc)
	}
	if _, ok := TraceContextOf(ctx); ok {
		t.Fatal("context gained a trace context without a trace")
	}

	// With a Trace, a root is minted and attached.
	traced := WithTrace(context.Background(), NewTrace())
	ctx, tc, ok = EnsureTraceContext(traced)
	if !ok || !tc.Valid() {
		t.Fatalf("no root minted under a trace: %+v ok=%v", tc, ok)
	}
	if got, ok := TraceContextOf(ctx); !ok || got != tc {
		t.Fatalf("minted context not attached: %+v ok=%v", got, ok)
	}

	// An existing context is kept verbatim.
	ctx2, tc2, ok := EnsureTraceContext(ctx)
	if !ok || tc2 != tc || ctx2 != ctx {
		t.Fatalf("existing context not kept: %+v ok=%v", tc2, ok)
	}
}

func TestTraceContextInjectExtract(t *testing.T) {
	h := make(http.Header)
	if _, ok := ExtractTraceContext(h); ok {
		t.Fatal("extracted a context from empty headers")
	}
	tc := NewTraceContext()
	tc.Inject(h)
	got, ok := ExtractTraceContext(h)
	if !ok || got != tc {
		t.Fatalf("header round trip: got %+v ok=%v want %+v", got, ok, tc)
	}
	// Invalid contexts stamp nothing.
	h2 := make(http.Header)
	TraceContext{TraceID: "half"}.Inject(h2)
	if len(h2) != 0 {
		t.Fatalf("invalid context stamped headers: %v", h2)
	}
	// One header alone is not a context (a proxy that strips one).
	h3 := make(http.Header)
	h3.Set(TraceIDHeader, "abc")
	if _, ok := ExtractTraceContext(h3); ok {
		t.Fatal("extracted a context from a lone trace id")
	}
}

func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	tc := NewTraceContext()
	for i := 0; i < 1000; i++ {
		tc = tc.Child()
		if seen[tc.SpanID] {
			t.Fatalf("span id %q repeated at %d", tc.SpanID, i)
		}
		seen[tc.SpanID] = true
	}
}
