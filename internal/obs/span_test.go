package obs

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeChromeTrace unmarshals exported JSON into the generic shape a
// viewer would read.
func decodeChromeTrace(t *testing.T, tr *Trace) map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, sb.String())
	}
	return out
}

func traceEvents(t *testing.T, out map[string]any) []map[string]any {
	t.Helper()
	raw, ok := out["traceEvents"].([]any)
	if !ok {
		t.Fatalf("no traceEvents array in %v", out)
	}
	evs := make([]map[string]any, len(raw))
	for i, e := range raw {
		evs[i], ok = e.(map[string]any)
		if !ok {
			t.Fatalf("event %d is not an object: %v", i, e)
		}
	}
	return evs
}

func TestDisabledSpanIsNil(t *testing.T) {
	ctx := context.Background()
	sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("Start without a trace returned a non-nil span")
	}
	if sp.Enabled() {
		t.Error("nil span reports enabled")
	}
	// All methods must be safe on nil.
	sp.Arg("k", 1).SetTID(3).End()
	Instant(ctx, "y")
}

func TestDisabledSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := Start(ctx, "fuzz.round")
		sp.Arg("k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %v times per op, want 0", allocs)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if TraceOf(ctx) != tr {
		t.Fatal("TraceOf lost the trace")
	}

	sp := Start(ctx, "kondo.fuzz", A("seed", 1))
	time.Sleep(2 * time.Millisecond)
	sp.Arg("evals", 42).End()
	Start(ctx, "fuzz.worker").SetTID(3).End()
	Instant(ctx, "fuzz.restart")

	if tr.Len() != 3 {
		t.Fatalf("trace has %d events, want 3", tr.Len())
	}
	evs := traceEvents(t, decodeChromeTrace(t, tr))
	if len(evs) != 3 {
		t.Fatalf("exported %d events, want 3", len(evs))
	}
	// Events are sorted by start time; the first is the fuzz span.
	e := evs[0]
	if e["name"] != "kondo.fuzz" || e["ph"] != "X" || e["cat"] != "kondo" {
		t.Errorf("span event = %v", e)
	}
	if dur, ok := e["dur"].(float64); !ok || dur < 1000 { // ≥1ms in µs
		t.Errorf("span dur = %v, want >= 1000µs", e["dur"])
	}
	args, ok := e["args"].(map[string]any)
	if !ok || args["seed"] != float64(1) || args["evals"] != float64(42) {
		t.Errorf("span args = %v", e["args"])
	}
	if tid, ok := evs[1]["tid"].(float64); !ok || tid != 3 {
		t.Errorf("worker tid = %v, want 3", evs[1]["tid"])
	}
	inst := evs[2]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Errorf("instant event = %v", inst)
	}
	if _, hasDur := inst["dur"]; hasDur {
		t.Error("instant event carries a dur")
	}
}

// TestTraceConcurrentEmission emits spans from many goroutines and
// verifies the export is well-formed — the tracing concurrency
// contract under -race.
func TestTraceConcurrentEmission(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := Start(ctx, "fuzz.worker").SetTID(w+1).Arg("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != workers*perWorker {
		t.Fatalf("trace has %d events, want %d", tr.Len(), workers*perWorker)
	}
	evs := traceEvents(t, decodeChromeTrace(t, tr))
	for _, e := range evs {
		if e["name"] != "fuzz.worker" || e["ph"] != "X" {
			t.Fatalf("malformed event %v", e)
		}
		if _, ok := e["dur"].(float64); !ok {
			t.Fatalf("span without dur: %v", e)
		}
	}
}

func TestTraceLimit(t *testing.T) {
	tr := NewTrace()
	tr.SetLimit(3)
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 10; i++ {
		Start(ctx, "x").End()
	}
	if tr.Len() != 3 {
		t.Errorf("retained %d events, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", tr.Dropped())
	}
	out := decodeChromeTrace(t, tr)
	meta, ok := out["metadata"].(map[string]any)
	if !ok || meta["dropped_events"] != float64(7) {
		t.Errorf("metadata = %v, want dropped_events 7", out["metadata"])
	}
}

func TestWriteFile(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	Start(ctx, "a.b").End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("written trace does not parse: %v", err)
	}
}

func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(ctx, "x")
		sp.End()
	}
}

func BenchmarkStartEnabled(b *testing.B) {
	tr := NewTrace()
	tr.SetLimit(1024) // bound memory; drops still exercise the path
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(ctx, "x")
		sp.End()
	}
}
