package obs

// SLO engine for the serving plane: sliding-window latency quantiles
// (p50/p95/p99/p999) estimated from the existing cumulative latency
// histograms, per-objective latency/error targets, and error-budget
// burn accounting. The engine never touches the request hot path — it
// snapshots cumulative instrument values on a tick, and windowed
// deltas between snapshots yield the recent distribution (DESIGN.md
// §14). Exposed as kondo_slo_* instruments and the /sloz JSON body.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// SLOSource provides the cumulative counters one objective is
// evaluated over. Requests/Errors may be nil (treated as zero); the
// latency histogram is required.
type SLOSource struct {
	// Requests returns the cumulative request count. When nil, the
	// histogram's observation count is used.
	Requests func() int64
	// Errors returns the cumulative error count (may be nil).
	Errors func() int64
	// Latency is the cumulative request-latency histogram in seconds.
	Latency *Histogram
}

// SLOObjective is one serving objective: "Target fraction of Name's
// requests complete within LatencyBound and without error".
type SLOObjective struct {
	// Name identifies the objective (by convention the endpoint name).
	Name string
	// Quantile is the headline quantile exported for dashboards (e.g.
	// 0.99); it does not affect budget accounting.
	Quantile float64
	// LatencyBound is the good-event latency threshold.
	LatencyBound time.Duration
	// Target is the required good-event fraction in (0,1), e.g. 0.99.
	// The error budget of a window is (1-Target) x window requests.
	Target float64
	// Source supplies the counters.
	Source SLOSource
}

// sloSample is one cumulative snapshot of an objective's source.
type sloSample struct {
	at       time.Time
	requests int64
	errors   int64
	count    int64   // histogram observations
	buckets  []int64 // per-bucket (non-cumulative) counts
}

// sloState is one objective plus its retained snapshot window.
type sloState struct {
	obj     SLOObjective
	bounds  []float64
	samples []sloSample
}

func (st *sloState) snapshot(now time.Time) sloSample {
	s := sloSample{
		at:      now,
		count:   st.obj.Source.Latency.Count(),
		buckets: st.obj.Source.Latency.BucketCounts(),
	}
	if st.obj.Source.Requests != nil {
		s.requests = st.obj.Source.Requests()
	} else {
		s.requests = s.count
	}
	if st.obj.Source.Errors != nil {
		s.errors = st.obj.Source.Errors()
	}
	return s
}

// SLO evaluates a set of objectives over a sliding window. Tick it
// periodically (Run does); Report and the registered gauges read the
// window between the oldest retained snapshot and a live one.
type SLO struct {
	window time.Duration

	mu   sync.Mutex
	objs []*sloState

	ticks  *Counter
	breach *Counter
}

// DefaultSLOWindow is the sliding-window length when NewSLO gets a
// non-positive one.
const DefaultSLOWindow = 30 * time.Second

// NewSLO returns an engine over the given objectives. Objectives with
// a nil latency source are dropped; quantile defaults to 0.99, target
// to 0.99.
func NewSLO(window time.Duration, objectives ...SLOObjective) *SLO {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	s := &SLO{window: window}
	for _, o := range objectives {
		if o.Source.Latency == nil {
			continue
		}
		if o.Quantile <= 0 || o.Quantile >= 1 {
			o.Quantile = 0.99
		}
		if o.Target <= 0 || o.Target >= 1 {
			o.Target = 0.99
		}
		s.objs = append(s.objs, &sloState{obj: o, bounds: o.Source.Latency.Bounds()})
	}
	return s
}

// Window returns the engine's sliding-window length.
func (s *SLO) Window() time.Duration { return s.window }

// Tick snapshots every objective's source and evicts snapshots that
// fell out of the window (keeping one older snapshot as the window's
// base). Safe for concurrent use with Report.
func (s *SLO) Tick(now time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	cutoff := now.Add(-s.window)
	for _, st := range s.objs {
		st.samples = append(st.samples, st.snapshot(now))
		// Keep the newest sample at or before the cutoff as the base so
		// the window always spans (approximately) the full length.
		i := 0
		for i < len(st.samples)-1 && !st.samples[i+1].at.After(cutoff) {
			i++
		}
		st.samples = st.samples[i:]
	}
	s.mu.Unlock()
	s.ticks.Inc()
}

// Run ticks the engine every step until ctx ends. A non-positive step
// defaults to window/10.
func (s *SLO) Run(ctx context.Context, step time.Duration) {
	if s == nil {
		return
	}
	if step <= 0 {
		step = s.window / 10
	}
	t := time.NewTicker(step)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.Tick(now)
		}
	}
}

// budgetUsedCap bounds the reported burn fraction so a zero-budget
// window with bad events stays JSON-encodable instead of +Inf.
const budgetUsedCap = 1e6

// SLOObjectiveReport is one objective's windowed evaluation, shaped
// for the /sloz JSON body (durations in seconds).
type SLOObjectiveReport struct {
	Name                string  `json:"name"`
	Quantile            float64 `json:"quantile"`
	LatencyBoundSeconds float64 `json:"latency_bound_seconds"`
	Target              float64 `json:"target"`

	// Window tallies (deltas across the sliding window).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// BadEvents counts requests that missed the objective: responses
	// slower than the bound plus error responses (an erroring slow
	// request may count twice — the accounting is deliberately
	// conservative).
	BadEvents int64 `json:"bad_events"`

	// Latency quantiles estimated from the windowed histogram delta.
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
	// QuantileSeconds is the headline Quantile's estimate.
	QuantileSeconds float64 `json:"quantile_seconds"`

	// Attainment is the good-event fraction (1 on an empty window).
	Attainment float64 `json:"attainment"`
	// ErrorBudgetUsed is BadEvents / ((1-Target) x Requests): >= 1
	// means the window's budget is exhausted (capped at 1e6).
	ErrorBudgetUsed float64 `json:"error_budget_used"`
	Exhausted       bool    `json:"exhausted"`
}

// SLOReport is the engine's point-in-time evaluation of every
// objective — the /sloz response body.
type SLOReport struct {
	WindowSeconds float64              `json:"window_seconds"`
	GeneratedAt   string               `json:"generated_at"`
	Objectives    []SLOObjectiveReport `json:"objectives"`
}

// Exhausted reports whether any objective's window budget is burned.
func (r SLOReport) Exhausted() bool {
	for _, o := range r.Objectives {
		if o.Exhausted {
			return true
		}
	}
	return false
}

// Objective returns one objective's report by name (zero value when
// absent).
func (r SLOReport) Objective(name string) SLOObjectiveReport {
	for _, o := range r.Objectives {
		if o.Name == name {
			return o
		}
	}
	return SLOObjectiveReport{Name: name}
}

// Report evaluates every objective over the window ending now: a live
// snapshot against the oldest retained tick (or zero, i.e. lifetime,
// before the first tick). Nil-safe (returns a zero report).
func (s *SLO) Report(now time.Time) SLOReport {
	if s == nil {
		return SLOReport{}
	}
	rep := SLOReport{
		WindowSeconds: s.window.Seconds(),
		GeneratedAt:   now.UTC().Format(time.RFC3339Nano),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	exhausted := false
	for _, st := range s.objs {
		head := st.snapshot(now)
		var base sloSample
		if len(st.samples) > 0 {
			base = st.samples[0]
		}
		o := evalObjective(st.obj, st.bounds, base, head)
		if o.Exhausted {
			exhausted = true
		}
		rep.Objectives = append(rep.Objectives, o)
	}
	if exhausted {
		s.breach.Inc()
	}
	return rep
}

// evalObjective computes one objective's report from the delta between
// two cumulative snapshots.
func evalObjective(obj SLOObjective, bounds []float64, base, head sloSample) SLOObjectiveReport {
	o := SLOObjectiveReport{
		Name:                obj.Name,
		Quantile:            obj.Quantile,
		LatencyBoundSeconds: obj.LatencyBound.Seconds(),
		Target:              obj.Target,
		Requests:            head.requests - base.requests,
		Errors:              head.errors - base.errors,
		Attainment:          1,
	}
	delta := make([]int64, len(head.buckets))
	var total int64
	for i := range head.buckets {
		d := head.buckets[i]
		if i < len(base.buckets) {
			d -= base.buckets[i]
		}
		if d < 0 {
			d = 0
		}
		delta[i] = d
		total += d
	}
	o.P50Seconds = HistogramQuantile(bounds, delta, 0.50)
	o.P95Seconds = HistogramQuantile(bounds, delta, 0.95)
	o.P99Seconds = HistogramQuantile(bounds, delta, 0.99)
	o.P999Seconds = HistogramQuantile(bounds, delta, 0.999)
	o.QuantileSeconds = HistogramQuantile(bounds, delta, obj.Quantile)

	slow := total - histCumulativeAt(bounds, delta, obj.LatencyBound.Seconds())
	if slow < 0 {
		slow = 0
	}
	o.BadEvents = slow + o.Errors
	if o.Requests > 0 {
		good := o.Requests - o.BadEvents
		if good < 0 {
			good = 0
		}
		o.Attainment = float64(good) / float64(o.Requests)
		allowed := (1 - obj.Target) * float64(o.Requests)
		switch {
		case allowed > 0:
			o.ErrorBudgetUsed = math.Min(float64(o.BadEvents)/allowed, budgetUsedCap)
		case o.BadEvents > 0:
			o.ErrorBudgetUsed = budgetUsedCap
		}
		o.Exhausted = o.ErrorBudgetUsed >= 1
	}
	return o
}

// histCumulativeAt estimates how many of the histogram's observations
// are <= x, interpolating linearly within the bucket containing x
// (counts has len(bounds)+1 entries, overflow last).
func histCumulativeAt(bounds []float64, counts []int64, x float64) int64 {
	var cum int64
	lo := 0.0
	for i, b := range bounds {
		if x >= b {
			cum += counts[i]
			lo = b
			continue
		}
		// x falls inside bucket i spanning (lo, b].
		if b > lo {
			cum += int64(math.Round(float64(counts[i]) * (x - lo) / (b - lo)))
		}
		return cum
	}
	// x is past the last bound: everything counts, including overflow.
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	return cum
}

// HistogramQuantile estimates the q-quantile of a fixed-bucket
// histogram from its upper bounds and per-bucket (non-cumulative)
// counts — Prometheus-style linear interpolation within the containing
// bucket. Observations in the overflow bucket clamp to the last bound.
// Returns 0 when the histogram is empty.
func HistogramQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	lo := 0.0
	for i, b := range bounds {
		c := counts[i]
		if float64(cum)+float64(c) >= rank {
			if c == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
		lo = b
	}
	// The quantile lands in the overflow bucket: the histogram cannot
	// resolve past its last bound.
	return bounds[len(bounds)-1]
}

// Register exposes the engine on reg as kondo_slo_* instruments: per
// objective the headline quantile, attainment, budget burn, window
// request count and an exhausted flag (all evaluated at exposition
// time), plus engine tick/breach counters. Nil-safe on both sides.
func (s *SLO) Register(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.SetHelp("kondo_slo_quantile_seconds", "Windowed latency quantile per objective (q label is the quantile).")
	reg.SetHelp("kondo_slo_attainment", "Windowed good-event fraction per objective (1 = SLO fully met).")
	reg.SetHelp("kondo_slo_error_budget_used", "Fraction of the window's error budget burned (>= 1 = exhausted).")
	reg.SetHelp("kondo_slo_window_requests", "Requests observed in the sliding window, per objective.")
	reg.SetHelp("kondo_slo_exhausted", "1 while the objective's window budget is exhausted.")
	reg.SetHelp("kondo_slo_ticks_total", "SLO engine snapshot ticks.")
	reg.SetHelp("kondo_slo_breaches_total", "Report evaluations that found at least one exhausted objective.")
	s.ticks = reg.Counter("kondo_slo_ticks_total")
	s.breach = reg.Counter("kondo_slo_breaches_total")
	report := func() SLOReport { return s.Report(time.Now()) }
	s.mu.Lock()
	objs := append([]*sloState(nil), s.objs...)
	s.mu.Unlock()
	for _, st := range objs {
		name := st.obj.Name
		l := L("objective", name)
		reg.GaugeFunc("kondo_slo_quantile_seconds", func() float64 {
			return report().Objective(name).QuantileSeconds
		}, l, L("q", fmt.Sprintf("%g", st.obj.Quantile)))
		reg.GaugeFunc("kondo_slo_attainment", func() float64 {
			return report().Objective(name).Attainment
		}, l)
		reg.GaugeFunc("kondo_slo_error_budget_used", func() float64 {
			return report().Objective(name).ErrorBudgetUsed
		}, l)
		reg.GaugeFunc("kondo_slo_window_requests", func() float64 {
			return float64(report().Objective(name).Requests)
		}, l)
		reg.GaugeFunc("kondo_slo_exhausted", func() float64 {
			if report().Objective(name).Exhausted {
				return 1
			}
			return 0
		}, l)
	}
}
