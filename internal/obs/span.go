package obs

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// traceKey carries a *Trace through a context.
type traceKey struct{}

// WithTrace returns a context carrying tr; obs.Start calls under it
// record into tr. A nil tr returns ctx unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceOf returns the trace carried by ctx, or nil.
func TraceOf(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// DefaultTraceLimit bounds a trace's event count so a long-running
// daemon or a large -bench run cannot grow one without bound; events
// past the limit are counted but dropped.
const DefaultTraceLimit = 1 << 20

// LocalPID is the process lane this trace's own events render under
// in the Chrome trace export. Remote events merged in via MergeRemote
// carry the pid the caller assigned them.
const LocalPID = 1

// Trace collects completed spans and instant events from any number
// of goroutines. It is safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	epoch   time.Time
	events  []event
	limit   int
	dropped int64
	procs   map[int]string // pid → process display name (Perfetto lane labels)
}

// event is one recorded trace entry (a completed span or an instant).
type event struct {
	name  string
	ph    byte // 'X' complete span, 'i' instant
	start time.Time
	dur   time.Duration
	pid   int // 0 means LocalPID
	tid   int64
	args  []Arg
}

// Arg is one key/value annotation on a span or instant event.
type Arg struct {
	Key   string
	Value any
}

// A builds an Arg; it reads well at call sites:
// obs.Start(ctx, "fuzz.round", obs.A("seeds", n)).
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// NewTrace returns an empty trace whose timestamps are relative to
// now, capped at DefaultTraceLimit events.
func NewTrace() *Trace {
	return NewTraceAt(time.Now())
}

// NewTraceAt returns an empty trace whose timestamps are relative to
// epoch — a worker that exports many per-lease sub-traces creates them
// all against one session epoch so their events share a timeline. A
// zero epoch means now.
func NewTraceAt(epoch time.Time) *Trace {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &Trace{epoch: epoch, limit: DefaultTraceLimit}
}

// Epoch returns the instant the trace's timestamps are relative to.
func (t *Trace) Epoch() time.Time { return t.epoch }

// SetProcessName labels a process lane: the Chrome export carries one
// process_name metadata event per named pid, so Perfetto renders the
// lane as e.g. "coordinator" or "worker:alice" instead of a number.
func (t *Trace) SetProcessName(pid int, name string) {
	t.mu.Lock()
	if t.procs == nil {
		t.procs = make(map[int]string)
	}
	t.procs[pid] = name
	t.mu.Unlock()
}

// SetLimit changes the maximum retained event count (n <= 0 means
// unlimited). Events arriving past the limit are dropped and counted.
func (t *Trace) SetLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// PIDs returns the distinct process lanes of the retained events plus
// any named lanes, sorted — a stitched trace's lane count without a
// full export. Nil-safe (returns nil).
func (t *Trace) PIDs() []int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	set := make(map[int]bool, 2)
	for _, e := range t.events {
		pid := e.pid
		if pid == 0 {
			pid = LocalPID
		}
		set[pid] = true
	}
	for pid := range t.procs {
		set[pid] = true
	}
	t.mu.Unlock()
	out := make([]int, 0, len(set))
	for pid := range set {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Dropped returns how many events were discarded over the limit.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *Trace) add(e event) {
	t.mu.Lock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is one in-flight timed operation. A nil Span (returned by
// Start when the context carries no trace) is valid: every method is
// a no-op, so call sites never branch on whether tracing is enabled.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	tid   int64
	args  []Arg
}

// Start begins a span named name if ctx carries a Trace, returning
// nil otherwise. The disabled path performs no allocations when
// called without args. By convention names are dot-separated with the
// subsystem first: "fuzz.round", "carve.merge", "serve.chunk".
func Start(ctx context.Context, name string, args ...Arg) *Span {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now(), args: args}
}

// Enabled reports whether the span actually records (false on the
// nil no-op span) — use it to guard argument construction that would
// itself allocate.
func (s *Span) Enabled() bool { return s != nil }

// Arg appends one annotation. Nil-safe; returns s for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Value: value})
	return s
}

// SetTID assigns the span to a display lane (Chrome renders one row
// per tid) — worker pools pass the worker index so their batches
// stack side by side. Nil-safe; returns s for chaining.
func (s *Span) SetTID(tid int) *Span {
	if s == nil {
		return nil
	}
	s.tid = int64(tid)
	return s
}

// End completes the span and records it. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.add(event{
		name:  s.name,
		ph:    'X',
		start: s.start,
		dur:   time.Since(s.start),
		tid:   s.tid,
		args:  s.args,
	})
}

// Instant records a zero-duration marker event if ctx carries a
// trace. The marker lands on tid 0; use InstantTID to place it on a
// display lane.
func Instant(ctx context.Context, name string, args ...Arg) {
	InstantTID(ctx, name, 0, args...)
}

// InstantTID records a zero-duration marker event on the given
// display lane if ctx carries a trace — lease lifecycle markers pass
// the worker's lane so the instant renders next to that worker's
// spans instead of collapsing onto tid 0.
func InstantTID(ctx context.Context, name string, tid int, args ...Arg) {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	tr.RecordInstant(name, tid, args...)
}

// RecordInstant records a zero-duration marker event on a display
// lane directly on the trace, for callers holding a *Trace rather
// than a context (the coordinator's lease lifecycle hooks). Nil-safe.
func (t *Trace) RecordInstant(name string, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.add(event{name: name, ph: 'i', start: time.Now(), tid: int64(tid), args: args})
}

// chromeEvent is the trace_event JSON shape understood by
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported top-level object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteJSON exports the trace as Chrome trace_event JSON. Events are
// sorted by start time; timestamps are microseconds relative to the
// trace's creation.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]event(nil), t.events...)
	epoch := t.epoch
	dropped := t.dropped
	procs := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		procs[pid] = name
	}
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].start.Before(events[j].start) })
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(procs)),
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		out.Metadata = map[string]any{"dropped_events": dropped}
	}
	// Process-name metadata first, sorted by pid, so viewers label the
	// lanes before any timed event references them.
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": procs[pid]},
		})
	}
	for _, e := range events {
		pid := e.pid
		if pid == 0 {
			pid = LocalPID
		}
		ce := chromeEvent{
			Name: e.name,
			Cat:  category(e.name),
			Ph:   string(e.ph),
			TS:   float64(e.start.Sub(epoch)) / float64(time.Microsecond),
			PID:  pid,
			TID:  e.tid,
		}
		if e.ph == 'X' {
			dur := float64(e.dur) / float64(time.Microsecond)
			ce.Dur = &dur
		}
		if e.ph == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		if len(e.args) > 0 {
			ce.Args = make(map[string]any, len(e.args))
			for _, a := range e.args {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile exports the trace to a file (see WriteJSON).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RegisterTraceMetrics exposes tr's drop accounting on reg:
// kondo_trace_dropped_events mirrors Trace.Dropped at exposition
// time, so a silently truncated trace shows up on /metrics instead of
// only in the export's metadata. Nil-safe on both sides.
func RegisterTraceMetrics(reg *Registry, tr *Trace) {
	if reg == nil || tr == nil {
		return
	}
	reg.GaugeFunc("kondo_trace_dropped_events", func() float64 {
		return float64(tr.Dropped())
	})
}

// category derives the Chrome "cat" field from a span name's leading
// dot-separated segment ("fuzz.round" → "fuzz").
func category(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}
