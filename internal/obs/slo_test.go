package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.4, 0.8}
	// 10 observations uniformly in the first bucket, 10 in the second.
	counts := []int64{10, 10, 0, 0, 0}
	if got := HistogramQuantile(bounds, counts, 0.5); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.1", got)
	}
	// p75 = rank 15 → halfway through bucket (0.1, 0.2].
	if got := HistogramQuantile(bounds, counts, 0.75); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("p75 = %v, want 0.15", got)
	}
	// Quantile in the overflow bucket clamps to the last bound.
	over := []int64{0, 0, 0, 0, 10}
	if got := HistogramQuantile(bounds, over, 0.99); got != 0.8 {
		t.Fatalf("overflow quantile = %v, want 0.8", got)
	}
	// Empty histogram.
	if got := HistogramQuantile(bounds, []int64{0, 0, 0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestSLOReportWindowAndBudget(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat", []float64{0.01, 0.05, 0.1, 0.5})
	reqs := reg.Counter("reqs")
	errs := reg.Counter("errs")

	slo := NewSLO(time.Minute, SLOObjective{
		Name:         "chunk",
		Quantile:     0.99,
		LatencyBound: 100 * time.Millisecond,
		Target:       0.9,
		Source: SLOSource{
			Requests: reqs.Value,
			Errors:   errs.Value,
			Latency:  hist,
		},
	})

	now := time.Now()
	// Pre-window traffic: all slow. Ticking after it establishes the
	// window base, so the report must exclude it.
	for i := 0; i < 50; i++ {
		hist.Observe(0.4)
		reqs.Inc()
	}
	slo.Tick(now)

	// Window traffic: 90 fast, 8 slow, 2 errors (errors also counted as
	// requests, fast).
	for i := 0; i < 92; i++ {
		hist.Observe(0.005)
		reqs.Inc()
	}
	for i := 0; i < 8; i++ {
		hist.Observe(0.4)
		reqs.Inc()
	}
	errs.Add(2)

	rep := slo.Report(now.Add(time.Second))
	o := rep.Objective("chunk")
	if o.Requests != 100 {
		t.Fatalf("window requests = %d, want 100 (pre-window excluded)", o.Requests)
	}
	if o.Errors != 2 {
		t.Fatalf("window errors = %d", o.Errors)
	}
	if o.BadEvents != 10 {
		t.Fatalf("bad events = %d, want 8 slow + 2 errors", o.BadEvents)
	}
	if math.Abs(o.Attainment-0.9) > 1e-9 {
		t.Fatalf("attainment = %v, want 0.9", o.Attainment)
	}
	// Budget: (1-0.9)*100 = 10 allowed, 10 bad → exactly exhausted.
	if math.Abs(o.ErrorBudgetUsed-1) > 1e-9 || !o.Exhausted {
		t.Fatalf("budget used = %v exhausted=%v, want 1 true", o.ErrorBudgetUsed, o.Exhausted)
	}
	if !rep.Exhausted() {
		t.Fatal("report not exhausted")
	}
	// p50 of the window should land in the fast bucket.
	if o.P50Seconds > 0.01 {
		t.Fatalf("window p50 = %v, want <= 0.01", o.P50Seconds)
	}
	// p999 should land in the slow region.
	if o.P999Seconds < 0.1 {
		t.Fatalf("window p999 = %v, want >= 0.1", o.P999Seconds)
	}

	// The report must be JSON-encodable even at extreme burn.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
}

func TestSLOEmptyWindowAndZeroBudget(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat", []float64{0.01, 0.1})
	slo := NewSLO(time.Minute, SLOObjective{
		Name:         "idle",
		LatencyBound: 10 * time.Millisecond,
		Target:       0.99,
		Source:       SLOSource{Latency: hist},
	})
	rep := slo.Report(time.Now())
	o := rep.Objective("idle")
	if o.Attainment != 1 || o.Exhausted || o.ErrorBudgetUsed != 0 {
		t.Fatalf("empty window: %+v", o)
	}

	// One bad request against a (1-target)*1 < 1 budget must cap, not
	// emit +Inf, and still marshal.
	hist.Observe(5)
	rep = slo.Report(time.Now())
	o = rep.Objective("idle")
	if !o.Exhausted || o.ErrorBudgetUsed <= 1 {
		t.Fatalf("tiny-budget burn: %+v", o)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(raw), "Inf") {
		t.Fatalf("JSON carries Inf: %s", raw)
	}
}

func TestSLOTickEviction(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat", []float64{0.01})
	slo := NewSLO(10*time.Second, SLOObjective{
		Name:         "e",
		LatencyBound: time.Second,
		Target:       0.5,
		Source:       SLOSource{Latency: hist},
	})
	base := time.Now()
	// Old traffic, then ticks that should push it out of the window.
	hist.Observe(0.001)
	hist.Observe(0.001)
	slo.Tick(base)
	slo.Tick(base.Add(5 * time.Second))
	slo.Tick(base.Add(11 * time.Second)) // base tick falls out; 5s tick becomes base
	hist.Observe(0.001)
	rep := slo.Report(base.Add(12 * time.Second))
	o := rep.Objective("e")
	if o.Requests != 1 {
		t.Fatalf("window requests = %d, want 1 (old traffic evicted)", o.Requests)
	}
}

func TestSLORegisterExposesGauges(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat", []float64{0.01, 0.1})
	slo := NewSLO(time.Minute, SLOObjective{
		Name:         "chunk",
		Quantile:     0.95,
		LatencyBound: 50 * time.Millisecond,
		Target:       0.99,
		Source:       SLOSource{Latency: hist},
	})
	slo.Register(reg)
	hist.Observe(0.005)
	slo.Tick(time.Now())

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"kondo_slo_attainment",
		"kondo_slo_error_budget_used",
		"kondo_slo_quantile_seconds",
		"kondo_slo_window_requests",
		"kondo_slo_exhausted",
		"kondo_slo_ticks_total",
		"kondo_slo_breaches_total",
		`objective="chunk"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Nil engine registration and ticking are no-ops.
	var nilSLO *SLO
	nilSLO.Register(reg)
	nilSLO.Tick(time.Now())
	if rep := nilSLO.Report(time.Now()); len(rep.Objectives) != 0 {
		t.Fatalf("nil report: %+v", rep)
	}
}
