package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// eventsNamed filters exported chrome events by name.
func eventsNamed(evs []map[string]any, name string) []map[string]any {
	var out []map[string]any
	for _, e := range evs {
		if e["name"] == name {
			out = append(out, e)
		}
	}
	return out
}

func TestExportEventsRoundTrip(t *testing.T) {
	epoch := time.Now()
	tr := NewTraceAt(epoch)
	ctx := WithTrace(context.Background(), tr)

	sp := Start(ctx, "fuzz.round", A("seeds", 3)).SetTID(2)
	time.Sleep(time.Millisecond)
	sp.End()
	InstantTID(ctx, "fuzz.marker", 5, A("k", "v"))

	events, omitted := tr.ExportEvents(0)
	if omitted != 0 {
		t.Fatalf("omitted = %d, want 0", omitted)
	}
	if len(events) != 2 {
		t.Fatalf("exported %d events, want 2", len(events))
	}
	span := events[0]
	if span.Name != "fuzz.round" || span.Ph != "" || span.TID != 2 {
		t.Errorf("span wire form = %+v", span)
	}
	if span.Dur <= 0 {
		t.Errorf("span duration %d, want > 0", span.Dur)
	}
	if span.TS < 0 {
		t.Errorf("span TS %d is before the epoch", span.TS)
	}
	if got := span.Args["seeds"]; got != 3 {
		t.Errorf("span args = %v", span.Args)
	}
	inst := events[1]
	if inst.Ph != "i" || inst.TID != 5 || inst.Dur != 0 {
		t.Errorf("instant wire form = %+v", inst)
	}

	// Same-process round-trip: import back and check the Chrome export.
	dst := NewTraceAt(epoch)
	dst.ImportEvents(events)
	if dst.Len() != 2 {
		t.Fatalf("imported trace has %d events, want 2", dst.Len())
	}
	evs := traceEvents(t, decodeChromeTrace(t, dst))
	got := eventsNamed(evs, "fuzz.round")
	if len(got) != 1 {
		t.Fatalf("fuzz.round events = %d, want 1", len(got))
	}
	if got[0]["pid"].(float64) != LocalPID {
		t.Errorf("imported event pid = %v, want LocalPID", got[0]["pid"])
	}
	if got[0]["tid"].(float64) != 2 {
		t.Errorf("imported event tid = %v, want 2", got[0]["tid"])
	}
}

func TestExportEventsBounded(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 10; i++ {
		tr.RecordInstant("m", 0)
	}
	events, omitted := tr.ExportEvents(4)
	if len(events) != 4 || omitted != 6 {
		t.Fatalf("ExportEvents(4) = %d events, %d omitted; want 4, 6", len(events), omitted)
	}
	events, omitted = tr.ExportEvents(100)
	if len(events) != 10 || omitted != 0 {
		t.Fatalf("ExportEvents(100) = %d events, %d omitted; want 10, 0", len(events), omitted)
	}
}

func TestExportEventsNilTrace(t *testing.T) {
	var tr *Trace
	events, omitted := tr.ExportEvents(10)
	if events != nil || omitted != 0 {
		t.Fatalf("nil trace export = %v, %d", events, omitted)
	}
	tr.MergeRemote(2, "w", 0, []WireEvent{{Name: "x"}})
	tr.ImportEvents(nil)
}

func TestMergeRemoteRebasesOntoLocalEpoch(t *testing.T) {
	epoch := time.Now()
	tr := NewTraceAt(epoch)

	// A remote span that started 5ms past the remote epoch, with the
	// remote clock estimated to run 2ms behind the local epoch-relative
	// clock: it must land at 7ms on the local timeline.
	remote := []WireEvent{
		{Name: "orchestra.lease_eval", TS: int64(5 * time.Millisecond), Dur: int64(time.Millisecond), TID: 1},
		{Name: "orchestra.lease_done", Ph: "i", TS: int64(6 * time.Millisecond)},
		{Name: "future.phase", Ph: "q", TS: 0}, // unknown phase: skipped, not fatal
	}
	tr.MergeRemote(3, "worker:alice", 2*time.Millisecond, remote)

	if tr.Len() != 2 {
		t.Fatalf("merged %d events, want 2 (unknown phase dropped)", tr.Len())
	}
	evs := traceEvents(t, decodeChromeTrace(t, tr))

	meta := eventsNamed(evs, "process_name")
	if len(meta) != 1 {
		t.Fatalf("process_name metadata events = %d, want 1", len(meta))
	}
	if meta[0]["ph"] != "M" || meta[0]["pid"].(float64) != 3 {
		t.Errorf("metadata event = %v", meta[0])
	}
	if name := meta[0]["args"].(map[string]any)["name"]; name != "worker:alice" {
		t.Errorf("process name = %v, want worker:alice", name)
	}

	span := eventsNamed(evs, "orchestra.lease_eval")
	if len(span) != 1 {
		t.Fatalf("merged span missing: %v", evs)
	}
	if span[0]["pid"].(float64) != 3 {
		t.Errorf("merged span pid = %v, want 3", span[0]["pid"])
	}
	wantTS := float64(7 * time.Millisecond / time.Microsecond)
	if ts := span[0]["ts"].(float64); ts < wantTS-1 || ts > wantTS+1 {
		t.Errorf("rebased ts = %v µs, want ~%v", ts, wantTS)
	}
	if dur := *jsonFloat(t, span[0], "dur"); dur != 1000 {
		t.Errorf("merged dur = %v µs, want 1000", dur)
	}

	inst := eventsNamed(evs, "orchestra.lease_done")
	if len(inst) != 1 || inst[0]["ph"] != "i" {
		t.Fatalf("merged instant = %v", inst)
	}
}

// jsonFloat pulls a numeric field that may be absent.
func jsonFloat(t *testing.T, e map[string]any, key string) *float64 {
	t.Helper()
	v, ok := e[key]
	if !ok {
		t.Fatalf("event %v has no %q", e, key)
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("event field %q = %v is not a number", key, v)
	}
	return &f
}

func TestMergeRemoteArgsDeterministic(t *testing.T) {
	tr := NewTrace()
	tr.MergeRemote(2, "w", 0, []WireEvent{
		{Name: "x", Args: map[string]any{"b": 2, "a": 1, "c": 3}},
	})
	tr.mu.Lock()
	args := tr.events[0].args
	tr.mu.Unlock()
	if len(args) != 3 || args[0].Key != "a" || args[1].Key != "b" || args[2].Key != "c" {
		t.Fatalf("merged args not key-sorted: %v", args)
	}
}

func TestMergeRemoteRespectsLimit(t *testing.T) {
	tr := NewTrace()
	tr.SetLimit(3)
	events := make([]WireEvent, 5)
	for i := range events {
		events[i] = WireEvent{Name: "e", TS: int64(i)}
	}
	tr.MergeRemote(2, "w", 0, events)
	if tr.Len() != 3 {
		t.Errorf("retained %d events, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestInstantTIDLane(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	InstantTID(ctx, "lease.granted", 7)
	Instant(ctx, "plain")

	evs := traceEvents(t, decodeChromeTrace(t, tr))
	laned := eventsNamed(evs, "lease.granted")
	if len(laned) != 1 || laned[0]["tid"].(float64) != 7 {
		t.Fatalf("InstantTID event = %v, want tid 7", laned)
	}
	plain := eventsNamed(evs, "plain")
	if len(plain) != 1 || plain[0]["tid"].(float64) != 0 {
		t.Fatalf("Instant event = %v, want tid 0", plain)
	}
}

func TestRecordInstantNilSafe(t *testing.T) {
	var tr *Trace
	tr.RecordInstant("x", 1) // must not panic
	InstantTID(context.Background(), "y", 2)
}

func TestRegisterTraceMetrics(t *testing.T) {
	tr := NewTrace()
	tr.SetLimit(1)
	reg := NewRegistry()
	RegisterTraceMetrics(reg, tr)

	tr.RecordInstant("a", 0)
	tr.RecordInstant("b", 0)
	tr.RecordInstant("c", 0)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "kondo_trace_dropped_events 2") {
		t.Errorf("exposition missing dropped gauge:\n%s", sb.String())
	}

	// Nil combinations must not panic or register anything.
	RegisterTraceMetrics(nil, tr)
	RegisterTraceMetrics(reg, nil)
	RegisterTraceMetrics(nil, nil)
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kondo_evals_total", L("worker", "alice")).Add(7)
	reg.Gauge("kondo_inflight").Set(2.5)
	reg.GaugeFunc("kondo_fn", func() float64 { return 9 })
	reg.Histogram("kondo_lat", []float64{1, 2}).Observe(1.5) // skipped

	points := reg.Snapshot()
	if len(points) != 3 {
		t.Fatalf("snapshot has %d points, want 3 (histogram skipped): %+v", len(points), points)
	}
	// snapshotSeries sorts by name: evals, fn, inflight.
	if points[0].Name != "kondo_evals_total" || points[0].Kind != "counter" || points[0].Value != 7 {
		t.Errorf("point 0 = %+v", points[0])
	}
	if len(points[0].Labels) != 1 || points[0].Labels[0] != (Label{Key: "worker", Value: "alice"}) {
		t.Errorf("point 0 labels = %+v", points[0].Labels)
	}
	if points[1].Name != "kondo_fn" || points[1].Value != 9 {
		t.Errorf("point 1 = %+v", points[1])
	}
	if points[2].Name != "kondo_inflight" || points[2].Kind != "gauge" || points[2].Value != 2.5 {
		t.Errorf("point 2 = %+v", points[2])
	}

	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Error("nil registry snapshot is not nil")
	}
}

func TestSetProcessNameOrdering(t *testing.T) {
	tr := NewTrace()
	tr.SetProcessName(3, "worker:bob")
	tr.SetProcessName(1, "coordinator")
	tr.SetProcessName(2, "worker:alice")
	tr.RecordInstant("x", 0)

	evs := traceEvents(t, decodeChromeTrace(t, tr))
	meta := eventsNamed(evs, "process_name")
	if len(meta) != 3 {
		t.Fatalf("metadata events = %d, want 3", len(meta))
	}
	for i, want := range []float64{1, 2, 3} {
		if meta[i]["pid"].(float64) != want {
			t.Errorf("metadata %d pid = %v, want %v", i, meta[i]["pid"], want)
		}
	}
	// Metadata must precede timed events.
	if evs[0]["ph"] != "M" {
		t.Errorf("first event is %v, want metadata", evs[0])
	}
}
