// Package obs is Kondo's unified observability layer: lightweight
// span tracing, a concurrent metrics registry with Prometheus text
// exposition, and a structured logger — all stdlib-only.
//
// The three pieces share one design rule: when nothing is attached,
// nothing costs. A Trace and a Registry travel through
// context.Context; library code calls obs.Start / Registry handles
// unconditionally, and when the context carries no collector the
// calls degrade to nil-receiver no-ops with zero allocations. The
// logger defaults to a discard handler, so library packages may log
// diagnostics freely without ever writing to stderr unconditionally —
// a CLI that wants the output installs a real logger with SetLogger.
//
// Spans export as Chrome trace_event JSON (open in chrome://tracing
// or https://ui.perfetto.dev); metrics export in the Prometheus text
// format. See DESIGN.md §8 for the span model and metric naming
// conventions.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// defaultLogger is the process-wide logger returned by Log. It starts
// as a discard logger so library code never emits output unless a CLI
// (or test) opts in via SetLogger.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(slog.New(discardHandler{}))
}

// Log returns the process-wide structured logger. The default
// discards everything; CLIs install a real one with SetLogger.
func Log() *slog.Logger { return defaultLogger.Load() }

// SetLogger installs the process-wide logger. A nil logger restores
// the discarding default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(discardHandler{})
	}
	defaultLogger.Store(l)
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds an slog logger writing to w at the given level
// ("debug", "info", "warn", "error") in the given format ("text" or
// "json") — the backing of the CLIs' -log-level / -log-format flags.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
	return slog.New(h), nil
}

// SetupCLILogger parses the -log-level/-log-format flag pair, installs
// the resulting stderr logger process-wide, and returns it.
func SetupCLILogger(level, format string) (*slog.Logger, error) {
	l, err := NewLogger(os.Stderr, level, format)
	if err != nil {
		return nil, err
	}
	SetLogger(l)
	return l, nil
}

// discardHandler drops every record. (slog.DiscardHandler exists only
// from Go 1.24; this keeps the module buildable at its declared
// go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
