package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// registryKey carries a *Registry through a context.
type registryKey struct{}

// WithRegistry returns a context carrying reg; instrumented library
// code (fuzz, debloat) registers and updates instruments in it. A nil
// reg returns ctx unchanged.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, reg)
}

// RegistryOf returns the registry carried by ctx, or nil. A nil
// registry is usable: its getters return nil instruments whose
// methods are no-ops.
func RegistryOf(ctx context.Context) *Registry {
	reg, _ := ctx.Value(registryKey{}).(*Registry)
	return reg
}

// Kind is an instrument's type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name=value dimension of a metric series. The compact
// JSON tags keep piggybacked metric snapshots (orchestra result
// messages) small on the wire.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L builds a Label; it reads well at call sites:
// reg.Counter("kondo_serve_requests_total", obs.L("endpoint", "chunk")).
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer. The zero value is
// ready to use; a nil *Counter is a valid no-op. A Counter may instead
// be backed by a callback (CounterFunc), in which case Inc/Add are
// no-ops.
type Counter struct {
	v  atomic.Int64
	fn func() int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil && c.fn == nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
// Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil && c.fn == nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil), consulting the callback
// for function counters.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is a float value that can go up and down. A nil *Gauge is a
// valid no-op. A Gauge may instead be backed by a callback
// (GaugeFunc), in which case Set/Add are no-ops.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil && g.fn == nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil || g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil), consulting the callback
// for function gauges.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bucket i counts
// observations v with v <= Bounds[i]; one extra overflow bucket
// counts the rest. A nil *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v ⇒ v <= bound
	// SearchFloat64s finds the first bound > v only when v is not
	// present; for exact matches it returns the bound's own index, so
	// the "v <= bound" bucket convention holds either way.
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Bounds returns the bucket upper bounds (nil on nil).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket (non-cumulative) counts,
// len(Bounds())+1 long with the overflow bucket last.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the total observation count (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// series is one registered instrument with its identity.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a concurrent collection of named instruments. Getters
// are get-or-create: the first call registers the series, later calls
// return the same instrument, so hot paths can cache handles while
// cold paths just re-look them up. All methods are safe for
// concurrent use, and all are nil-safe: a nil *Registry hands out nil
// instruments whose methods no-op.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
}

// SetHelp attaches Prometheus # HELP text to a metric family name.
// Nil-safe.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// seriesKey canonicalizes name+labels; labels are sorted in place.
func seriesKey(name string, labels []Label) string {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('\x01')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the series for key, or registers one built by mk.
// It panics when the name is already registered with another kind —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, labels []Label, kind Kind, mk func() *series) *series {
	key := seriesKey(name, labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		s, ok = r.series[key]
		if !ok {
			s = mk()
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	if s.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, s.kind, kind))
	}
	return s
}

// Counter returns (registering if needed) the counter series
// name{labels}. Nil-safe: a nil registry returns a nil counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, KindCounter, func() *series {
		return &series{name: name, labels: labels, kind: KindCounter, c: &Counter{}}
	})
	return s.c
}

// Gauge returns (registering if needed) the gauge series
// name{labels}. Nil-safe.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, KindGauge, func() *series {
		return &series{name: name, labels: labels, kind: KindGauge, g: &Gauge{}}
	})
	return s.g
}

// CounterFunc registers a counter whose value is computed by fn at
// exposition time — for mirroring an externally maintained monotonic
// count (an existing atomic) without double bookkeeping.
// Re-registering the same series replaces the callback. Nil-safe.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(name, labels, KindCounter, func() *series {
		return &series{name: name, labels: labels, kind: KindCounter, c: &Counter{}}
	})
	r.mu.Lock()
	s.c.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for mirroring externally maintained state (cache
// sizes, build info) without double bookkeeping. Re-registering the
// same series replaces the callback. Nil-safe.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(name, labels, KindGauge, func() *series {
		return &series{name: name, labels: labels, kind: KindGauge, g: &Gauge{}}
	})
	r.mu.Lock()
	s.g.fn = fn
	r.mu.Unlock()
}

// Histogram returns (registering if needed) the histogram series
// name{labels} with the given bucket upper bounds (sorted copies are
// taken; an existing series keeps its original bounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, KindHistogram, func() *series {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &series{name: name, labels: labels, kind: KindHistogram,
			h: &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}}
	})
	return s.h
}

// snapshotSeries returns the registered series sorted by name then
// label set, for deterministic exposition.
func (r *Registry) snapshotSeries() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out
}

// labelString renders {k="v",...} (empty string for no labels).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWith renders labels plus one extra pair (for histogram
// le labels).
func labelStringWith(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return labelString(all)
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a float the Prometheus way.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricPoint is one counter or gauge sample in serializable form,
// for shipping a registry snapshot between processes (a worker
// piggybacking its metrics on a result message so the coordinator can
// federate them).
type MetricPoint struct {
	Name   string  `json:"n"`
	Kind   string  `json:"kind"` // "counter" or "gauge"
	Labels []Label `json:"l,omitempty"`
	Value  float64 `json:"val"`
}

// Snapshot returns every counter and gauge series (function-backed
// ones included, evaluated now) sorted by name then label set.
// Histograms are skipped — the federation consumers only aggregate
// scalar series. Nil-safe (returns nil).
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	var out []MetricPoint
	for _, s := range r.snapshotSeries() {
		p := MetricPoint{
			Name: s.name,
			Kind: s.kind.String(),
		}
		if len(s.labels) > 0 {
			p.Labels = append([]Label(nil), s.labels...)
		}
		switch s.kind {
		case KindCounter:
			p.Value = float64(s.c.Value())
		case KindGauge:
			p.Value = s.g.Value()
		default:
			continue
		}
		out = append(out, p)
	}
	return out
}

// WritePrometheus writes every registered series in the Prometheus
// text exposition format (text/plain; version=0.0.4): # HELP/# TYPE
// headers per family, cumulative histogram buckets with le labels,
// _sum and _count series. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	lastFamily := ""
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			if h, ok := help[s.name]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, labelString(s.labels), s.c.Value())
		case KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, labelString(s.labels), formatFloat(s.g.Value()))
		case KindHistogram:
			counts := s.h.BucketCounts()
			bounds := s.h.bounds
			cum := int64(0)
			for i, bound := range bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
					labelStringWith(s.labels, "le", formatFloat(bound)), cum)
			}
			cum += counts[len(bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, labelStringWith(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(s.h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, labelString(s.labels), s.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
