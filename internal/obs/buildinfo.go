package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies a running binary: Go version plus the VCS
// state stamped by the toolchain (empty outside a VCS build).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// Build reads the binary's build information once per call.
func Build() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.Time = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo exports the Prometheus-conventional identity
// gauge kondo_build_info{go_version=...,revision=...} 1, so a scrape
// of any deployed daemon identifies the binary serving it. Nil-safe.
func RegisterBuildInfo(r *Registry) {
	bi := Build()
	r.SetHelp("kondo_build_info", "Build identity of the running binary (value is always 1).")
	g := r.Gauge("kondo_build_info",
		L("go_version", bi.GoVersion),
		L("revision", bi.Revision),
		L("modified", boolStr(bi.Modified)),
	)
	g.Set(1)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
