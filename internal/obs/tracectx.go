package obs

// Wire-propagated request tracing: a TraceContext is the pair of ids
// that ties one logical request together across processes. The client
// side of the recovery plane mints a root context per fetch and stamps
// it onto outgoing HTTP requests as additive headers; the server opens
// a child context under the caller's ids, so its serve spans carry the
// same trace id as the client's fetch span and a stitched multi-pid
// trace (see WireTrace) shows the full causal chain. Old peers ignore
// the headers — the same forward-compat contract as the additive JSON
// fields of the orchestra protocol (DESIGN.md §13, §14).

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
)

// Trace-context propagation headers. They are additive: a server that
// predates them serves the request exactly as before, and a client
// that never sends them gets untraced handling.
const (
	// TraceIDHeader carries the 16-hex-digit trace id shared by every
	// span of one logical request, across processes.
	TraceIDHeader = "Kondo-Trace-Id"
	// SpanIDHeader carries the sender's span id; the receiver records
	// it as the parent of its own child span.
	SpanIDHeader = "Kondo-Span-Id"
)

// TraceContext identifies one request within a distributed trace: the
// trace id names the end-to-end request, the span id the current hop.
// The zero value is "no context". The JSON tags keep the type usable
// as an additive field on wire messages (omitted when empty, ignored
// by old decoders).
type TraceContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether both ids are present.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" && tc.SpanID != "" }

// traceCtxKey carries a TraceContext through a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. An invalid tc
// returns ctx unchanged.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextOf returns the trace context carried by ctx, if any.
func TraceContextOf(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// idEntropy seeds span-id generation once per process. Span ids only
// need uniqueness within a trace's lifetime, so a random 32-bit prefix
// plus a process-local counter is cheap and collision-safe enough;
// trace ids (the cross-process names) use 64 fresh random bits each.
var (
	idInit    sync.Once
	idPrefix  uint32
	idCounter atomic.Uint64
)

func initIDs() {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:], rand.Uint32())
	}
	idPrefix = binary.LittleEndian.Uint32(b[:])
}

// NewTraceID returns a fresh random 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], rand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// newSpanID returns a process-unique span id.
func newSpanID() string {
	idInit.Do(initIDs)
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], idPrefix)
	binary.BigEndian.PutUint32(b[4:], uint32(idCounter.Add(1)))
	return hex.EncodeToString(b[:])
}

// NewTraceContext mints a root context: fresh trace id, fresh span id.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: newSpanID()}
}

// Child derives the next hop's context: same trace id, fresh span id.
// The parent's span id is what the caller stamps on the wire (the
// receiver records it as parent_span_id).
func (tc TraceContext) Child() TraceContext {
	if !tc.Valid() {
		return NewTraceContext()
	}
	return TraceContext{TraceID: tc.TraceID, SpanID: newSpanID()}
}

// EnsureTraceContext returns ctx carrying a trace context plus that
// context. An existing context is kept; otherwise a root is minted —
// but only when ctx actually records spans (carries a Trace), so the
// tracing-off path stays allocation-free. The second return reports
// whether a context is present.
func EnsureTraceContext(ctx context.Context) (context.Context, TraceContext, bool) {
	if tc, ok := TraceContextOf(ctx); ok {
		return ctx, tc, true
	}
	if TraceOf(ctx) == nil {
		return ctx, TraceContext{}, false
	}
	tc := NewTraceContext()
	return WithTraceContext(ctx, tc), tc, true
}

// Inject stamps the context onto outgoing HTTP headers. Invalid
// contexts stamp nothing.
func (tc TraceContext) Inject(h http.Header) {
	if !tc.Valid() {
		return
	}
	h.Set(TraceIDHeader, tc.TraceID)
	h.Set(SpanIDHeader, tc.SpanID)
}

// ExtractTraceContext reads a propagated context from incoming HTTP
// headers. Requests from peers that predate the headers return ok
// false.
func ExtractTraceContext(h http.Header) (TraceContext, bool) {
	tc := TraceContext{TraceID: h.Get(TraceIDHeader), SpanID: h.Get(SpanIDHeader)}
	return tc, tc.Valid()
}
