// Package hybrid implements the schedule extension sketched in paper
// §VI: "let Kondo run for some more time and in parallel consult other
// fuzzing schedules, such as those available in AFL, to determine if
// any other missed offsets are detected." The hybrid runs Kondo's
// boundary-based campaign first, then spends a secondary budget on an
// AFL-style havoc phase seeded with the useful valuations Kondo found,
// merging any additional indices into the observation set before
// carving.
package hybrid

import (
	"context"
	"time"

	"repro/internal/array"
	"repro/internal/baseline"
	"repro/internal/fuzz"
	"repro/internal/workload"
)

// Config couples the two phases' budgets.
type Config struct {
	// Fuzz configures the primary Kondo campaign.
	Fuzz fuzz.Config
	// AFLBudget is the secondary havoc phase's test budget. Zero
	// disables the phase (pure Kondo).
	AFLBudget int
	// AFLSeed seeds the havoc phase's RNG.
	AFLSeed int64
}

// Result is the combined campaign outcome.
type Result struct {
	// Indices is the merged observation set of both phases.
	Indices *array.IndexSet
	// KondoIndices counts phase-1 observations; AFLAdded counts the
	// extra indices phase 2 contributed.
	KondoIndices, AFLAdded int
	// Evaluations sums both phases' debloat tests.
	Evaluations int
	// Elapsed is the total wall-clock duration.
	Elapsed time.Duration
}

// Run executes the two-phase hybrid campaign for a program. The
// context bounds both phases.
func Run(ctx context.Context, p workload.Program, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	f, err := fuzz.ForProgram(p, cfg.Fuzz)
	if err != nil {
		return nil, err
	}
	kres, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Indices:      kres.Indices.Clone(),
		KondoIndices: kres.Indices.Len(),
		Evaluations:  kres.Evaluations,
	}
	if cfg.AFLBudget > 0 {
		acfg := baseline.DefaultAFLConfig()
		acfg.MaxEvals = cfg.AFLBudget
		acfg.Seed = cfg.AFLSeed
		ares, err := baseline.AFL(ctx, p, acfg)
		if err != nil {
			return nil, err
		}
		before := res.Indices.Len()
		res.Indices.UnionWith(ares.Indices)
		res.AFLAdded = res.Indices.Len() - before
		res.Evaluations += ares.Evaluations
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
