package hybrid

import (
	"context"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestHybridNeverBelowKondoAlone(t *testing.T) {
	p := workload.MustCS(5, 64)
	gt, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}

	fcfg := fuzz.DefaultConfig()
	fcfg.Seed = 3
	fcfg.MaxEvals = 400

	pure, err := Run(context.Background(), p, Config{Fuzz: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	if pure.AFLAdded != 0 || pure.Evaluations == 0 {
		t.Errorf("pure run: %+v", pure)
	}

	hyb, err := Run(context.Background(), p, Config{Fuzz: fcfg, AFLBudget: 800, AFLSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pureRecall := metrics.Recall(gt, pure.Indices)
	hybRecall := metrics.Recall(gt, hyb.Indices)
	t.Logf("recall: pure=%.3f hybrid=%.3f (AFL added %d indices)", pureRecall, hybRecall, hyb.AFLAdded)
	if hybRecall < pureRecall {
		t.Errorf("hybrid recall %.3f below pure %.3f", hybRecall, pureRecall)
	}
	if hyb.Evaluations <= pure.Evaluations {
		t.Error("hybrid should spend the secondary budget")
	}
	if hyb.KondoIndices != pure.KondoIndices {
		t.Errorf("phase-1 observations differ: %d vs %d (seeded runs must agree)",
			hyb.KondoIndices, pure.KondoIndices)
	}
}

func TestHybridObservationsStayExact(t *testing.T) {
	// Both phases record only real accesses, so the merged set is a
	// subset of the truth (precision of raw observations is 1).
	p := workload.MustCS(2, 64)
	gt, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fuzz.DefaultConfig()
	fcfg.Seed = 1
	fcfg.MaxEvals = 300
	res, err := Run(context.Background(), p, Config{Fuzz: fcfg, AFLBudget: 300, AFLSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := metrics.Precision(gt, res.Indices); p != 1 {
		t.Errorf("raw observation precision = %v, want 1", p)
	}
}
