package fuzz

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/obs"
)

// BatchOut is one batch slot's outcome: the index set the debloat test
// observed, or the error it failed with, plus the evaluator's
// wall-clock cost. Skipped marks a slot whose evaluation never ran
// because the campaign was canceled first; the merge loop stops there.
type BatchOut struct {
	// Indices is I_v, the index set the debloat test observed. Nil
	// when Err is set or the slot was skipped.
	Indices *array.IndexSet
	// Err is the debloat test's failure, if any.
	Err error
	// Dur is the evaluator's wall-clock duration for this slot.
	Dur time.Duration
	// Skipped marks a slot abandoned due to cancellation; the campaign
	// records no iteration for it.
	Skipped bool
}

// BatchRunner evaluates one schedule round's seed batch and returns
// per-slot outcomes aligned with the batch. It is the distribution
// seam of the campaign: Run selects batches and merges their results
// sequentially in seed order regardless of who evaluated them, so any
// runner that returns the same per-seed outcomes a local evaluation
// would — an in-process pool, or a coordinator leasing spans of the
// batch to remote workers — yields a bit-identical campaign.
//
// RunBatch must return exactly len(batch) outcomes. A returned error
// is a transport- or infrastructure-level failure (not a failing
// debloat test — those go in BatchOut.Err) and aborts the campaign.
// When the context is canceled, a runner should mark the unevaluated
// slots Skipped and return promptly.
type BatchRunner interface {
	RunBatch(ctx context.Context, batch [][]float64) ([]BatchOut, error)
}

// PoolRunner is the in-process BatchRunner: a bounded worker pool over
// one evaluator. It is the default runner of every campaign and the
// evaluation engine a remote orchestra worker runs leased spans
// through, so local and distributed campaigns share one evaluation
// path.
type PoolRunner struct {
	// Eval is the debloat test.
	Eval Evaluator
	// Workers bounds the pool. Values below 2 evaluate the batch
	// inline on the calling goroutine, preserving the sequential
	// campaign's execution environment exactly.
	Workers int
}

// RunBatch evaluates the batch through the worker pool, returning
// per-slot outcomes aligned with the batch.
func (p *PoolRunner) RunBatch(ctx context.Context, batch [][]float64) ([]BatchOut, error) {
	outs := make([]BatchOut, len(batch))
	workers := p.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	runOne := func(i int) {
		if ctx.Err() != nil {
			outs[i].Skipped = true
			return
		}
		t0 := time.Now()
		iv, err := p.Eval(batch[i])
		outs[i] = BatchOut{Indices: iv, Err: err, Dur: time.Since(t0)}
	}
	if workers <= 1 {
		for i := range batch {
			runOne(i)
		}
		return outs, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each pool worker gets its own trace lane (tid 0 is the
			// scheduler, 1 the merge loop) so Perfetto renders the
			// batch's parallelism as stacked rows.
			sp := obs.Start(ctx, "fuzz.worker")
			if sp != nil {
				sp.SetTID(w+2).Arg("worker", w)
			}
			defer sp.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				runOne(i)
			}
		}(w)
	}
	wg.Wait()
	return outs, nil
}
