// Package fuzz implements Kondo's data-coverage-directed fuzzing
// schedules (paper §IV-A, Alg. 1): plain exploit-and-explore, and
// boundary-based exploit-and-explore with useful/non-useful parameter
// clusters, ε-greedy scheduling between the two, random restarts, and
// new-offset-driven stopping.
//
// Unlike traditional fuzzers, which maximize code coverage, these
// schedules maximize *data* coverage: they direct parameter-value
// mutation toward the boundaries of the regions of the data array
// where accesses occur, so that the carver sees the subset outline
// after far fewer debloat tests than brute force.
package fuzz

import (
	"fmt"
	"time"
)

// DefaultBatchSize is the number of seeds drained per schedule round
// when Config.BatchSize is zero.
const DefaultBatchSize = 32

// Config holds the fuzz-schedule parameters of paper Fig. 5. The
// defaults are the evaluation configuration of §V-B.
type Config struct {
	// InitialSeeds is n, the number of uniformly sampled parameter
	// values that seed the queue (and refill it on random restart).
	InitialSeeds int
	// MaxIter is max_iter: the maximum number of schedule iterations,
	// each evaluating one seed.
	MaxIter int
	// StopIter is stop_iter: terminate early after this many
	// consecutive iterations that discovered no new offset.
	StopIter int
	// Diameter is the cluster diameter: a parameter value farther than
	// this from every same-type cluster center starts a new cluster.
	Diameter float64
	// UsefulReps (u_reps) and NonUsefulReps (n_reps) are how many
	// mutants each evaluated seed spawns.
	UsefulReps    int
	NonUsefulReps int
	// UsefulDist (u_dist) and NonUsefulDist (n_dist) bound the
	// per-dimension mutation frame: the step magnitude is drawn
	// uniformly from the interval.
	UsefulDist    [2]float64
	NonUsefulDist [2]float64
	// Restart is the iteration cadence of random restarts, which
	// prevent localization around the initial seeds.
	Restart int
	// DecayIter and Decay drive the ε-greedy transition: every
	// DecayIter iterations, ε ← Decay·ε, shifting probability mass
	// from plain EE mutation to boundary-based mutation.
	DecayIter int
	Decay     float64
	// Epsilon is the initial ε (1 = all plain EE at the start).
	Epsilon float64
	// Boundary enables boundary-based mutation. With it false the
	// schedule is the plain exploit-and-explore baseline of §IV-A1
	// regardless of ε decay (the Fig. 4 contrast and our schedule
	// ablation).
	Boundary bool
	// MaxEvals, when positive, bounds the number of debloat tests
	// (seed evaluations) — the "number of runs" budget.
	MaxEvals int
	// TimeBudget, when positive, bounds wall-clock time — the fixed
	// time budget of §V-C.
	TimeBudget time.Duration
	// Seed seeds the schedule's random source, making runs
	// reproducible.
	Seed int64
	// InitialValues, when non-empty, is a seed corpus enqueued ahead
	// of the first random sampling — e.g. the useful valuations of an
	// earlier campaign, so a continued run (§VI: "let Kondo run for
	// some more time") starts from what is already known instead of
	// from scratch.
	InitialValues [][]float64
	// Workers bounds the worker pool that runs debloat tests
	// concurrently within a batch. Zero or negative resolves to
	// runtime.GOMAXPROCS(0). The worker count changes only wall-clock
	// time: for a fixed Seed the campaign outcome is bit-identical at
	// any Workers value. Workers > 1 requires an Evaluator that is
	// safe for concurrent use.
	Workers int
	// BatchSize is the number of seeds drained from the queue per
	// schedule round and evaluated concurrently. It is deliberately
	// independent of Workers so the schedule (batch composition and
	// RNG stream) never depends on the degree of parallelism. Zero
	// resolves to DefaultBatchSize.
	BatchSize int
	// Witnesses enables inclusion-provenance recording: for every
	// index the campaign covers, Result.Witnesses remembers the seed
	// (by ordinal into Result.Seeds) whose debloat test first observed
	// it. Recording happens in the sequential merge phase, so it is
	// deterministic and does not perturb the campaign at any worker
	// count; it costs one map entry per covered index.
	Witnesses bool
	// Runner, when non-nil, replaces the in-process worker pool as the
	// batch evaluation engine — the distribution seam. The schedule
	// (batch composition, RNG stream) and the sequential seed-order
	// merge stay in Run, so any runner returning the same per-seed
	// outcomes a local evaluation would (e.g. an orchestra coordinator
	// leasing batch spans to remote workers) yields a bit-identical
	// campaign. With a Runner set the Evaluator may be nil.
	Runner BatchRunner
	// OnCoverage, when non-nil, is called with each round's coverage
	// snapshot as it is recorded — the live-telemetry hook the
	// `kondo -status-addr` endpoint subscribes through. It runs on the
	// campaign's sequential merge goroutine after the round's point is
	// appended to Result.Coverage; it must not block for long and must
	// not call back into the Fuzzer.
	OnCoverage func(CoveragePoint)
}

// DefaultConfig returns the §V-B configuration: u_reps=8, n_reps=5,
// max_iter=2000, stop_iter=500, u_dist=[5,15], n_dist=[30,50],
// decay=0.97 every 200 iterations, ε starting at 1, boundary-based
// mutation enabled.
func DefaultConfig() Config {
	return Config{
		InitialSeeds:  20,
		MaxIter:       2000,
		StopIter:      500,
		Diameter:      20,
		UsefulReps:    8,
		NonUsefulReps: 5,
		UsefulDist:    [2]float64{5, 15},
		NonUsefulDist: [2]float64{30, 50},
		Restart:       250,
		DecayIter:     200,
		Decay:         0.97,
		Epsilon:       1,
		Boundary:      true,
	}
}

func (c Config) validate() error {
	if c.InitialSeeds <= 0 {
		return fmt.Errorf("fuzz: InitialSeeds must be positive")
	}
	if c.MaxIter <= 0 {
		return fmt.Errorf("fuzz: MaxIter must be positive")
	}
	if c.UsefulReps < 0 || c.NonUsefulReps < 0 {
		return fmt.Errorf("fuzz: negative mutation reps")
	}
	if c.UsefulDist[0] > c.UsefulDist[1] || c.NonUsefulDist[0] > c.NonUsefulDist[1] {
		return fmt.Errorf("fuzz: mutation distance interval inverted")
	}
	if c.Decay <= 0 || c.Decay > 1 {
		return fmt.Errorf("fuzz: Decay must be in (0,1]")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("fuzz: Epsilon must be in [0,1]")
	}
	if c.Diameter <= 0 {
		return fmt.Errorf("fuzz: Diameter must be positive")
	}
	return nil
}
