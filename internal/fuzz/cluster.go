package fuzz

import (
	"math"

	"repro/internal/geom"
)

// cluster is one spatial cluster of evaluated parameter values of a
// single type (useful or non-useful). The boundary-based schedule
// mutates values toward the nearest cluster of the *opposite* type,
// because the space between a useful and a non-useful cluster holds
// the subset boundary (paper §IV-A2).
type cluster struct {
	center geom.Point
	count  int
}

// clusterSet is the ADD_TO_CLUSTER bookkeeping for one value type.
type clusterSet struct {
	clusters []cluster
	diameter float64
}

func newClusterSet(diameter float64) *clusterSet {
	return &clusterSet{diameter: diameter}
}

// add implements ADD_TO_CLUSTER: if the value is farther than the
// configured diameter from every existing center it becomes a new
// cluster center; otherwise it joins the nearest cluster, whose
// center is updated to the running mean of its members.
func (cs *clusterSet) add(v geom.Point) {
	best := -1
	bestD2 := math.Inf(1)
	for i := range cs.clusters {
		if d2 := v.Dist2(cs.clusters[i].center); d2 < bestD2 {
			bestD2 = d2
			best = i
		}
	}
	if best < 0 || bestD2 > cs.diameter*cs.diameter {
		cs.clusters = append(cs.clusters, cluster{center: v.Clone(), count: 1})
		return
	}
	c := &cs.clusters[best]
	c.count++
	inv := 1.0 / float64(c.count)
	for k := range c.center {
		c.center[k] += (v[k] - c.center[k]) * inv
	}
}

// nearest returns the cluster center closest to v and its distance, or
// ok=false if the set is empty.
func (cs *clusterSet) nearest(v geom.Point) (center geom.Point, dist float64, ok bool) {
	best := -1
	bestD2 := math.Inf(1)
	for i := range cs.clusters {
		if d2 := v.Dist2(cs.clusters[i].center); d2 < bestD2 {
			bestD2 = d2
			best = i
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	return cs.clusters[best].center, math.Sqrt(bestD2), true
}

// size returns the number of clusters.
func (cs *clusterSet) size() int { return len(cs.clusters) }
