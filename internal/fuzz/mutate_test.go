package fuzz

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/workload"
)

func testFuzzer(t *testing.T, cfg Config) *Fuzzer {
	t.Helper()
	space := array.MustSpace(128, 128)
	params := workload.ParamSpace{{Name: "x", Lo: 0, Hi: 127}, {Name: "y", Lo: 0, Hi: 127}}
	eval := func(v []float64) (*array.IndexSet, error) {
		return array.NewIndexSet(space), nil
	}
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUniformStepWithinFrame(t *testing.T) {
	f := testFuzzer(t, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	v := geom.NewPoint(60, 60)
	dist := [2]float64{5, 15}
	for i := 0; i < 500; i++ {
		m := f.uniformStep(v, dist, rng)
		for k := range m {
			step := math.Abs(m[k] - v[k])
			if step < dist[0]-1e-9 || step > dist[1]+1e-9 {
				t.Fatalf("step %v outside frame [%v, %v]", step, dist[0], dist[1])
			}
		}
	}
}

func TestGreedyStepMovesTowardTarget(t *testing.T) {
	f := testFuzzer(t, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	v := geom.NewPoint(20, 20)
	target := geom.NewPoint(100, 100)
	dist := [2]float64{5, 15}
	closer := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		m := geom.Point(f.greedyStep(v, target, v.Dist(target), dist, rng))
		if m.Dist(target) < v.Dist(target) {
			closer++
		}
	}
	// The jitter spreads probes along the boundary, but the bulk of
	// mutants must move toward the opposite-type cluster.
	if float64(closer)/trials < 0.8 {
		t.Errorf("only %d/%d greedy steps moved toward the target", closer, trials)
	}
}

func TestGreedyStepScalesWithDistance(t *testing.T) {
	f := testFuzzer(t, DefaultConfig())
	dist := [2]float64{5, 15}
	v := geom.NewPoint(0, 0)
	target := geom.NewPoint(1, 0) // direction +x

	avgStep := func(targetDist float64) float64 {
		rng := rand.New(rand.NewSource(3))
		var total float64
		const trials = 400
		for i := 0; i < trials; i++ {
			m := geom.Point(f.greedyStep(v, target, targetDist, dist, rng))
			total += m.Dist(v)
		}
		return total / trials
	}
	far := avgStep(200) // far from the boundary: big frame
	near := avgStep(2)  // near the boundary: dense, small frame
	if far <= near {
		t.Errorf("frame scaling inverted: far=%v near=%v", far, near)
	}
}

func TestMutantsClampedIntoTheta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.MaxIter = 300
	cfg.Workers = 1 // the evaluator records every valuation
	space := array.MustSpace(16, 16)
	params := workload.ParamSpace{{Name: "x", Lo: 3, Hi: 12}, {Name: "y", Lo: 3, Hi: 12}}
	var evaluated [][]float64
	eval := func(v []float64) (*array.IndexSet, error) {
		evaluated = append(evaluated, append([]float64(nil), v...))
		s := array.NewIndexSet(space)
		s.Add(array.NewIndex(workload.RoundParam(v[0]), workload.RoundParam(v[1])))
		return s, nil
	}
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, v := range evaluated {
		if v[0] < 3 || v[0] > 12 || v[1] < 3 || v[1] > 12 {
			t.Fatalf("evaluated value %v outside Θ", v)
		}
	}
}

func TestSeedKeyRoundsToValuation(t *testing.T) {
	if seedKey([]float64{1.4, 2.6}) != seedKey([]float64{0.5, 3.4}) {
		t.Error("values rounding to the same valuation should share a key")
	}
	if seedKey([]float64{1, 2}) == seedKey([]float64{2, 1}) {
		t.Error("distinct valuations share a key")
	}
}

func TestFuzzerCurveMonotone(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.MaxIter = 400
	f, err := New(params, space, rectEvaluator(space, 5, 25, 5, 25), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != res.Evaluations {
		t.Fatalf("curve has %d samples, %d evaluations", len(res.Curve), res.Evaluations)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] < res.Curve[i-1] {
			t.Fatalf("coverage curve decreased at %d", i)
		}
	}
	if res.Curve[len(res.Curve)-1] != res.Indices.Len() {
		t.Error("curve endpoint disagrees with final |IS|")
	}
}
