package fuzz

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestRunEmitsSpansAndMetrics runs a multi-worker campaign with a
// trace and a registry in the context and checks that the export is
// well-formed Chrome trace JSON carrying fuzz spans from multiple
// worker lanes, and that the live counters match the result. Under
// -race this is the observability concurrency contract of the pool.
func TestRunEmitsSpansAndMetrics(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.MaxIter = 400
	cfg.Workers = 4
	f, err := New(params, space, rectEvaluator(space, 5, 20, 5, 20), cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace()
	reg := obs.NewRegistry()
	ctx := obs.WithTrace(context.Background(), tr)
	ctx = obs.WithRegistry(ctx, reg)
	res, err := f.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TID  int      `json:"tid"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}

	counts := map[string]int{}
	tids := map[int]bool{}
	for _, e := range out.TraceEvents {
		counts[e.Name]++
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
		if e.Dur == nil || *e.Dur < 0 {
			t.Fatalf("span %q without a duration", e.Name)
		}
		if e.Name == "fuzz.worker" {
			tids[e.TID] = true
		}
	}
	if counts["fuzz.run"] != 1 {
		t.Errorf("fuzz.run spans = %d, want 1", counts["fuzz.run"])
	}
	if counts["fuzz.round"] != res.Batches {
		t.Errorf("fuzz.round spans = %d, want %d batches", counts["fuzz.round"], res.Batches)
	}
	if counts["fuzz.worker"] == 0 {
		t.Error("no fuzz.worker spans from a 4-worker campaign")
	}
	if len(tids) < 2 {
		t.Errorf("worker spans spread over %d lanes, want >= 2", len(tids))
	}

	if got := reg.Counter("kondo_fuzz_evals_total").Value(); got != int64(res.Evaluations) {
		t.Errorf("evals counter = %d, want %d", got, res.Evaluations)
	}
	if got := reg.Counter("kondo_fuzz_batches_total").Value(); got != int64(res.Batches) {
		t.Errorf("batches counter = %d, want %d", got, res.Batches)
	}
	if got := reg.Counter("kondo_fuzz_dedup_skips_total").Value(); got != int64(res.DedupSkips) {
		t.Errorf("dedup counter = %d, want %d", got, res.DedupSkips)
	}
	if reg.Gauge("kondo_fuzz_indices").Value() != float64(res.Indices.Len()) {
		t.Error("indices gauge does not match the result")
	}
}

// TestRunWithoutObservabilityUnchanged pins that a campaign with a
// bare context behaves identically to the same campaign with tracing
// and metrics attached — instrumentation must not perturb the
// deterministic schedule.
func TestRunWithoutObservabilityUnchanged(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	run := func(ctx context.Context) *Result {
		cfg := DefaultConfig()
		cfg.Seed = 3
		cfg.MaxIter = 200
		f, err := New(params, space, rectEvaluator(space, 4, 12, 4, 12), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(context.Background())
	traced := run(obs.WithRegistry(obs.WithTrace(context.Background(), obs.NewTrace()), obs.NewRegistry()))
	if plain.Evaluations != traced.Evaluations || plain.Indices.Len() != traced.Indices.Len() ||
		plain.Batches != traced.Batches || plain.StopReason != traced.StopReason {
		t.Errorf("instrumented campaign diverged: %+v vs %+v", plain, traced)
	}
}
