package fuzz

import (
	"context"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	params := workload.ParamSpace{{Name: "x", Lo: 0, Hi: 10}}
	space := array.MustSpace(8, 8)
	eval := func(v []float64) (*array.IndexSet, error) {
		return array.NewIndexSet(space), nil
	}

	bad := []func(*Config){
		func(c *Config) { c.InitialSeeds = 0 },
		func(c *Config) { c.MaxIter = 0 },
		func(c *Config) { c.UsefulReps = -1 },
		func(c *Config) { c.UsefulDist = [2]float64{10, 5} },
		func(c *Config) { c.Decay = 0 },
		func(c *Config) { c.Decay = 1.5 },
		func(c *Config) { c.Epsilon = -0.1 },
		func(c *Config) { c.Diameter = 0 },
	}
	for i, mod := range bad {
		c := base
		mod(&c)
		if _, err := New(params, space, eval, c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(nil, space, eval, base); err == nil {
		t.Error("empty param space accepted")
	}
	if _, err := New(params, space, nil, base); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestClusterSet(t *testing.T) {
	cs := newClusterSet(5)
	cs.add(geom.NewPoint(0, 0))
	cs.add(geom.NewPoint(1, 1)) // joins first cluster
	cs.add(geom.NewPoint(50, 50))
	if cs.size() != 2 {
		t.Fatalf("size = %d, want 2", cs.size())
	}
	c, d, ok := cs.nearest(geom.NewPoint(2, 2))
	if !ok {
		t.Fatal("nearest failed")
	}
	if c[0] > 1 || d > 3 {
		t.Errorf("nearest = %v at %v", c, d)
	}
	// Running-mean center: first cluster center is (0.5, 0.5).
	if c[0] != 0.5 || c[1] != 0.5 {
		t.Errorf("running mean center = %v, want (0.5, 0.5)", c)
	}
	empty := newClusterSet(5)
	if _, _, ok := empty.nearest(geom.NewPoint(0, 0)); ok {
		t.Error("nearest on empty set should report !ok")
	}
}

// rectEvaluator simulates a program that reads index (x, y) when the
// two parameters land inside a rectangle of the parameter space.
func rectEvaluator(space array.Space, loX, hiX, loY, hiY int) Evaluator {
	return func(v []float64) (*array.IndexSet, error) {
		set := array.NewIndexSet(space)
		x, y := workload.RoundParam(v[0]), workload.RoundParam(v[1])
		if x >= loX && x <= hiX && y >= loY && y <= hiY {
			set.Add(array.NewIndex(x, y))
		}
		return set, nil
	}
}

func TestFuzzerFindsRectangle(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Name: "x", Lo: 0, Hi: 63}, {Name: "y", Lo: 0, Hi: 63}}
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.MaxIter = 1500
	f, err := New(params, space, rectEvaluator(space, 10, 30, 10, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Useful == 0 || res.NonUseful == 0 {
		t.Fatalf("degenerate campaign: %+v", res)
	}
	// The campaign must discover a large share of the 21x21 region.
	found := res.Indices.Len()
	if found < 200 {
		t.Errorf("found only %d of 441 rectangle indices", found)
	}
	// All discovered indices must be inside the rectangle (the
	// evaluator is exact, so IS ⊆ I_Θ always).
	res.Indices.Each(func(ix array.Index) bool {
		if ix[0] < 10 || ix[0] > 30 || ix[1] < 10 || ix[1] > 30 {
			t.Errorf("index %v outside the true region", ix)
			return false
		}
		return true
	})
	if res.UsefulClusters == 0 || res.NonUsefulClusters == 0 {
		t.Error("no clusters formed")
	}
}

func TestFuzzerDeterministicWithSeed(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.MaxIter = 300
		f, err := New(params, space, rectEvaluator(space, 5, 20, 5, 20), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Evaluations != b.Evaluations || a.Indices.Len() != b.Indices.Len() {
		t.Errorf("seeded runs differ: %d/%d vs %d/%d",
			a.Evaluations, a.Indices.Len(), b.Evaluations, b.Indices.Len())
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("seed traces differ in length")
	}
	for i := range a.Seeds {
		for k := range a.Seeds[i].V {
			if a.Seeds[i].V[k] != b.Seeds[i].V[k] {
				t.Fatalf("seed %d differs", i)
			}
		}
	}
}

func TestFuzzerRespectsMaxEvals(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	cfg := DefaultConfig()
	cfg.MaxEvals = 25
	f, err := New(params, space, rectEvaluator(space, 0, 31, 0, 31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 25 {
		t.Errorf("Evaluations = %d, budget 25", res.Evaluations)
	}
}

func TestFuzzerRespectsTimeBudget(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	cfg := DefaultConfig()
	cfg.TimeBudget = time.Millisecond
	slow := func(v []float64) (*array.IndexSet, error) {
		time.Sleep(200 * time.Microsecond)
		return array.NewIndexSet(space), nil
	}
	f, err := New(params, space, slow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Error("time budget not respected")
	}
}

func TestFuzzerStopsWhenIdle(t *testing.T) {
	// An evaluator that never finds anything: the schedule must stop
	// after StopIter idle iterations, well before MaxIter.
	space := array.MustSpace(16, 16)
	params := workload.ParamSpace{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}}
	cfg := DefaultConfig()
	cfg.StopIter = 50
	cfg.MaxIter = 100000
	f, err := New(params, space, func(v []float64) (*array.IndexSet, error) {
		return array.NewIndexSet(space), nil
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100000 {
		t.Errorf("idle stop did not trigger: %d iterations", res.Iterations)
	}
}

func TestFuzzerNeverEvaluatesSameValuationTwice(t *testing.T) {
	space := array.MustSpace(16, 16)
	params := workload.ParamSpace{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}}
	seen := map[string]int{}
	eval := func(v []float64) (*array.IndexSet, error) {
		key := seedKey(v)
		seen[key]++
		return rectEvaluator(space, 4, 10, 4, 10)(v)
	}
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.MaxIter = 1000
	cfg.Workers = 1 // the evaluator mutates `seen` without a lock
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for key, n := range seen {
		if n > 1 {
			t.Errorf("valuation %s evaluated %d times", key, n)
		}
	}
}

func TestInitialValuesCorpusEvaluatedFirst(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	var order [][]float64
	eval := func(v []float64) (*array.IndexSet, error) {
		order = append(order, append([]float64(nil), v...))
		return rectEvaluator(space, 0, 31, 0, 31)(v)
	}
	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.MaxIter = 50
	cfg.Workers = 1 // the evaluator records arrival order
	cfg.InitialValues = [][]float64{{3, 4}, {99, -5} /* clamped */, {7, 7}}
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) < 3 {
		t.Fatalf("only %d evaluations", len(order))
	}
	if order[0][0] != 3 || order[0][1] != 4 {
		t.Errorf("first evaluation = %v, want corpus seed (3,4)", order[0])
	}
	if order[1][0] != 31 || order[1][1] != 0 {
		t.Errorf("second evaluation = %v, want clamped (31,0)", order[1])
	}
	// Wrong-arity corpus entries are ignored.
	cfg.InitialValues = [][]float64{{1}}
	f2, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestResumeImprovesOnColdStart verifies the §VI continuation story: a
// second campaign seeded with the first campaign's useful valuations
// discovers at least everything the first run knew, within the same
// fresh budget.
func TestResumeImprovesOnColdStart(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 63}, {Lo: 0, Hi: 63}}
	eval := rectEvaluator(space, 20, 40, 20, 40)

	first := DefaultConfig()
	first.Seed = 2
	first.MaxEvals = 150
	f1, err := New(params, space, eval, first)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var corpus [][]float64
	for _, s := range res1.Seeds {
		if s.Useful {
			corpus = append(corpus, s.V)
		}
	}
	second := DefaultConfig()
	second.Seed = 3
	second.MaxEvals = 300
	second.InitialValues = corpus
	f2, err := New(params, space, eval, second)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := f2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Indices.Len() < res1.Indices.Len() {
		t.Errorf("resumed campaign found %d < first run's %d", res2.Indices.Len(), res1.Indices.Len())
	}
}

func TestBoundaryScheduleConcentratesNearBoundary(t *testing.T) {
	// Compare the share of evaluations near the region boundary for
	// plain EE vs boundary-based EE — the Fig. 4 contrast. The
	// boundary schedule should probe the boundary band at least as
	// densely.
	space := array.MustSpace(128, 128)
	params := workload.ParamSpace{{Lo: 0, Hi: 127}, {Lo: 0, Hi: 127}}
	nearBoundary := func(res *Result) float64 {
		// Region is x in [40,80] (all y): boundary at x=40 and x=80.
		near := 0
		for _, s := range res.Seeds {
			x := s.V[0]
			if (x >= 32 && x <= 48) || (x >= 72 && x <= 88) {
				near++
			}
		}
		return float64(near) / float64(len(res.Seeds))
	}
	eval := func(v []float64) (*array.IndexSet, error) {
		set := array.NewIndexSet(space)
		x := workload.RoundParam(v[0])
		y := workload.RoundParam(v[1])
		if x >= 40 && x <= 80 && y >= 0 && y <= 127 {
			set.Add(array.NewIndex(x, y))
		}
		return set, nil
	}
	runWith := func(boundary bool) float64 {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.MaxIter = 1200
		cfg.Boundary = boundary
		// Faster decay so boundary mutations actually engage within
		// the budget.
		cfg.DecayIter = 50
		cfg.Decay = 0.8
		f, err := New(params, space, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return nearBoundary(res)
	}
	plain := runWith(false)
	bb := runWith(true)
	t.Logf("near-boundary fraction: plain=%.3f boundary=%.3f", plain, bb)
	if bb < plain*0.8 {
		t.Errorf("boundary schedule less boundary-focused than plain EE: %.3f vs %.3f", bb, plain)
	}
}
