package fuzz

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/workload"
)

// Evaluator is the debloat test (paper Def. 2): given a parameter
// value it returns the index subset I_v the audited program accesses.
// An empty set marks the value as not useful.
type Evaluator func(v []float64) (*array.IndexSet, error)

// SeedRecord is one evaluated parameter value, retained for the Fig. 4
// style scatter of the fuzz campaign.
type SeedRecord struct {
	V      []float64
	Useful bool
}

// Result is the outcome of a fuzz campaign.
type Result struct {
	// Indices is IS = ∪ I_v over all evaluated seeds — the carver's
	// input.
	Indices *array.IndexSet
	// Seeds are the evaluated parameter values in evaluation order.
	Seeds []SeedRecord
	// Iterations is the number of schedule iterations executed.
	Iterations int
	// Evaluations is the number of debloat tests run (= p of Def. 3).
	Evaluations int
	// Useful and NonUseful count seed verdicts.
	Useful, NonUseful int
	// UsefulClusters and NonUsefulClusters count the clusters formed.
	UsefulClusters, NonUsefulClusters int
	// Curve is the cumulative |IS| after each evaluation — the
	// data-coverage-over-tests trajectory of the campaign.
	Curve []int
	// Elapsed is the campaign's wall-clock duration.
	Elapsed time.Duration
}

// Fuzzer runs Alg. 1 against one program's parameter space.
type Fuzzer struct {
	cfg    Config
	params workload.ParamSpace
	space  array.Space
	eval   Evaluator
}

// New returns a fuzzer for the given parameter space Θ, data-array
// space, and debloat-test evaluator.
func New(params workload.ParamSpace, space array.Space, eval Evaluator, cfg Config) (*Fuzzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("fuzz: empty parameter space")
	}
	if eval == nil {
		return nil, fmt.Errorf("fuzz: nil evaluator")
	}
	return &Fuzzer{cfg: cfg, params: params, space: space, eval: eval}, nil
}

// ForProgram returns a fuzzer whose evaluator is the virtual debloat
// test of the given program.
func ForProgram(p workload.Program, cfg Config) (*Fuzzer, error) {
	eval := func(v []float64) (*array.IndexSet, error) {
		return workload.RunOnVirtual(p, v)
	}
	return New(p.Params(), p.Space(), eval, cfg)
}

// Run executes the fuzz schedule (Alg. 1) and returns the accumulated
// index observations.
func (f *Fuzzer) Run() (*Result, error) {
	cfg := f.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}

	res := &Result{Indices: array.NewIndexSet(f.space)}
	clUseful := newClusterSet(cfg.Diameter)
	clNonUseful := newClusterSet(cfg.Diameter)
	evaluated := make(map[string]bool)
	var queue [][]float64
	eps := cfg.Epsilon
	idleIters := 0 // new_itr: iterations since the last new offset

	randomRestart := func() {
		queue = queue[:0]
		for i := 0; i < cfg.InitialSeeds; i++ {
			queue = append(queue, f.params.Sample(rng))
		}
	}

	// A provided corpus takes the first turn; it is clamped into Θ and
	// deduped by the normal evaluation bookkeeping.
	for _, v := range cfg.InitialValues {
		if len(v) == len(f.params) {
			queue = append(queue, f.params.Clamp(v))
		}
	}

	for itr := 1; itr <= cfg.MaxIter; itr++ {
		if cfg.StopIter > 0 && idleIters >= cfg.StopIter {
			break
		}
		if cfg.MaxEvals > 0 && res.Evaluations >= cfg.MaxEvals {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		res.Iterations = itr

		if len(queue) == 0 || (cfg.Restart > 0 && itr%cfg.Restart == 0) {
			randomRestart()
		}
		v := queue[0]
		queue = queue[1:]

		key := seedKey(v)
		if evaluated[key] {
			idleIters++
			continue
		}
		evaluated[key] = true

		iv, err := f.eval(v)
		if err != nil {
			return nil, fmt.Errorf("fuzz: debloat test at %v: %w", v, err)
		}
		res.Evaluations++
		useful := !iv.Empty()

		before := res.Indices.Len()
		res.Indices.UnionWith(iv)
		if res.Indices.Len() > before {
			idleIters = 0
		} else {
			idleIters++
		}
		res.Curve = append(res.Curve, res.Indices.Len())

		res.Seeds = append(res.Seeds, SeedRecord{V: append([]float64(nil), v...), Useful: useful})
		vp := geom.Point(v)
		if useful {
			res.Useful++
			clUseful.add(vp)
		} else {
			res.NonUseful++
			clNonUseful.add(vp)
		}

		for _, mutant := range f.mutate(vp, useful, eps, clUseful, clNonUseful, rng) {
			mk := seedKey(mutant)
			if !evaluated[mk] {
				queue = append(queue, mutant)
			}
		}

		if cfg.DecayIter > 0 && itr%cfg.DecayIter == 0 {
			eps *= cfg.Decay
		}
	}

	res.UsefulClusters = clUseful.size()
	res.NonUsefulClusters = clNonUseful.size()
	res.Elapsed = time.Since(start)
	return res, nil
}

// mutate implements MUTATE of Alg. 1: with probability ε a plain
// exploit/explore frame mutation; otherwise a boundary-based mutation
// toward the nearest opposite-type cluster, with the frame scaled by
// the distance to that cluster (far from the boundary → bigger frame,
// near → denser sampling).
func (f *Fuzzer) mutate(v geom.Point, useful bool, eps float64,
	clUseful, clNonUseful *clusterSet, rng *rand.Rand) [][]float64 {

	dist := f.cfg.NonUsefulDist
	reps := f.cfg.NonUsefulReps
	if useful {
		dist = f.cfg.UsefulDist
		reps = f.cfg.UsefulReps
	}

	useBoundary := false
	var target geom.Point
	var targetDist float64
	if f.cfg.Boundary && rng.Float64() > eps {
		opposite := clNonUseful
		if !useful {
			opposite = clUseful
		}
		if c, d, ok := opposite.nearest(v); ok {
			useBoundary = true
			target = c
			targetDist = d
		}
	}

	out := make([][]float64, 0, reps)
	for r := 0; r < reps; r++ {
		var mutant []float64
		if useBoundary {
			mutant = f.greedyStep(v, target, targetDist, dist, rng)
		} else {
			mutant = f.uniformStep(v, dist, rng)
		}
		out = append(out, f.params.Clamp(mutant))
	}
	return out
}

// uniformStep is UNIFORM: step each dimension by a magnitude drawn
// from the frame interval, in a random direction.
func (f *Fuzzer) uniformStep(v geom.Point, dist [2]float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(v))
	for k := range v {
		step := dist[0] + rng.Float64()*(dist[1]-dist[0])
		if rng.Intn(2) == 0 {
			step = -step
		}
		out[k] = v[k] + step
	}
	return out
}

// greedyStep is GREEDY: move toward the opposite-type cluster center,
// scaling the frame by the distance to it — a distant boundary gets a
// larger stride, a close boundary gets fine-grained probing.
func (f *Fuzzer) greedyStep(v, target geom.Point, targetDist float64, dist [2]float64, rng *rand.Rand) []float64 {
	scale := targetDist / f.cfg.Diameter
	if scale < 0.25 {
		scale = 0.25
	} else if scale > 4 {
		scale = 4
	}
	mag := (dist[0] + rng.Float64()*(dist[1]-dist[0])) * scale
	dir := target.Sub(v)
	n := dir.Norm()
	out := make([]float64, len(v))
	for k := range v {
		var d float64
		if n > 0 {
			d = dir[k] / n
		}
		// Step toward the boundary plus per-dimension jitter so the
		// probes spread along the boundary, not just across it.
		jitter := (rng.Float64()*2 - 1) * dist[0]
		out[k] = v[k] + d*mag + jitter
	}
	return out
}

// seedKey identifies a seed by the integer valuation it rounds to —
// the "i is new" dedup of Alg. 1 line 19, expressed in the units the
// program actually distinguishes.
func seedKey(v []float64) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", workload.RoundParam(x))
	}
	return b.String()
}
