package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Evaluator is the debloat test (paper Def. 2): given a parameter
// value it returns the index subset I_v the audited program accesses.
// An empty set marks the value as not useful.
//
// When Config.Workers resolves to more than one, the evaluator is
// called from multiple goroutines concurrently and must be safe for
// concurrent use. Evaluators built from workload programs
// (ForProgram, workload.RunOnVirtual) are safe: each call runs against
// its own accessor.
type Evaluator func(v []float64) (*array.IndexSet, error)

// SeedRecord is one evaluated parameter value, retained for the Fig. 4
// style scatter of the fuzz campaign.
type SeedRecord struct {
	V      []float64
	Useful bool
}

// EvalFailure records one debloat test that returned an error. The
// campaign skips the failing seed and keeps the accumulated index set;
// Run returns an error only when every attempted evaluation failed.
type EvalFailure struct {
	V   []float64
	Err error
}

// StopReason states why a campaign ended.
type StopReason string

const (
	// StopMaxIter: the MaxIter schedule-iteration cap was reached.
	StopMaxIter StopReason = "max-iter"
	// StopIdle: StopIter consecutive evaluated iterations found no new
	// offset.
	StopIdle StopReason = "stop-iter"
	// StopBudget: the MaxEvals debloat-test budget was spent.
	StopBudget StopReason = "max-evals"
	// StopDeadline: the TimeBudget wall-clock deadline passed.
	StopDeadline StopReason = "deadline"
	// StopCanceled: the campaign context was canceled (or hit its own
	// deadline).
	StopCanceled StopReason = "canceled"
	// StopExhausted: every integer valuation of Θ has been evaluated —
	// nothing is left to test.
	StopExhausted StopReason = "exhausted"
)

// Result is the outcome of a fuzz campaign.
type Result struct {
	// Indices is IS = ∪ I_v over all evaluated seeds — the carver's
	// input.
	Indices *array.IndexSet
	// Seeds are the evaluated parameter values in schedule order.
	Seeds []SeedRecord
	// Iterations is the number of schedule iterations executed (seeds
	// evaluated or failed; deduplicated seeds consume no iteration).
	Iterations int
	// Evaluations is the number of debloat tests that ran successfully
	// (= p of Def. 3).
	Evaluations int
	// Failures are the debloat tests that errored; their seeds were
	// skipped without aborting the campaign.
	Failures []EvalFailure
	// DedupSkips counts seeds dropped because their integer valuation
	// had already been evaluated (Alg. 1 line 19).
	DedupSkips int
	// Useful and NonUseful count seed verdicts.
	Useful, NonUseful int
	// UsefulClusters and NonUsefulClusters count the clusters formed.
	UsefulClusters, NonUsefulClusters int
	// Curve is the cumulative |IS| after each evaluation — the
	// data-coverage-over-tests trajectory of the campaign.
	Curve []int
	// Elapsed is the campaign's wall-clock duration.
	Elapsed time.Duration
	// EvalWall is the summed wall-clock time spent inside the
	// evaluator across all workers; it exceeds Elapsed when the pool
	// actually ran evaluations in parallel.
	EvalWall time.Duration
	// Workers is the resolved worker count the campaign ran with.
	Workers int
	// Batches is the number of seed batches dispatched to the pool.
	Batches int
	// MaxQueueDepth is the high-water mark of the pending-mutant
	// queue.
	MaxQueueDepth int
	// StopReason states why the campaign ended.
	StopReason StopReason
	// Coverage is the per-round coverage time series: covered-index
	// counts, discovery deltas, per-dimension extent coverage, and the
	// saturation estimate (always recorded; one point per batch).
	Coverage *CoverageSeries
	// Witnesses maps each covered index (by linear position) to the
	// ordinal into Seeds of the debloat test that first observed it —
	// the fuzz half of the inclusion-provenance index. Nil unless
	// Config.Witnesses was set.
	Witnesses map[int64]int
}

// Fuzzer runs Alg. 1 against one program's parameter space.
type Fuzzer struct {
	cfg    Config
	params workload.ParamSpace
	space  array.Space
	eval   Evaluator
}

// New returns a fuzzer for the given parameter space Θ, data-array
// space, and debloat-test evaluator.
func New(params workload.ParamSpace, space array.Space, eval Evaluator, cfg Config) (*Fuzzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("fuzz: empty parameter space")
	}
	// A campaign with an external batch runner (e.g. an orchestra
	// coordinator leasing batches to remote workers) never calls a
	// local evaluator; one is required otherwise.
	if eval == nil && cfg.Runner == nil {
		return nil, fmt.Errorf("fuzz: nil evaluator")
	}
	return &Fuzzer{cfg: cfg, params: params, space: space, eval: eval}, nil
}

// ForProgram returns a fuzzer whose evaluator is the virtual debloat
// test of the given program.
func ForProgram(p workload.Program, cfg Config) (*Fuzzer, error) {
	eval := func(v []float64) (*array.IndexSet, error) {
		return workload.RunOnVirtual(p, v)
	}
	return New(p.Params(), p.Space(), eval, cfg)
}

// Run executes the fuzz schedule (Alg. 1) and returns the accumulated
// index observations.
//
// Each schedule round drains a deterministic batch of seeds from the
// queue and evaluates it through a bounded worker pool; per-seed
// results are then merged sequentially in seed order, so a fixed
// Config.Seed yields bit-identical results at any worker count (the
// batch composition and the RNG stream depend only on the
// configuration, never on Workers).
//
// Cancellation stops the campaign within the current batch: Run
// returns the partial result accumulated so far with a nil error and
// StopReason set to StopCanceled. A failing debloat test is recorded
// in Result.Failures and skipped; Run returns an error only when every
// attempted evaluation failed.
func (f *Fuzzer) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := f.cfg
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runner := cfg.Runner
	if runner == nil {
		runner = &PoolRunner{Eval: f.eval, Workers: workers}
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	// Instruments resolve once per campaign; with no registry or trace
	// in the context every use below is a nil-receiver no-op.
	reg := obs.RegistryOf(ctx)
	mEvals := reg.Counter("kondo_fuzz_evals_total")
	mFailed := reg.Counter("kondo_fuzz_failed_evals_total")
	mDedup := reg.Counter("kondo_fuzz_dedup_skips_total")
	mBatches := reg.Counter("kondo_fuzz_batches_total")
	gIndices := reg.Gauge("kondo_fuzz_indices")
	gQueue := reg.Gauge("kondo_fuzz_queue_depth")
	gSaturation := reg.Gauge("kondo_fuzz_saturation")
	gNew := reg.Gauge("kondo_fuzz_new_indices")
	gDim := make([]*obs.Gauge, f.space.Rank())
	for k := range gDim {
		gDim[k] = reg.Gauge("kondo_fuzz_dim_coverage", obs.L("dim", strconv.Itoa(k)))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}

	cov := newCovTracker(f.space, start)
	res := &Result{Indices: array.NewIndexSet(f.space), Workers: workers, Coverage: cov.series}
	if cfg.Witnesses {
		res.Witnesses = make(map[int64]int)
	}
	runSpan := obs.Start(ctx, "fuzz.run")
	if runSpan != nil {
		runSpan.Arg("workers", workers).Arg("batch_size", batchSize)
	}
	defer func() {
		if runSpan != nil {
			runSpan.Arg("evals", res.Evaluations).Arg("stop", string(res.StopReason))
		}
		runSpan.End()
	}()
	clUseful := newClusterSet(cfg.Diameter)
	clNonUseful := newClusterSet(cfg.Diameter)
	evaluated := make(map[string]bool)
	totalVals := f.params.Valuations()
	var queue [][]float64
	eps := cfg.Epsilon
	idleIters := 0 // new_itr: evaluated iterations since the last new offset
	itr := 0       // schedule iterations = seeds handed to the evaluator

	// reseed adds n fresh uniform samples. It never clears the queue:
	// Alg. 1's restart re-seeds exploration but keeps the pending
	// boundary-mutant frontier.
	reseed := func() {
		for i := 0; i < cfg.InitialSeeds; i++ {
			queue = append(queue, f.params.Sample(rng))
		}
		if len(queue) > res.MaxQueueDepth {
			res.MaxQueueDepth = len(queue)
		}
	}

	// A provided corpus takes the first turn; it is clamped into Θ and
	// deduped by the normal evaluation bookkeeping.
	for _, v := range cfg.InitialValues {
		if len(v) == len(f.params) {
			queue = append(queue, f.params.Clamp(v))
		}
	}

	stop := StopMaxIter // reason when the for condition ends the loop
	batch := make([][]float64, 0, batchSize)
loop:
	for itr < cfg.MaxIter {
		if cfg.StopIter > 0 && idleIters >= cfg.StopIter {
			stop = StopIdle
			break
		}
		if cfg.MaxEvals > 0 && res.Evaluations >= cfg.MaxEvals {
			stop = StopBudget
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			stop = StopDeadline
			break
		}
		if ctx.Err() != nil {
			stop = StopCanceled
			break
		}

		// Select the round's batch: pop seeds in queue order, dropping
		// already-evaluated valuations, refilling with fresh uniform
		// samples when the queue drains. The batch size is bounded by
		// the remaining iteration and evaluation budgets and is
		// independent of the worker count.
		want := batchSize
		if left := cfg.MaxIter - itr; left < want {
			want = left
		}
		if cfg.MaxEvals > 0 {
			if left := cfg.MaxEvals - res.Evaluations; left < want {
				want = left
			}
		}
		batch = batch[:0]
		for len(batch) < want {
			if len(queue) == 0 {
				if int64(len(evaluated)) >= totalVals {
					break // Θ exhausted: no fresh sample exists
				}
				reseed()
				continue
			}
			v := queue[0]
			queue = queue[1:]
			key := seedKey(v)
			if evaluated[key] {
				// Already-seen valuations cost no debloat test; they
				// must not count toward the no-new-offset stop.
				res.DedupSkips++
				mDedup.Inc()
				continue
			}
			evaluated[key] = true
			batch = append(batch, v)
		}
		if len(batch) == 0 {
			stop = StopExhausted
			break
		}

		res.Batches++
		mBatches.Inc()
		roundNew := 0
		roundSpan := obs.Start(ctx, "fuzz.round")
		if roundSpan != nil {
			roundSpan.Arg("batch", res.Batches).Arg("seeds", len(batch))
		}
		outs, rerr := runner.RunBatch(ctx, batch)
		roundSpan.End()
		if rerr == nil && len(outs) != len(batch) {
			rerr = fmt.Errorf("fuzz: runner returned %d outcomes for a %d-seed batch", len(outs), len(batch))
		}
		if rerr != nil {
			// A runner error is infrastructure-level (a dead transport,
			// no workers to lease to), not a failing debloat test: the
			// campaign cannot make progress, so surface it.
			return nil, fmt.Errorf("fuzz: batch %d failed: %w", res.Batches, rerr)
		}

		// Merge in seed order. Only this sequential phase touches the
		// RNG, the clusters, and the accumulated state, so the outcome
		// is independent of how the runner interleaved (or distributed)
		// the evaluations.
		for i, v := range batch {
			out := outs[i]
			if out.Skipped {
				stop = StopCanceled
				break loop
			}
			itr++
			res.Iterations = itr
			res.EvalWall += out.Dur
			if out.Err != nil {
				res.Failures = append(res.Failures, EvalFailure{
					V:   append([]float64(nil), v...),
					Err: out.Err,
				})
				idleIters++
				mFailed.Inc()
			} else {
				res.Evaluations++
				mEvals.Inc()
				useful := !out.Indices.Empty()

				// Fold the eval's indices in one at a time so newly
				// covered indices can feed the coverage tracker and the
				// witness map. Each index is added at most once, so the
				// result is independent of the set's iteration order.
				added := 0
				out.Indices.Each(func(ix array.Index) bool {
					ok, err := res.Indices.Add(ix)
					if err != nil || !ok {
						return true
					}
					added++
					cov.observe(ix)
					if res.Witnesses != nil {
						if lin, lerr := f.space.Linear(ix); lerr == nil {
							// The SeedRecord for this eval is appended
							// below, so its ordinal is len(res.Seeds).
							res.Witnesses[lin] = len(res.Seeds)
						}
					}
					return true
				})
				roundNew += added
				if added > 0 {
					idleIters = 0
				} else {
					idleIters++
				}
				res.Curve = append(res.Curve, res.Indices.Len())

				res.Seeds = append(res.Seeds, SeedRecord{V: append([]float64(nil), v...), Useful: useful})
				vp := geom.Point(v)
				if useful {
					res.Useful++
					clUseful.add(vp)
				} else {
					res.NonUseful++
					clNonUseful.add(vp)
				}

				for _, mutant := range f.mutate(vp, useful, eps, clUseful, clNonUseful, rng) {
					if !evaluated[seedKey(mutant)] {
						queue = append(queue, mutant)
					}
				}
				if len(queue) > res.MaxQueueDepth {
					res.MaxQueueDepth = len(queue)
				}
				gIndices.Set(float64(res.Indices.Len()))
				gQueue.Set(float64(len(queue)))
			}

			if cfg.DecayIter > 0 && itr%cfg.DecayIter == 0 {
				eps *= cfg.Decay
			}
			if cfg.Restart > 0 && itr%cfg.Restart == 0 {
				reseed()
			}
		}

		// Close the round: one coverage point per merged batch. The
		// tracker only reads accumulated state, so the snapshot (and
		// the optional live-telemetry callback) cannot perturb the
		// campaign.
		p := cov.snapshot(res.Batches, itr, res.Evaluations, res.Indices.Len(), roundNew)
		gSaturation.Set(p.Saturation)
		gNew.Set(float64(p.New))
		for k, v := range p.DimCoverage {
			gDim[k].Set(v)
		}
		if cfg.OnCoverage != nil {
			cfg.OnCoverage(p)
		}
	}
	res.StopReason = stop

	res.UsefulClusters = clUseful.size()
	res.NonUsefulClusters = clNonUseful.size()
	res.Elapsed = time.Since(start)
	if res.Evaluations == 0 && len(res.Failures) > 0 {
		first := res.Failures[0]
		return nil, fmt.Errorf("fuzz: every debloat test failed (%d failures); first at %v: %w",
			len(res.Failures), first.V, first.Err)
	}
	return res, nil
}

// mutate implements MUTATE of Alg. 1: with probability ε a plain
// exploit/explore frame mutation; otherwise a boundary-based mutation
// toward the nearest opposite-type cluster, with the frame scaled by
// the distance to that cluster (far from the boundary → bigger frame,
// near → denser sampling).
func (f *Fuzzer) mutate(v geom.Point, useful bool, eps float64,
	clUseful, clNonUseful *clusterSet, rng *rand.Rand) [][]float64 {

	dist := f.cfg.NonUsefulDist
	reps := f.cfg.NonUsefulReps
	if useful {
		dist = f.cfg.UsefulDist
		reps = f.cfg.UsefulReps
	}

	useBoundary := false
	var target geom.Point
	var targetDist float64
	if f.cfg.Boundary && rng.Float64() > eps {
		opposite := clNonUseful
		if !useful {
			opposite = clUseful
		}
		if c, d, ok := opposite.nearest(v); ok {
			useBoundary = true
			target = c
			targetDist = d
		}
	}

	out := make([][]float64, 0, reps)
	for r := 0; r < reps; r++ {
		var mutant []float64
		if useBoundary {
			mutant = f.greedyStep(v, target, targetDist, dist, rng)
		} else {
			mutant = f.uniformStep(v, dist, rng)
		}
		out = append(out, f.params.Clamp(mutant))
	}
	return out
}

// uniformStep is UNIFORM: step each dimension by a magnitude drawn
// from the frame interval, in a random direction.
func (f *Fuzzer) uniformStep(v geom.Point, dist [2]float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(v))
	for k := range v {
		step := dist[0] + rng.Float64()*(dist[1]-dist[0])
		if rng.Intn(2) == 0 {
			step = -step
		}
		out[k] = v[k] + step
	}
	return out
}

// greedyStep is GREEDY: move toward the opposite-type cluster center,
// scaling the frame by the distance to it — a distant boundary gets a
// larger stride, a close boundary gets fine-grained probing.
func (f *Fuzzer) greedyStep(v, target geom.Point, targetDist float64, dist [2]float64, rng *rand.Rand) []float64 {
	scale := targetDist / f.cfg.Diameter
	if scale < 0.25 {
		scale = 0.25
	} else if scale > 4 {
		scale = 4
	}
	mag := (dist[0] + rng.Float64()*(dist[1]-dist[0])) * scale
	dir := target.Sub(v)
	n := dir.Norm()
	out := make([]float64, len(v))
	for k := range v {
		var d float64
		if n > 0 {
			d = dir[k] / n
		}
		// Step toward the boundary plus per-dimension jitter so the
		// probes spread along the boundary, not just across it.
		jitter := (rng.Float64()*2 - 1) * dist[0]
		out[k] = v[k] + d*mag + jitter
	}
	return out
}

// seedKey identifies a seed by the integer valuation it rounds to —
// the "i is new" dedup of Alg. 1 line 19, expressed in the units the
// program actually distinguishes.
func seedKey(v []float64) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", workload.RoundParam(x))
	}
	return b.String()
}
