package fuzz

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/workload"
)

// sameIndexSet reports whether two sets contain exactly the same
// indices.
func sameIndexSet(a, b *array.IndexSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	same := true
	a.Each(func(ix array.Index) bool {
		if !b.Contains(ix) {
			same = false
			return false
		}
		return true
	})
	return same
}

// TestDeterministicAcrossWorkerCounts is the tentpole contract: a fixed
// Config.Seed yields bit-identical campaigns at any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 63}, {Lo: 0, Hi: 63}}
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.MaxIter = 600
		cfg.Workers = workers
		f, err := New(params, space, rectEvaluator(space, 10, 30, 10, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if got.Workers != workers {
			t.Errorf("Workers=%d: result reports %d workers", workers, got.Workers)
		}
		if !sameIndexSet(ref.Indices, got.Indices) {
			t.Errorf("Workers=%d: Indices differ (%d vs %d elements)",
				workers, ref.Indices.Len(), got.Indices.Len())
		}
		if got.Evaluations != ref.Evaluations || got.Iterations != ref.Iterations {
			t.Errorf("Workers=%d: evaluations/iterations %d/%d, want %d/%d",
				workers, got.Evaluations, got.Iterations, ref.Evaluations, ref.Iterations)
		}
		if len(got.Curve) != len(ref.Curve) {
			t.Fatalf("Workers=%d: curve length %d, want %d", workers, len(got.Curve), len(ref.Curve))
		}
		for i := range ref.Curve {
			if got.Curve[i] != ref.Curve[i] {
				t.Fatalf("Workers=%d: curve diverges at evaluation %d: %d vs %d",
					workers, i, got.Curve[i], ref.Curve[i])
			}
		}
		if len(got.Seeds) != len(ref.Seeds) {
			t.Fatalf("Workers=%d: %d seeds, want %d", workers, len(got.Seeds), len(ref.Seeds))
		}
		for i := range ref.Seeds {
			if got.Seeds[i].Useful != ref.Seeds[i].Useful {
				t.Fatalf("Workers=%d: seed %d verdict differs", workers, i)
			}
			for k := range ref.Seeds[i].V {
				if got.Seeds[i].V[k] != ref.Seeds[i].V[k] {
					t.Fatalf("Workers=%d: seed %d value differs", workers, i)
				}
			}
		}
		if got.UsefulClusters != ref.UsefulClusters || got.NonUsefulClusters != ref.NonUsefulClusters {
			t.Errorf("Workers=%d: clusters %d/%d, want %d/%d", workers,
				got.UsefulClusters, got.NonUsefulClusters,
				ref.UsefulClusters, ref.NonUsefulClusters)
		}
		if got.StopReason != ref.StopReason {
			t.Errorf("Workers=%d: stop reason %q, want %q", workers, got.StopReason, ref.StopReason)
		}
	}
}

// TestCancellationReturnsPartialResult: canceling the context stops the
// campaign within one batch and returns the work done so far.
func TestCancellationReturnsPartialResult(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 63}, {Lo: 0, Hi: 63}}
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	eval := func(v []float64) (*array.IndexSet, error) {
		if evals.Add(1) == 40 {
			cancel() // cancel mid-campaign, from inside an evaluation
		}
		return rectEvaluator(space, 0, 63, 0, 63)(v)
	}
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.MaxIter = 100000
	cfg.StopIter = 0
	cfg.Workers = 4
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := f.Run(ctx)
	if err != nil {
		t.Fatalf("canceled run should return the partial result, got error %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", took)
	}
	if res.StopReason != StopCanceled {
		t.Errorf("stop reason %q, want %q", res.StopReason, StopCanceled)
	}
	if res.Evaluations == 0 || res.Indices.Empty() {
		t.Error("partial result lost the accumulated observations")
	}
	if res.Evaluations >= 100000 {
		t.Error("campaign ran to completion despite cancellation")
	}
}

// TestFailuresDoNotAbortCampaign locks in the failure-tolerance fix: a
// failing debloat test is recorded and skipped, and the campaign keeps
// the indices accumulated from the seeds that succeeded.
func TestFailuresDoNotAbortCampaign(t *testing.T) {
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	boom := errors.New("flaky audit")
	inner := rectEvaluator(space, 0, 31, 0, 31)
	eval := func(v []float64) (*array.IndexSet, error) {
		// Every third column of Θ fails.
		if workload.RoundParam(v[0])%3 == 0 {
			return nil, fmt.Errorf("x=%v: %w", v[0], boom)
		}
		return inner(v)
	}
	cfg := DefaultConfig()
	cfg.Seed = 8
	cfg.MaxIter = 400
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("partially failing campaign should succeed, got %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("no failures recorded")
	}
	for _, fl := range res.Failures {
		if !errors.Is(fl.Err, boom) {
			t.Errorf("failure lost its cause: %v", fl.Err)
		}
		if workload.RoundParam(fl.V[0])%3 != 0 {
			t.Errorf("failure recorded for a seed that should have passed: %v", fl.V)
		}
	}
	if res.Evaluations == 0 || res.Indices.Empty() {
		t.Error("successful evaluations were discarded")
	}
	if res.Iterations != res.Evaluations+len(res.Failures) {
		t.Errorf("iterations %d != evaluations %d + failures %d",
			res.Iterations, res.Evaluations, len(res.Failures))
	}
}

// TestAllFailuresError: when every attempted test fails there is
// nothing to report, so Run errors out with the first cause.
func TestAllFailuresError(t *testing.T) {
	space := array.MustSpace(16, 16)
	params := workload.ParamSpace{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}}
	boom := errors.New("audit broken")
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.MaxIter = 50
	f, err := New(params, space, func(v []float64) (*array.IndexSet, error) {
		return nil, boom
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("all-failed campaign returned %v, want wrapped %v", err, boom)
	}
}

// TestRestartPreservesFrontier locks in the restart fix: a restart adds
// fresh uniform seeds without discarding the pending boundary-mutant
// queue. The useful region is a small island in a huge Θ that uniform
// samples essentially never hit; only the corpus seeds inside it and
// the mutants they spawn can discover it. With Restart=1 (a restart
// after every iteration), a restart that cleared the queue would wipe
// those mutants every round and discovery would stall at the corpus.
func TestRestartPreservesFrontier(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 1023}, {Lo: 0, Hi: 1023}}
	eval := func(v []float64) (*array.IndexSet, error) {
		set := array.NewIndexSet(space)
		x, y := workload.RoundParam(v[0]), workload.RoundParam(v[1])
		if x >= 500 && x <= 540 && y >= 500 && y <= 540 {
			set.Add(array.NewIndex(x-500, y-500))
		}
		return set, nil
	}
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.MaxIter = 400
	cfg.Restart = 1
	cfg.InitialValues = [][]float64{
		{505, 505}, {510, 520}, {520, 510}, {530, 530}, {515, 515},
	}
	f, err := New(params, space, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The corpus alone accounts for 5 useful evaluations; everything
	// beyond that had to come from mutants that survived the restarts.
	if res.Useful <= 2*len(cfg.InitialValues) {
		t.Errorf("restart-heavy campaign made only %d useful evaluations: pending mutants were lost", res.Useful)
	}
	if res.MaxQueueDepth == 0 {
		t.Error("queue depth never recorded")
	}
}

// TestSmallSpaceExhausts locks in the dedup fix: deduplicated seeds no
// longer count toward StopIter, so a tiny Θ is evaluated completely and
// the campaign reports exhaustion rather than looping on reseeds.
func TestSmallSpaceExhausts(t *testing.T) {
	space := array.MustSpace(4, 4)
	params := workload.ParamSpace{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}}
	cfg := DefaultConfig()
	cfg.Seed = 2
	cfg.MaxIter = 100000
	cfg.StopIter = 100000 // only exhaustion may stop this campaign
	f, err := New(params, space, rectEvaluator(space, 0, 3, 0, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 {
		t.Errorf("evaluated %d of the 16 valuations", res.Evaluations)
	}
	if res.StopReason != StopExhausted {
		t.Errorf("stop reason %q, want %q", res.StopReason, StopExhausted)
	}
}

// TestParallelSpeedup: with an evaluator dominated by waiting (the
// audited-container case), the worker pool overlaps evaluations. The
// evaluator sleeps, so the test measures pool overlap, not CPU count.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	space := array.MustSpace(32, 32)
	params := workload.ParamSpace{{Lo: 0, Hi: 31}, {Lo: 0, Hi: 31}}
	inner := rectEvaluator(space, 0, 31, 0, 31)
	eval := func(v []float64) (*array.IndexSet, error) {
		time.Sleep(3 * time.Millisecond)
		return inner(v)
	}
	run := func(workers int) (time.Duration, *Result) {
		cfg := DefaultConfig()
		cfg.Seed = 21
		cfg.MaxEvals = 96
		cfg.MaxIter = 100000
		cfg.Workers = workers
		f, err := New(params, space, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := f.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), res
	}
	seq, seqRes := run(1)
	par, parRes := run(8)
	t.Logf("workers=1: %v, workers=8: %v (%.1fx)", seq, par, float64(seq)/float64(par))
	if !sameIndexSet(seqRes.Indices, parRes.Indices) {
		t.Error("parallel run changed the result")
	}
	if par > seq*2/3 {
		t.Errorf("8 workers took %v, sequential %v: pool did not overlap evaluations", par, seq)
	}
	if parRes.EvalWall <= parRes.Elapsed {
		t.Errorf("EvalWall %v should exceed Elapsed %v under a parallel pool",
			parRes.EvalWall, parRes.Elapsed)
	}
}
