package fuzz

import (
	"encoding/json"
	"io"
	"os"
	"time"

	"repro/internal/array"
)

// CoveragePoint is one per-round snapshot of a campaign's progress
// toward the true accessed-index set I_Θ. Points are recorded after
// the sequential merge phase of each schedule round, so recording is
// deterministic and never perturbs the campaign (the RNG stream and
// batch composition are untouched).
type CoveragePoint struct {
	// Round is the 1-based schedule round (= batch number).
	Round int `json:"round"`
	// Iterations and Evaluations are the cumulative schedule
	// iterations and successful debloat tests after this round.
	Iterations  int `json:"iterations"`
	Evaluations int `json:"evaluations"`
	// Covered is |IS| after this round — the cumulative covered-index
	// count. It is non-decreasing across the series.
	Covered int `json:"covered"`
	// New is the number of indices this round added to IS.
	New int `json:"new"`
	// DimCoverage is, per array dimension, the fraction of that
	// dimension's extent with at least one covered index — a cheap
	// directional signal for which axes the campaign has explored.
	DimCoverage []float64 `json:"dim_coverage"`
	// Saturation is the convergence estimate in [0, 1]: 0 while the
	// campaign discovers new indices at its peak per-test rate,
	// approaching 1 as rounds stop finding anything new (see
	// CoverageSeries.saturation for the estimator).
	Saturation float64 `json:"saturation"`
	// ElapsedMS is wall-clock milliseconds since the campaign start.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// CoverageSeries is the structured coverage trajectory of one fuzz
// campaign: the per-round snapshots plus the geometry needed to
// interpret them. It marshals to the JSON schema consumed by
// `kondo -coverage-out`, `kondo-viz -coverage`, and the /statusz
// endpoint (DESIGN.md §9).
type CoverageSeries struct {
	// Dims are the data array extents the coverage is measured over.
	Dims []int `json:"dims"`
	// SpaceSize is the total index count of the array space.
	SpaceSize int64 `json:"space_size"`
	// Points are the per-round snapshots in round order.
	Points []CoveragePoint `json:"points"`
}

// saturationWindow is the trailing-round window of the convergence
// estimator.
const saturationWindow = 8

// covTracker accumulates the per-dimension coverage and discovery-rate
// state a running campaign feeds the series from.
type covTracker struct {
	space    array.Space
	seen     [][]bool // per dim, per coordinate: any covered index there
	dimCount []int
	series   *CoverageSeries
	peakRate float64 // peak windowed per-evaluation discovery rate
	start    time.Time
}

func newCovTracker(space array.Space, start time.Time) *covTracker {
	dims := space.Dims()
	seen := make([][]bool, len(dims))
	for k, d := range dims {
		seen[k] = make([]bool, d)
	}
	return &covTracker{
		space:    space,
		seen:     seen,
		dimCount: make([]int, len(dims)),
		series: &CoverageSeries{
			Dims:      dims,
			SpaceSize: space.Size(),
		},
		start: start,
	}
}

// observe marks one newly covered index.
func (t *covTracker) observe(ix array.Index) {
	for k, c := range ix {
		if !t.seen[k][c] {
			t.seen[k][c] = true
			t.dimCount[k]++
		}
	}
}

// snapshot appends (and returns) the coverage point closing one round.
func (t *covTracker) snapshot(round, iterations, evaluations, covered, added int) CoveragePoint {
	dimCov := make([]float64, len(t.dimCount))
	for k, n := range t.dimCount {
		dimCov[k] = float64(n) / float64(t.space.Dim(k))
	}
	p := CoveragePoint{
		Round:       round,
		Iterations:  iterations,
		Evaluations: evaluations,
		Covered:     covered,
		New:         added,
		DimCoverage: dimCov,
		ElapsedMS:   float64(time.Since(t.start)) / float64(time.Millisecond),
	}
	t.series.Points = append(t.series.Points, p)
	p.Saturation = t.saturation()
	t.series.Points[len(t.series.Points)-1].Saturation = p.Saturation
	return p
}

// saturation is the convergence estimator: the windowed discovery rate
// (new indices per evaluated test over the last saturationWindow
// rounds) relative to the peak windowed rate the campaign has reached,
// inverted into [0, 1]. While the campaign discovers at its historical
// best the estimate is 0; when a full window of rounds finds nothing
// new it reaches 1. The estimator is scale-free (rates are per test,
// not per second), so it is comparable across worker counts and
// machine speeds.
func (t *covTracker) saturation() float64 {
	pts := t.series.Points
	if len(pts) == 0 {
		return 0
	}
	lo := len(pts) - saturationWindow
	if lo < 0 {
		lo = 0
	}
	var added int
	for _, p := range pts[lo:] {
		added += p.New
	}
	// Evaluations is cumulative; the window's test count is the delta.
	evals := pts[len(pts)-1].Evaluations
	if lo > 0 {
		evals -= pts[lo-1].Evaluations
	}
	if evals <= 0 {
		return 0
	}
	rate := float64(added) / float64(evals)
	if rate > t.peakRate {
		t.peakRate = rate
	}
	if t.peakRate == 0 {
		return 0
	}
	s := 1 - rate/t.peakRate
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return s
}

// Final returns the last recorded point (zero value for an empty
// series).
func (s *CoverageSeries) Final() CoveragePoint {
	if s == nil || len(s.Points) == 0 {
		return CoveragePoint{}
	}
	return s.Points[len(s.Points)-1]
}

// Saturation returns the final convergence estimate of the series.
func (s *CoverageSeries) Saturation() float64 { return s.Final().Saturation }

// WriteJSON writes the series as indented JSON.
func (s *CoverageSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the series as JSON to path.
func (s *CoverageSeries) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCoverageSeries reads a series written by WriteFile (the
// `kondo -coverage-out` artifact consumed by `kondo-viz -coverage`).
func LoadCoverageSeries(path string) (*CoverageSeries, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &CoverageSeries{}
	if err := json.Unmarshal(raw, s); err != nil {
		return nil, err
	}
	return s, nil
}
