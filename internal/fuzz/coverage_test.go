package fuzz

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/workload"
)

func runRectCampaign(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 63}, {Lo: 0, Hi: 63}}
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.MaxIter = 600
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(params, space, rectEvaluator(space, 10, 30, 10, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoverageSeriesRecorded: every campaign records one point per
// batch, internally consistent with the campaign totals.
func TestCoverageSeriesRecorded(t *testing.T) {
	res := runRectCampaign(t, nil)
	s := res.Coverage
	if s == nil || len(s.Points) == 0 {
		t.Fatal("no coverage series recorded")
	}
	if len(s.Points) != res.Batches {
		t.Fatalf("%d points for %d batches", len(s.Points), res.Batches)
	}
	if s.SpaceSize != 64*64 || len(s.Dims) != 2 {
		t.Fatalf("series geometry wrong: dims=%v size=%d", s.Dims, s.SpaceSize)
	}
	sumNew := 0
	for i, p := range s.Points {
		if p.Round != i+1 {
			t.Fatalf("point %d has round %d", i, p.Round)
		}
		if i > 0 {
			prev := s.Points[i-1]
			if p.Covered < prev.Covered || p.Evaluations < prev.Evaluations || p.Iterations < prev.Iterations {
				t.Fatalf("series not monotone at point %d: %+v after %+v", i, p, prev)
			}
			if p.Covered != prev.Covered+p.New {
				t.Fatalf("point %d: covered %d != prev %d + new %d", i, p.Covered, prev.Covered, p.New)
			}
		}
		if len(p.DimCoverage) != 2 {
			t.Fatalf("point %d: dim coverage %v", i, p.DimCoverage)
		}
		for k, c := range p.DimCoverage {
			if c < 0 || c > 1 {
				t.Fatalf("point %d dim %d coverage %v out of [0,1]", i, k, c)
			}
		}
		if p.Saturation < 0 || p.Saturation > 1 {
			t.Fatalf("point %d saturation %v out of [0,1]", i, p.Saturation)
		}
		sumNew += p.New
	}
	final := s.Final()
	if final.Covered != res.Indices.Len() || sumNew != res.Indices.Len() {
		t.Fatalf("final covered %d, summed new %d, want %d", final.Covered, sumNew, res.Indices.Len())
	}
	if final.Evaluations != res.Evaluations || final.Iterations != res.Iterations {
		t.Fatalf("final point %+v disagrees with result (%d evals, %d iters)",
			final, res.Evaluations, res.Iterations)
	}
	// An idle-stopped campaign must look saturated: its last window
	// found nothing.
	if res.StopReason == StopIdle && final.Saturation != 1 {
		t.Fatalf("idle-stopped campaign reports saturation %v, want 1", final.Saturation)
	}
	// Per-dimension coverage of the final point must equal the
	// fraction of distinct coordinates actually covered per axis.
	distinct := [2]map[int]bool{{}, {}}
	res.Indices.Each(func(ix array.Index) bool {
		distinct[0][ix[0]] = true
		distinct[1][ix[1]] = true
		return true
	})
	for k, c := range final.DimCoverage {
		want := float64(len(distinct[k])) / 64.0
		if c != want {
			t.Fatalf("dim %d coverage %v, want %v", k, c, want)
		}
	}
}

// TestTelemetryDoesNotPerturbCampaign pins the acceptance criterion:
// witness recording and the live coverage callback leave the campaign
// bit-identical to a bare run, at any worker count.
func TestTelemetryDoesNotPerturbCampaign(t *testing.T) {
	ref := runRectCampaign(t, nil) // telemetry off, sequential
	for _, workers := range []int{1, 4} {
		var callbacks int
		got := runRectCampaign(t, func(cfg *Config) {
			cfg.Workers = workers
			cfg.Witnesses = true
			cfg.OnCoverage = func(CoveragePoint) { callbacks++ }
		})
		if !sameIndexSet(ref.Indices, got.Indices) {
			t.Errorf("workers=%d: telemetry changed the covered set", workers)
		}
		if len(got.Seeds) != len(ref.Seeds) || got.Evaluations != ref.Evaluations ||
			got.StopReason != ref.StopReason {
			t.Errorf("workers=%d: telemetry changed the schedule (%d seeds, %d evals, %q)",
				workers, len(got.Seeds), got.Evaluations, got.StopReason)
		}
		for i := range ref.Curve {
			if got.Curve[i] != ref.Curve[i] {
				t.Fatalf("workers=%d: curve diverges at %d", workers, i)
			}
		}
		if callbacks != got.Batches {
			t.Errorf("workers=%d: %d OnCoverage callbacks for %d batches", workers, callbacks, got.Batches)
		}
		// The coverage series itself is deterministic (wall-clock field
		// aside).
		if len(got.Coverage.Points) != len(ref.Coverage.Points) {
			t.Fatalf("workers=%d: %d coverage points, want %d",
				workers, len(got.Coverage.Points), len(ref.Coverage.Points))
		}
		for i, p := range got.Coverage.Points {
			q := ref.Coverage.Points[i]
			p.ElapsedMS, q.ElapsedMS = 0, 0
			if p.Round != q.Round || p.Covered != q.Covered || p.New != q.New ||
				p.Evaluations != q.Evaluations || p.Saturation != q.Saturation {
				t.Fatalf("workers=%d: coverage point %d differs: %+v vs %+v", workers, i, p, q)
			}
		}
	}
}

// TestWitnessMapCorrect: every witness entry names a useful seed whose
// valuation rounds to exactly the witnessed index (the rect evaluator
// covers one index per seed).
func TestWitnessMapCorrect(t *testing.T) {
	res := runRectCampaign(t, func(cfg *Config) { cfg.Witnesses = true })
	if len(res.Witnesses) != res.Indices.Len() {
		t.Fatalf("%d witnesses for %d covered indices", len(res.Witnesses), res.Indices.Len())
	}
	space := array.MustSpace(64, 64)
	for lin, ord := range res.Witnesses {
		if ord < 0 || ord >= len(res.Seeds) {
			t.Fatalf("witness ordinal %d out of range (%d seeds)", ord, len(res.Seeds))
		}
		s := res.Seeds[ord]
		if !s.Useful {
			t.Fatalf("witness for lin %d names non-useful seed %d", lin, ord)
		}
		ix, err := space.Unlinear(lin)
		if err != nil {
			t.Fatal(err)
		}
		if workload.RoundParam(s.V[0]) != ix[0] || workload.RoundParam(s.V[1]) != ix[1] {
			t.Fatalf("witness lin %d (index %v) names seed %d with v=%v", lin, ix, ord, s.V)
		}
	}
	// Without the flag no map is recorded.
	if bare := runRectCampaign(t, nil); bare.Witnesses != nil {
		t.Fatal("witness map recorded without Config.Witnesses")
	}
}

// TestCoverageSeriesJSONRoundTrip: the artifact written by
// `kondo -coverage-out` loads back identically.
func TestCoverageSeriesJSONRoundTrip(t *testing.T) {
	res := runRectCampaign(t, nil)
	path := filepath.Join(t.TempDir(), "coverage.json")
	if err := res.Coverage.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCoverageSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res.Coverage)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the series:\n%s\nvs\n%s", a, b)
	}
}

// TestCoverageGaugesPublished: the new kondo_fuzz_* instruments are
// set when a registry rides the context.
func TestCoverageGaugesPublished(t *testing.T) {
	space := array.MustSpace(64, 64)
	params := workload.ParamSpace{{Lo: 0, Hi: 63}, {Lo: 0, Hi: 63}}
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.MaxIter = 300
	f, err := New(params, space, rectEvaluator(space, 10, 30, 10, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := f.Run(obs.WithRegistry(context.Background(), reg))
	if err != nil {
		t.Fatal(err)
	}
	final := res.Coverage.Final()
	if got := reg.Gauge("kondo_fuzz_saturation").Value(); got != final.Saturation {
		t.Errorf("kondo_fuzz_saturation = %v, want %v", got, final.Saturation)
	}
	if got := reg.Gauge("kondo_fuzz_new_indices").Value(); got != float64(final.New) {
		t.Errorf("kondo_fuzz_new_indices = %v, want %v", got, final.New)
	}
	for k := 0; k < 2; k++ {
		g := reg.Gauge("kondo_fuzz_dim_coverage", obs.L("dim", []string{"0", "1"}[k]))
		if got := g.Value(); got != final.DimCoverage[k] {
			t.Errorf("kondo_fuzz_dim_coverage{dim=%d} = %v, want %v", k, got, final.DimCoverage[k])
		}
	}
}
