package ioevent

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Event log: a compact, append-only binary record of audited system
// calls — the "data store" Kondo's interposer records system-call
// arguments into (paper §V Implementation). A log can be replayed into
// a Store later, decoupling audit capture from offset-range analysis
// (and letting the debloated container's runtime reuse the audited
// information, §VI).
//
// Format: "KLOG" magic, u16 version, then per record:
//
//	u8 op | u32 pid | u16 fileLen | file bytes | i64 offset | i64 size
//
// all little-endian.

// logMagic starts every event log.
const logMagic = "KLOG"

// logVersion is the current log format version.
const logVersion uint16 = 1

// LogWriter appends events to an underlying writer.
type LogWriter struct {
	w       *bufio.Writer
	started bool
}

// NewLogWriter returns a LogWriter over w. The header is written
// lazily on the first Append, so an unused writer leaves no bytes.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{w: bufio.NewWriter(w)}
}

// Append writes one event record.
func (lw *LogWriter) Append(e Event) error {
	if !lw.started {
		if _, err := lw.w.WriteString(logMagic); err != nil {
			return fmt.Errorf("ioevent: log header: %w", err)
		}
		if err := binary.Write(lw.w, binary.LittleEndian, logVersion); err != nil {
			return fmt.Errorf("ioevent: log header: %w", err)
		}
		lw.started = true
	}
	if len(e.ID.File) > 0xFFFF {
		return fmt.Errorf("ioevent: file name too long (%d bytes)", len(e.ID.File))
	}
	if err := firstErr(
		lw.w.WriteByte(byte(e.Op)),
		binary.Write(lw.w, binary.LittleEndian, uint32(e.ID.PID)),
		binary.Write(lw.w, binary.LittleEndian, uint16(len(e.ID.File))),
	); err != nil {
		return fmt.Errorf("ioevent: log append: %w", err)
	}
	if _, err := lw.w.WriteString(e.ID.File); err != nil {
		return fmt.Errorf("ioevent: log append: %w", err)
	}
	if err := firstErr(
		binary.Write(lw.w, binary.LittleEndian, e.Offset),
		binary.Write(lw.w, binary.LittleEndian, e.Size),
	); err != nil {
		return fmt.Errorf("ioevent: log append: %w", err)
	}
	return nil
}

// Flush writes any buffered records through to the underlying writer.
func (lw *LogWriter) Flush() error {
	return lw.w.Flush()
}

// ReadLog iterates the events of a log, calling fn for each. It
// returns an error for malformed input; an empty stream (no header) is
// treated as an empty log.
func ReadLog(r io.Reader, fn func(Event) error) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty log
		}
		return fmt.Errorf("ioevent: log header: %w", err)
	}
	if string(magic) != logMagic {
		return fmt.Errorf("ioevent: bad log magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("ioevent: log header: %w", err)
	}
	if version != logVersion {
		return fmt.Errorf("ioevent: unsupported log version %d", version)
	}
	for {
		opByte, err := br.ReadByte()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("ioevent: log record: %w", err)
		}
		var pid uint32
		var fileLen uint16
		if err := firstErr(
			binary.Read(br, binary.LittleEndian, &pid),
			binary.Read(br, binary.LittleEndian, &fileLen),
		); err != nil {
			return fmt.Errorf("ioevent: truncated log record: %w", err)
		}
		file := make([]byte, fileLen)
		if _, err := io.ReadFull(br, file); err != nil {
			return fmt.Errorf("ioevent: truncated log record: %w", err)
		}
		var off, size int64
		if err := firstErr(
			binary.Read(br, binary.LittleEndian, &off),
			binary.Read(br, binary.LittleEndian, &size),
		); err != nil {
			return fmt.Errorf("ioevent: truncated log record: %w", err)
		}
		e := Event{
			ID:     ID{PID: int(pid), File: string(file)},
			Op:     Op(opByte),
			Offset: off,
			Size:   size,
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// Replay loads every event of a log into the store.
func Replay(r io.Reader, s *Store) error {
	n := 0
	err := ReadLog(r, func(e Event) error {
		n++
		return s.Record(e)
	})
	if err != nil {
		obs.Log().Warn("ioevent: replay aborted", "events", n, "err", err)
		return err
	}
	obs.Log().Debug("ioevent: replayed event log", "events", n)
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
