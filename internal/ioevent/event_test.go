package ioevent

import (
	"sync"
	"testing"
)

// TestPaperMergeExample reproduces the worked example of §IV-C: events
// e1(P1,R,0,110), e2(P2,R,70,30), e3(P1,R,130,20), e4(P1,R,90,30)
// result in accessed offsets (0,120) and (130,150).
func TestPaperMergeExample(t *testing.T) {
	s := NewStore()
	file := "d_file"
	events := []Event{
		{ID: ID{PID: 1, File: file}, Op: OpRead, Offset: 0, Size: 110},
		{ID: ID{PID: 2, File: file}, Op: OpRead, Offset: 70, Size: 30},
		{ID: ID{PID: 1, File: file}, Op: OpRead, Offset: 130, Size: 20},
		{ID: ID{PID: 1, File: file}, Op: OpRead, Offset: 90, Size: 30},
	}
	for _, e := range events {
		if err := s.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	got := s.FileRanges(file)
	want := []Interval{{0, 120}, {130, 150}}
	if len(got) != len(want) {
		t.Fatalf("FileRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FileRanges = %v, want %v", got, want)
		}
	}

	// Per-process lookup: P1 alone covers (0,120) and (130,150)
	// because e4 bridges 90..120 with e1's 0..110.
	p1 := s.Lookup(ID{PID: 1, File: file})
	if len(p1) != 2 || p1[0] != (Interval{0, 120}) || p1[1] != (Interval{130, 150}) {
		t.Fatalf("P1 ranges = %v", p1)
	}
	p2 := s.Lookup(ID{PID: 2, File: file})
	if len(p2) != 1 || p2[0] != (Interval{70, 100}) {
		t.Fatalf("P2 ranges = %v", p2)
	}
	if s.Events() != 4 {
		t.Errorf("Events = %d, want 4", s.Events())
	}
}

func TestNonAccessOpsAddNoRanges(t *testing.T) {
	s := NewStore()
	id := ID{PID: 1, File: "f"}
	s.Record(Event{ID: id, Op: OpOpen})
	s.Record(Event{ID: id, Op: OpLseek, Offset: 100})
	s.Record(Event{ID: id, Op: OpClose})
	if got := s.Lookup(id); got != nil {
		t.Errorf("non-access ops produced ranges: %v", got)
	}
	if s.Events() != 3 {
		t.Errorf("Events = %d, want 3", s.Events())
	}
}

func TestWriteDetection(t *testing.T) {
	s := NewStore()
	id := ID{PID: 1, File: "f"}
	s.Record(Event{ID: id, Op: OpRead, Offset: 0, Size: 10})
	if len(s.Writes()) != 0 {
		t.Error("reads flagged as writes")
	}
	s.Record(Event{ID: id, Op: OpWrite, Offset: 5, Size: 5})
	w := s.Writes()
	if len(w) != 1 || w[0].Op != OpWrite {
		t.Errorf("Writes = %v", w)
	}
}

func TestStoreFilesAndReset(t *testing.T) {
	s := NewStore()
	s.Record(Event{ID: ID{PID: 1, File: "b"}, Op: OpRead, Offset: 0, Size: 1})
	s.Record(Event{ID: ID{PID: 2, File: "a"}, Op: OpRead, Offset: 0, Size: 1})
	s.Record(Event{ID: ID{PID: 3, File: "b"}, Op: OpRead, Offset: 5, Size: 1})
	files := s.Files()
	if len(files) != 2 || files[0] != "a" || files[1] != "b" {
		t.Errorf("Files = %v", files)
	}
	s.Reset()
	if s.Events() != 0 || len(s.Files()) != 0 {
		t.Error("Reset did not clear state")
	}
	if got := s.FileRanges("b"); len(got) != 0 {
		t.Errorf("ranges after reset: %v", got)
	}
}

func TestStoreConcurrentRecord(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record(Event{
					ID:     ID{PID: pid, File: "f"},
					Op:     OpRead,
					Offset: int64(i * 10),
					Size:   10,
				})
			}
		}(p)
	}
	wg.Wait()
	if s.Events() != 800 {
		t.Errorf("Events = %d, want 800", s.Events())
	}
	// All processes covered the same contiguous kilobyte.
	r := s.FileRanges("f")
	if len(r) != 1 || r[0] != (Interval{0, 1000}) {
		t.Errorf("FileRanges = %v", r)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpOpen: "open", OpRead: "read", OpLseek: "lseek",
		OpMmap: "mmap", OpWrite: "write", OpClose: "close",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{ID: ID{PID: 7, File: "mnist.h5"}, Op: OpRead, Offset: 16, Size: 128}
	if got := e.String(); got != "e(P7:mnist.h5, read, 16, 128)" {
		t.Errorf("String = %q", got)
	}
}

func TestRecordInvalidRange(t *testing.T) {
	s := NewStore()
	err := s.Record(Event{ID: ID{PID: 1, File: "f"}, Op: OpRead, Offset: 0, Size: 0})
	if err == nil {
		t.Error("zero-size read should error")
	}
}
