package ioevent

import (
	"math/rand"
	"sort"
	"testing"
)

func treeContents(t *btree) []Interval {
	var out []Interval
	t.each(func(iv Interval) bool {
		out = append(out, iv)
		return true
	})
	return out
}

func TestBTreeInsertOrdered(t *testing.T) {
	tr := newBTree()
	// Insert in scrambled order; iteration must be sorted by Start.
	starts := []int64{50, 10, 90, 30, 70, 20, 80, 40, 60, 0}
	for _, s := range starts {
		tr.insert(Interval{Start: s, End: s + 5})
	}
	if tr.Len() != len(starts) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(starts))
	}
	got := treeContents(tr)
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatalf("iteration not sorted: %v", got)
		}
	}
}

func TestBTreeFloor(t *testing.T) {
	tr := newBTree()
	for s := int64(0); s < 100; s += 10 {
		tr.insert(Interval{Start: s, End: s + 5})
	}
	cases := []struct {
		key  int64
		want int64
		ok   bool
	}{
		{0, 0, true},
		{9, 0, true},
		{10, 10, true},
		{55, 50, true},
		{99, 90, true},
		{1000, 90, true},
		{-1, 0, false},
	}
	for _, c := range cases {
		got, ok := tr.floor(c.key)
		if ok != c.ok || (ok && got.Start != c.want) {
			t.Errorf("floor(%d) = %v, %v; want start %d, %v", c.key, got, ok, c.want, c.ok)
		}
	}
}

func TestBTreeAscendFrom(t *testing.T) {
	tr := newBTree()
	for s := int64(0); s < 50; s += 10 {
		tr.insert(Interval{Start: s, End: s + 1})
	}
	var got []int64
	tr.ascend(25, func(iv Interval) bool {
		got = append(got, iv.Start)
		return true
	})
	want := []int64{30, 40}
	if len(got) != len(want) || got[0] != 30 || got[1] != 40 {
		t.Errorf("ascend(25) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	tr.ascend(0, func(Interval) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := newBTree()
	for s := int64(0); s < 100; s++ {
		tr.insert(Interval{Start: s, End: s + 1})
	}
	if !tr.delete(42) {
		t.Fatal("delete(42) failed")
	}
	if tr.delete(42) {
		t.Fatal("double delete succeeded")
	}
	if tr.delete(1000) {
		t.Fatal("delete of absent key succeeded")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d, want 99", tr.Len())
	}
	for _, iv := range treeContents(tr) {
		if iv.Start == 42 {
			t.Fatal("deleted key still present")
		}
	}
}

// TestBTreeRandomizedAgainstOracle drives the tree through a long
// random insert/delete sequence, checking contents against a map
// oracle after every operation batch. This exercises node splits,
// rotations and merges at depth > 2.
func TestBTreeRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newBTree()
	oracle := map[int64]Interval{}

	check := func() {
		if tr.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
		}
		got := treeContents(tr)
		keys := make([]int64, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(got) != len(keys) {
			t.Fatalf("iteration count %d, oracle %d", len(got), len(keys))
		}
		for i, k := range keys {
			if got[i].Start != k {
				t.Fatalf("position %d: got %d, oracle %d", i, got[i].Start, k)
			}
		}
	}

	for round := 0; round < 200; round++ {
		for i := 0; i < 20; i++ {
			k := int64(rng.Intn(500))
			if _, exists := oracle[k]; exists {
				continue
			}
			iv := Interval{Start: k, End: k + 1}
			tr.insert(iv)
			oracle[k] = iv
		}
		for i := 0; i < 15; i++ {
			k := int64(rng.Intn(500))
			_, exists := oracle[k]
			got := tr.delete(k)
			if got != exists {
				t.Fatalf("delete(%d) = %v, oracle exists %v", k, got, exists)
			}
			delete(oracle, k)
		}
		check()

		// Floor spot checks.
		for i := 0; i < 10; i++ {
			k := int64(rng.Intn(600))
			gotIv, gotOK := tr.floor(k)
			var want int64 = -1
			for ok := range oracle {
				if ok <= k && ok > want {
					want = ok
				}
			}
			if gotOK != (want >= 0) || (gotOK && gotIv.Start != want) {
				t.Fatalf("floor(%d) = %v,%v; oracle %d", k, gotIv, gotOK, want)
			}
		}
	}
}
