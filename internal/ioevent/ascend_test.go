package ioevent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ascend(from) visits exactly the intervals with
// Start >= from, in ascending order, for random tree contents.
func TestAscendProperty(t *testing.T) {
	f := func(keys []uint8, from uint8) bool {
		tr := newBTree()
		inserted := map[int64]bool{}
		for _, k := range keys {
			key := int64(k)
			if inserted[key] {
				continue
			}
			inserted[key] = true
			tr.insert(Interval{Start: key, End: key + 1})
		}
		var got []int64
		tr.ascend(int64(from), func(iv Interval) bool {
			got = append(got, iv.Start)
			return true
		})
		// Ascending and all >= from.
		for i, k := range got {
			if k < int64(from) {
				return false
			}
			if i > 0 && got[i-1] >= k {
				return false
			}
		}
		// Complete: every inserted key >= from appears.
		want := 0
		for k := range inserted {
			if k >= int64(from) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after arbitrary merging inserts, the stored ranges are
// disjoint, sorted, and non-adjacent (fully coalesced).
func TestIntervalSetCanonicalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		s := NewIntervalSet()
		for i := 0; i < 150; i++ {
			if err := s.Add(int64(rng.Intn(500)), int64(rng.Intn(30)+1)); err != nil {
				t.Fatal(err)
			}
		}
		ranges := s.Ranges()
		for i, r := range ranges {
			if r.Len() <= 0 {
				t.Fatalf("empty stored range %v", r)
			}
			if i > 0 {
				prev := ranges[i-1]
				if prev.End >= r.Start {
					t.Fatalf("ranges %v and %v overlap or touch (not coalesced)", prev, r)
				}
			}
		}
	}
}
