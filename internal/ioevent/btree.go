// Package ioevent implements Kondo's fine-grained I/O event audit
// model (paper §IV-C): system-call events as ⟨id, c, l, sz⟩ four
// tuples, interval-based B-trees indexing the byte ranges those events
// touch, per-process range lookup, and cross-process merging of
// overlapping ranges.
package ioevent

// Interval is a half-open byte range [Start, End). All intervals in a
// tree are non-empty and pairwise disjoint (merging happens on
// insert).
type Interval struct {
	Start, End int64
}

// Len returns the number of bytes the interval covers.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// overlapsOrTouches reports whether two intervals overlap or are
// directly adjacent, i.e. whether they merge into one range. The
// paper's example merges (0,110) with (90,120) and keeps (130,150)
// separate.
func (iv Interval) overlapsOrTouches(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

// btreeDegree is the minimum degree t of the interval B-tree: nodes
// other than the root hold between t-1 and 2t-1 intervals. Chosen so
// nodes fill a couple of cache lines.
const btreeDegree = 16

// btree is an in-memory B-tree of disjoint intervals ordered by Start.
// It supports floor search, ordered ascent, insert, and delete — the
// operations the merging insert needs. It is deliberately a textbook
// CLRS B-tree rather than a balanced binary tree: the paper calls for
// "interval-based B-trees" to index the (large) event stream.
type btree struct {
	root *btreeNode
	size int
}

type btreeNode struct {
	items    []Interval
	children []*btreeNode
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

func newBTree() *btree {
	return &btree{root: &btreeNode{}}
}

// Len returns the number of intervals stored.
func (t *btree) Len() int { return t.size }

// findIndex returns the position of the first item in n with
// Start >= key, and whether that item's Start equals key.
func findIndex(n *btreeNode, key int64) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].Start < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.items) && n.items[lo].Start == key
}

// floor returns the interval with the greatest Start <= key, or false
// if none exists.
func (t *btree) floor(key int64) (Interval, bool) {
	var best Interval
	found := false
	n := t.root
	for n != nil {
		i, exact := findIndex(n, key)
		if exact {
			return n.items[i], true
		}
		if i > 0 {
			best = n.items[i-1]
			found = true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	return best, found
}

// ascend calls fn for every interval with Start >= from in ascending
// Start order, stopping when fn returns false.
func (t *btree) ascend(from int64, fn func(Interval) bool) {
	t.root.ascend(from, fn)
}

func (n *btreeNode) ascend(from int64, fn func(Interval) bool) bool {
	i, _ := findIndex(n, from)
	for ; i < len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, fn) {
				return false
			}
		}
		if !fn(n.items[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.items)].ascend(from, fn)
	}
	return true
}

// each calls fn for every interval in ascending order.
func (t *btree) each(fn func(Interval) bool) {
	t.ascend(-1<<62, fn)
}

// insert adds an interval that must not overlap any stored interval
// (callers merge first).
func (t *btree) insert(iv Interval) {
	r := t.root
	if len(r.items) == 2*btreeDegree-1 {
		newRoot := &btreeNode{children: []*btreeNode{r}}
		newRoot.splitChild(0)
		t.root = newRoot
		r = newRoot
	}
	r.insertNonFull(iv)
	t.size++
}

func (n *btreeNode) splitChild(i int) {
	t := btreeDegree
	child := n.children[i]
	mid := child.items[t-1]
	right := &btreeNode{
		items: append([]Interval(nil), child.items[t:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.items = child.items[:t-1]

	n.items = append(n.items, Interval{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(iv Interval) {
	i, _ := findIndex(n, iv.Start)
	if n.leaf() {
		n.items = append(n.items, Interval{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = iv
		return
	}
	if len(n.children[i].items) == 2*btreeDegree-1 {
		n.splitChild(i)
		if iv.Start > n.items[i].Start {
			i++
		}
	}
	n.children[i].insertNonFull(iv)
}

// delete removes the interval whose Start equals key. It reports
// whether an interval was removed.
func (t *btree) delete(key int64) bool {
	if !t.root.delete(key) {
		return false
	}
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (n *btreeNode) delete(key int64) bool {
	i, exact := findIndex(n, key)
	if exact {
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		return n.deleteInternal(i)
	}
	if n.leaf() {
		return false
	}
	n.ensureChildFill(i)
	// ensureChildFill may have shifted item positions; re-find.
	i, exact = findIndex(n, key)
	if exact {
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		return n.deleteInternal(i)
	}
	return n.children[i].delete(key)
}

// deleteInternal removes n.items[i] from an internal node using the
// predecessor/successor/merge cases of CLRS.
func (n *btreeNode) deleteInternal(i int) bool {
	key := n.items[i].Start
	if len(n.children[i].items) >= btreeDegree {
		pred := n.children[i].max()
		n.items[i] = pred
		return n.children[i].delete(pred.Start)
	}
	if len(n.children[i+1].items) >= btreeDegree {
		succ := n.children[i+1].min()
		n.items[i] = succ
		return n.children[i+1].delete(succ.Start)
	}
	n.mergeChildren(i)
	return n.children[i].delete(key)
}

func (n *btreeNode) min() Interval {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *btreeNode) max() Interval {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// ensureChildFill guarantees n.children[i] has at least btreeDegree
// items before descending, borrowing from a sibling or merging.
func (n *btreeNode) ensureChildFill(i int) {
	if len(n.children[i].items) >= btreeDegree {
		return
	}
	if i > 0 && len(n.children[i-1].items) >= btreeDegree {
		n.rotateRight(i)
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= btreeDegree {
		n.rotateLeft(i)
		return
	}
	if i == len(n.children)-1 {
		i--
	}
	n.mergeChildren(i)
}

func (n *btreeNode) rotateRight(i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append([]Interval{n.items[i-1]}, child.items...)
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !left.leaf() {
		child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (n *btreeNode) rotateLeft(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = right.items[1:]
	if !right.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
}

// mergeChildren merges children i and i+1 around separator item i.
func (n *btreeNode) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}
