package ioevent

import "fmt"

// IntervalSet maintains a set of disjoint, merged byte ranges indexed
// by an interval B-tree. Inserting a range that overlaps or touches
// existing ranges coalesces them, exactly as Kondo "merges events that
// overlap in accessed offset ranges" (paper §IV-C).
type IntervalSet struct {
	tree    *btree
	covered int64 // total bytes covered, maintained incrementally
}

// NewIntervalSet returns an empty set.
func NewIntervalSet() *IntervalSet {
	return &IntervalSet{tree: newBTree()}
}

// Add inserts the half-open range [start, start+size), merging with
// any overlapping or adjacent stored ranges. Empty or negative ranges
// are rejected.
func (s *IntervalSet) Add(start, size int64) error {
	if size <= 0 {
		return fmt.Errorf("ioevent: invalid range size %d", size)
	}
	if start < 0 {
		return fmt.Errorf("ioevent: negative range start %d", start)
	}
	iv := Interval{Start: start, End: start + size}

	// The only interval starting before iv that can merge with it is
	// the floor of iv.Start.
	if fl, ok := s.tree.floor(iv.Start); ok && fl.overlapsOrTouches(iv) {
		s.tree.delete(fl.Start)
		s.covered -= fl.Len()
		if fl.Start < iv.Start {
			iv.Start = fl.Start
		}
		if fl.End > iv.End {
			iv.End = fl.End
		}
	}
	// Absorb every following interval that overlaps or touches.
	for {
		var next Interval
		found := false
		s.tree.ascend(iv.Start, func(x Interval) bool {
			next = x
			found = true
			return false
		})
		if !found || !next.overlapsOrTouches(iv) {
			break
		}
		s.tree.delete(next.Start)
		s.covered -= next.Len()
		if next.End > iv.End {
			iv.End = next.End
		}
	}
	s.tree.insert(iv)
	s.covered += iv.Len()
	return nil
}

// Contains reports whether the byte at offset off is covered.
func (s *IntervalSet) Contains(off int64) bool {
	fl, ok := s.tree.floor(off)
	return ok && off < fl.End
}

// ContainsRange reports whether the whole range [start, start+size)
// is covered by a single stored interval.
func (s *IntervalSet) ContainsRange(start, size int64) bool {
	fl, ok := s.tree.floor(start)
	return ok && start+size <= fl.End
}

// Covered returns the total number of bytes covered.
func (s *IntervalSet) Covered() int64 { return s.covered }

// Len returns the number of disjoint ranges stored.
func (s *IntervalSet) Len() int { return s.tree.Len() }

// Ranges returns the stored ranges in ascending order.
func (s *IntervalSet) Ranges() []Interval {
	out := make([]Interval, 0, s.tree.Len())
	s.tree.each(func(iv Interval) bool {
		out = append(out, iv)
		return true
	})
	return out
}

// Each visits the stored ranges in ascending order, stopping early if
// fn returns false.
func (s *IntervalSet) Each(fn func(Interval) bool) {
	s.tree.each(fn)
}

// MergeFrom inserts every range of o into s.
func (s *IntervalSet) MergeFrom(o *IntervalSet) {
	o.Each(func(iv Interval) bool {
		// Ranges from another set are already validated.
		_ = s.Add(iv.Start, iv.Len())
		return true
	})
}
