package ioevent

import (
	"fmt"
	"sort"
	"sync"
)

// Op is the system-call type c of an event (paper Def. 4). Kondo
// records the type to ensure no write event took place on the data
// file.
type Op uint8

// Audited system-call kinds.
const (
	OpOpen Op = iota + 1
	OpRead
	OpLseek
	OpMmap
	OpWrite
	OpClose
)

// String returns the syscall-style name of the op.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpLseek:
		return "lseek"
	case OpMmap:
		return "mmap"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// accesses reports whether the op touches file bytes (and therefore
// contributes an offset range to the audit).
func (o Op) accesses() bool {
	return o == OpRead || o == OpMmap || o == OpWrite
}

// ID identifies an event: the process that issued the system call and
// the file it affects (paper Def. 4).
type ID struct {
	PID  int
	File string
}

// Event is the audit record of one system call: ⟨id, c, l, sz⟩.
type Event struct {
	ID     ID
	Op     Op
	Offset int64 // l: start byte offset in the file
	Size   int64 // sz: affected size starting from l
}

// String formats the event in the paper's e(P, c, l, sz) notation.
func (e Event) String() string {
	return fmt.Sprintf("e(P%d:%s, %s, %d, %d)", e.ID.PID, e.ID.File, e.Op, e.Offset, e.Size)
}

// Store accumulates audit events and indexes the byte ranges they
// access in per-(process, file) interval B-trees. It answers the two
// queries Kondo needs: per-process offset-range lookup, and the merged
// accessed ranges of a file across all processes.
//
// Store is safe for concurrent use; audited workloads may be
// multi-process (the paper's example interleaves P1 and P2).
type Store struct {
	mu       sync.RWMutex
	perID    map[ID]*IntervalSet
	events   int64
	writes   []Event
	perIDIDs []ID // insertion order for deterministic iteration
}

// NewStore returns an empty event store.
func NewStore() *Store {
	return &Store{perID: make(map[ID]*IntervalSet)}
}

// Record ingests one event. Events whose op does not access file bytes
// (open, lseek, close) are counted but add no ranges. Write events are
// additionally retained so callers can verify the no-write assumption
// of the data-array model (paper §III).
func (s *Store) Record(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events++
	if e.Op == OpWrite {
		s.writes = append(s.writes, e)
	}
	if !e.Op.accesses() {
		return nil
	}
	set, ok := s.perID[e.ID]
	if !ok {
		set = NewIntervalSet()
		s.perID[e.ID] = set
		s.perIDIDs = append(s.perIDIDs, e.ID)
	}
	if err := set.Add(e.Offset, e.Size); err != nil {
		return fmt.Errorf("ioevent: record %s: %w", e, err)
	}
	return nil
}

// Events returns the total number of recorded events.
func (s *Store) Events() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.events
}

// Writes returns the recorded write events, if any. A non-empty result
// means the audited program mutated a data file, violating Kondo's
// read-only assumption.
func (s *Store) Writes() []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Event(nil), s.writes...)
}

// Lookup returns the merged accessed ranges for one (process, file)
// pair, ascending, or nil if the pair issued no accesses.
func (s *Store) Lookup(id ID) []Interval {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, ok := s.perID[id]
	if !ok {
		return nil
	}
	return set.Ranges()
}

// FileRanges returns the accessed ranges of the named file merged
// across all processes — the paper's example reduces four events from
// two processes to (0,120) and (130,150).
func (s *Store) FileRanges(file string) []Interval {
	s.mu.RLock()
	defer s.mu.RUnlock()
	merged := NewIntervalSet()
	for _, id := range s.perIDIDs {
		if id.File != file {
			continue
		}
		merged.MergeFrom(s.perID[id])
	}
	return merged.Ranges()
}

// IDs returns every (process, file) pair that issued byte accesses, in
// first-seen order.
func (s *Store) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ID(nil), s.perIDIDs...)
}

// Files returns the distinct audited file names, sorted.
func (s *Store) Files() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, id := range s.perIDIDs {
		if !seen[id.File] {
			seen[id.File] = true
			out = append(out, id.File)
		}
	}
	sort.Strings(out)
	return out
}

// Reset discards all recorded state, keeping allocations to a minimum
// for reuse across fuzz iterations.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perID = make(map[ID]*IntervalSet)
	s.perIDIDs = s.perIDIDs[:0]
	s.writes = nil
	s.events = 0
}
