package ioevent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalSetMergeSemantics(t *testing.T) {
	s := NewIntervalSet()
	mustAdd := func(start, size int64) {
		t.Helper()
		if err := s.Add(start, size); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 10)
	mustAdd(20, 10)
	if s.Len() != 2 || s.Covered() != 20 {
		t.Fatalf("Len=%d Covered=%d", s.Len(), s.Covered())
	}
	// Overlap the first.
	mustAdd(5, 10)
	if s.Len() != 2 || s.Covered() != 25 {
		t.Fatalf("after overlap: Len=%d Covered=%d, ranges %v", s.Len(), s.Covered(), s.Ranges())
	}
	// Bridge the gap (touching both).
	mustAdd(15, 5)
	if s.Len() != 1 || s.Covered() != 30 {
		t.Fatalf("after bridge: Len=%d Covered=%d, ranges %v", s.Len(), s.Covered(), s.Ranges())
	}
	r := s.Ranges()
	if r[0].Start != 0 || r[0].End != 30 {
		t.Fatalf("ranges = %v", r)
	}
}

func TestIntervalSetAdjacencyMerges(t *testing.T) {
	s := NewIntervalSet()
	s.Add(0, 10)
	s.Add(10, 5) // exactly adjacent
	if s.Len() != 1 {
		t.Fatalf("adjacent ranges not merged: %v", s.Ranges())
	}
}

func TestIntervalSetValidation(t *testing.T) {
	s := NewIntervalSet()
	if err := s.Add(0, 0); err == nil {
		t.Error("zero size should error")
	}
	if err := s.Add(0, -5); err == nil {
		t.Error("negative size should error")
	}
	if err := s.Add(-1, 5); err == nil {
		t.Error("negative start should error")
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := NewIntervalSet()
	s.Add(10, 10)
	cases := []struct {
		off  int64
		want bool
	}{
		{9, false}, {10, true}, {19, true}, {20, false},
	}
	for _, c := range cases {
		if got := s.Contains(c.off); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.off, got, c.want)
		}
	}
	if !s.ContainsRange(12, 8) {
		t.Error("ContainsRange(12,8) should hold")
	}
	if s.ContainsRange(12, 9) {
		t.Error("ContainsRange(12,9) crosses the end")
	}
}

func TestMergeFrom(t *testing.T) {
	a, b := NewIntervalSet(), NewIntervalSet()
	a.Add(0, 10)
	b.Add(5, 10)
	b.Add(100, 10)
	a.MergeFrom(b)
	r := a.Ranges()
	if len(r) != 2 || r[0] != (Interval{0, 15}) || r[1] != (Interval{100, 110}) {
		t.Fatalf("merged ranges = %v", r)
	}
}

// naiveSet is a bitmap oracle for randomized testing.
type naiveSet map[int64]bool

func (n naiveSet) add(start, size int64) {
	for i := start; i < start+size; i++ {
		n[i] = true
	}
}

func (n naiveSet) covered() int64 { return int64(len(n)) }

func (n naiveSet) rangeCount() int {
	count := 0
	for off := range n {
		if !n[off-1] {
			count++
		}
	}
	return count
}

func TestIntervalSetRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := NewIntervalSet()
		oracle := naiveSet{}
		for i := 0; i < 100; i++ {
			start := int64(rng.Intn(300))
			size := int64(rng.Intn(20) + 1)
			if err := s.Add(start, size); err != nil {
				t.Fatal(err)
			}
			oracle.add(start, size)
		}
		if s.Covered() != oracle.covered() {
			t.Fatalf("trial %d: Covered = %d, oracle %d", trial, s.Covered(), oracle.covered())
		}
		if s.Len() != oracle.rangeCount() {
			t.Fatalf("trial %d: Len = %d, oracle %d (ranges %v)", trial, s.Len(), oracle.rangeCount(), s.Ranges())
		}
		for off := int64(-5); off < 330; off++ {
			if s.Contains(off) != oracle[off] {
				t.Fatalf("trial %d: Contains(%d) = %v, oracle %v", trial, off, s.Contains(off), oracle[off])
			}
		}
	}
}

// Property: covered bytes never exceed the span and never decrease.
func TestIntervalSetMonotoneCoverage(t *testing.T) {
	f := func(ops []struct {
		Start uint16
		Size  uint8
	}) bool {
		s := NewIntervalSet()
		var prev int64
		for _, op := range ops {
			size := int64(op.Size%32) + 1
			if err := s.Add(int64(op.Start), size); err != nil {
				return false
			}
			if s.Covered() < prev {
				return false
			}
			prev = s.Covered()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
