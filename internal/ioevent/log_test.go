package ioevent

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{ID: ID{PID: 1, File: "mnist.sdf"}, Op: OpOpen},
		{ID: ID{PID: 1, File: "mnist.sdf"}, Op: OpLseek, Offset: 16},
		{ID: ID{PID: 1, File: "mnist.sdf"}, Op: OpRead, Offset: 16, Size: 128},
		{ID: ID{PID: 2, File: "fuji.sdf"}, Op: OpRead, Offset: 0, Size: 64},
		{ID: ID{PID: 1, File: "mnist.sdf"}, Op: OpClose},
	}
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	want := sampleEvents()
	for _, e := range want {
		if err := lw.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	var got []Event
	if err := ReadLog(bytes.NewReader(buf.Bytes()), func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogReplayEqualsDirectRecording(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	direct := NewStore()
	for _, e := range sampleEvents() {
		if err := lw.Append(e); err != nil {
			t.Fatal(err)
		}
		if err := direct.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	replayed := NewStore()
	if err := Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.Events() != direct.Events() {
		t.Errorf("event counts differ: %d vs %d", replayed.Events(), direct.Events())
	}
	for _, file := range direct.Files() {
		a, b := direct.FileRanges(file), replayed.FileRanges(file)
		if len(a) != len(b) {
			t.Fatalf("%s: range counts differ", file)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: range %d differs: %v vs %v", file, i, a[i], b[i])
			}
		}
	}
}

func TestReadLogEmptyAndMalformed(t *testing.T) {
	// Empty input = empty log.
	if err := ReadLog(strings.NewReader(""), func(Event) error { return nil }); err != nil {
		t.Errorf("empty log: %v", err)
	}
	// Wrong magic.
	if err := ReadLog(strings.NewReader("NOPE"), func(Event) error { return nil }); err == nil {
		t.Error("bad magic should error")
	}
	// Truncated record.
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	if err := lw.Append(sampleEvents()[2]); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if err := ReadLog(bytes.NewReader(trunc), func(Event) error { return nil }); err == nil {
		t.Error("truncated record should error")
	}
}

func TestLogUnusedWriterWritesNothing(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("unused writer produced %d bytes", buf.Len())
	}
}
