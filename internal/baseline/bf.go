// Package baseline implements the comparison systems of paper §V-C:
// the brute-force enumerator (BF), a re-targeted coverage-guided
// fuzzer in the style of American Fuzzy Lop (AFL), and the
// Simple-Convex combination (SC) of Kondo's fuzzer with a single
// regular convex hull.
package baseline

import (
	"context"
	"time"

	"repro/internal/array"
	"repro/internal/workload"
)

// Result is the outcome of a baseline campaign, shaped like the
// fuzzer's result so the experiment harness can compare them
// uniformly.
type Result struct {
	// Indices is the union of accessed index sets over all executed
	// runs.
	Indices *array.IndexSet
	// Evaluations is the number of program runs executed.
	Evaluations int
	// Exhausted reports whether the whole parameter space was covered
	// (BF only; always false for AFL).
	Exhausted bool
	// Elapsed is the campaign's wall-clock duration.
	Elapsed time.Duration
}

// BruteForce executes the program on every parameter valuation of Θ in
// lexicographic order, recording accessed indices, until the budget
// runs out (paper §V-C: "BF computes the true and precise result, if
// given sufficient time"). A zero maxEvals or timeBudget leaves that
// limit off. Canceling the context stops the enumeration promptly and
// returns the partial result.
func BruteForce(ctx context.Context, p workload.Program, maxEvals int, timeBudget time.Duration) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var deadline time.Time
	if timeBudget > 0 {
		deadline = start.Add(timeBudget)
	}
	res := &Result{Indices: array.NewIndexSet(p.Space()), Exhausted: true}
	acc := workload.NewVirtualAccessor(p.Space())
	env := &workload.Env{Acc: acc}
	var runErr error
	// Check the deadline only every few runs; time.Now in the hot
	// loop would dominate the cheap virtual executions.
	const deadlineEvery = 64
	p.Params().EachValuation(func(v []float64) bool {
		if maxEvals > 0 && res.Evaluations >= maxEvals {
			res.Exhausted = false
			return false
		}
		if res.Evaluations%deadlineEvery == 0 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.Exhausted = false
				return false
			}
			if ctx.Err() != nil {
				res.Exhausted = false
				return false
			}
		}
		if err := p.Run(v, env); err != nil {
			runErr = err
			return false
		}
		res.Evaluations++
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Indices = acc.Accessed()
	res.Elapsed = time.Since(start)
	return res, nil
}

// BruteForceUntil enumerates Θ lexicographically like BruteForce but
// invokes stop every checkEvery evaluations with the accumulated
// result; enumeration halts when stop returns true or the context is
// canceled. It is the incremental driver behind the Fig. 10
// time-to-recall comparison.
func BruteForceUntil(ctx context.Context, p workload.Program, checkEvery int, stop func(*Result) bool) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if checkEvery <= 0 {
		checkEvery = 64
	}
	start := time.Now()
	res := &Result{Exhausted: true}
	acc := workload.NewVirtualAccessor(p.Space())
	env := &workload.Env{Acc: acc}
	var runErr error
	p.Params().EachValuation(func(v []float64) bool {
		if err := p.Run(v, env); err != nil {
			runErr = err
			return false
		}
		res.Evaluations++
		if res.Evaluations%checkEvery == 0 {
			res.Indices = acc.Accessed()
			res.Elapsed = time.Since(start)
			if stop(res) || ctx.Err() != nil {
				res.Exhausted = false
				return false
			}
		}
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Indices = acc.Accessed()
	res.Elapsed = time.Since(start)
	return res, nil
}
