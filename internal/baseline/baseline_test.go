package baseline

import (
	"context"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestBruteForceExhaustiveIsExact(t *testing.T) {
	p := workload.MustCS(2, 32)
	res, err := BruteForce(context.Background(), p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Error("unbounded BF should exhaust Θ")
	}
	if res.Evaluations != int(p.Params().Valuations()) {
		t.Errorf("Evaluations = %d, want %d", res.Evaluations, p.Params().Valuations())
	}
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Indices)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Errorf("exhaustive BF precision/recall = %+v, want 1/1", pr)
	}
}

func TestBruteForceRespectsEvalBudget(t *testing.T) {
	p := workload.MustCS(2, 64)
	res, err := BruteForce(context.Background(), p, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 100 {
		t.Errorf("Evaluations = %d, want 100", res.Evaluations)
	}
	if res.Exhausted {
		t.Error("budgeted BF should not report exhaustion")
	}
	// Lexicographic order means stepX=0 rows first: precision stays 1
	// (it never over-approximates) but recall is partial.
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Indices)
	if pr.Precision != 1 {
		t.Errorf("BF precision = %v, want 1", pr.Precision)
	}
	if pr.Recall >= 1 {
		t.Errorf("BF with 100 evals should have partial recall, got %v", pr.Recall)
	}
}

func TestBruteForceRespectsTimeBudget(t *testing.T) {
	p := workload.MustCS(2, 128)
	start := time.Now()
	res, err := BruteForce(context.Background(), p, 0, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("time budget wildly exceeded")
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations in budget")
	}
}

func TestAFLFindsCoverage(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := DefaultAFLConfig()
	cfg.MaxEvals = 3000
	cfg.Seed = 9
	res, err := AFL(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations > 3000 {
		t.Fatalf("Evaluations = %d", res.Evaluations)
	}
	if res.Indices.Empty() {
		t.Fatal("AFL found no indices")
	}
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Indices)
	t.Logf("AFL: evals=%d |IS|=%d precision=%.3f recall=%.3f",
		res.Evaluations, res.Indices.Len(), pr.Precision, pr.Recall)
	// AFL records only real accesses: precision 1 by construction.
	if pr.Precision != 1 {
		t.Errorf("AFL precision = %v, want 1", pr.Precision)
	}
	if pr.Recall <= 0 {
		t.Error("AFL recall should be positive")
	}
}

// TestAFLWeakerThanKondoPerEval reproduces the paper's core claim at
// equal run budgets: Kondo's data-coverage schedule reaches much
// higher recall than the code-coverage-guided baseline (Fig. 7).
func TestAFLWeakerThanKondoPerEval(t *testing.T) {
	p := workload.MustCS(2, 128)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1500

	aflCfg := DefaultAFLConfig()
	aflCfg.MaxEvals = budget
	aflCfg.Seed = 4
	aflRes, err := AFL(context.Background(), p, aflCfg)
	if err != nil {
		t.Fatal(err)
	}
	aflRecall := metrics.Recall(truth, aflRes.Indices)

	fuzzCfg := fuzz.DefaultConfig()
	fuzzCfg.MaxEvals = budget
	fuzzCfg.Seed = 4
	f, err := fuzz.ForProgram(p, fuzzCfg)
	if err != nil {
		t.Fatal(err)
	}
	kres, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Raw fuzzer observations (before carving) already beat AFL.
	kondoRecall := metrics.Recall(truth, kres.Indices)
	t.Logf("recall at %d evals: kondo-fuzzer=%.3f afl=%.3f", budget, kondoRecall, aflRecall)
	if kondoRecall <= aflRecall {
		t.Errorf("expected Kondo fuzzer recall (%.3f) > AFL recall (%.3f)", kondoRecall, aflRecall)
	}
}

func TestSimpleConvexCoversButOverApproximates(t *testing.T) {
	// On LDC (two distant corners), SC's single hull must cover the
	// diagonal between the corners: recall high, precision well below
	// Kondo's (Fig. 8).
	p := workload.MustLDC(128, 128)
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 5
	res, err := SimpleConvex(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Approx)
	t.Logf("SC on LDC2D: precision=%.3f recall=%.3f", pr.Precision, pr.Recall)
	if pr.Recall < 0.9 {
		t.Errorf("SC recall = %v, want >= 0.9", pr.Recall)
	}
	if pr.Precision > 0.6 {
		t.Errorf("SC precision = %v; expected heavy over-approximation (< 0.6)", pr.Precision)
	}
}

func TestEncodeDecodeInput(t *testing.T) {
	v := []float64{3, 117, 64}
	data := encodeInput(v)
	back := decodeInput(data, 3)
	for i := range v {
		if back[i] != v[i] {
			t.Errorf("round trip[%d] = %v, want %v", i, back[i], v[i])
		}
	}
	// Short buffer: missing params decode to zero.
	short := decodeInput(data[:4], 3)
	if short[0] != 3 || short[1] != 0 || short[2] != 0 {
		t.Errorf("short decode = %v", short)
	}
}

func TestClassifyCounts(t *testing.T) {
	cases := map[byte]byte{0: 0, 1: 1, 2: 2, 3: 4, 5: 8, 12: 16, 20: 32, 100: 64, 200: 128}
	for in, want := range cases {
		if got := classifyCounts(in); got != want {
			t.Errorf("classifyCounts(%d) = %d, want %d", in, got, want)
		}
	}
}
