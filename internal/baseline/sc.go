package baseline

import (
	"context"
	"time"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/workload"
)

// SCResult is the outcome of the Simple-Convex baseline.
type SCResult struct {
	// Approx is the rasterized single convex hull over the fuzzer's
	// observations.
	Approx *array.IndexSet
	// Fuzz is the underlying fuzz campaign.
	Fuzz *fuzz.Result
	// Elapsed is the total wall-clock duration.
	Elapsed time.Duration
}

// SimpleConvex runs Kondo's fuzzer but carves with one regular convex
// hull over all observed points, with no cell split and no merge
// thresholds — the SC baseline of §V-C used to show why the bottom-up
// merging carver matters for precision (Fig. 8).
func SimpleConvex(ctx context.Context, p workload.Program, cfg fuzz.Config) (*SCResult, error) {
	start := time.Now()
	f, err := fuzz.ForProgram(p, cfg)
	if err != nil {
		return nil, err
	}
	fres, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := &SCResult{Fuzz: fres}
	if fres.Indices.Len() == 0 {
		res.Approx = array.NewIndexSet(p.Space())
		res.Elapsed = time.Since(start)
		return res, nil
	}
	h, err := carve.SimpleConvex(fres.Indices)
	if err != nil {
		return nil, err
	}
	approx, err := h.RasterizeContext(ctx, p.Space())
	if err != nil {
		return nil, err
	}
	res.Approx = approx
	res.Elapsed = time.Since(start)
	return res, nil
}
