package baseline

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestAFLBitmapEdgeHashing(t *testing.T) {
	b := &aflBitmap{}
	b.Hit(100)
	b.Hit(200)
	nonZero := 0
	for _, c := range b.cur {
		if c != 0 {
			nonZero++
		}
	}
	if nonZero != 2 {
		t.Errorf("expected 2 touched map cells, got %d", nonZero)
	}
	// Edge sensitivity: the same node hit after different predecessors
	// lands in different cells.
	b.reset()
	b.Hit(1)
	b.Hit(5) // edge (1→5)
	var first [aflMapSize]byte
	copy(first[:], b.cur[:])
	b.reset()
	b.Hit(3)
	b.Hit(5) // edge (3→5)
	same := true
	for i := range b.cur {
		if b.cur[i] != first[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different edges hashed identically")
	}
}

func TestAFLTimeBudget(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := DefaultAFLConfig()
	cfg.TimeBudget = 20 * time.Millisecond
	cfg.Seed = 1
	start := time.Now()
	res, err := AFL(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("time budget wildly exceeded")
	}
	if res.Evaluations == 0 {
		t.Error("no executions in budget")
	}
}

func TestAFLProgressStops(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := DefaultAFLConfig()
	cfg.Seed = 2
	cfg.MaxEvals = 100000
	cfg.ProgressEvery = 50
	calls := 0
	cfg.Progress = func(r *Result) bool {
		calls++
		return r.Evaluations >= 200
	}
	res, err := AFL(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never called")
	}
	if res.Evaluations > 1000 {
		t.Errorf("progress stop ignored: %d evaluations", res.Evaluations)
	}
}

func TestAFLDeterministicWithSeed(t *testing.T) {
	p := workload.MustCS(2, 64)
	run := func() int {
		cfg := DefaultAFLConfig()
		cfg.Seed = 7
		cfg.MaxEvals = 500
		res, err := AFL(context.Background(), p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Indices.Len()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("seeded AFL runs differ: %d vs %d", a, b)
	}
}

func TestHavocOpNeverPanics(t *testing.T) {
	// havocOp on tiny buffers must stay in bounds.
	for size := 0; size <= 9; size++ {
		data := make([]byte, size)
		rng := newTestRand(int64(size))
		for i := 0; i < 2000; i++ {
			havocOp(data, rng)
		}
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
