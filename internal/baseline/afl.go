package baseline

import (
	"context"
	"encoding/binary"
	"math/rand"
	"time"

	"repro/internal/array"
	"repro/internal/workload"
)

// aflMapSize is the coverage bitmap size (AFL's classic 64 KB map).
const aflMapSize = 1 << 16

// aflBitmap is the shared-memory-style edge bitmap an instrumented
// target writes hit counts into.
type aflBitmap struct {
	cur  [aflMapSize]byte
	prev uint32
}

// Hit implements workload.Coverage with AFL's edge hashing: the map
// index mixes the previous and current block ids, so the bitmap
// captures edges rather than nodes.
func (b *aflBitmap) Hit(edge uint32) {
	idx := (b.prev ^ edge) % aflMapSize
	b.cur[idx]++
	b.prev = edge >> 1
}

// hitIndex registers a data access as coverage, reproducing the
// paper's re-targeting of AFL to array-index coverage: a synthetic
// "if subscript == (i,j,...)" branch per index, realized as one edge
// per index linear position.
func (b *aflBitmap) hitIndex(lin int64) {
	b.Hit(uint32(lin)*2654435761 + 0x9e3779b9)
}

// reset clears the bitmap for the next execution.
func (b *aflBitmap) reset() {
	for i := range b.cur {
		b.cur[i] = 0
	}
	b.prev = 0
}

// classifyCounts buckets raw hit counts the way AFL does, so loops
// with slightly different trip counts don't look like new coverage.
func classifyCounts(c byte) byte {
	switch {
	case c == 0:
		return 0
	case c == 1:
		return 1
	case c == 2:
		return 2
	case c == 3:
		return 4
	case c <= 7:
		return 8
	case c <= 15:
		return 16
	case c <= 31:
		return 32
	case c <= 127:
		return 64
	default:
		return 128
	}
}

// aflSeed is one queue entry.
type aflSeed struct {
	data      []byte
	wasUseful bool
	detDone   bool // deterministic stages already applied
}

// AFLConfig bounds an AFL campaign.
type AFLConfig struct {
	MaxEvals   int
	TimeBudget time.Duration
	Seed       int64
	// HavocStacking is the maximum number of stacked havoc mutations
	// per generated input (AFL default behaviour uses a power of two
	// up to 64).
	HavocStacking int
	// Progress, when set, is invoked every ProgressEvery evaluations
	// with the accumulated result; returning true stops the campaign.
	Progress      func(*Result) bool
	ProgressEvery int
}

// DefaultAFLConfig mirrors stock AFL behaviour.
func DefaultAFLConfig() AFLConfig {
	return AFLConfig{HavocStacking: 16}
}

// AFL runs a coverage-guided fuzzing campaign against the program,
// re-targeted to index coverage as described in §V-C: every accessed
// array index is surfaced to the coverage bitmap, and the campaign
// keeps inputs that light up new bitmap bits.
//
// Faithful to the baseline's observed weaknesses, inputs are raw byte
// buffers (one 32-bit little-endian word per parameter) mutated
// blindly: most mutants decode to out-of-range valuations and waste
// executions, and the per-exec bitmap classification/compare is real
// bookkeeping overhead.
//
// Canceling the context stops the campaign at the next budget check
// and returns the partial result.
func AFL(ctx context.Context, p workload.Program, cfg AFLConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.HavocStacking <= 0 {
		cfg.HavocStacking = 16
	}
	start := time.Now()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := p.Params()
	res := &Result{Indices: array.NewIndexSet(p.Space())}

	bitmap := &aflBitmap{}
	var virgin [aflMapSize]byte
	for i := range virgin {
		virgin[i] = 0xFF
	}

	// One accumulated virtual accessor; per-run sets are extracted to
	// feed index coverage.
	acc := workload.NewVirtualAccessor(p.Space())

	runInput := func(data []byte) (newCov bool, err error) {
		v := decodeInput(data, len(params))
		bitmap.reset()
		env := &workload.Env{Acc: acc, Cov: bitmap}
		if err := p.Run(v, env); err != nil {
			return false, err
		}
		iv := acc.ResetAccessed()
		iv.EachLinear(func(lin int64) bool {
			bitmap.hitIndex(lin)
			return true
		})
		res.Indices.UnionWith(iv)
		res.Evaluations++
		// has_new_bits: classify and compare against virgin map.
		for i := range bitmap.cur {
			c := classifyCounts(bitmap.cur[i])
			if c&virgin[i] != 0 {
				virgin[i] &^= c
				newCov = true
			}
		}
		return newCov, nil
	}

	progressEvery := cfg.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 64
	}
	stopped := false
	lastProgress := 0
	budgetLeft := func() bool {
		if stopped {
			return false
		}
		if cfg.MaxEvals > 0 && res.Evaluations >= cfg.MaxEvals {
			return false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		if ctx.Err() != nil {
			return false
		}
		if cfg.Progress != nil && res.Evaluations >= lastProgress+progressEvery {
			lastProgress = res.Evaluations
			res.Elapsed = time.Since(start)
			if cfg.Progress(res) {
				stopped = true
				return false
			}
		}
		return true
	}

	// Seed corpus: one valid input (the container's CMD default — the
	// low corner of Θ) plus one mid-range input.
	var queue []*aflSeed
	for _, pick := range []float64{0, 0.5} {
		v := make([]float64, len(params))
		for i, r := range params {
			v[i] = float64(r.Lo) + pick*float64(r.Hi-r.Lo)
		}
		data := encodeInput(v)
		if _, err := runInput(data); err != nil {
			return nil, err
		}
		queue = append(queue, &aflSeed{data: data})
	}

	for qi := 0; budgetLeft(); qi = (qi + 1) % len(queue) {
		seed := queue[qi]
		// Deterministic stage: walking bitflips and byte arithmetic,
		// once per seed.
		if !seed.detDone {
			seed.detDone = true
			for bit := 0; bit < len(seed.data)*8 && budgetLeft(); bit++ {
				mutant := append([]byte(nil), seed.data...)
				mutant[bit/8] ^= 1 << (bit % 8)
				if nc, err := runInput(mutant); err != nil {
					return nil, err
				} else if nc {
					queue = append(queue, &aflSeed{data: mutant})
				}
			}
			for off := 0; off < len(seed.data) && budgetLeft(); off++ {
				for _, delta := range []int{1, -1, 16, -16} {
					mutant := append([]byte(nil), seed.data...)
					mutant[off] = byte(int(mutant[off]) + delta)
					if nc, err := runInput(mutant); err != nil {
						return nil, err
					} else if nc {
						queue = append(queue, &aflSeed{data: mutant})
					}
				}
			}
		}
		if !budgetLeft() {
			break
		}
		// Havoc stage: stacked random mutations.
		for round := 0; round < 32 && budgetLeft(); round++ {
			mutant := append([]byte(nil), seed.data...)
			stack := 1 << (1 + rng.Intn(4))
			if stack > cfg.HavocStacking {
				stack = cfg.HavocStacking
			}
			for s := 0; s < stack; s++ {
				havocOp(mutant, rng)
			}
			if nc, err := runInput(mutant); err != nil {
				return nil, err
			} else if nc {
				queue = append(queue, &aflSeed{data: mutant})
			}
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// havocOp applies one random AFL-style havoc mutation in place.
func havocOp(data []byte, rng *rand.Rand) {
	if len(data) == 0 {
		return
	}
	switch rng.Intn(6) {
	case 0: // flip a random bit
		bit := rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
	case 1: // set a random byte to a random value
		data[rng.Intn(len(data))] = byte(rng.Intn(256))
	case 2: // add/sub a small delta
		off := rng.Intn(len(data))
		data[off] = byte(int(data[off]) + rng.Intn(35) - 17)
	case 3: // overwrite with an "interesting" value
		interesting := []byte{0, 1, 0x7F, 0x80, 0xFF, 16, 32, 64, 100, 127}
		data[rng.Intn(len(data))] = interesting[rng.Intn(len(interesting))]
	case 4: // overwrite a 32-bit word with an interesting word
		if len(data) >= 4 {
			words := []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 100, 1024, 65535}
			off := rng.Intn(len(data)-3) &^ 3
			if off+4 <= len(data) {
				binary.LittleEndian.PutUint32(data[off:], words[rng.Intn(len(words))])
			}
		}
	case 5: // clone a byte elsewhere
		src, dst := rng.Intn(len(data)), rng.Intn(len(data))
		data[dst] = data[src]
	}
}

// encodeInput packs a parameter valuation into AFL's byte-buffer input
// format: one 32-bit little-endian word per parameter.
func encodeInput(v []float64) []byte {
	data := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(data[i*4:], uint32(int32(workload.RoundParam(x))))
	}
	return data
}

// decodeInput is the inverse mapping used by the target harness: raw
// int32 words, with no clamping — out-of-range words simply fail the
// program's parameter validation, wasting the execution (the behaviour
// §V-D1 attributes AFL's low recall to).
func decodeInput(data []byte, m int) []float64 {
	v := make([]float64, m)
	for i := 0; i < m; i++ {
		if (i+1)*4 <= len(data) {
			v[i] = float64(int32(binary.LittleEndian.Uint32(data[i*4:])))
		}
	}
	return v
}
