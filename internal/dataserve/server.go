package dataserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// defaultServingElems is the serving-chunk volume target for origins
// stored contiguously, shared with the debloat-time Merkle builder so
// both derive the same chunk grid.
const defaultServingElems = sdf.DefaultServingElems

// DatasetMeta is the /meta response body: the geometry a client needs
// to turn element indices into serving-chunk coordinates.
type DatasetMeta struct {
	Dataset string `json:"dataset"`
	Dims    []int  `json:"dims"`
	DType   string `json:"dtype"`
	// Chunk is the serving chunk shape: the dataset's storage chunk
	// shape when it is chunked, otherwise a server-derived shape.
	Chunk []int `json:"chunk"`
	// Chunked reports whether the underlying storage layout is
	// chunked (i.e. Chunk mirrors real storage granularity).
	Chunked   bool `json:"chunked"`
	Debloated bool `json:"debloated"`
}

// serving bundles one dataset's handle with its serving-chunk
// geometry, precomputed at open time so request handling allocates no
// shared state. The Merkle tree backing proof-carrying responses is
// built lazily on the first proof=1 request (a full-dataset read, paid
// once) and memoized; tamper after the build is still caught because
// the served bytes then disagree with the memoized leaves.
type serving struct {
	ds    *sdf.Dataset
	meta  DatasetMeta
	space array.Space
	grid  *array.ChunkedLayout

	treeOnce sync.Once
	tree     *sdf.MerkleTree
	treeErr  error
}

// merkle returns the dataset's memoized serving-chunk Merkle tree,
// building it on first use (built counts actual builds).
func (sv *serving) merkle(built *atomic.Int64) (*sdf.MerkleTree, error) {
	sv.treeOnce.Do(func() {
		sv.tree, sv.treeErr = sdf.BuildDatasetMerkle(sv.ds, sv.meta.Chunk)
		if sv.treeErr == nil {
			built.Add(1)
		}
	})
	return sv.tree, sv.treeErr
}

// Server serves chunk- and hyperslab-granular reads from an origin
// sdf file. Reads are lock-free with respect to each other: dataset
// handles are immutable and the underlying file reads through ReadAt,
// so the only synchronization is an RWMutex held shared for the
// duration of a request to fence Close.
type Server struct {
	mu   sync.RWMutex
	file *sdf.File
	sets map[string]*serving
	rec  *metrics.ServeRecorder

	// draining flips /healthz to 503 during graceful shutdown so load
	// balancers stop routing before in-flight requests finish.
	draining atomic.Bool
	// trace, when set via EnableTracing, records one serve.<endpoint>
	// span per request and backs the /tracez export.
	trace atomic.Pointer[serverTrace]
	// slo, when set via SetSLO, backs the /sloz report.
	slo atomic.Pointer[obs.SLO]
	// traceRequests counts requests that arrived with a propagated
	// trace context (whether or not local recording is on).
	traceRequests atomic.Int64
	// proofFrames counts proof-carrying (KDB2) chunk responses served;
	// proofErrors counts proof=1 requests that failed to produce one;
	// proofTrees counts Merkle trees built (at most one per dataset).
	proofFrames atomic.Int64
	proofErrors atomic.Int64
	proofTrees  atomic.Int64
}

// serverTrace pairs the server's trace with its exported lane name.
type serverTrace struct {
	tr   *obs.Trace
	name string
}

// NewServer opens the origin file and precomputes serving geometry
// for every dataset, recording metrics with the default latency
// buckets.
func NewServer(originPath string) (*Server, error) {
	return NewServerWithRecorder(originPath, nil)
}

// NewServerWithRecorder is NewServer with an explicit metrics
// recorder (e.g. one with custom latency buckets); nil gets a fresh
// default recorder.
func NewServerWithRecorder(originPath string, rec *metrics.ServeRecorder) (*Server, error) {
	f, err := sdf.Open(originPath)
	if err != nil {
		return nil, fmt.Errorf("dataserve: opening origin: %w", err)
	}
	if rec == nil {
		rec = metrics.NewServeRecorder()
	}
	obs.RegisterBuildInfo(rec.Registry())
	s := &Server{file: f, sets: make(map[string]*serving), rec: rec}
	reg := rec.Registry()
	reg.SetHelp("kondo_serve_trace_requests_total", "Requests that arrived carrying a propagated trace context.")
	reg.CounterFunc("kondo_serve_trace_requests_total", s.traceRequests.Load)
	reg.SetHelp("kondo_serve_draining", "1 while the server is draining (healthz returns 503).")
	reg.GaugeFunc("kondo_serve_draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.SetHelp("kondo_serve_proof_frames_total", "Proof-carrying (KDB2) chunk responses served.")
	reg.CounterFunc("kondo_serve_proof_frames_total", s.proofFrames.Load)
	reg.SetHelp("kondo_serve_proof_errors_total", "proof=1 chunk requests that failed to produce a proof frame.")
	reg.CounterFunc("kondo_serve_proof_errors_total", s.proofErrors.Load)
	reg.SetHelp("kondo_serve_proof_trees_total", "Serving-chunk Merkle trees built (at most one per dataset).")
	reg.CounterFunc("kondo_serve_proof_trees_total", s.proofTrees.Load)
	for _, name := range f.Names() {
		ds, err := f.Dataset(name)
		if err != nil {
			f.Close()
			return nil, err
		}
		space := ds.Space()
		chunk := ds.ChunkShape()
		chunked := chunk != nil
		if chunk == nil {
			chunk = sdf.ServingChunkShape(space.Dims(), defaultServingElems)
		}
		grid, err := array.NewChunkedLayout(space, ds.DType(), chunk)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dataserve: dataset %q: %w", name, err)
		}
		s.sets[name] = &serving{
			ds: ds,
			meta: DatasetMeta{
				Dataset:   name,
				Dims:      space.Dims(),
				DType:     ds.DType().String(),
				Chunk:     chunk,
				Chunked:   chunked,
				Debloated: ds.Debloated(),
			},
			space: space,
			grid:  grid,
		}
	}
	return s, nil
}

// Close releases the origin file. In-flight requests finish first.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Metrics returns a snapshot of the server's request metrics.
func (s *Server) Metrics() metrics.ServeStats { return s.rec.Snapshot() }

// Registry exposes the server's instrument registry so a daemon can
// register adjacent metrics into the same /metrics?format=prom
// exposition.
func (s *Server) Registry() *obs.Registry { return s.rec.Registry() }

// Recorder exposes the server's metrics recorder, so a daemon can wire
// per-endpoint SLO sources off the same instruments the handlers feed.
func (s *Server) Recorder() *metrics.ServeRecorder { return s.rec }

// EnableTracing starts recording one serve.<endpoint> span per request
// into tr and exposes the result at /tracez under the given lane name.
// A nil tr disables tracing again.
func (s *Server) EnableTracing(tr *obs.Trace, name string) {
	if tr == nil {
		s.trace.Store(nil)
		return
	}
	s.trace.Store(&serverTrace{tr: tr, name: name})
}

// SetSLO attaches an SLO engine; its live report becomes the /sloz
// body. The caller owns ticking the engine (obs.SLO.Run).
func (s *Server) SetSLO(slo *obs.SLO) { s.slo.Store(slo) }

// SetDraining flips the drain flag: once true, /healthz answers 503 so
// load balancers route away while in-flight requests complete. Flag it
// before http.Server.Shutdown and give the balancer a beat to notice.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the drain flag.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP handler exposing the wire protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/datasets", s.instrument("datasets", s.handleDatasets))
	mux.Handle("/meta", s.instrument("meta", s.handleMeta))
	mux.Handle("/element", s.instrument("element", s.handleElement))
	mux.Handle("/chunk", s.instrument("chunk", s.handleChunk))
	mux.Handle("/slab", s.instrument("slab", s.handleSlab))
	mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/buildz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Build())
	})
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/sloz", s.handleSloz)
	return mux
}

// handleTracez exports the server's trace as a self-describing
// obs.WireTrace, the server half of a stitched client+server trace: a
// load client merges the body into its own trace under a second pid.
// 404 until EnableTracing. ?max=N bounds the event count.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	st := s.trace.Load()
	if st == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "dataserve: tracing not enabled"})
		return
	}
	max := 0
	if arg := r.URL.Query().Get("max"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("dataserve: bad max %q", arg))
			return
		}
		max = v
	}
	writeJSON(w, http.StatusOK, st.tr.ExportWire(st.name, max))
}

// handleSloz reports the attached SLO engine's live evaluation (404
// until SetSLO).
func (s *Server) handleSloz(w http.ResponseWriter, r *http.Request) {
	slo := s.slo.Load()
	if slo == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "dataserve: no SLO configured"})
		return
	}
	writeJSON(w, http.StatusOK, slo.Report(time.Now()))
}

// countingWriter captures the status code and payload size of one
// response for the metrics recorder.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(status int) {
	cw.status = status
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with latency/byte/error recording under
// the given endpoint name, and emits one serve.<endpoint> span per
// request when tracing is enabled (or the request context already
// carries a trace, as in-process tests do). A propagated trace context
// on the request headers opens the span as a child hop: same trace id,
// the caller's span id recorded as parent_span_id.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := r.Context()
		if st := s.trace.Load(); st != nil {
			ctx = obs.WithTrace(ctx, st.tr)
		}
		var sp *obs.Span
		if parent, ok := obs.ExtractTraceContext(r.Header); ok {
			s.traceRequests.Add(1)
			child := parent.Child()
			ctx = obs.WithTraceContext(ctx, child)
			sp = obs.Start(ctx, "serve."+endpoint,
				obs.A("trace_id", child.TraceID),
				obs.A("parent_span_id", parent.SpanID),
				obs.A("span_id", child.SpanID))
		} else {
			sp = obs.Start(ctx, "serve."+endpoint)
		}
		h(cw, r.WithContext(ctx))
		if sp != nil {
			sp.Arg("status", cw.status).Arg("bytes", cw.bytes)
		}
		sp.End()
		s.rec.Record(endpoint, cw.status, cw.bytes, time.Since(start))
	})
}

// lookup resolves a dataset under the read lock; the returned release
// must be called once the request is done with the handle.
func (s *Server) lookup(name string) (*serving, func(), error) {
	s.mu.RLock()
	if s.file == nil {
		s.mu.RUnlock()
		return nil, nil, errOriginClosed
	}
	sv, ok := s.sets[name]
	if !ok {
		s.mu.RUnlock()
		return nil, nil, fmt.Errorf("%w: %q", sdf.ErrNotFound, name)
	}
	return sv, s.mu.RUnlock, nil
}

var errOriginClosed = errors.New("dataserve: origin closed")

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps an error onto the protocol's status codes: missing
// data → 410 Gone, unknown dataset → 404, closed origin → 503,
// anything else → the fallback (usually 400).
func writeError(w http.ResponseWriter, fallback int, err error) {
	status := fallback
	switch {
	case errors.Is(err, sdf.ErrDataMissing):
		status = http.StatusGone
	case errors.Is(err, sdf.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errOriginClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.file == nil {
		writeError(w, http.StatusServiceUnavailable, errOriginClosed)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": s.file.Names()})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	sv, release, err := s.lookup(r.URL.Query().Get("dataset"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer release()
	writeJSON(w, http.StatusOK, sv.meta)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.rec.Registry().WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}

func (s *Server) handleElement(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	indexArg := r.URL.Query().Get("index")
	if dataset == "" || indexArg == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset and index query parameters required"))
		return
	}
	ix, err := parseInts(indexArg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sv, release, err := s.lookup(dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer release()
	if !sv.space.Contains(array.Index(ix)) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("dataserve: index %v outside %v", ix, sv.space))
		return
	}
	v, err := sv.ds.ReadElement(array.Index(ix))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"value": v})
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	chunkArg := r.URL.Query().Get("chunk")
	if dataset == "" || chunkArg == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset and chunk query parameters required"))
		return
	}
	cc, err := parseInts(chunkArg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sv, release, err := s.lookup(dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer release()
	if !sv.grid.Grid().Contains(array.Index(cc)) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("dataserve: chunk %v outside grid %v", cc, sv.grid.Grid()))
		return
	}
	start, count := chunkSlab(sv.space, sv.meta.Chunk, cc)
	vals, err := sv.ds.ReadHyperslab(sdf.Slab(start, count))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Echo the request identity as additive headers so even KDB1
	// clients can detect a swapped response (a frame for chunk A
	// answering a request for chunk B); old clients ignore them.
	w.Header().Set(headerDataset, dataset)
	w.Header().Set(headerChunk, joinInts(cc))
	if r.URL.Query().Get("proof") == "1" {
		s.writeProofFrame(w, sv, dataset, cc, vals)
		return
	}
	writeFrame(w, vals)
}

// writeProofFrame answers a proof=1 chunk request with a KDB2 frame:
// identity, leaf position, values, and the inclusion proof against the
// dataset's Merkle tree (built lazily on first use).
func (s *Server) writeProofFrame(w http.ResponseWriter, sv *serving, dataset string, cc []int, vals []float64) {
	tree, err := sv.merkle(&s.proofTrees)
	if err != nil {
		s.proofErrors.Add(1)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("dataserve: building merkle tree of %q: %w", dataset, err))
		return
	}
	leaf, err := sv.grid.ChunkLinear(array.Index(cc))
	if err != nil {
		s.proofErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	proof, err := tree.Proof(leaf)
	if err != nil {
		s.proofErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	buf, err := encodeProofFrame(proofFrame{
		Dataset: dataset,
		Chunk:   cc,
		Leaf:    leaf,
		Leaves:  tree.Leaves(),
		Vals:    vals,
		Proof:   proof,
	})
	if err != nil {
		s.proofErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.proofFrames.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	_, _ = w.Write(buf)
}

// slabRequest is the POST /slab body: one dense block.
type slabRequest struct {
	Dataset string `json:"dataset"`
	Start   []int  `json:"start"`
	Count   []int  `json:"count"`
}

func (s *Server) handleSlab(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("dataserve: /slab wants POST"))
		return
	}
	var req slabRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataserve: bad slab request: %w", err))
		return
	}
	sv, release, err := s.lookup(req.Dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer release()
	if len(req.Start) != sv.space.Rank() || len(req.Count) != sv.space.Rank() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("dataserve: slab rank mismatch (space rank %d)", sv.space.Rank()))
		return
	}
	sel := sdf.Slab(req.Start, req.Count)
	if err := sel.Validate(sv.space); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	vals, err := sv.ds.ReadHyperslab(sel)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeFrame(w, vals)
}

func writeFrame(w http.ResponseWriter, vals []float64) {
	buf := encodeFrame(vals)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	_, _ = w.Write(buf)
}

// chunkSlab returns the start/count of serving chunk cc clipped to the
// dataset space. The computation lives in internal/sdf (ChunkSlab) so
// the server, the debloat-time Merkle builder, and the client share
// one edge-clipping rule.
func chunkSlab(space array.Space, chunk []int, cc []int) (start, count []int) {
	return sdf.ChunkSlab(space, chunk, cc)
}

// Identity echo headers: the server repeats the dataset and chunk
// coordinate a chunk response answers, so clients can reject swapped
// responses even on the proof-less KDB1 path. Additive — old peers on
// either side ignore them.
const (
	headerDataset = "Kondo-Dataset"
	headerChunk   = "Kondo-Chunk"
)

// joinInts renders coordinates in the wire's comma form (the inverse
// of parseInts).
func joinInts(cc []int) string {
	parts := make([]string, len(cc))
	for i, v := range cc {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("dataserve: bad coordinate %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// LimitConcurrency caps the number of requests a handler serves at
// once; excess requests queue (bounded by the client's timeout). A
// non-positive n returns h unchanged.
func LimitConcurrency(h http.Handler, n int) http.Handler {
	if n <= 0 {
		return h
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, r.Context().Err())
		}
	})
}
