package dataserve

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, vals := range [][]float64{nil, {1.5}, {0, -3.25, 1e300, 42}} {
		buf := encodeFrame(vals)
		got, err := decodeFrame(bytes.NewReader(buf), int64(len(vals)))
		if err != nil {
			t.Fatalf("decode(%v): %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("value %d = %v, want %v", i, got[i], vals[i])
			}
		}
		// Any-count mode accepts the frame too.
		if _, err := decodeFrame(bytes.NewReader(buf), -1); err != nil {
			t.Errorf("any-count decode: %v", err)
		}
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good := encodeFrame([]float64{1, 2, 3})

	cases := []struct {
		name string
		buf  []byte
		want int64 // expected value count passed to decodeFrame
		msg  string
	}{
		{"empty", nil, 3, "truncated frame header"},
		{"short header", good[:6], 3, "truncated frame header"},
		{"bad magic", append([]byte("XXXX"), good[4:]...), 3, "bad frame magic"},
		{"truncated payload", good[:len(good)-8], 3, "truncated frame payload"},
		{"count mismatch", good, 2, "want 2"},
		{"trailing bytes", append(append([]byte(nil), good...), 0xFF), 3, "trailing bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := decodeFrame(bytes.NewReader(c.buf), c.want)
			if err == nil || !strings.Contains(err.Error(), c.msg) {
				t.Errorf("err = %v, want substring %q", err, c.msg)
			}
		})
	}

	// Flipped payload bit fails the checksum.
	corrupt := append([]byte(nil), good...)
	corrupt[frameHeaderSize] ^= 0x01
	if _, err := decodeFrame(bytes.NewReader(corrupt), 3); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted payload err = %v, want checksum mismatch", err)
	}

	// An absurd claimed count is rejected before allocation.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[4:], 1<<30)
	if _, err := decodeFrame(bytes.NewReader(huge), -1); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("huge count err = %v, want limit error", err)
	}
}
