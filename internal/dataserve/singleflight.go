package dataserve

import (
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent fetches of the same key: the
// first caller performs the work, later callers block until it
// finishes and share the result. Results are not cached here — the
// chunkCache (or the geometry map) does that — so a failed flight is
// retried by the next caller. It is generic over the result type
// because both chunk fetches ([]float64) and geometry resolution
// (*dsGeom) collapse through it.
type flightGroup[T any] struct {
	mu     sync.Mutex
	flight map[string]*flightCall[T]
}

type flightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
	dups int
}

func newFlightGroup[T any]() *flightGroup[T] {
	return &flightGroup[T]{flight: make(map[string]*flightCall[T])}
}

// do runs fn under key, collapsing concurrent duplicates onto the
// first in-flight call. It reports how many callers shared the result
// via the dup return (0 for the caller that did the work). The
// in-flight call runs under the initiating caller's context; a waiter
// whose initiator is canceled receives the initiator's error and may
// simply retry.
func (g *flightGroup[T]) do(key string, fn func() (T, error)) (val T, err error, dup bool) {
	g.mu.Lock()
	if c, ok := g.flight[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[T]{done: make(chan struct{})}
	g.flight[key] = c
	g.mu.Unlock()

	// Cleanup runs deferred so a panicking fn still removes the flight
	// entry and releases its waiters — otherwise every later fetch of
	// this key would block on a done channel nobody will ever close.
	// Waiters observe an error (not the panic); the panic itself
	// propagates to the initiating caller.
	completed := false
	defer func() {
		if !completed {
			var zero T
			c.val, c.err = zero, fmt.Errorf("dataserve: in-flight fetch of key %q panicked", key)
		}
		g.mu.Lock()
		delete(g.flight, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err, false
}
