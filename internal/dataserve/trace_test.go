package dataserve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/obs"
)

// TestBackoffDelayJittered pins the thundering-herd fix: successive
// backoff delays for the same attempt are randomized (full jitter),
// not a constant, and never exceed the capped exponential ceiling.
func TestBackoffDelayJittered(t *testing.T) {
	f := NewFetcherConfig("http://127.0.0.1:1", nil, FetcherConfig{
		RetryBase: 50 * time.Millisecond,
		RetryMax:  2 * time.Second,
	})
	const samples = 64
	seen := make(map[time.Duration]bool)
	for i := 0; i < samples; i++ {
		d := f.backoffDelay(1)
		if d < 0 || d > 50*time.Millisecond {
			t.Fatalf("try-1 delay %v outside [0, base]", d)
		}
		seen[d] = true
	}
	// With full jitter over 5e7 ns, 64 identical draws means the jitter
	// is gone (collision probability is astronomically small).
	if len(seen) < 2 {
		t.Fatalf("delays are constant: %v", seen)
	}
	// The ceiling grows exponentially, then caps at RetryMax.
	for i := 0; i < samples; i++ {
		if d := f.backoffDelay(3); d > 200*time.Millisecond {
			t.Fatalf("try-3 delay %v above 4x base ceiling", d)
		}
		if d := f.backoffDelay(20); d > 2*time.Second {
			t.Fatalf("try-20 delay %v above RetryMax cap", d)
		}
		// Very deep retries must not overflow the shifted ceiling.
		if d := f.backoffDelay(200); d < 0 || d > 2*time.Second {
			t.Fatalf("try-200 delay %v escaped the cap (overflow?)", d)
		}
	}
}

// TestHealthzDrain pins the drain window: /healthz answers 200 while
// serving, 503 once draining begins, and 200 again if drain is
// cancelled.
func TestHealthzDrain(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, ts := startServer(t, space, []int{8, 8})

	get := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d", got)
	}
	srv.SetDraining(true)
	if !srv.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", got)
	}
	// Data endpoints keep serving through the drain window — only the
	// balancer signal flips.
	resp, err := http.Get(ts.URL + "/meta?dataset=data")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta during drain = %d, want 200", resp.StatusCode)
	}
	srv.SetDraining(false)
	if got := get(); got != http.StatusOK {
		t.Fatalf("healthz after undrain = %d", got)
	}
}

// TestTracePropagationStitches drives a traced fetch through a traced
// server and asserts the full wire-propagation chain: the client
// stamps headers, the server opens a child span carrying the same
// trace id and the client's span id as parent, and merging the
// server's /tracez export into the client trace yields a 2-pid trace.
func TestTracePropagationStitches(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, ts := startServer(t, space, []int{8, 8})

	serverTr := obs.NewTrace()
	srv.EnableTracing(serverTr, "kondo-serve")

	clientTr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), clientTr)
	f := NewFetcher(ts.URL, nil)
	v, err := f.FetchContext(ctx, "data", array.Index{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := originValue(space, array.Index{3, 4}); v != want {
		t.Fatalf("value = %v, want %v", v, want)
	}
	if got := f.tracePropagated.Load(); got == 0 {
		t.Fatal("no outgoing request was stamped with a trace context")
	}
	if got := srv.traceRequests.Load(); got == 0 {
		t.Fatal("server saw no propagated trace context")
	}

	// Pull the server's export over /tracez and stitch.
	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez status = %d", resp.StatusCode)
	}
	var wt obs.WireTrace
	if err := json.NewDecoder(resp.Body).Decode(&wt); err != nil {
		t.Fatal(err)
	}
	if wt.ProcessName != "kondo-serve" {
		t.Fatalf("tracez lane = %q", wt.ProcessName)
	}
	if len(wt.Events) == 0 {
		t.Fatal("tracez exported no events")
	}

	// The ids must join up: client fetch span and server serve span
	// share a trace id, and the server's parent is the client's span.
	cevs, _ := clientTr.ExportEvents(0)
	var clientTID, clientSID string
	for _, e := range cevs {
		if e.Name == "dataserve.fetch" {
			clientTID, _ = e.Args["trace_id"].(string)
			clientSID, _ = e.Args["span_id"].(string)
		}
	}
	if clientTID == "" || clientSID == "" {
		t.Fatalf("client fetch span carries no ids: %+v", cevs)
	}
	joined := false
	for _, e := range wt.Events {
		if e.Args["trace_id"] == clientTID && e.Args["parent_span_id"] == clientSID {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("no server span joins trace %s / parent %s: %+v", clientTID, clientSID, wt.Events)
	}

	clientTr.MergeWire(2, wt)
	if pids := clientTr.PIDs(); len(pids) < 2 {
		t.Fatalf("stitched trace has pids %v, want >= 2 lanes", pids)
	}
}

// TestTracezSlozDisabled pins the 404-until-configured contract.
func TestTracezSlozDisabled(t *testing.T) {
	space := array.MustSpace(8, 8)
	_, ts := startServer(t, space, []int{4, 4})
	for _, ep := range []string{"/tracez", "/sloz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without config = %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestSlozEndpoint wires an SLO engine over the server's own chunk
// endpoint and reads the report back through /sloz.
func TestSlozEndpoint(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, ts := startServer(t, space, []int{8, 8})
	slo := obs.NewSLO(time.Minute, obs.SLOObjective{
		Name:         "chunk",
		Quantile:     0.99,
		LatencyBound: time.Second,
		Target:       0.99,
		Source:       srv.Recorder().SLOSource("chunk"),
	})
	srv.SetSLO(slo)

	f := NewFetcher(ts.URL, nil)
	if _, err := f.Fetch("data", array.Index{1, 1}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/sloz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sloz status = %d", resp.StatusCode)
	}
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	o := rep.Objective("chunk")
	if o.Requests < 1 {
		t.Fatalf("sloz window requests = %d, want >= 1", o.Requests)
	}
	if o.Exhausted {
		t.Fatalf("fresh server exhausted its budget: %+v", o)
	}
}
