package dataserve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightGroupPanicReleasesKey pins the singleflight panic path: a
// panicking fn must still remove the flight entry and release its
// waiters. Before the deferred cleanup, the entry stayed in the map
// with an unclosed done channel and every later fetch of the key
// deadlocked.
func TestFlightGroupPanicReleasesKey(t *testing.T) {
	g := newFlightGroup[[]float64]()

	leaderIn := make(chan struct{})
	waiterJoined := make(chan struct{})

	// A waiter joins the flight while the leader is inside fn, so it is
	// blocked on the done channel when the panic fires.
	var waiterVals []float64
	var waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-leaderIn
		close(waiterJoined)
		waiterVals, waiterErr, _ = g.do("k", func() ([]float64, error) {
			t.Error("waiter ran fn; it should have joined the leader's flight")
			return nil, nil
		})
	}()

	// The leader's panic must propagate to the initiating caller.
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("leader's panic did not propagate")
			}
		}()
		g.do("k", func() ([]float64, error) {
			close(leaderIn)
			<-waiterJoined
			// Give the waiter a beat to actually block on done.
			time.Sleep(10 * time.Millisecond)
			panic("fetch exploded")
		})
	}()

	wg.Wait()
	if waiterErr == nil {
		t.Fatal("waiter of a panicked flight got a nil error")
	}
	if !strings.Contains(waiterErr.Error(), "panicked") {
		t.Errorf("waiter error %q does not mention the panic", waiterErr)
	}
	if waiterVals != nil {
		t.Errorf("waiter of a panicked flight got values %v", waiterVals)
	}

	// The key must be usable again: a post-panic fetch runs fn and
	// succeeds instead of blocking on the dead flight.
	done := make(chan struct{})
	var vals []float64
	var err error
	go func() {
		defer close(done)
		vals, err, _ = g.do("k", func() ([]float64, error) {
			return []float64{42}, nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic fetch of the same key deadlocked")
	}
	if err != nil {
		t.Fatalf("post-panic fetch failed: %v", err)
	}
	if len(vals) != 1 || vals[0] != 42 {
		t.Errorf("post-panic fetch returned %v, want [42]", vals)
	}
}

// TestFlightGroupErrorNotCached checks a plain error (no panic) is
// handed to waiters and the key is immediately retryable.
func TestFlightGroupErrorNotCached(t *testing.T) {
	g := newFlightGroup[[]float64]()
	sentinel := errors.New("boom")
	if _, err, _ := g.do("k", func() ([]float64, error) { return nil, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	vals, err, _ := g.do("k", func() ([]float64, error) { return []float64{1}, nil })
	if err != nil || len(vals) != 1 {
		t.Fatalf("retry after error: vals %v err %v", vals, err)
	}
}

// TestChunkCacheAliasing pins the copy-in/copy-out contract: mutating
// the slice handed to put, or the slice returned by get, must not
// change what later hits observe. Before the fix, get returned the
// resident slice, so one caller scribbling on recovered values
// corrupted the chunk for every future hit.
func TestChunkCacheAliasing(t *testing.T) {
	c := newChunkCache(1 << 20)

	src := []float64{1, 2, 3, 4}
	c.put("k", src)
	src[0] = -99 // caller keeps mutating its own slice after insert

	first, ok := c.get("k")
	if !ok {
		t.Fatal("k missing")
	}
	if first[0] != 1 {
		t.Fatalf("insert aliased the caller's slice: got %v", first)
	}

	first[1] = -99 // caller scribbles on the returned values

	second, ok := c.get("k")
	if !ok {
		t.Fatal("k missing on second get")
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if second[i] != want {
			t.Fatalf("cache corrupted by mutating a returned slice: got %v", second)
		}
	}
}
