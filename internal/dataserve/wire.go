// Package dataserve is the production recovery data plane of paper
// §VI: "a container runtime can use audited information to pull
// missing data offsets from a remote server, when requested." It
// supersedes internal/remote with chunk- and hyperslab-granular batch
// transfer so one round trip recovers a whole region instead of one
// element.
//
// Wire protocol (HTTP):
//
//	GET  /datasets                                → JSON {"datasets":[...]}
//	GET  /meta?dataset=<name>                     → JSON dataset geometry + serving chunk shape
//	GET  /element?dataset=<name>&index=i1,i2,...  → JSON {"value": v}   (internal/remote compat)
//	GET  /chunk?dataset=<name>&chunk=c1,c2,...    → binary value frame of one serving chunk
//	POST /slab    {"dataset","start":[],"count":[]} → binary value frame of a dense hyperslab
//	GET  /metrics                                 → JSON metrics.ServeStats
//	GET  /healthz                                 → 200 "ok"
//
// Binary frames carry element values as little-endian float64s behind
// a fixed header (magic, count, CRC32), so a truncated or corrupted
// body is detected before any value is trusted. JSON error bodies
// carry {"error": ...}; carved-away data at the origin answers with
// HTTP 410 Gone, which the client maps back onto sdf.ErrDataMissing.
package dataserve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/sdf"
	"repro/internal/wire"
)

// frameHeaderSize is the fixed frame prefix: magic (4) | count u32 |
// crc32 u32 of the value payload.
const frameHeaderSize = wire.HeaderSize

// frameCodec is the value-frame framing, shared with the other binary
// protocols through internal/wire. The magic is "KDB1"; the count
// field counts float64 values; the 1<<26-value limit (512 MiB) bounds
// what a corrupt or hostile count field can make the client allocate,
// far above any serving chunk.
var frameCodec = wire.Codec{Magic: "KDB1", UnitSize: 8, MaxCount: 1 << 26}

// encodeFrame renders values as a binary frame.
func encodeFrame(vals []float64) []byte {
	payload := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	return frameCodec.Encode(payload)
}

// decodeFrame reads one frame from r, expecting exactly wantVals
// values (wantVals < 0 accepts any count within the codec limit). It
// fails on short reads, bad magic, count mismatches, trailing bytes,
// and checksum mismatches.
func decodeFrame(r io.Reader, wantVals int64) ([]float64, error) {
	payload, err := frameCodec.DecodeAll(r, wantVals)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(payload)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return vals, nil
}

// proofCodec is the proof-carrying chunk framing (KDB2), additive next
// to KDB1: only clients that ask with proof=1 receive it, so KDB1
// peers never see the magic. The count field counts payload bytes
// (UnitSize 1) because the payload is a structured record, not a flat
// value array; 1<<29 bytes (512 MiB) bounds hostile counts.
var proofCodec = wire.Codec{Magic: "KDB2", UnitSize: 1, MaxCount: 1 << 29}

// proofFrameVersion versions the KDB2 payload layout.
const proofFrameVersion = 1

// proofFrame is one verified chunk response: the request identity
// (dataset + chunk coordinate), the chunk's position in the Merkle
// tree, its clipped values, and the inclusion proof connecting them to
// the manifest root. Everything sits inside the CRC-verified payload,
// so the identity binding the KDB1 satellite fix bolts on via headers
// is structural here.
type proofFrame struct {
	Dataset string
	Chunk   []int
	Leaf    int64 // row-major chunk-grid index = Merkle leaf index
	Leaves  int64 // total leaf count of the server's tree
	Vals    []float64
	Proof   [][sdf.HashSize]byte
}

// encodeProofFrame renders a proof frame:
//
//	version u8 | nameLen u16 | name | rank u8 | rank×coord i32 |
//	leaf u64 | leaves u64 | valCount u32 | valCount×float64 bits |
//	proofLen u16 | proofLen×32-byte sibling
//
// all little-endian, all inside the CRC32-covered payload.
func encodeProofFrame(pf proofFrame) ([]byte, error) {
	if len(pf.Dataset) > 0xffff {
		return nil, fmt.Errorf("dataserve: dataset name too long for proof frame (%d bytes)", len(pf.Dataset))
	}
	if len(pf.Chunk) > 0xff {
		return nil, fmt.Errorf("dataserve: rank %d too large for proof frame", len(pf.Chunk))
	}
	if len(pf.Proof) > 0xffff {
		return nil, fmt.Errorf("dataserve: proof too long (%d siblings)", len(pf.Proof))
	}
	size := 1 + 2 + len(pf.Dataset) + 1 + 4*len(pf.Chunk) + 8 + 8 + 4 + 8*len(pf.Vals) + 2 + sdf.HashSize*len(pf.Proof)
	payload := make([]byte, 0, size)
	payload = append(payload, proofFrameVersion)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(pf.Dataset)))
	payload = append(payload, pf.Dataset...)
	payload = append(payload, byte(len(pf.Chunk)))
	for _, c := range pf.Chunk {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(int32(c)))
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(pf.Leaf))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(pf.Leaves))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(pf.Vals)))
	for _, v := range pf.Vals {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
	}
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(pf.Proof)))
	for _, sib := range pf.Proof {
		payload = append(payload, sib[:]...)
	}
	return proofCodec.Encode(payload), nil
}

// decodeProofFrame reads one KDB2 frame. It fails on short reads, bad
// magic (including a KDB1 frame where a proof was required), checksum
// mismatches, unknown versions, and any structural truncation.
func decodeProofFrame(r io.Reader) (proofFrame, error) {
	var pf proofFrame
	payload, err := proofCodec.DecodeAll(r, -1)
	if err != nil {
		return pf, err
	}
	cur := payload
	take := func(n int) ([]byte, error) {
		if len(cur) < n {
			return nil, fmt.Errorf("dataserve: truncated proof frame (need %d bytes, have %d)", n, len(cur))
		}
		b := cur[:n]
		cur = cur[n:]
		return b, nil
	}
	b, err := take(1)
	if err != nil {
		return pf, err
	}
	if b[0] != proofFrameVersion {
		return pf, fmt.Errorf("dataserve: proof frame version %d unsupported (want %d)", b[0], proofFrameVersion)
	}
	if b, err = take(2); err != nil {
		return pf, err
	}
	nameLen := int(binary.LittleEndian.Uint16(b))
	if b, err = take(nameLen); err != nil {
		return pf, err
	}
	pf.Dataset = string(b)
	if b, err = take(1); err != nil {
		return pf, err
	}
	rank := int(b[0])
	pf.Chunk = make([]int, rank)
	for k := range pf.Chunk {
		if b, err = take(4); err != nil {
			return pf, err
		}
		pf.Chunk[k] = int(int32(binary.LittleEndian.Uint32(b)))
	}
	if b, err = take(8); err != nil {
		return pf, err
	}
	pf.Leaf = int64(binary.LittleEndian.Uint64(b))
	if b, err = take(8); err != nil {
		return pf, err
	}
	pf.Leaves = int64(binary.LittleEndian.Uint64(b))
	if b, err = take(4); err != nil {
		return pf, err
	}
	valCount := int64(binary.LittleEndian.Uint32(b))
	if valCount > frameCodec.MaxCount {
		return pf, fmt.Errorf("dataserve: proof frame claims %d values (limit %d)", valCount, frameCodec.MaxCount)
	}
	if b, err = take(int(8 * valCount)); err != nil {
		return pf, err
	}
	pf.Vals = make([]float64, valCount)
	for i := range pf.Vals {
		pf.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	if b, err = take(2); err != nil {
		return pf, err
	}
	proofLen := int(binary.LittleEndian.Uint16(b))
	pf.Proof = make([][sdf.HashSize]byte, proofLen)
	for i := range pf.Proof {
		if b, err = take(sdf.HashSize); err != nil {
			return pf, err
		}
		copy(pf.Proof[i][:], b)
	}
	if len(cur) != 0 {
		return pf, fmt.Errorf("dataserve: proof frame has %d trailing bytes", len(cur))
	}
	return pf, nil
}
