// Package dataserve is the production recovery data plane of paper
// §VI: "a container runtime can use audited information to pull
// missing data offsets from a remote server, when requested." It
// supersedes internal/remote with chunk- and hyperslab-granular batch
// transfer so one round trip recovers a whole region instead of one
// element.
//
// Wire protocol (HTTP):
//
//	GET  /datasets                                → JSON {"datasets":[...]}
//	GET  /meta?dataset=<name>                     → JSON dataset geometry + serving chunk shape
//	GET  /element?dataset=<name>&index=i1,i2,...  → JSON {"value": v}   (internal/remote compat)
//	GET  /chunk?dataset=<name>&chunk=c1,c2,...    → binary value frame of one serving chunk
//	POST /slab    {"dataset","start":[],"count":[]} → binary value frame of a dense hyperslab
//	GET  /metrics                                 → JSON metrics.ServeStats
//	GET  /healthz                                 → 200 "ok"
//
// Binary frames carry element values as little-endian float64s behind
// a fixed header (magic, count, CRC32), so a truncated or corrupted
// body is detected before any value is trusted. JSON error bodies
// carry {"error": ...}; carved-away data at the origin answers with
// HTTP 410 Gone, which the client maps back onto sdf.ErrDataMissing.
package dataserve

import (
	"encoding/binary"
	"io"
	"math"

	"repro/internal/wire"
)

// frameHeaderSize is the fixed frame prefix: magic (4) | count u32 |
// crc32 u32 of the value payload.
const frameHeaderSize = wire.HeaderSize

// frameCodec is the value-frame framing, shared with the other binary
// protocols through internal/wire. The magic is "KDB1"; the count
// field counts float64 values; the 1<<26-value limit (512 MiB) bounds
// what a corrupt or hostile count field can make the client allocate,
// far above any serving chunk.
var frameCodec = wire.Codec{Magic: "KDB1", UnitSize: 8, MaxCount: 1 << 26}

// encodeFrame renders values as a binary frame.
func encodeFrame(vals []float64) []byte {
	payload := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	return frameCodec.Encode(payload)
}

// decodeFrame reads one frame from r, expecting exactly wantVals
// values (wantVals < 0 accepts any count within the codec limit). It
// fails on short reads, bad magic, count mismatches, trailing bytes,
// and checksum mismatches.
func decodeFrame(r io.Reader, wantVals int64) ([]float64, error) {
	payload, err := frameCodec.DecodeAll(r, wantVals)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(payload)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return vals, nil
}
