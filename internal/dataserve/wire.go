// Package dataserve is the production recovery data plane of paper
// §VI: "a container runtime can use audited information to pull
// missing data offsets from a remote server, when requested." It
// supersedes internal/remote with chunk- and hyperslab-granular batch
// transfer so one round trip recovers a whole region instead of one
// element.
//
// Wire protocol (HTTP):
//
//	GET  /datasets                                → JSON {"datasets":[...]}
//	GET  /meta?dataset=<name>                     → JSON dataset geometry + serving chunk shape
//	GET  /element?dataset=<name>&index=i1,i2,...  → JSON {"value": v}   (internal/remote compat)
//	GET  /chunk?dataset=<name>&chunk=c1,c2,...    → binary value frame of one serving chunk
//	POST /slab    {"dataset","start":[],"count":[]} → binary value frame of a dense hyperslab
//	GET  /metrics                                 → JSON metrics.ServeStats
//	GET  /healthz                                 → 200 "ok"
//
// Binary frames carry element values as little-endian float64s behind
// a fixed header (magic, count, CRC32), so a truncated or corrupted
// body is detected before any value is trusted. JSON error bodies
// carry {"error": ...}; carved-away data at the origin answers with
// HTTP 410 Gone, which the client maps back onto sdf.ErrDataMissing.
package dataserve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// frameMagic opens every binary value frame.
const frameMagic = "KDB1"

// frameHeaderSize is the fixed frame prefix: magic (4) | count u32 |
// crc32 u32 of the value payload.
const frameHeaderSize = 12

// maxFrameVals bounds how many values a frame may claim, protecting
// the client from allocating on a corrupt or hostile count field.
// 1<<26 float64s = 512 MiB, far above any serving chunk.
const maxFrameVals = 1 << 26

// encodeFrame renders values as a binary frame.
func encodeFrame(vals []float64) []byte {
	buf := make([]byte, frameHeaderSize+8*len(vals))
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(vals)))
	payload := buf[frameHeaderSize:]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeFrame reads one frame from r, expecting exactly wantVals
// values (wantVals < 0 accepts any count within maxFrameVals). It
// fails on short reads, bad magic, count mismatches, trailing bytes,
// and checksum mismatches.
func decodeFrame(r io.Reader, wantVals int64) ([]float64, error) {
	header := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("dataserve: truncated frame header: %w", err)
	}
	if string(header[:4]) != frameMagic {
		return nil, fmt.Errorf("dataserve: bad frame magic %q", header[:4])
	}
	count := int64(binary.LittleEndian.Uint32(header[4:]))
	wantCRC := binary.LittleEndian.Uint32(header[8:])
	if count > maxFrameVals {
		return nil, fmt.Errorf("dataserve: frame claims %d values (limit %d)", count, maxFrameVals)
	}
	if wantVals >= 0 && count != wantVals {
		return nil, fmt.Errorf("dataserve: frame carries %d values, want %d", count, wantVals)
	}
	payload := make([]byte, 8*count)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("dataserve: truncated frame payload: %w", err)
	}
	if extra, _ := io.Copy(io.Discard, io.LimitReader(r, 1)); extra != 0 {
		return nil, fmt.Errorf("dataserve: trailing bytes after %d-value frame", count)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("dataserve: frame checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	vals := make([]float64, count)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return vals, nil
}
