package dataserve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/remote"
	"repro/internal/sdf"
	"repro/internal/workload"
)

// fastRetry keeps retry-path tests quick.
var fastRetry = FetcherConfig{
	RequestTimeout: 200 * time.Millisecond,
	FetchTimeout:   time.Second,
	MaxAttempts:    3,
	RetryBase:      5 * time.Millisecond,
}

func TestFetcherValuesAndCache(t *testing.T) {
	space := array.MustSpace(32, 32)
	srv, ts := startServer(t, space, []int{8, 8})
	f := NewFetcher(ts.URL, nil)

	// Read every element of chunk (1,2): rows 8..15, cols 16..23.
	for r := 8; r < 16; r++ {
		for c := 16; c < 24; c++ {
			ix := array.NewIndex(r, c)
			v, err := f.Fetch("data", ix)
			if err != nil {
				t.Fatal(err)
			}
			if want := originValue(space, ix); v != want {
				t.Fatalf("Fetch(%v) = %v, want %v", ix, v, want)
			}
		}
	}
	st := f.Stats()
	// One meta round trip plus one chunk round trip serve all 64 reads.
	if st.RoundTrips != 2 {
		t.Errorf("round trips = %d, want 2", st.RoundTrips)
	}
	if st.Elements != 64 || st.CacheMisses != 1 || st.CacheHits != 63 {
		t.Errorf("stats = %+v", st)
	}
	if hr := st.HitRate(); hr < 0.98 {
		t.Errorf("hit rate = %v", hr)
	}
	// The server saw exactly one chunk request.
	if got := srv.Metrics().Endpoint("chunk").Requests; got != 1 {
		t.Errorf("server chunk requests = %d, want 1", got)
	}
}

func TestFetcherSingleflight(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, err := NewServer(writeOriginFile(t, space, []int{8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Delay chunk responses so concurrent misses pile onto one flight.
	var chunkReqs atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/chunk" {
			chunkReqs.Add(1)
			time.Sleep(50 * time.Millisecond)
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	f := NewFetcher(ts.URL, nil)
	// Warm the meta so the measured round trips are chunk-only.
	if _, err := f.Fetch("data", array.NewIndex(15, 15)); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix := array.NewIndex(i%8, i%8) // all inside chunk (0,0)
			v, err := f.Fetch("data", ix)
			if err == nil && v != originValue(space, ix) {
				err = errors.New("wrong value")
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := chunkReqs.Load(); got != 2 { // warm-up chunk + one shared flight
		t.Errorf("server chunk requests = %d, want 2", got)
	}
	if f.Stats().FlightShared == 0 {
		t.Error("no fetches were deduplicated in flight")
	}
}

func TestFetcherRetriesFlakyServer(t *testing.T) {
	space := array.MustSpace(8, 8)
	srv, err := NewServer(writeOriginFile(t, space, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var calls atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/chunk" && calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	v, err := f.Fetch("data", array.NewIndex(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if want := originValue(space, array.NewIndex(3, 3)); v != want {
		t.Errorf("value = %v, want %v", v, want)
	}
	if st := f.Stats(); st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
}

func TestFetcherDeadServerFailsFast(t *testing.T) {
	space := array.MustSpace(8, 8)
	_, ts := startServer(t, space, []int{4, 4})
	url := ts.URL
	ts.Close() // kill the server before any fetch

	f := NewFetcherConfig(url, nil, fastRetry)
	start := time.Now()
	_, err := f.Fetch("data", array.NewIndex(0, 0))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch against dead server succeeded")
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		t.Errorf("error %v does not classify as ErrDataMissing", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("fetch took %v, want well under FetchTimeout slack", elapsed)
	}
}

func TestFetcherHungServerHonorsTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block // hang every request
	}))
	defer ts.Close()
	defer close(block) // unblock handlers before ts.Close waits on them

	f := NewFetcherConfig(ts.URL, nil, FetcherConfig{
		RequestTimeout: 100 * time.Millisecond,
		FetchTimeout:   400 * time.Millisecond,
		MaxAttempts:    10,
		RetryBase:      10 * time.Millisecond,
	})
	start := time.Now()
	_, err := f.Fetch("data", array.NewIndex(0, 0))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch against hung server succeeded")
	}
	if !errors.Is(err, sdf.ErrDataMissing) {
		t.Errorf("error %v does not classify as ErrDataMissing", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("fetch took %v, want ~FetchTimeout (400ms)", elapsed)
	}
}

func TestFetcherCancellationMidFetch(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	f := NewFetcher(ts.URL, nil) // default (long) timeouts: cancellation must cut through
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.FetchContext(ctx, "data", array.NewIndex(0, 0))
	if err == nil {
		t.Fatal("canceled fetch succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not classify as context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled fetch took %v", elapsed)
	}
}

func TestFetcherRejectsCorruptFrames(t *testing.T) {
	space := array.MustSpace(8, 8)
	srv, err := NewServer(writeOriginFile(t, space, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	cases := []struct {
		name  string
		serve func(w http.ResponseWriter)
	}{
		{"truncated", func(w http.ResponseWriter) {
			buf := encodeFrame([]float64{1, 2, 3, 4})
			w.Write(buf[:len(buf)-4])
		}},
		{"bad magic", func(w http.ResponseWriter) {
			buf := encodeFrame(make([]float64, 16))
			copy(buf, "JUNK")
			w.Write(buf)
		}},
		{"wrong count", func(w http.ResponseWriter) {
			w.Write(encodeFrame([]float64{1, 2})) // chunk wants 16
		}},
		{"corrupt payload", func(w http.ResponseWriter) {
			buf := encodeFrame(make([]float64, 16))
			buf[frameHeaderSize+3] ^= 0xFF
			w.Write(buf)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/chunk" {
					c.serve(w)
					return
				}
				h.ServeHTTP(w, r)
			}))
			defer ts.Close()
			f := NewFetcherConfig(ts.URL, nil, fastRetry)
			if _, err := f.Fetch("data", array.NewIndex(0, 0)); err == nil {
				t.Error("corrupt frame accepted")
			}
		})
	}
}

func TestFetcherClientSideErrors(t *testing.T) {
	space := array.MustSpace(8, 8)
	_, ts := startServer(t, space, []int{4, 4})
	f := NewFetcherConfig(ts.URL, nil, fastRetry)

	if _, err := f.Fetch("nope", array.NewIndex(0, 0)); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown dataset err = %v, want 404", err)
	}
	if _, err := f.Fetch("data", array.NewIndex(0, 0)); err != nil {
		t.Fatal(err)
	}
	before := f.Stats().RoundTrips
	if _, err := f.Fetch("data", array.NewIndex(-1, 0)); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := f.Fetch("data", array.NewIndex(99, 99)); err == nil {
		t.Error("out-of-bounds index accepted")
	}
	if _, err := f.Fetch("data", array.NewIndex(1)); err == nil {
		t.Error("rank-mismatched index accepted")
	}
	// Index validation is client-side: no extra round trips burned.
	if got := f.Stats().RoundTrips; got != before {
		t.Errorf("invalid indices cost %d round trips", got-before)
	}
}

func TestFetcherLRUEviction(t *testing.T) {
	space := array.MustSpace(32, 32)
	_, ts := startServer(t, space, []int{8, 8})
	// Budget for roughly two 64-value chunks (64*8 payload + overhead).
	f := NewFetcherConfig(ts.URL, nil, FetcherConfig{MaxCacheBytes: 1300})

	// Touch all 16 chunks, then re-touch the first: it must have been
	// evicted and refetched.
	for r := 0; r < 32; r += 8 {
		for c := 0; c < 32; c += 8 {
			ix := array.NewIndex(r, c)
			v, err := f.Fetch("data", ix)
			if err != nil {
				t.Fatal(err)
			}
			if want := originValue(space, ix); v != want {
				t.Fatalf("Fetch(%v) = %v, want %v", ix, v, want)
			}
		}
	}
	st := f.Stats()
	if st.CacheEntries > 2 {
		t.Errorf("cache entries = %d, want <= 2", st.CacheEntries)
	}
	if st.CacheBytes > 1300 {
		t.Errorf("cache bytes = %d over bound", st.CacheBytes)
	}
	trips := st.RoundTrips
	if _, err := f.Fetch("data", array.NewIndex(0, 0)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().RoundTrips; got != trips+1 {
		t.Errorf("evicted chunk refetch cost %d round trips, want 1", got-trips)
	}
}

func TestChunkCacheUnit(t *testing.T) {
	c := newChunkCache(entryBytes(make([]float64, 4)) * 2)
	c.put("a", []float64{1, 2, 3, 4})
	c.put("b", []float64{5, 6, 7, 8})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// a was just used; inserting c should evict b.
	c.put("c", []float64{9, 10, 11, 12})
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	// An entry larger than the whole cache is not stored.
	c.put("huge", make([]float64, 1024))
	if _, ok := c.get("huge"); ok {
		t.Error("oversized entry cached")
	}
	if c.len() == 0 {
		t.Error("cache emptied by oversized insert")
	}
}

// TestRuntimeRecoversThroughCachedFetcher is the §VI path end-to-end
// through the new data plane: a debloated runtime recovers carved
// reads via the caching fetcher and matches the origin byte-for-byte.
func TestRuntimeRecoversThroughCachedFetcher(t *testing.T) {
	space := array.MustSpace(32, 32)
	origin := writeOriginFile(t, space, []int{8, 8})

	p := workload.MustCS(2, 32)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	deb := filepath.Join(t.TempDir(), "deb.sdf")
	if _, err := debloat.WriteSubset(origin, deb, "data", truth, []int{8, 8}); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	f, err := sdf.Open(deb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	fetcher := NewFetcher(ts.URL, nil)
	rt := debloat.NewRuntime(ds, fetcher)

	of, err := sdf.Open(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	ods, _ := of.Dataset("data")

	missing := array.NewIndex(31, 0)
	if truth.Contains(missing) {
		t.Fatal("test premise broken: index is in truth")
	}
	got, err := rt.ReadElement(missing)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ods.ReadElement(missing)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("recovered %v, want %v", got, want)
	}
	if rt.Misses() != 1 || rt.Recovered() != 1 {
		t.Errorf("misses=%d recovered=%d, want 1/1", rt.Misses(), rt.Recovered())
	}
}

// TestARDRecoveryRoundTripReduction is the acceptance scenario: on an
// ARD-geometry chunked origin, the cached batch fetcher recovers the
// same values as per-element fetching with >= 10x fewer HTTP round
// trips.
func TestARDRecoveryRoundTripReduction(t *testing.T) {
	ard, err := workload.NewARD(48, 64, 32, 4, 16, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	space := ard.Space()
	origin := writeOriginFile(t, space, []int{8, 8, 8})

	// Under-carve: keep only the first 8 time planes, so runs at later
	// times must recover remotely.
	keep := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[2] < 8 {
			keep.Add(ix)
		}
		return true
	})
	deb := filepath.Join(t.TempDir(), "deb.sdf")
	if _, err := debloat.WriteSubset(origin, deb, "data", keep, []int{8, 8, 8}); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	run := func(fetcher debloat.Fetcher) []float64 {
		t.Helper()
		f, err := sdf.Open(deb)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ds, _ := f.Dataset("data")
		rt := debloat.NewRuntime(ds, fetcher)
		// height=16, width=8 at time plane 20: fully carved away.
		vals, err := rt.ReadSlab([]int{0, 0, 20}, []int{16, 8, 1})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Misses() == 0 {
			t.Fatal("run hit no carved data; premise broken")
		}
		return vals
	}

	elemClient := remote.NewClient(ts.URL, nil)
	elemVals := run(elemClient)
	elemTrips := elemClient.Fetched()

	cached := NewFetcher(ts.URL, nil)
	cachedVals := run(cached)
	cachedTrips := cached.Stats().RoundTrips

	if len(elemVals) != len(cachedVals) {
		t.Fatalf("value counts differ: %d vs %d", len(elemVals), len(cachedVals))
	}
	for i := range elemVals {
		if elemVals[i] != cachedVals[i] {
			t.Fatalf("value %d differs: element %v, cached %v", i, elemVals[i], cachedVals[i])
		}
	}
	if cachedTrips*10 > elemTrips {
		t.Errorf("cached fetcher used %d round trips vs %d element fetches (< 10x reduction)",
			cachedTrips, elemTrips)
	}
	t.Logf("element fetches: %d, cached round trips: %d (%.0fx), %s",
		elemTrips, cachedTrips, float64(elemTrips)/float64(cachedTrips), cached.Stats())
}

func TestFetchSlab(t *testing.T) {
	space := array.MustSpace(16, 16)
	_, ts := startServer(t, space, []int{4, 4})
	f := NewFetcher(ts.URL, nil)

	vals, err := f.FetchSlab(context.Background(), "data", []int{2, 3}, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 20 {
		t.Fatalf("got %d values, want 20", len(vals))
	}
	i := 0
	for r := 2; r < 6; r++ {
		for c := 3; c < 8; c++ {
			if want := originValue(space, array.NewIndex(r, c)); vals[i] != want {
				t.Fatalf("slab[%d] = %v, want %v", i, vals[i], want)
			}
			i++
		}
	}
	// Bad slab requests surface the server's message.
	if _, err := f.FetchSlab(context.Background(), "data", []int{0, 0}, []int{99, 1}); err == nil {
		t.Error("out-of-bounds slab accepted")
	}
}

// TestFetcherConcurrentMixed drives many goroutines over overlapping
// chunks; run under -race this exercises the cache, flight group, and
// counter paths for data races.
func TestFetcherConcurrentMixed(t *testing.T) {
	space := array.MustSpace(64, 64)
	_, ts := startServer(t, space, []int{16, 16})
	f := NewFetcher(ts.URL, nil)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix := array.NewIndex((g*7+i)%64, (g*13+i*3)%64)
				v, err := f.Fetch("data", ix)
				if err != nil {
					errCh <- err
					return
				}
				if want := originValue(space, ix); v != want {
					errCh <- errors.New("wrong value under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := f.Stats()
	// 16 chunks total: every miss beyond the first 16 must hit cache
	// or an in-flight fetch.
	if st.RoundTrips > 17 { // 16 chunks + 1 meta
		t.Errorf("round trips = %d, want <= 17", st.RoundTrips)
	}
}
