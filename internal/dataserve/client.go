package dataserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// ErrVerifyFailed marks a response that was well-formed on the wire
// but failed integrity verification: a proof that does not connect to
// the manifest root, tampered chunk bytes, a swapped identity, an
// origin that cannot produce proofs at all, or a lying /meta. It is
// TERMINAL — never retried and never degraded to sdf.ErrDataMissing —
// because the origin is lying, not flaky: retrying a forged chunk
// yields the same forged chunk, and masking it as missing data would
// let a poisoned origin silently zero out a workload.
var ErrVerifyFailed = errors.New("dataserve: chunk verification failed")

// FetcherConfig tunes the client's cache, timeout, and retry
// behaviour. The zero value of any field selects its default.
type FetcherConfig struct {
	// MaxCacheBytes bounds the chunk cache (default 64 MiB).
	MaxCacheBytes int64
	// RequestTimeout bounds one HTTP attempt (default 2s).
	RequestTimeout time.Duration
	// FetchTimeout bounds one logical fetch including all retries
	// (default 10s): a dead origin fails within this deadline instead
	// of hanging the debloated runtime.
	FetchTimeout time.Duration
	// MaxAttempts is the total number of HTTP attempts per fetch
	// (default 4: one try plus three retries).
	MaxAttempts int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts (defaults 50ms and 2s).
	RetryBase, RetryMax time.Duration
}

func (c FetcherConfig) withDefaults() FetcherConfig {
	if c.MaxCacheBytes <= 0 {
		c.MaxCacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// FetchStats is a snapshot of a Fetcher's counters.
type FetchStats struct {
	// Elements counts values served to callers; RoundTrips counts
	// HTTP responses received from the origin (including retried
	// attempts); Retries counts re-attempts after a failure.
	Elements, RoundTrips, Retries int64
	// CacheHits and CacheMisses count chunk-cache lookups;
	// FlightShared counts fetches that piggybacked on a concurrent
	// in-flight request for the same chunk.
	CacheHits, CacheMisses, FlightShared int64
	// CacheEntries and CacheBytes describe the cache's current state.
	CacheEntries int
	CacheBytes   int64
	// VerifyOK counts chunks that passed Merkle verification before
	// entering the cache; VerifyFailed counts terminal verification
	// rejections. Both stay zero unless SetVerify armed the dataset.
	VerifyOK, VerifyFailed int64
}

// HitRate returns the chunk-cache hit fraction.
func (s FetchStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders a one-line summary.
func (s FetchStats) String() string {
	return fmt.Sprintf("%d elements via %d round trips (%d retries): cache %.1f%% hit (%d entries, %d B), %d deduped in-flight",
		s.Elements, s.RoundTrips, s.Retries, 100*s.HitRate(), s.CacheEntries, s.CacheBytes, s.FlightShared)
}

// dsGeom is the client's resolved view of one dataset's geometry.
type dsGeom struct {
	space array.Space
	grid  *array.ChunkedLayout
	chunk []int
}

// Fetcher recovers carved-away elements from a dataserve origin. It
// implements debloat.Fetcher (and debloat.ContextFetcher): one miss
// pulls the whole containing serving chunk over a single round trip,
// caches it in a byte-bounded LRU, and serves neighboring misses from
// memory. Concurrent misses on one chunk collapse onto a single HTTP
// request. It is safe for concurrent use.
type Fetcher struct {
	baseURL string
	http    *http.Client
	cfg     FetcherConfig

	mu     sync.Mutex
	geoms  map[string]*dsGeom
	verify map[string]*sdf.MerkleSpec // armed datasets: trusted tree specs

	cache      *chunkCache
	flight     *flightGroup[[]float64]
	geomFlight *flightGroup[*dsGeom] // collapses concurrent /meta misses per dataset

	// rng drives the retry backoff's full jitter; it is deliberately
	// per-fetcher (not the global source) so seeding elsewhere in the
	// process stays deterministic.
	rngMu sync.Mutex
	rng   *rand.Rand

	elements, roundTrips, retries   atomic.Int64
	cacheHits, cacheMisses, flShare atomic.Int64
	tracePropagated                 atomic.Int64
	verifyOK, verifyFailed          atomic.Int64
}

// NewFetcher returns a fetcher against the origin's base URL (e.g.
// "http://127.0.0.1:8080") with default configuration. A nil
// httpClient gets a dedicated client whose per-request timeout is
// enforced through contexts.
func NewFetcher(baseURL string, httpClient *http.Client) *Fetcher {
	return NewFetcherConfig(baseURL, httpClient, FetcherConfig{})
}

// NewFetcherConfig returns a fetcher with explicit configuration.
func NewFetcherConfig(baseURL string, httpClient *http.Client, cfg FetcherConfig) *Fetcher {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	cfg = cfg.withDefaults()
	return &Fetcher{
		baseURL:    strings.TrimSuffix(baseURL, "/"),
		http:       httpClient,
		cfg:        cfg,
		geoms:      make(map[string]*dsGeom),
		verify:     make(map[string]*sdf.MerkleSpec),
		cache:      newChunkCache(cfg.MaxCacheBytes),
		flight:     newFlightGroup[[]float64](),
		geomFlight: newFlightGroup[*dsGeom](),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetVerify arms Merkle verification for one dataset: every chunk miss
// is fetched with an inclusion proof and verified against spec's root
// before it enters the cache. The spec comes from a trusted debloat
// manifest (debloat.Manifest.MerkleSpec), never from the origin.
// Verification failure surfaces as the terminal ErrVerifyFailed.
func (f *Fetcher) SetVerify(dataset string, spec sdf.MerkleSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.verify[dataset] = &spec
	return nil
}

// verifySpec returns the armed spec for dataset, nil when unverified.
func (f *Fetcher) verifySpec(dataset string) *sdf.MerkleSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.verify[dataset]
}

// Stats returns a snapshot of the fetcher's counters.
func (f *Fetcher) Stats() FetchStats {
	return FetchStats{
		Elements:     f.elements.Load(),
		RoundTrips:   f.roundTrips.Load(),
		Retries:      f.retries.Load(),
		CacheHits:    f.cacheHits.Load(),
		CacheMisses:  f.cacheMisses.Load(),
		FlightShared: f.flShare.Load(),
		CacheEntries: f.cache.len(),
		CacheBytes:   f.cache.bytes(),
		VerifyOK:     f.verifyOK.Load(),
		VerifyFailed: f.verifyFailed.Load(),
	}
}

// Register mirrors the fetcher's counters and cache state into a
// metrics registry, read live at exposition time. Nil-safe.
func (f *Fetcher) Register(reg *obs.Registry) {
	reg.SetHelp("kondo_fetch_elements_total", "Recovered element values served to callers.")
	reg.CounterFunc("kondo_fetch_elements_total", f.elements.Load)
	reg.CounterFunc("kondo_fetch_round_trips_total", f.roundTrips.Load)
	reg.CounterFunc("kondo_fetch_retries_total", f.retries.Load)
	reg.CounterFunc("kondo_fetch_cache_hits_total", f.cacheHits.Load)
	reg.CounterFunc("kondo_fetch_cache_misses_total", f.cacheMisses.Load)
	reg.CounterFunc("kondo_fetch_flight_shared_total", f.flShare.Load)
	reg.SetHelp("kondo_fetch_trace_propagated_total", "Outgoing origin requests stamped with a propagated trace context.")
	reg.CounterFunc("kondo_fetch_trace_propagated_total", f.tracePropagated.Load)
	reg.SetHelp("kondo_fetch_cache_entries", "Chunks currently resident in the client cache.")
	reg.GaugeFunc("kondo_fetch_cache_entries", func() float64 { return float64(f.cache.len()) })
	reg.GaugeFunc("kondo_fetch_cache_bytes", func() float64 { return float64(f.cache.bytes()) })
	reg.SetHelp("kondo_verify_ok_total", "Chunks that passed Merkle verification before entering the cache.")
	reg.CounterFunc("kondo_verify_ok_total", f.verifyOK.Load)
	reg.SetHelp("kondo_verify_failed_total", "Chunks rejected by Merkle verification (terminal, never retried).")
	reg.CounterFunc("kondo_verify_failed_total", f.verifyFailed.Load)
}

// Fetch implements debloat.Fetcher.
func (f *Fetcher) Fetch(dataset string, ix array.Index) (float64, error) {
	return f.FetchContext(context.Background(), dataset, ix)
}

// FetchContext implements debloat.ContextFetcher: it recovers one
// element under the caller's context, additionally bounded by the
// configured FetchTimeout.
func (f *Fetcher) FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()

	g, err := f.geom(ctx, dataset)
	if err != nil {
		return 0, err
	}
	cc, _, err := g.grid.ChunkCoord(ix)
	if err != nil {
		return 0, fmt.Errorf("dataserve: fetch %v of %q: %w", ix, dataset, err)
	}
	// Cache hits never touch the wire, so they skip tracing entirely: a
	// span would cost more than the microsecond lookup it describes,
	// and there is no request to propagate a context onto. Tracing cost
	// therefore scales with origin round trips, not recovery calls.
	vals, hit := f.cachedChunk(dataset, g, cc)
	if !hit {
		// Mint (or keep) the request's trace context before the fetch
		// span so the ids it stamps on the wire appear on the client
		// span too — the key a stitched multi-pid trace is joined on.
		var tc obs.TraceContext
		var traced bool
		ctx, tc, traced = obs.EnsureTraceContext(ctx)
		sp := obs.Start(ctx, "dataserve.fetch")
		if sp != nil && traced {
			sp.Arg("trace_id", tc.TraceID).Arg("span_id", tc.SpanID)
		}
		vals, hit, err = f.chunk(ctx, dataset, g, cc)
		if sp != nil {
			sp.Arg("dataset", dataset).Arg("cache", cacheVerdict(hit))
		}
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	start, count := chunkSlab(g.space, g.chunk, cc)
	// Row-major offset of ix within the clipped chunk slab.
	off := 0
	for k := range ix {
		off = off*count[k] + (ix[k] - start[k])
	}
	if off < 0 || off >= len(vals) {
		return 0, fmt.Errorf("dataserve: chunk %v of %q: element %v outside %d-value frame",
			cc, dataset, ix, len(vals))
	}
	f.elements.Add(1)
	return vals[off], nil
}

// FetchSlab recovers a dense block in a single round trip through the
// /slab endpoint, bypassing the chunk cache — the bulk-restore path
// for pre-warming or whole-region recovery.
func (f *Fetcher) FetchSlab(ctx context.Context, dataset string, start, count []int) ([]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()
	ctx, tc, traced := obs.EnsureTraceContext(ctx)
	sp := obs.Start(ctx, "dataserve.slab")
	if sp != nil && traced {
		sp.Arg("trace_id", tc.TraceID).Arg("span_id", tc.SpanID)
	}
	defer sp.End()
	body, err := json.Marshal(slabRequest{Dataset: dataset, Start: start, Count: count})
	if err != nil {
		return nil, err
	}
	want := int64(1)
	for _, c := range count {
		want *= int64(c)
	}
	vals, err := f.frameRequest(ctx, http.MethodPost, f.baseURL+"/slab", body, want, nil)
	if err != nil {
		return nil, fmt.Errorf("dataserve: slab %v+%v of %q: %w", start, count, dataset, err)
	}
	f.elements.Add(int64(len(vals)))
	return vals, nil
}

// geom resolves (and caches) a dataset's serving geometry. Concurrent
// first-touch misses for one dataset collapse onto a single /meta
// round trip through the same singleflight machinery chunk fetches
// use; misses for different datasets proceed independently (the old
// metaMu serialized them head-of-line).
func (f *Fetcher) geom(ctx context.Context, dataset string) (*dsGeom, error) {
	f.mu.Lock()
	g, ok := f.geoms[dataset]
	f.mu.Unlock()
	if ok {
		return g, nil
	}
	g, err, _ := f.geomFlight.do(dataset, func() (*dsGeom, error) {
		// Re-check under the flight: a previous holder may have
		// resolved the geometry while this caller queued.
		f.mu.Lock()
		g, ok := f.geoms[dataset]
		f.mu.Unlock()
		if ok {
			return g, nil
		}
		g, err := f.fetchGeom(ctx, dataset)
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.geoms[dataset] = g
		f.mu.Unlock()
		return g, nil
	})
	return g, err
}

// fetchGeom performs the /meta round trip and, when verification is
// armed, cross-checks the origin's advertised geometry against the
// manifest's pinned dims/chunk before any coordinate arithmetic
// trusts it — a lying /meta would shift every chunk coordinate, so
// the mismatch is a terminal verification failure, not a retry.
func (f *Fetcher) fetchGeom(ctx context.Context, dataset string) (*dsGeom, error) {
	data, err := f.jsonRequest(ctx, f.baseURL+"/meta?dataset="+dataset)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	var meta DatasetMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("dataserve: decoding meta of %q: %w", dataset, err)
	}
	if spec := f.verifySpec(dataset); spec != nil {
		if err := spec.MatchesGeometry(meta.Dims, meta.Chunk); err != nil {
			f.verifyFailed.Add(1)
			return nil, fmt.Errorf("%w: meta of %q: %v", ErrVerifyFailed, dataset, err)
		}
	}
	space, err := array.NewSpace(meta.Dims...)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	dt, err := array.ParseDType(meta.DType)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	grid, err := array.NewChunkedLayout(space, dt, meta.Chunk)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	return &dsGeom{space: space, grid: grid, chunk: meta.Chunk}, nil
}

func cacheVerdict(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// cachedChunk is the untraced fast path: one cache lookup, no wire.
func (f *Fetcher) cachedChunk(dataset string, g *dsGeom, cc array.Index) ([]float64, bool) {
	lin, err := g.grid.ChunkLinear(cc)
	if err != nil {
		return nil, false
	}
	vals, ok := f.cache.get(dataset + "\x00" + strconv.FormatInt(lin, 10))
	if ok {
		f.cacheHits.Add(1)
	}
	return vals, ok
}

// chunk returns the values of one serving chunk, from cache when
// possible (hit reports a cache hit), collapsing concurrent misses
// onto one request.
func (f *Fetcher) chunk(ctx context.Context, dataset string, g *dsGeom, cc array.Index) (_ []float64, hit bool, _ error) {
	lin, err := g.grid.ChunkLinear(cc)
	if err != nil {
		return nil, false, err
	}
	key := dataset + "\x00" + strconv.FormatInt(lin, 10)
	if vals, ok := f.cache.get(key); ok {
		f.cacheHits.Add(1)
		return vals, true, nil
	}
	f.cacheMisses.Add(1)
	vals, err, shared := f.flight.do(key, func() ([]float64, error) {
		// Re-check under the flight: a previous holder may have
		// populated the cache while this caller queued.
		if vals, ok := f.cache.get(key); ok {
			return vals, nil
		}
		_, count := chunkSlab(g.space, g.chunk, cc)
		want := int64(1)
		for _, c := range count {
			want *= int64(c)
		}
		url := f.baseURL + "/chunk?dataset=" + dataset + "&chunk=" + joinInts(cc)
		var vals []float64
		var err error
		if spec := f.verifySpec(dataset); spec != nil {
			vals, err = f.verifiedChunk(ctx, spec, dataset, cc, lin, url+"&proof=1", want)
		} else {
			vals, err = f.frameRequest(ctx, http.MethodGet, url, nil, want, f.identityCheck(dataset, cc))
			if err != nil {
				err = fmt.Errorf("dataserve: chunk %v of %q: %w", cc, dataset, err)
			}
		}
		if err != nil {
			return nil, err
		}
		// Only verified (or at least identity-consistent) bytes enter
		// the cache: a hit must never have to re-verify.
		f.cache.put(key, vals)
		return vals, nil
	})
	if shared {
		f.flShare.Add(1)
	}
	return vals, false, err
}

// verifiedChunk fetches one chunk with its inclusion proof and folds
// the proof against the manifest root before returning the values. The
// verify.chunk span lives here — on the miss path only, so the hit
// path's cost stays zero.
func (f *Fetcher) verifiedChunk(ctx context.Context, spec *sdf.MerkleSpec, dataset string, cc array.Index, leaf int64, url string, want int64) ([]float64, error) {
	pf, err := f.proofRequest(ctx, url)
	if err != nil {
		if errors.Is(err, ErrVerifyFailed) {
			f.verifyFailed.Add(1)
		}
		return nil, fmt.Errorf("dataserve: chunk %v of %q: %w", cc, dataset, err)
	}
	sp := obs.Start(ctx, "verify.chunk")
	err = verifyProofFrame(spec, dataset, cc, leaf, want, pf)
	if sp != nil {
		sp.Arg("dataset", dataset).Arg("leaf", leaf).Arg("ok", err == nil)
	}
	sp.End()
	if err != nil {
		f.verifyFailed.Add(1)
		return nil, fmt.Errorf("%w: chunk %v of %q: %v", ErrVerifyFailed, cc, dataset, err)
	}
	f.verifyOK.Add(1)
	return pf.Vals, nil
}

// verifyProofFrame checks one proof frame against the request identity
// and the trusted spec: the echoed identity must match what was asked,
// the tree coordinates must match the spec, and the leaf hash of the
// received values must fold through the proof onto the manifest root.
// Every expected quantity (leaf index, leaf count, value count) comes
// from the verifier's own geometry, never from the wire.
func verifyProofFrame(spec *sdf.MerkleSpec, dataset string, cc array.Index, leaf, want int64, pf proofFrame) error {
	if pf.Dataset != dataset {
		return fmt.Errorf("response identifies dataset %q", pf.Dataset)
	}
	if !sameInts(pf.Chunk, cc) {
		return fmt.Errorf("response identifies chunk %v", pf.Chunk)
	}
	if pf.Leaf != leaf {
		return fmt.Errorf("response claims leaf %d, geometry says %d", pf.Leaf, leaf)
	}
	if pf.Leaves != spec.Leaves {
		return fmt.Errorf("response claims %d leaves, manifest pinned %d", pf.Leaves, spec.Leaves)
	}
	if int64(len(pf.Vals)) != want {
		return fmt.Errorf("response carries %d values, geometry says %d", len(pf.Vals), want)
	}
	if !sdf.VerifyChunkProof(spec.Root, spec.Leaves, leaf, sdf.ChunkLeafHash(leaf, pf.Vals), pf.Proof) {
		return fmt.Errorf("inclusion proof does not connect to the manifest root")
	}
	return nil
}

// identityCheck returns a response check rejecting a chunk response
// whose echoed identity headers disagree with the request — the KDB1
// substitution fix: even without proofs, a frame for chunk A can no
// longer answer a request for chunk B when the origin echoes identity.
// Old origins send no headers and skip the check. The mismatch is
// terminal: a misrouted response means a lying or broken middlebox,
// and retrying through it would re-accept the next swap.
func (f *Fetcher) identityCheck(dataset string, cc array.Index) func(*http.Response) error {
	return func(resp *http.Response) error {
		if got := resp.Header.Get(headerDataset); got != "" && got != dataset {
			f.verifyFailed.Add(1)
			return fmt.Errorf("%w: origin echoed dataset %q for a request against %q", ErrVerifyFailed, got, dataset)
		}
		if got := resp.Header.Get(headerChunk); got != "" && got != joinInts(cc) {
			f.verifyFailed.Add(1)
			return fmt.Errorf("%w: origin echoed chunk %s for a request of %s", ErrVerifyFailed, got, joinInts(cc))
		}
		return nil
	}
}

// sameInts compares a coordinate against an index.
func sameInts(a []int, b array.Index) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// jsonRequest performs a retried GET expecting a JSON body.
func (f *Fetcher) jsonRequest(ctx context.Context, url string) ([]byte, error) {
	var out []byte
	err := f.withRetries(ctx, func(actx context.Context) (retryable bool, err error) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		if err != nil {
			return false, err
		}
		f.stampTraceContext(actx, req)
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		f.roundTrips.Add(1)
		if resp.StatusCode != http.StatusOK {
			return retryStatus(resp.StatusCode), statusError(resp)
		}
		out, err = io.ReadAll(resp.Body)
		return true, err
	})
	return out, err
}

// frameRequest performs a retried request expecting a binary value
// frame of wantVals values. A non-nil check runs against the response
// before the body is decoded; a check error wrapping ErrVerifyFailed
// is terminal (not retried).
func (f *Fetcher) frameRequest(ctx context.Context, method, url string, body []byte, wantVals int64, check func(*http.Response) error) ([]float64, error) {
	var vals []float64
	err := f.withRetries(ctx, func(actx context.Context) (retryable bool, err error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, method, url, rd)
		if err != nil {
			return false, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		f.stampTraceContext(actx, req)
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		f.roundTrips.Add(1)
		if resp.StatusCode != http.StatusOK {
			return retryStatus(resp.StatusCode), statusError(resp)
		}
		if check != nil {
			if err := check(resp); err != nil {
				return !errors.Is(err, ErrVerifyFailed), err
			}
		}
		// A truncated or corrupted body is worth retrying: the origin
		// itself is healthy, the transfer was not.
		vals, err = decodeFrame(resp.Body, wantVals)
		return true, err
	})
	return vals, err
}

// proofRequest performs a retried GET expecting a KDB2 proof frame.
// Transport trouble and corruption retry as usual; an origin that
// answers with a plain KDB1 value frame is terminal — an old peer
// cannot serve verified chunks, and retrying will not make it grow
// proofs.
func (f *Fetcher) proofRequest(ctx context.Context, url string) (proofFrame, error) {
	var pf proofFrame
	err := f.withRetries(ctx, func(actx context.Context) (retryable bool, err error) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		if err != nil {
			return false, err
		}
		f.stampTraceContext(actx, req)
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		f.roundTrips.Add(1)
		if resp.StatusCode != http.StatusOK {
			return retryStatus(resp.StatusCode), statusError(resp)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if len(raw) >= len(frameCodec.Magic) && string(raw[:len(frameCodec.Magic)]) == frameCodec.Magic {
			return false, fmt.Errorf("%w: origin answered without a proof (%s peer)", ErrVerifyFailed, frameCodec.Magic)
		}
		pf, err = decodeProofFrame(bytes.NewReader(raw))
		return true, err
	})
	return pf, err
}

// stampTraceContext propagates the fetch's trace context onto an
// outgoing request as additive headers (old servers ignore them),
// letting the origin open child spans under the caller's trace.
func (f *Fetcher) stampTraceContext(ctx context.Context, req *http.Request) {
	if tc, ok := obs.TraceContextOf(ctx); ok {
		tc.Inject(req.Header)
		f.tracePropagated.Add(1)
	}
}

// withRetries runs attempt with per-attempt timeouts and exponential
// backoff until it succeeds, fails terminally, or the context (which
// carries the overall fetch deadline) dies. Exhausted retries against
// an unreachable origin degrade to the data-missing exception: the
// returned error wraps sdf.ErrDataMissing so runtimes classify it
// exactly like a carved-away access with no fetcher attached.
func (f *Fetcher) withRetries(ctx context.Context, attempt func(context.Context) (retryable bool, err error)) error {
	var lastErr error
	for try := 0; try < f.cfg.MaxAttempts; try++ {
		if try > 0 {
			f.retries.Add(1)
			backoff := f.backoffDelay(try)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return fmt.Errorf("%w: origin unreachable: %w (last error: %v)",
					sdf.ErrDataMissing, ctx.Err(), lastErr)
			}
		}
		actx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
		retryable, err := attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("%w: origin unreachable: %w (last error: %v)",
				sdf.ErrDataMissing, ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("%w: origin unreachable after %d attempts: %v",
		sdf.ErrDataMissing, f.cfg.MaxAttempts, lastErr)
}

// backoffDelay returns the sleep before attempt try (1-based retry
// index): full jitter over a capped exponential ceiling, so a fleet of
// clients that all lost the same flapping origin spreads its retries
// instead of hammering it in lockstep (the thundering-herd fix — AWS
// architecture blog's "full jitter" variant, which has the best
// tail-collision behaviour of the standard options).
func (f *Fetcher) backoffDelay(try int) time.Duration {
	ceiling := f.cfg.RetryMax
	// Compare by shifting the cap down rather than the base up: the
	// base shifted left can overflow for large try, the cap shifted
	// right cannot.
	if shift := uint(try - 1); shift < 63 && f.cfg.RetryBase <= ceiling>>shift {
		ceiling = f.cfg.RetryBase << shift
	}
	if ceiling <= 0 {
		return 0
	}
	f.rngMu.Lock()
	d := time.Duration(f.rng.Int63n(int64(ceiling) + 1))
	f.rngMu.Unlock()
	return d
}

// retryStatus reports whether an HTTP status is worth retrying:
// server-side trouble is, client-side protocol errors are not.
func retryStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// statusError turns a non-200 response into an error carrying the
// server's JSON error message. A 410 Gone — the origin itself lacks
// the data — wraps sdf.ErrDataMissing.
func statusError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
	if resp.StatusCode == http.StatusGone {
		return fmt.Errorf("%w at origin (%s)", sdf.ErrDataMissing, e.Error)
	}
	return fmt.Errorf("server says %s (%s)", resp.Status, e.Error)
}
