package dataserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// FetcherConfig tunes the client's cache, timeout, and retry
// behaviour. The zero value of any field selects its default.
type FetcherConfig struct {
	// MaxCacheBytes bounds the chunk cache (default 64 MiB).
	MaxCacheBytes int64
	// RequestTimeout bounds one HTTP attempt (default 2s).
	RequestTimeout time.Duration
	// FetchTimeout bounds one logical fetch including all retries
	// (default 10s): a dead origin fails within this deadline instead
	// of hanging the debloated runtime.
	FetchTimeout time.Duration
	// MaxAttempts is the total number of HTTP attempts per fetch
	// (default 4: one try plus three retries).
	MaxAttempts int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts (defaults 50ms and 2s).
	RetryBase, RetryMax time.Duration
}

func (c FetcherConfig) withDefaults() FetcherConfig {
	if c.MaxCacheBytes <= 0 {
		c.MaxCacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// FetchStats is a snapshot of a Fetcher's counters.
type FetchStats struct {
	// Elements counts values served to callers; RoundTrips counts
	// HTTP responses received from the origin (including retried
	// attempts); Retries counts re-attempts after a failure.
	Elements, RoundTrips, Retries int64
	// CacheHits and CacheMisses count chunk-cache lookups;
	// FlightShared counts fetches that piggybacked on a concurrent
	// in-flight request for the same chunk.
	CacheHits, CacheMisses, FlightShared int64
	// CacheEntries and CacheBytes describe the cache's current state.
	CacheEntries int
	CacheBytes   int64
}

// HitRate returns the chunk-cache hit fraction.
func (s FetchStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders a one-line summary.
func (s FetchStats) String() string {
	return fmt.Sprintf("%d elements via %d round trips (%d retries): cache %.1f%% hit (%d entries, %d B), %d deduped in-flight",
		s.Elements, s.RoundTrips, s.Retries, 100*s.HitRate(), s.CacheEntries, s.CacheBytes, s.FlightShared)
}

// dsGeom is the client's resolved view of one dataset's geometry.
type dsGeom struct {
	space array.Space
	grid  *array.ChunkedLayout
	chunk []int
}

// Fetcher recovers carved-away elements from a dataserve origin. It
// implements debloat.Fetcher (and debloat.ContextFetcher): one miss
// pulls the whole containing serving chunk over a single round trip,
// caches it in a byte-bounded LRU, and serves neighboring misses from
// memory. Concurrent misses on one chunk collapse onto a single HTTP
// request. It is safe for concurrent use.
type Fetcher struct {
	baseURL string
	http    *http.Client
	cfg     FetcherConfig

	mu     sync.Mutex
	geoms  map[string]*dsGeom
	metaMu sync.Mutex // serializes geometry misses (one /meta per burst)

	cache  *chunkCache
	flight *flightGroup

	// rng drives the retry backoff's full jitter; it is deliberately
	// per-fetcher (not the global source) so seeding elsewhere in the
	// process stays deterministic.
	rngMu sync.Mutex
	rng   *rand.Rand

	elements, roundTrips, retries   atomic.Int64
	cacheHits, cacheMisses, flShare atomic.Int64
	tracePropagated                 atomic.Int64
}

// NewFetcher returns a fetcher against the origin's base URL (e.g.
// "http://127.0.0.1:8080") with default configuration. A nil
// httpClient gets a dedicated client whose per-request timeout is
// enforced through contexts.
func NewFetcher(baseURL string, httpClient *http.Client) *Fetcher {
	return NewFetcherConfig(baseURL, httpClient, FetcherConfig{})
}

// NewFetcherConfig returns a fetcher with explicit configuration.
func NewFetcherConfig(baseURL string, httpClient *http.Client, cfg FetcherConfig) *Fetcher {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	cfg = cfg.withDefaults()
	return &Fetcher{
		baseURL: strings.TrimSuffix(baseURL, "/"),
		http:    httpClient,
		cfg:     cfg,
		geoms:   make(map[string]*dsGeom),
		cache:   newChunkCache(cfg.MaxCacheBytes),
		flight:  newFlightGroup(),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Stats returns a snapshot of the fetcher's counters.
func (f *Fetcher) Stats() FetchStats {
	return FetchStats{
		Elements:     f.elements.Load(),
		RoundTrips:   f.roundTrips.Load(),
		Retries:      f.retries.Load(),
		CacheHits:    f.cacheHits.Load(),
		CacheMisses:  f.cacheMisses.Load(),
		FlightShared: f.flShare.Load(),
		CacheEntries: f.cache.len(),
		CacheBytes:   f.cache.bytes(),
	}
}

// Register mirrors the fetcher's counters and cache state into a
// metrics registry, read live at exposition time. Nil-safe.
func (f *Fetcher) Register(reg *obs.Registry) {
	reg.SetHelp("kondo_fetch_elements_total", "Recovered element values served to callers.")
	reg.CounterFunc("kondo_fetch_elements_total", f.elements.Load)
	reg.CounterFunc("kondo_fetch_round_trips_total", f.roundTrips.Load)
	reg.CounterFunc("kondo_fetch_retries_total", f.retries.Load)
	reg.CounterFunc("kondo_fetch_cache_hits_total", f.cacheHits.Load)
	reg.CounterFunc("kondo_fetch_cache_misses_total", f.cacheMisses.Load)
	reg.CounterFunc("kondo_fetch_flight_shared_total", f.flShare.Load)
	reg.SetHelp("kondo_fetch_trace_propagated_total", "Outgoing origin requests stamped with a propagated trace context.")
	reg.CounterFunc("kondo_fetch_trace_propagated_total", f.tracePropagated.Load)
	reg.SetHelp("kondo_fetch_cache_entries", "Chunks currently resident in the client cache.")
	reg.GaugeFunc("kondo_fetch_cache_entries", func() float64 { return float64(f.cache.len()) })
	reg.GaugeFunc("kondo_fetch_cache_bytes", func() float64 { return float64(f.cache.bytes()) })
}

// Fetch implements debloat.Fetcher.
func (f *Fetcher) Fetch(dataset string, ix array.Index) (float64, error) {
	return f.FetchContext(context.Background(), dataset, ix)
}

// FetchContext implements debloat.ContextFetcher: it recovers one
// element under the caller's context, additionally bounded by the
// configured FetchTimeout.
func (f *Fetcher) FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()

	g, err := f.geom(ctx, dataset)
	if err != nil {
		return 0, err
	}
	cc, _, err := g.grid.ChunkCoord(ix)
	if err != nil {
		return 0, fmt.Errorf("dataserve: fetch %v of %q: %w", ix, dataset, err)
	}
	// Cache hits never touch the wire, so they skip tracing entirely: a
	// span would cost more than the microsecond lookup it describes,
	// and there is no request to propagate a context onto. Tracing cost
	// therefore scales with origin round trips, not recovery calls.
	vals, hit := f.cachedChunk(dataset, g, cc)
	if !hit {
		// Mint (or keep) the request's trace context before the fetch
		// span so the ids it stamps on the wire appear on the client
		// span too — the key a stitched multi-pid trace is joined on.
		var tc obs.TraceContext
		var traced bool
		ctx, tc, traced = obs.EnsureTraceContext(ctx)
		sp := obs.Start(ctx, "dataserve.fetch")
		if sp != nil && traced {
			sp.Arg("trace_id", tc.TraceID).Arg("span_id", tc.SpanID)
		}
		vals, hit, err = f.chunk(ctx, dataset, g, cc)
		if sp != nil {
			sp.Arg("dataset", dataset).Arg("cache", cacheVerdict(hit))
		}
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	start, count := chunkSlab(g.space, g.chunk, cc)
	// Row-major offset of ix within the clipped chunk slab.
	off := 0
	for k := range ix {
		off = off*count[k] + (ix[k] - start[k])
	}
	if off < 0 || off >= len(vals) {
		return 0, fmt.Errorf("dataserve: chunk %v of %q: element %v outside %d-value frame",
			cc, dataset, ix, len(vals))
	}
	f.elements.Add(1)
	return vals[off], nil
}

// FetchSlab recovers a dense block in a single round trip through the
// /slab endpoint, bypassing the chunk cache — the bulk-restore path
// for pre-warming or whole-region recovery.
func (f *Fetcher) FetchSlab(ctx context.Context, dataset string, start, count []int) ([]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()
	ctx, tc, traced := obs.EnsureTraceContext(ctx)
	sp := obs.Start(ctx, "dataserve.slab")
	if sp != nil && traced {
		sp.Arg("trace_id", tc.TraceID).Arg("span_id", tc.SpanID)
	}
	defer sp.End()
	body, err := json.Marshal(slabRequest{Dataset: dataset, Start: start, Count: count})
	if err != nil {
		return nil, err
	}
	want := int64(1)
	for _, c := range count {
		want *= int64(c)
	}
	vals, err := f.frameRequest(ctx, http.MethodPost, f.baseURL+"/slab", body, want)
	if err != nil {
		return nil, fmt.Errorf("dataserve: slab %v+%v of %q: %w", start, count, dataset, err)
	}
	f.elements.Add(int64(len(vals)))
	return vals, nil
}

// geom resolves (and caches) a dataset's serving geometry.
func (f *Fetcher) geom(ctx context.Context, dataset string) (*dsGeom, error) {
	f.mu.Lock()
	g, ok := f.geoms[dataset]
	f.mu.Unlock()
	if ok {
		return g, nil
	}
	// Serialize meta misses so a burst of first fetches shares one
	// round trip; cached lookups above never touch this lock.
	f.metaMu.Lock()
	defer f.metaMu.Unlock()
	f.mu.Lock()
	g, ok = f.geoms[dataset]
	f.mu.Unlock()
	if ok {
		return g, nil
	}
	data, err := f.jsonRequest(ctx, f.baseURL+"/meta?dataset="+dataset)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	var meta DatasetMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("dataserve: decoding meta of %q: %w", dataset, err)
	}
	space, err := array.NewSpace(meta.Dims...)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	dt, err := array.ParseDType(meta.DType)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	grid, err := array.NewChunkedLayout(space, dt, meta.Chunk)
	if err != nil {
		return nil, fmt.Errorf("dataserve: meta of %q: %w", dataset, err)
	}
	g = &dsGeom{space: space, grid: grid, chunk: meta.Chunk}
	f.mu.Lock()
	if prev, ok := f.geoms[dataset]; ok {
		g = prev // concurrent resolver won; geometry is identical
	} else {
		f.geoms[dataset] = g
	}
	f.mu.Unlock()
	return g, nil
}

func cacheVerdict(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// cachedChunk is the untraced fast path: one cache lookup, no wire.
func (f *Fetcher) cachedChunk(dataset string, g *dsGeom, cc array.Index) ([]float64, bool) {
	lin, err := g.grid.ChunkLinear(cc)
	if err != nil {
		return nil, false
	}
	vals, ok := f.cache.get(dataset + "\x00" + strconv.FormatInt(lin, 10))
	if ok {
		f.cacheHits.Add(1)
	}
	return vals, ok
}

// chunk returns the values of one serving chunk, from cache when
// possible (hit reports a cache hit), collapsing concurrent misses
// onto one request.
func (f *Fetcher) chunk(ctx context.Context, dataset string, g *dsGeom, cc array.Index) (_ []float64, hit bool, _ error) {
	lin, err := g.grid.ChunkLinear(cc)
	if err != nil {
		return nil, false, err
	}
	key := dataset + "\x00" + strconv.FormatInt(lin, 10)
	if vals, ok := f.cache.get(key); ok {
		f.cacheHits.Add(1)
		return vals, true, nil
	}
	f.cacheMisses.Add(1)
	vals, err, shared := f.flight.do(key, func() ([]float64, error) {
		// Re-check under the flight: a previous holder may have
		// populated the cache while this caller queued.
		if vals, ok := f.cache.get(key); ok {
			return vals, nil
		}
		_, count := chunkSlab(g.space, g.chunk, cc)
		want := int64(1)
		for _, c := range count {
			want *= int64(c)
		}
		parts := make([]string, len(cc))
		for i, v := range cc {
			parts[i] = strconv.Itoa(v)
		}
		url := f.baseURL + "/chunk?dataset=" + dataset + "&chunk=" + strings.Join(parts, ",")
		vals, err := f.frameRequest(ctx, http.MethodGet, url, nil, want)
		if err != nil {
			return nil, fmt.Errorf("dataserve: chunk %v of %q: %w", cc, dataset, err)
		}
		f.cache.put(key, vals)
		return vals, nil
	})
	if shared {
		f.flShare.Add(1)
	}
	return vals, false, err
}

// jsonRequest performs a retried GET expecting a JSON body.
func (f *Fetcher) jsonRequest(ctx context.Context, url string) ([]byte, error) {
	var out []byte
	err := f.withRetries(ctx, func(actx context.Context) (retryable bool, err error) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		if err != nil {
			return false, err
		}
		f.stampTraceContext(actx, req)
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		f.roundTrips.Add(1)
		if resp.StatusCode != http.StatusOK {
			return retryStatus(resp.StatusCode), statusError(resp)
		}
		out, err = io.ReadAll(resp.Body)
		return true, err
	})
	return out, err
}

// frameRequest performs a retried request expecting a binary value
// frame of wantVals values.
func (f *Fetcher) frameRequest(ctx context.Context, method, url string, body []byte, wantVals int64) ([]float64, error) {
	var vals []float64
	err := f.withRetries(ctx, func(actx context.Context) (retryable bool, err error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(actx, method, url, rd)
		if err != nil {
			return false, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		f.stampTraceContext(actx, req)
		resp, err := f.http.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		f.roundTrips.Add(1)
		if resp.StatusCode != http.StatusOK {
			return retryStatus(resp.StatusCode), statusError(resp)
		}
		// A truncated or corrupted body is worth retrying: the origin
		// itself is healthy, the transfer was not.
		vals, err = decodeFrame(resp.Body, wantVals)
		return true, err
	})
	return vals, err
}

// stampTraceContext propagates the fetch's trace context onto an
// outgoing request as additive headers (old servers ignore them),
// letting the origin open child spans under the caller's trace.
func (f *Fetcher) stampTraceContext(ctx context.Context, req *http.Request) {
	if tc, ok := obs.TraceContextOf(ctx); ok {
		tc.Inject(req.Header)
		f.tracePropagated.Add(1)
	}
}

// withRetries runs attempt with per-attempt timeouts and exponential
// backoff until it succeeds, fails terminally, or the context (which
// carries the overall fetch deadline) dies. Exhausted retries against
// an unreachable origin degrade to the data-missing exception: the
// returned error wraps sdf.ErrDataMissing so runtimes classify it
// exactly like a carved-away access with no fetcher attached.
func (f *Fetcher) withRetries(ctx context.Context, attempt func(context.Context) (retryable bool, err error)) error {
	var lastErr error
	for try := 0; try < f.cfg.MaxAttempts; try++ {
		if try > 0 {
			f.retries.Add(1)
			backoff := f.backoffDelay(try)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return fmt.Errorf("%w: origin unreachable: %w (last error: %v)",
					sdf.ErrDataMissing, ctx.Err(), lastErr)
			}
		}
		actx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
		retryable, err := attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("%w: origin unreachable: %w (last error: %v)",
				sdf.ErrDataMissing, ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("%w: origin unreachable after %d attempts: %v",
		sdf.ErrDataMissing, f.cfg.MaxAttempts, lastErr)
}

// backoffDelay returns the sleep before attempt try (1-based retry
// index): full jitter over a capped exponential ceiling, so a fleet of
// clients that all lost the same flapping origin spreads its retries
// instead of hammering it in lockstep (the thundering-herd fix — AWS
// architecture blog's "full jitter" variant, which has the best
// tail-collision behaviour of the standard options).
func (f *Fetcher) backoffDelay(try int) time.Duration {
	ceiling := f.cfg.RetryMax
	// Compare by shifting the cap down rather than the base up: the
	// base shifted left can overflow for large try, the cap shifted
	// right cannot.
	if shift := uint(try - 1); shift < 63 && f.cfg.RetryBase <= ceiling>>shift {
		ceiling = f.cfg.RetryBase << shift
	}
	if ceiling <= 0 {
		return 0
	}
	f.rngMu.Lock()
	d := time.Duration(f.rng.Int63n(int64(ceiling) + 1))
	f.rngMu.Unlock()
	return d
}

// retryStatus reports whether an HTTP status is worth retrying:
// server-side trouble is, client-side protocol errors are not.
func retryStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// statusError turns a non-200 response into an error carrying the
// server's JSON error message. A 410 Gone — the origin itself lacks
// the data — wraps sdf.ErrDataMissing.
func statusError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
	if resp.StatusCode == http.StatusGone {
		return fmt.Errorf("%w at origin (%s)", sdf.ErrDataMissing, e.Error)
	}
	return fmt.Errorf("server says %s (%s)", resp.Status, e.Error)
}
