package dataserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// originValue is the deterministic element value every test origin is
// filled with.
func originValue(space array.Space, ix array.Index) float64 {
	lin, _ := space.Linear(ix)
	return float64(lin) * 0.5
}

// writeOriginFile materializes a filled origin. A nil chunk shape
// selects a contiguous layout.
func writeOriginFile(t testing.TB, space array.Space, chunk []int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "origin.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 { return originValue(space, ix) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// startServer returns a Server over a fresh origin plus an httptest
// server mounted on its handler.
func startServer(t testing.TB, space array.Space, chunk []int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(writeOriginFile(t, space, chunk))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getMeta(t *testing.T, ts *httptest.Server, dataset string) DatasetMeta {
	t.Helper()
	resp, err := http.Get(ts.URL + "/meta?dataset=" + dataset)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta status = %d", resp.StatusCode)
	}
	var meta DatasetMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestMetaChunkSlabRoundTrip(t *testing.T) {
	space := array.MustSpace(30, 20) // 30 is not a multiple of 8: edge chunks clip
	_, ts := startServer(t, space, []int{8, 8})

	meta := getMeta(t, ts, "data")
	if !meta.Chunked || fmt.Sprint(meta.Chunk) != "[8 8]" || fmt.Sprint(meta.Dims) != "[30 20]" {
		t.Fatalf("meta = %+v", meta)
	}

	// Chunk (3,2) is the bottom-right edge chunk: rows 24..29, cols 16..19.
	resp, err := http.Get(ts.URL + "/chunk?dataset=data&chunk=3,2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk status = %d", resp.StatusCode)
	}
	vals, err := decodeFrame(resp.Body, 6*4)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for r := 24; r < 30; r++ {
		for c := 16; c < 20; c++ {
			if want := originValue(space, array.NewIndex(r, c)); vals[i] != want {
				t.Fatalf("chunk value at (%d,%d) = %v, want %v", r, c, vals[i], want)
			}
			i++
		}
	}

	// Slab endpoint returns the same region.
	body, _ := json.Marshal(slabRequest{Dataset: "data", Start: []int{24, 16}, Count: []int{6, 4}})
	sresp, err := http.Post(ts.URL+"/slab", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("slab status = %d", sresp.StatusCode)
	}
	svals, err := decodeFrame(sresp.Body, 24)
	if err != nil {
		t.Fatal(err)
	}
	for k := range vals {
		if svals[k] != vals[k] {
			t.Fatalf("slab[%d] = %v, chunk[%d] = %v", k, svals[k], k, vals[k])
		}
	}
}

func TestContiguousOriginGetsServingChunks(t *testing.T) {
	space := array.MustSpace(128, 128)
	_, ts := startServer(t, space, nil)

	meta := getMeta(t, ts, "data")
	if meta.Chunked {
		t.Error("contiguous origin reported as chunked")
	}
	vol := 1
	for _, c := range meta.Chunk {
		vol *= c
	}
	if vol > defaultServingElems || vol <= 0 {
		t.Errorf("serving chunk %v volume %d exceeds target %d", meta.Chunk, vol, defaultServingElems)
	}
	resp, err := http.Get(ts.URL + "/chunk?dataset=data&chunk=0,0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	vals, err := decodeFrame(resp.Body, int64(meta.Chunk[0]*meta.Chunk[1]))
	if err != nil {
		t.Fatal(err)
	}
	if want := originValue(space, array.NewIndex(0, 1)); vals[1] != want {
		t.Errorf("vals[1] = %v, want %v", vals[1], want)
	}
}

func TestServingChunkDerivation(t *testing.T) {
	cases := []struct {
		dims   []int
		target int64
	}{
		{[]int{128, 128}, 4096},
		{[]int{1, 1}, 4096},
		{[]int{5000}, 4096},
		{[]int{3, 7, 11}, 16},
		{[]int{1024, 1, 1024}, 4096},
	}
	for _, c := range cases {
		chunk := sdf.ServingChunkShape(c.dims, c.target)
		vol := int64(1)
		for k, e := range chunk {
			if e < 1 || e > c.dims[k] {
				t.Errorf("ServingChunkShape(%v) = %v: extent %d out of range", c.dims, chunk, e)
			}
			vol *= int64(e)
		}
		if vol > c.target {
			t.Errorf("ServingChunkShape(%v, %d) = %v: volume %d over target", c.dims, c.target, chunk, vol)
		}
	}
}

func TestServerErrorPaths(t *testing.T) {
	space := array.MustSpace(16, 16)
	_, ts := startServer(t, space, []int{4, 4})

	status := func(t *testing.T, url string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status(t, "/meta?dataset=nope"); got != http.StatusNotFound {
		t.Errorf("unknown dataset meta = %d, want 404", got)
	}
	if got := status(t, "/chunk?dataset=nope&chunk=0,0"); got != http.StatusNotFound {
		t.Errorf("unknown dataset chunk = %d, want 404", got)
	}
	if got := status(t, "/chunk?dataset=data"); got != http.StatusBadRequest {
		t.Errorf("missing chunk param = %d, want 400", got)
	}
	if got := status(t, "/chunk?dataset=data&chunk=a,b"); got != http.StatusBadRequest {
		t.Errorf("malformed chunk = %d, want 400", got)
	}
	if got := status(t, "/chunk?dataset=data&chunk=-1,0"); got != http.StatusBadRequest {
		t.Errorf("negative chunk = %d, want 400", got)
	}
	if got := status(t, "/chunk?dataset=data&chunk=99,0"); got != http.StatusBadRequest {
		t.Errorf("out-of-grid chunk = %d, want 400", got)
	}
	if got := status(t, "/chunk?dataset=data&chunk=0"); got != http.StatusBadRequest {
		t.Errorf("rank-mismatched chunk = %d, want 400", got)
	}
	if got := status(t, "/element?dataset=data&index=-3,0"); got != http.StatusBadRequest {
		t.Errorf("negative element index = %d, want 400", got)
	}
	if got := status(t, "/element?dataset=data&index=99,99"); got != http.StatusBadRequest {
		t.Errorf("out-of-bounds element = %d, want 400", got)
	}
	if got := status(t, "/slab"); got != http.StatusMethodNotAllowed {
		t.Errorf("GET /slab = %d, want 405", got)
	}
	resp, err := http.Post(ts.URL+"/slab", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad slab JSON = %d, want 400", resp.StatusCode)
	}
	body, _ := json.Marshal(slabRequest{Dataset: "data", Start: []int{0}, Count: []int{4}})
	resp, err = http.Post(ts.URL+"/slab", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("rank-mismatched slab = %d, want 400", resp.StatusCode)
	}
	body, _ = json.Marshal(slabRequest{Dataset: "data", Start: []int{0, 0}, Count: []int{99, 1}})
	resp, err = http.Post(ts.URL+"/slab", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-bounds slab = %d, want 400", resp.StatusCode)
	}
}

func TestClosedServerReturns503(t *testing.T) {
	space := array.MustSpace(8, 8)
	srv, ts := startServer(t, space, []int{4, 4})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	for _, url := range []string{"/datasets", "/meta?dataset=data", "/chunk?dataset=data&chunk=0,0"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s after close = %d, want 503", url, resp.StatusCode)
		}
	}
}

// TestDebloatedOriginAnswersGone serves a *debloated* file as origin:
// a chunk that was carved away answers 410 Gone, and the client maps
// it back onto the data-missing exception.
func TestDebloatedOriginAnswersGone(t *testing.T) {
	space := array.MustSpace(16, 16)
	origin := writeOriginFile(t, space, nil)

	// Keep only the top-left 4x4 block.
	keep := array.NewIndexSet(space)
	space.Each(func(ix array.Index) bool {
		if ix[0] < 4 && ix[1] < 4 {
			keep.Add(ix)
		}
		return true
	})
	deb := filepath.Join(t.TempDir(), "deb.sdf")
	if _, err := debloat.WriteSubset(origin, deb, "data", keep, []int{4, 4}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(deb)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/chunk?dataset=data&chunk=3,3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("carved chunk = %d, want 410", resp.StatusCode)
	}

	f := NewFetcher(ts.URL, nil)
	_, err = f.Fetch("data", array.NewIndex(15, 15))
	if !errors.Is(err, sdf.ErrDataMissing) {
		t.Errorf("carved fetch error = %v, want ErrDataMissing", err)
	}
	if _, err := f.Fetch("data", array.NewIndex(1, 1)); err != nil {
		t.Errorf("kept fetch: %v", err)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, ts := startServer(t, space, []int{4, 4})

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/chunk?dataset=data&chunk=0,0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/chunk?dataset=nope&chunk=0,0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stats := srv.Metrics()
	chunk := stats.Endpoint("chunk")
	if chunk.Requests != 4 || chunk.Errors != 1 {
		t.Errorf("chunk stats = %+v", chunk)
	}
	if chunk.Bytes <= 0 {
		t.Error("no bytes recorded")
	}

	// The /metrics endpoint serves the same snapshot as JSON.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var remote struct {
		Requests int64 `json:"requests"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&remote); err != nil {
		t.Fatal(err)
	}
	if remote.Requests < 4 {
		t.Errorf("/metrics requests = %d, want >= 4", remote.Requests)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	space := array.MustSpace(16, 16)
	_, ts := startServer(t, space, []int{4, 4})

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/chunk?dataset=data&chunk=0,0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := body.String()
	for _, want := range []string{
		"# TYPE kondo_serve_requests_total counter",
		`kondo_serve_requests_total{endpoint="chunk"} 2`,
		"# TYPE kondo_serve_request_seconds histogram",
		"kondo_build_info{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q in:\n%s", want, out)
		}
	}

	// JSON default stays backward compatible alongside the new format.
	jresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var js struct {
		Requests int64 `json:"requests"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if js.Requests < 2 {
		t.Errorf("/metrics JSON requests = %d, want >= 2", js.Requests)
	}
}

func TestServerRequestSpans(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, _ := startServer(t, space, []int{4, 4})

	tr := obs.NewTrace()
	req := httptest.NewRequest(http.MethodGet, "/chunk?dataset=data&chunk=0,0", nil)
	req = req.WithContext(obs.WithTrace(req.Context(), tr))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("chunk request failed: %d", rr.Code)
	}
	if tr.Len() != 1 {
		t.Fatalf("trace has %d events, want 1 serve span", tr.Len())
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"serve.chunk"`) {
		t.Errorf("trace lacks serve.chunk span:\n%s", sb.String())
	}
}

func TestServerCustomRecorderBuckets(t *testing.T) {
	space := array.MustSpace(8, 8)
	rec := metrics.NewServeRecorderWithBuckets([]time.Duration{time.Millisecond, time.Second})
	srv, err := NewServerWithRecorder(writeOriginFile(t, space, nil), rec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/meta?dataset=data")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	e := srv.Metrics().Endpoint("meta")
	if len(e.Latency) != 3 {
		t.Errorf("latency has %d buckets, want 3 (2 bounds + overflow)", len(e.Latency))
	}
	if srv.Registry() != rec.Registry() {
		t.Error("server registry is not the recorder's registry")
	}
}
