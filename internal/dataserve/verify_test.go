package dataserve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/array"
	"repro/internal/sdf"
)

// originSpec builds the trusted Merkle spec for a test origin the same
// way debloat.EmbedMerkle does: from the file, never from the server.
func originSpec(t testing.TB, path, dataset string) sdf.MerkleSpec {
	t.Helper()
	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset(dataset)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sdf.BuildDatasetMerkle(ds, sdf.ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	return tree.SpecOf(ds)
}

func TestProofFrameRoundTrip(t *testing.T) {
	pf := proofFrame{
		Dataset: "data",
		Chunk:   []int{3, 1},
		Leaf:    7,
		Leaves:  16,
		Vals:    []float64{0, 1.5, -2.25, math.Inf(1), math.NaN()},
		Proof:   make([][sdf.HashSize]byte, 4),
	}
	for i := range pf.Proof {
		for j := range pf.Proof[i] {
			pf.Proof[i][j] = byte(i*31 + j)
		}
	}
	buf, err := encodeProofFrame(pf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeProofFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != pf.Dataset || got.Leaf != pf.Leaf || got.Leaves != pf.Leaves {
		t.Fatalf("decoded identity %q/%d/%d, want %q/%d/%d",
			got.Dataset, got.Leaf, got.Leaves, pf.Dataset, pf.Leaf, pf.Leaves)
	}
	if !sameInts(got.Chunk, array.Index(pf.Chunk)) {
		t.Fatalf("decoded chunk %v, want %v", got.Chunk, pf.Chunk)
	}
	for i, v := range pf.Vals {
		if math.Float64bits(got.Vals[i]) != math.Float64bits(v) {
			t.Fatalf("value %d: %x, want %x", i, math.Float64bits(got.Vals[i]), math.Float64bits(v))
		}
	}
	for i := range pf.Proof {
		if got.Proof[i] != pf.Proof[i] {
			t.Fatalf("proof sibling %d differs", i)
		}
	}
}

func TestProofFrameRejectsCorruption(t *testing.T) {
	pf := proofFrame{
		Dataset: "data",
		Chunk:   []int{0, 2},
		Leaf:    2,
		Leaves:  4,
		Vals:    []float64{1, 2, 3},
		Proof:   make([][sdf.HashSize]byte, 2),
	}
	buf, err := encodeProofFrame(pf)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation fails: nothing decodes from a partial frame.
	for n := 0; n < len(buf); n++ {
		if _, err := decodeProofFrame(bytes.NewReader(buf[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded", n, len(buf))
		}
	}
	// Every single-byte flip fails: header flips break magic/count,
	// payload flips break the CRC.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		if _, err := decodeProofFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flipped but frame decoded", i)
		}
	}
	// Trailing bytes after a complete frame fail too.
	if _, err := decodeProofFrame(bytes.NewReader(append(append([]byte(nil), buf...), 0))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A KDB1 frame is not a proof frame.
	if _, err := decodeProofFrame(bytes.NewReader(encodeFrame([]float64{1, 2}))); err == nil {
		t.Fatal("KDB1 frame decoded as proof frame")
	}
}

// TestVerifiedFetchEndToEnd pins the happy path and byte identity:
// verification on and off recover bit-identical values, verified misses
// count VerifyOK, and nothing fails.
func TestVerifiedFetchEndToEnd(t *testing.T) {
	space := array.MustSpace(32, 32)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	verified := NewFetcher(ts.URL, nil)
	if err := verified.SetVerify("data", originSpec(t, path, "data")); err != nil {
		t.Fatal(err)
	}
	plain := NewFetcher(ts.URL, nil)

	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			ix := array.NewIndex(r, c)
			v, err := verified.Fetch("data", ix)
			if err != nil {
				t.Fatalf("verified Fetch(%v): %v", ix, err)
			}
			u, err := plain.Fetch("data", ix)
			if err != nil {
				t.Fatalf("plain Fetch(%v): %v", ix, err)
			}
			if math.Float64bits(v) != math.Float64bits(u) {
				t.Fatalf("Fetch(%v): verified %x != plain %x", ix, math.Float64bits(v), math.Float64bits(u))
			}
			if want := originValue(space, ix); v != want {
				t.Fatalf("Fetch(%v) = %v, want %v", ix, v, want)
			}
		}
	}
	st := verified.Stats()
	if st.VerifyOK != 16 || st.VerifyFailed != 0 {
		t.Fatalf("verify stats ok=%d failed=%d, want 16/0", st.VerifyOK, st.VerifyFailed)
	}
	if srv.Metrics().Endpoint("chunk").Requests != 32 { // 16 verified + 16 plain
		t.Fatalf("server chunk requests = %d", srv.Metrics().Endpoint("chunk").Requests)
	}
}

// tamperProxy forwards to the origin handler, letting a test rewrite
// the request before it is served and the response body afterwards.
func tamperProxy(t *testing.T, h http.Handler, rewriteReq func(*http.Request), rewriteResp func([]byte) []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rewriteReq != nil {
			rewriteReq(r)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rewriteResp != nil && rec.Code == http.StatusOK {
			body = rewriteResp(body)
		}
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// requireVerifyFailed asserts an error is the terminal verification
// failure: ErrVerifyFailed, and NOT the retryable-degraded
// sdf.ErrDataMissing a flaky origin produces.
func requireVerifyFailed(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("err = %v, want ErrVerifyFailed", err)
	}
	if errors.Is(err, sdf.ErrDataMissing) {
		t.Fatalf("verification failure degraded to ErrDataMissing: %v", err)
	}
}

// TestVerifiedFetchRejectsTamperedValues forges chunk bytes with a
// perfectly valid CRC — the attack a checksum cannot catch — and pins
// that the Merkle proof does, terminally, without poisoning the cache.
func TestVerifiedFetchRejectsTamperedValues(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := tamperProxy(t, srv.Handler(), nil, func(body []byte) []byte {
		pf, err := decodeProofFrame(bytes.NewReader(body))
		if err != nil {
			return body // /meta etc.
		}
		pf.Vals[0] += 1 // forge one value...
		out, err := encodeProofFrame(pf)
		if err != nil {
			t.Fatal(err)
		}
		return out // ...and re-frame with a valid CRC
	})

	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := f.SetVerify("data", originSpec(t, path, "data")); err != nil {
		t.Fatal(err)
	}
	_, err = f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
	st := f.Stats()
	if st.VerifyFailed != 1 || st.VerifyOK != 0 {
		t.Fatalf("verify stats ok=%d failed=%d, want 0/1", st.VerifyOK, st.VerifyFailed)
	}
	if st.Retries != 0 {
		t.Fatalf("verification failure was retried %d times", st.Retries)
	}
	if st.CacheEntries != 0 {
		t.Fatal("forged chunk entered the cache")
	}
	// The failure repeats (nothing cached, origin still lying).
	_, err = f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
}

// TestVerifiedFetchRejectsSubstitutedChunk redirects a request for
// chunk A onto chunk B, so the client receives a self-consistent frame
// — valid CRC, valid proof for B — that answers the wrong question.
// The structural identity in the proof frame rejects it.
func TestVerifiedFetchRejectsSubstitutedChunk(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := tamperProxy(t, srv.Handler(), func(r *http.Request) {
		if r.URL.Path == "/chunk" {
			q := r.URL.Query()
			q.Set("chunk", "1,1") // whatever was asked, serve (1,1)
			r.URL.RawQuery = q.Encode()
		}
	}, nil)

	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := f.SetVerify("data", originSpec(t, path, "data")); err != nil {
		t.Fatal(err)
	}
	_, err = f.Fetch("data", array.NewIndex(0, 0)) // chunk (0,0)
	requireVerifyFailed(t, err)
	if st := f.Stats(); st.VerifyFailed != 1 {
		t.Fatalf("VerifyFailed = %d, want 1", st.VerifyFailed)
	}
}

// TestUnverifiedClientRejectsSwappedResponse is the KDB1 satellite fix:
// even without proofs, the origin's identity echo headers bind a
// response to the request it answers, so a swapped (individually
// valid) frame is rejected instead of silently recovered into the
// wrong coordinates.
func TestUnverifiedClientRejectsSwappedResponse(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := tamperProxy(t, srv.Handler(), func(r *http.Request) {
		if r.URL.Path == "/chunk" {
			q := r.URL.Query()
			q.Set("chunk", "1,1")
			r.URL.RawQuery = q.Encode()
		}
	}, nil)

	f := NewFetcherConfig(ts.URL, nil, fastRetry) // NO SetVerify
	_, err = f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
	if st := f.Stats(); st.VerifyFailed != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 terminal rejection, 0 retries", st)
	}

	// Same swap against an origin that does NOT echo identity (an old
	// server): the response passes undetected — exactly the bug this
	// fixes — which pins that the check is additive, not a behavior
	// change for old peers. The recovered values are chunk (1,1)'s.
	oldTS := tamperProxy(t, srv.Handler(), func(r *http.Request) {
		if r.URL.Path == "/chunk" {
			q := r.URL.Query()
			q.Set("chunk", "1,1")
			r.URL.RawQuery = q.Encode()
		}
	}, nil)
	strip := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(oldTS.URL + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer strip.Close()
	old := NewFetcherConfig(strip.URL, nil, fastRetry)
	v, err := old.Fetch("data", array.NewIndex(0, 0))
	if err != nil {
		t.Fatalf("old-peer swap unexpectedly detected: %v", err)
	}
	if want := originValue(space, array.NewIndex(8, 8)); v != want {
		t.Fatalf("swapped fetch = %v, want chunk (1,1)'s %v", v, want)
	}
}

// TestVerifiedFetchAgainstOldServer pins the negotiation failure mode:
// a verifying client against an origin that ignores proof=1 (a KDB1
// peer) fails terminally — it must not silently accept unproven bytes.
func TestVerifiedFetchAgainstOldServer(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// An "old" origin: drops the proof parameter it does not know.
	ts := tamperProxy(t, srv.Handler(), func(r *http.Request) {
		q := r.URL.Query()
		q.Del("proof")
		r.URL.RawQuery = q.Encode()
	}, nil)

	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := f.SetVerify("data", originSpec(t, path, "data")); err != nil {
		t.Fatal(err)
	}
	_, err = f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
	if st := f.Stats(); st.Retries != 0 {
		t.Fatalf("old-peer failure was retried %d times", st.Retries)
	}
}

// TestVerifiedFetchRejectsWrongRoot arms the client with a root for
// different data: every chunk the origin serves must be rejected.
func TestVerifiedFetchRejectsWrongRoot(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, ts := startServer(t, space, []int{8, 8})
	_ = srv

	spec := originSpec(t, path, "data")
	spec.Root[0] ^= 0xff // a root that matches nothing
	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := f.SetVerify("data", spec); err != nil {
		t.Fatal(err)
	}
	_, err := f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
}

// TestVerifiedFetchRejectsLyingMeta pins the geometry cross-check: an
// origin whose /meta disagrees with the manifest's pinned dims/chunk
// would shift every chunk coordinate, so it fails before any fetch.
func TestVerifiedFetchRejectsLyingMeta(t *testing.T) {
	space := array.MustSpace(16, 16)
	_, ts := startServer(t, space, []int{8, 8})

	// A spec pinned for a different geometry (32x32 over 16x16 chunks).
	other := writeOriginFile(t, array.MustSpace(32, 32), []int{16, 16})
	f := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := f.SetVerify("data", originSpec(t, other, "data")); err != nil {
		t.Fatal(err)
	}
	_, err := f.Fetch("data", array.NewIndex(0, 0))
	requireVerifyFailed(t, err)
	if st := f.Stats(); st.VerifyFailed != 1 {
		t.Fatalf("VerifyFailed = %d, want 1", st.VerifyFailed)
	}
}

// TestVerifiedFetchDetectsTamperAfterTreeBuild is the verify-demo
// scenario in-process: the server memoizes its Merkle tree, THEN the
// origin file is corrupted in place. Fresh reads disagree with the
// memoized leaves, so the proof no longer connects and every client
// touching the tampered chunk rejects it.
func TestVerifiedFetchDetectsTamperAfterTreeBuild(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeOriginFile(t, space, []int{8, 8})
	srv, err := NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := originSpec(t, path, "data")

	// Warm run: builds and memoizes the server's tree.
	f := NewFetcher(ts.URL, nil)
	if err := f.SetVerify("data", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("data", array.NewIndex(0, 0)); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the data region (the sdf layout puts it at the
	// end of the file; merkle_test pins that this offset changes the
	// root), while the server keeps its open handle.
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fh.Stat()
	if err != nil {
		t.Fatal(err)
	}
	off := st.Size() - 9
	b := make([]byte, 1)
	if _, err := fh.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := fh.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	// A cold verifying client sweeps every chunk: the tampered one must
	// be rejected, the untouched ones must still verify.
	cold := NewFetcherConfig(ts.URL, nil, fastRetry)
	if err := cold.SetVerify("data", spec); err != nil {
		t.Fatal(err)
	}
	var failed int
	for r := 0; r < 16; r += 8 {
		for c := 0; c < 16; c += 8 {
			if _, err := cold.Fetch("data", array.NewIndex(r, c)); err != nil {
				requireVerifyFailed(t, err)
				failed++
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d chunks rejected after one-byte tamper, want exactly 1", failed)
	}
	if st := cold.Stats(); st.VerifyFailed != 1 || st.VerifyOK != 3 {
		t.Fatalf("verify stats ok=%d failed=%d, want 3/1", st.VerifyOK, st.VerifyFailed)
	}
}

// TestGeomSingleflight is the satellite fix for the meta path: 16
// concurrent cold fetches through one fetcher must collapse onto a
// single origin /meta round trip (the old metaMu serialized them but
// still issued one request each... after the first filled the cache;
// the real bug was head-of-line blocking across datasets — either way,
// the pinned contract is one wire hit).
func TestGeomSingleflight(t *testing.T) {
	space := array.MustSpace(16, 16)
	srv, err := NewServer(writeOriginFile(t, space, []int{8, 8}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var metaReqs atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/meta" {
			metaReqs.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	f := NewFetcher(ts.URL, nil)
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, errs[i] = f.FetchContext(context.Background(), "data", array.NewIndex(i%16, i%16))
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := metaReqs.Load(); got != 1 {
		t.Fatalf("origin /meta requests = %d, want 1", got)
	}
}

// TestChunkCacheOverwrite is the satellite accounting fix: repeated
// puts over one key keep exact bytes, and an oversized put over an
// existing key evicts the stale entry instead of leaving it to answer
// future gets.
func TestChunkCacheOverwrite(t *testing.T) {
	c := newChunkCache(10 * entryBytes(make([]float64, 8)))

	c.put("k", []float64{1, 2, 3, 4})
	if got := c.bytes(); got != entryBytes(make([]float64, 4)) {
		t.Fatalf("bytes after first put = %d, want %d", got, entryBytes(make([]float64, 4)))
	}
	// Overwrite with a larger value: accounting must track the delta
	// exactly and the new bytes must answer.
	c.put("k", []float64{5, 6, 7, 8, 9, 10})
	if got := c.bytes(); got != entryBytes(make([]float64, 6)) {
		t.Fatalf("bytes after overwrite = %d, want %d", got, entryBytes(make([]float64, 6)))
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	vals, ok := c.get("k")
	if !ok || len(vals) != 6 || vals[0] != 5 {
		t.Fatalf("get after overwrite = %v, %v", vals, ok)
	}
	// Overwrite with a smaller value: bytes shrink back exactly.
	c.put("k", []float64{42})
	if got := c.bytes(); got != entryBytes(make([]float64, 1)) {
		t.Fatalf("bytes after shrink = %d, want %d", got, entryBytes(make([]float64, 1)))
	}

	// An oversized put over the existing key must delete it: the old
	// value is superseded and must not answer a later get.
	c.put("k", make([]float64, 1024))
	if vals, ok := c.get("k"); ok {
		t.Fatalf("stale entry survived oversized put: %v", vals)
	}
	if got := c.bytes(); got != 0 {
		t.Fatalf("bytes after oversized put = %d, want 0", got)
	}
	if c.len() != 0 {
		t.Fatalf("len after oversized put = %d, want 0", c.len())
	}

	// And an oversized put on a fresh key stays a no-op.
	c.put("fresh", make([]float64, 1024))
	if c.len() != 0 || c.bytes() != 0 {
		t.Fatalf("oversized fresh put cached: len=%d bytes=%d", c.len(), c.bytes())
	}
}
