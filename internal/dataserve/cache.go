package dataserve

import (
	"container/list"
	"sync"
)

// chunkCache is a byte-bounded LRU over decoded chunk value slices.
// One recovered miss inserts its whole containing chunk, so the
// neighboring misses of a stencil or slab walk hit memory instead of
// the network (the locality the paper's chunk-granular debloating
// already relies on, §VI).
type chunkCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	vals []float64
}

// entryBytes approximates an entry's memory footprint.
func entryBytes(vals []float64) int64 { return int64(8*len(vals)) + 64 }

func newChunkCache(maxBytes int64) *chunkCache {
	return &chunkCache{maxBytes: maxBytes, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns a copy of the cached values for key, promoting the
// entry. Returning a copy (not the resident slice) means a caller
// mutating the recovered values cannot corrupt the cache for every
// future hit of the same chunk.
func (c *chunkCache) get(key string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return append([]float64(nil), el.Value.(*cacheEntry).vals...), true
}

// put inserts (or refreshes) an entry, evicting least-recently-used
// entries until the cache fits its byte bound. An entry larger than
// the whole bound is not cached at all. The cache stores its own copy
// of vals, so the caller keeping (and mutating) its slice — the miss
// path hands the fetched slice to both the cache and the caller —
// cannot corrupt future hits.
func (c *chunkCache) put(key string, vals []float64) {
	size := entryBytes(vals)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		// Uncacheable — but if the key is already resident, the old
		// value is now stale and must not answer future gets: dropping
		// the put while keeping the entry would serve superseded bytes.
		if el, ok := c.byKey[key]; ok {
			old := el.Value.(*cacheEntry)
			c.order.Remove(el)
			delete(c.byKey, key)
			c.curBytes -= entryBytes(old.vals)
		}
		return
	}
	owned := append([]float64(nil), vals...)
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*cacheEntry)
		c.curBytes += size - entryBytes(old.vals)
		old.vals = owned
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, vals: owned})
		c.curBytes += size
	}
	for c.curBytes > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, e.key)
		c.curBytes -= entryBytes(e.vals)
	}
}

// len returns the number of cached entries.
func (c *chunkCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// bytes returns the cache's current footprint.
func (c *chunkCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
