package dataserve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/sdf"
)

// TestFetcherSoakRace hammers one caching Fetcher from many goroutines
// under the race detector: a Zipfian key mix (heavy singleflight and
// cache contention on the hot chunks), mid-flight context
// cancellation, and an origin that randomly stalls responses. Every
// successful fetch must return the byte-identical origin value — a
// wrong value would mean a torn cache entry or a lost singleflight
// wakeup delivering another chunk's frame — and every failure must be
// a context/data-missing error, never a corruption.
func TestFetcherSoakRace(t *testing.T) {
	space := array.MustSpace(64, 64)
	chunk := []int{8, 8}
	srv, err := NewServer(writeOriginFile(t, space, chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Wrap the handler with a random stall so in-flight requests
	// overlap cancellations and retries.
	var stalls atomic.Int64
	handler := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Per-request deterministic-ish jitter off the URL is not
		// needed; contention is the point, not reproducibility.
		if rand.Intn(4) == 0 {
			stalls.Add(1)
			select {
			case <-time.After(time.Duration(rand.Intn(3)) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()

	// A small cache forces eviction churn alongside the hits.
	f := NewFetcherConfig(ts.URL, nil, FetcherConfig{
		MaxCacheBytes:  16 << 10, // ~32 chunks of 8x8 float64
		RequestTimeout: 2 * time.Second,
		FetchTimeout:   5 * time.Second,
	})

	goroutines := 16
	perG := 400
	if testing.Short() {
		goroutines = 8
		perG = 80
	}

	var wg sync.WaitGroup
	var fetched, cancelled atomic.Int64
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Zipfian popularity over row indices: a few hot rows, a
			// long cold tail, shuffled through the whole space.
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(space.Dim(0)-1))
			for i := 0; i < perG; i++ {
				ix := array.Index{int(zipf.Uint64()), rng.Intn(space.Dim(1))}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(8) == 0 {
					// Mid-flight cancellation: a deadline short enough to
					// land inside a stalled request.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
				}
				v, err := f.FetchContext(ctx, "data", ix)
				cancel()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) ||
						errors.Is(err, context.Canceled) ||
						errors.Is(err, sdf.ErrDataMissing) {
						cancelled.Add(1)
						continue
					}
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if want := originValue(space, ix); v != want {
					select {
					case errCh <- fmt.Errorf("corrupt value at %v: got %v want %v", ix, v, want):
					default:
					}
					return
				}
				fetched.Add(1)
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if fetched.Load() == 0 {
		t.Fatal("soak completed zero successful fetches")
	}
	t.Logf("soak: %d ok, %d cancelled/missing, %d stalled responses, stats: %v",
		fetched.Load(), cancelled.Load(), stalls.Load(), f.Stats())
}
