package bench

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, metrics string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_carve.json")
	doc := `{"id":"carve","title":"t","columns":["metric","value"],"rows":[],"metrics":` + metrics + `}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func carveReport(metrics map[string]float64) *Report {
	return &Report{ID: "carve", Metrics: metrics}
}

// fullMetrics returns a metric set covering every gated carve metric.
func fullMetrics() map[string]float64 {
	m := map[string]float64{}
	for name := range checkedExperiments["carve"] {
		m[name] = 100
	}
	return m
}

func metricsJSON(m map[string]float64) string {
	b, _ := json.Marshal(m)
	return string(b)
}

func TestCheckPassesOnIdenticalMetrics(t *testing.T) {
	m := fullMetrics()
	path := writeBaseline(t, metricsJSON(m))
	if err := Check(carveReport(m), path); err != nil {
		t.Fatalf("identical metrics should pass: %v", err)
	}
}

func TestCheckFailsOnExactDrift(t *testing.T) {
	m := fullMetrics()
	path := writeBaseline(t, metricsJSON(m))
	fresh := fullMetrics()
	fresh["raster_runs"] = 101 // exact metric changed
	err := Check(carveReport(fresh), path)
	if err == nil || !strings.Contains(err.Error(), "raster_runs") {
		t.Fatalf("want raster_runs failure, got %v", err)
	}
}

func TestCheckDirectionalMetrics(t *testing.T) {
	m := fullMetrics()
	path := writeBaseline(t, metricsJSON(m))

	// A cost counter growing fails; shrinking passes.
	worse := fullMetrics()
	worse["raster_point_tests"] = 150
	if err := Check(carveReport(worse), path); err == nil {
		t.Fatal("raster_point_tests regression should fail")
	}
	better := fullMetrics()
	better["raster_point_tests"] = 50
	if err := Check(carveReport(better), path); err != nil {
		t.Fatalf("raster_point_tests improvement should pass: %v", err)
	}

	// A headline dropping fails; rising passes.
	worse = fullMetrics()
	worse["raster_point_reduction"] = 50
	if err := Check(carveReport(worse), path); err == nil {
		t.Fatal("raster_point_reduction regression should fail")
	}
	better = fullMetrics()
	better["raster_point_reduction"] = 200
	if err := Check(carveReport(better), path); err != nil {
		t.Fatalf("raster_point_reduction improvement should pass: %v", err)
	}
}

func TestCheckWallClockExempt(t *testing.T) {
	m := fullMetrics()
	path := writeBaseline(t, metricsJSON(m))
	fresh := fullMetrics()
	fresh["engine_seconds"] = 10000
	fresh["raster_speedup"] = 0.001
	fresh["raster_workers"] = 64
	if err := Check(carveReport(fresh), path); err != nil {
		t.Fatalf("wall-clock drift must be exempt: %v", err)
	}
}

func TestCheckMissingBaselineMetric(t *testing.T) {
	m := fullMetrics()
	delete(m, "raster_rows")
	path := writeBaseline(t, metricsJSON(m))
	err := Check(carveReport(fullMetrics()), path)
	if err == nil || !strings.Contains(err.Error(), "bench-json") {
		t.Fatalf("stale baseline should point at make bench-json, got %v", err)
	}
}

func TestCheckUnknownExperiment(t *testing.T) {
	if err := Check(&Report{ID: "fig7"}, "/nonexistent"); err == nil {
		t.Fatal("ungated experiment should error")
	}
}

func TestCheckMissingBaselineFile(t *testing.T) {
	err := Check(carveReport(fullMetrics()), filepath.Join(t.TempDir(), "nope.json"))
	if err == nil || !strings.Contains(err.Error(), "bench-json") {
		t.Fatalf("missing baseline should point at make bench-json, got %v", err)
	}
}

// TestCheckListsEveryFailure pins the gate's aggregated diff: when
// several metrics regress at once the error is a *CheckError naming
// all of them with their baselines, not just the first mismatch.
func TestCheckListsEveryFailure(t *testing.T) {
	m := fullMetrics()
	path := writeBaseline(t, metricsJSON(m))
	fresh := fullMetrics()
	fresh["raster_runs"] = 101        // exact drift
	fresh["pair_tests"] = 150         // cost regression
	fresh["pair_test_reduction"] = 50 // headline regression
	delete(fresh, "merges")           // missing from the fresh report

	err := Check(carveReport(fresh), path)
	if err == nil {
		t.Fatal("multi-metric regression should fail")
	}
	var cerr *CheckError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *CheckError, got %T", err)
	}
	if len(cerr.Failures) != 4 {
		t.Fatalf("want 4 failures, got %d: %v", len(cerr.Failures), cerr.Failures)
	}
	msg := err.Error()
	for _, want := range []string{
		"raster_runs", "pair_tests", "pair_test_reduction", "merges",
		"baseline", "fresh", "101", "150", "(missing)", "bench-json",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diff missing %q:\n%s", want, msg)
		}
	}
}
