package bench

import (
	"context"
	"testing"
)

// TestServeMetricsContract pins the serving experiment's
// machine-readable surface: the closed-loop counts are exact, the
// stitched client+server trace spans both pids, and both gated
// overhead copies (telemetry and merkle verification) are floored at
// the serving observability budget.
func TestServeMetricsContract(t *testing.T) {
	if testing.Short() {
		t.Skip("drives twenty loopback load runs; skipped in -short")
	}
	opts := QuickOptions()
	opts.Seed = 12345
	rep, err := Run(context.Background(), "serve", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "errors", "trace_pids",
		"throughput_rps", "p50_ms", "p95_ms", "p99_ms",
		"cache_hit_rate", "slo_attainment", "slo_budget_used",
		"serve_overhead", "serve_overhead_gated",
		"verify_proofs", "verify_failed",
		"verify_overhead", "verify_overhead_gated",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	if rep.Metrics["requests"] != 2500 {
		t.Errorf("requests = %v, want exactly 2500 (quick closed loop)", rep.Metrics["requests"])
	}
	if rep.Metrics["errors"] != 0 {
		t.Errorf("errors = %v", rep.Metrics["errors"])
	}
	if rep.Metrics["trace_pids"] != 2 {
		t.Errorf("stitched trace spans %v pids, want 2", rep.Metrics["trace_pids"])
	}
	if rep.Metrics["serve_overhead_gated"] < serveOverheadFloor {
		t.Errorf("gated overhead %v below the %v floor", rep.Metrics["serve_overhead_gated"], serveOverheadFloor)
	}
	if rep.Metrics["verify_overhead_gated"] < serveOverheadFloor {
		t.Errorf("gated verify overhead %v below the %v floor", rep.Metrics["verify_overhead_gated"], serveOverheadFloor)
	}
	if rep.Metrics["verify_failed"] != 0 {
		t.Errorf("verify_failed = %v, want exactly 0", rep.Metrics["verify_failed"])
	}
	if rep.Metrics["verify_proofs"] <= 0 {
		t.Errorf("verify_proofs = %v, want > 0", rep.Metrics["verify_proofs"])
	}
	if rep.Metrics["slo_attainment"] <= 0 || rep.Metrics["slo_attainment"] > 1 {
		t.Errorf("slo_attainment = %v outside (0,1]", rep.Metrics["slo_attainment"])
	}
	if rep.Metrics["throughput_rps"] <= 0 {
		t.Errorf("throughput = %v", rep.Metrics["throughput_rps"])
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want plain + traced+slo + verified", len(rep.Rows))
	}
}
