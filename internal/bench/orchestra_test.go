package bench

import (
	"context"
	"testing"
)

// TestOrchestraMetricsContract pins the distributed-campaign
// experiment's machine-readable surface: every distributed run's
// digest matches the in-process baseline, and the worker-death run
// re-issued exactly the lease the crashed worker was holding.
func TestOrchestraMetricsContract(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up loopback coordinators; skipped in -short")
	}
	rep, err := Run(context.Background(), "orchestra", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"evaluations", "indices", "digest_runs", "digest_matches",
		"reissued_leases", "late_results",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			t.Errorf("metric %q missing", key)
		}
	}
	if rep.Metrics["digest_runs"] < 3 {
		t.Errorf("only %v distributed runs compared", rep.Metrics["digest_runs"])
	}
	if rep.Metrics["digest_matches"] != rep.Metrics["digest_runs"] {
		t.Errorf("digest mismatch: %v of %v distributed runs matched the local baseline",
			rep.Metrics["digest_matches"], rep.Metrics["digest_runs"])
	}
	if rep.Metrics["reissued_leases"] != 1 {
		t.Errorf("worker-death run re-issued %v leases, want exactly 1",
			rep.Metrics["reissued_leases"])
	}
	if rep.Metrics["evaluations"] != float64(QuickOptions().EvalBudget) {
		t.Errorf("campaign ran %v evaluations, want the full %d budget",
			rep.Metrics["evaluations"], QuickOptions().EvalBudget)
	}
}
