package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/baseline"
	"repro/internal/carve"
	"repro/internal/kondo"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TableI renders the access-pattern stencils of the four
// micro-benchmarks as ASCII down-samples of their ground-truth
// subsets.
func TableI(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "stencil", "subset density"},
	}
	const grid = 24
	for _, p := range micro(opts) {
		gt, err := groundTruth(p)
		if err != nil {
			return nil, err
		}
		space := p.Space()
		density := float64(gt.Len()) / float64(space.Size())
		rep.Rows = append(rep.Rows, []string{p.Name(), p.Description(), fmtPct(density)})

		// Down-sample the truth onto a grid x grid raster.
		art := make([][]byte, grid)
		for r := range art {
			art[r] = []byte(strings.Repeat("·", grid))
		}
		cellR := (space.Dim(0) + grid - 1) / grid
		cellC := (space.Dim(1) + grid - 1) / grid
		gt.Each(func(ix array.Index) bool {
			r, c := ix[0]/cellR, ix[1]/cellC
			if r < grid && c < grid {
				art[r][c] = '#'
			}
			return true
		})
		rep.Notes = append(rep.Notes, p.Name()+" stencil:")
		for _, row := range art {
			rep.Notes = append(rep.Notes, "  "+string(row))
		}
	}
	return rep, nil
}

// TableII lists the 11 benchmark programs with their parameter spaces
// and ground-truth subsets.
func TableII(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "#params", "|Θ|", "array", "|I_Θ|", "ground-truth bloat"},
	}
	for _, p := range allPrograms(opts) {
		gt, err := groundTruth(p)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name(),
			fmt.Sprint(len(p.Params())),
			fmt.Sprint(p.Params().Valuations()),
			p.Space().String(),
			fmt.Sprint(gt.Len()),
			fmtPct(metrics.BloatFraction(p.Space(), gt)),
		})
	}
	return rep, nil
}

// Fig7 compares average recall at a fixed debloat-test budget across
// Kondo, BF and AFL on the four micro-benchmarks.
func Fig7(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "Kondo recall", "±σ", "BF recall", "AFL recall", "budget (tests)", "Kondo time"},
		Notes: []string{
			fmt.Sprintf("Kondo/BF averaged over %d runs, AFL over %d (paper §V-C)", opts.Runs, opts.AFLRuns),
			"expected shape: Kondo ≈ 1 with small variance, BF below Kondo, AFL lowest",
		},
	}
	for _, p := range micro(opts) {
		var kondoRecalls, bfRecalls, aflRecalls []float64
		var kondoTime time.Duration
		for r := 0; r < opts.Runs; r++ {
			res, err := kondoRun(ctx, p, opts, opts.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			pr, err := prOfApprox(p, res.Approx)
			if err != nil {
				return nil, err
			}
			kondoRecalls = append(kondoRecalls, pr.Recall)
			kondoTime += res.Elapsed()

			bf, err := baseline.BruteForce(ctx, p, opts.EvalBudget, 0)
			if err != nil {
				return nil, err
			}
			bfPR, err := prOfApprox(p, bf.Indices)
			if err != nil {
				return nil, err
			}
			bfRecalls = append(bfRecalls, bfPR.Recall)
		}
		for r := 0; r < opts.AFLRuns; r++ {
			cfg := baseline.DefaultAFLConfig()
			cfg.MaxEvals = opts.EvalBudget
			cfg.Seed = opts.Seed + int64(r)
			afl, err := baseline.AFL(ctx, p, cfg)
			if err != nil {
				return nil, err
			}
			aflPR, err := prOfApprox(p, afl.Indices)
			if err != nil {
				return nil, err
			}
			aflRecalls = append(aflRecalls, aflPR.Recall)
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name(),
			fmtF(avg(kondoRecalls)),
			fmtF(stddev(kondoRecalls)),
			fmtF(avg(bfRecalls)),
			fmtF(avg(aflRecalls)),
			fmt.Sprint(opts.EvalBudget),
			fmtDur(kondoTime / time.Duration(opts.Runs)),
		})
	}
	return rep, nil
}

// Fig8 compares precision per program across Kondo, BF, AFL and SC.
func Fig8(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "Kondo prec", "BF prec", "AFL prec", "SC prec"},
		Notes: []string{
			"BF/AFL precision is 1 by construction (they never subset unaccessed data)",
			"expected shape: Kondo well above SC; Kondo = 1 on LDC/RDC, < 1 on PRL/CS1/CS5",
		},
	}
	rows, err := forEachProgram(allPrograms(opts), func(p workload.Program) ([]string, error) {
		var kPrec, scPrec []float64
		for r := 0; r < opts.Runs; r++ {
			res, err := kondoRun(ctx, p, opts, opts.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			pr, err := prOfApprox(p, res.Approx)
			if err != nil {
				return nil, err
			}
			kPrec = append(kPrec, pr.Precision)

			sc, err := baseline.SimpleConvex(ctx, p, fuzzCfg(opts, opts.Seed+int64(r)))
			if err != nil {
				return nil, err
			}
			scPR, err := prOfApprox(p, sc.Approx)
			if err != nil {
				return nil, err
			}
			scPrec = append(scPrec, scPR.Precision)
		}
		return []string{p.Name(), fmtF(avg(kPrec)), "1.000", "1.000", fmtF(avg(scPrec))}, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// Fig9 compares the fraction of data bloat Kondo identifies with the
// ground-truth bloat fraction per program.
func Fig9(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "Kondo bloat", "ground-truth bloat"},
		Notes:   []string{"Kondo bloat = |I − I'_Θ| / |I| (paper reports 63% average)"},
	}
	programs := allPrograms(opts)
	kondoBloats := make([]float64, len(programs))
	pos := make(map[string]int, len(programs))
	for i, p := range programs {
		pos[p.Name()] = i
	}
	rows, err := forEachProgram(programs, func(p workload.Program) ([]string, error) {
		var bloats []float64
		for r := 0; r < opts.Runs; r++ {
			res, err := kondoRun(ctx, p, opts, opts.Seed+int64(r))
			if err != nil {
				return nil, err
			}
			bloats = append(bloats, metrics.BloatFraction(p.Space(), res.Approx))
		}
		gt, err := groundTruth(p)
		if err != nil {
			return nil, err
		}
		kondoBloats[pos[p.Name()]] = avg(bloats)
		return []string{
			p.Name(), fmtPct(avg(bloats)), fmtPct(metrics.BloatFraction(p.Space(), gt)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	rep.Notes = append(rep.Notes, fmt.Sprintf("average bloat identified: %s", fmtPct(avg(kondoBloats))))
	return rep, nil
}

// Fig10 measures how much budget the baselines need to reach the
// recall Kondo achieves.
func Fig10(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "Kondo recall", "Kondo tests", "Kondo time",
			"BF tests", "BF time", "BF reached", "AFL tests", "AFL time", "AFL reached"},
		Notes: []string{
			"BF/AFL run until they match Kondo's recall or exhaust the cap",
			"expected shape: BF reaches it at 10-100x the tests; AFL stalls below it",
		},
	}
	aflCap := 60 * opts.EvalBudget
	if opts.Quick {
		aflCap = 20 * opts.EvalBudget
	}
	for _, p := range micro(opts) {
		res, err := kondoRun(ctx, p, opts, opts.Seed)
		if err != nil {
			return nil, err
		}
		pr, err := prOfApprox(p, res.Approx)
		if err != nil {
			return nil, err
		}
		target := pr.Recall
		gt, err := groundTruth(p)
		if err != nil {
			return nil, err
		}

		bf, err := baseline.BruteForceUntil(ctx, p, 128, func(r *baseline.Result) bool {
			return metrics.Recall(gt, r.Indices) >= target
		})
		if err != nil {
			return nil, err
		}
		bfRecall := metrics.Recall(gt, bf.Indices)

		aflCfg := baseline.DefaultAFLConfig()
		aflCfg.Seed = opts.Seed
		aflCfg.MaxEvals = aflCap
		aflCfg.ProgressEvery = 256
		aflCfg.Progress = func(r *baseline.Result) bool {
			return metrics.Recall(gt, r.Indices) >= target
		}
		afl, err := baseline.AFL(ctx, p, aflCfg)
		if err != nil {
			return nil, err
		}
		aflRecall := metrics.Recall(gt, afl.Indices)

		rep.Rows = append(rep.Rows, []string{
			p.Name(), fmtF(target),
			fmt.Sprint(res.Fuzz.Evaluations), fmtDur(res.Elapsed()),
			fmt.Sprint(bf.Evaluations), fmtDur(bf.Elapsed), fmtF(bfRecall),
			fmt.Sprint(afl.Evaluations), fmtDur(afl.Elapsed), fmtF(aflRecall),
		})
	}
	return rep, nil
}

// TableIII evaluates Kondo and BF on the ARD and MSI real-application
// models.
func TableIII(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "Θ", "array", "Kondo prec", "Kondo recall",
			"BF prec", "BF recall", "Kondo % debloat"},
		Notes: []string{
			"geometry is the paper's Table III scaled down (see DESIGN.md); kept fractions match",
			"expected shape: Kondo 1 & 1; BF recall well below 1 at the same budget",
		},
	}
	for _, p := range []workload.Program{workload.DefaultARD(), workload.DefaultMSI()} {
		budget := opts.EvalBudget * 2 // the paper gives the real apps a longer budget
		cfg := kondo.DefaultConfig()
		cfg.Fuzz.Seed = opts.Seed
		cfg.Fuzz.MaxEvals = budget
		cfg.Fuzz.MaxIter = 2 * budget
		cfg.Fuzz.Workers = opts.Workers
		res, err := kondo.Debloat(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		pr, err := prOfApprox(p, res.Approx)
		if err != nil {
			return nil, err
		}
		bf, err := baseline.BruteForce(ctx, p, budget, 0)
		if err != nil {
			return nil, err
		}
		bfPR, err := prOfApprox(p, bf.Indices)
		if err != nil {
			return nil, err
		}
		var thetaParts []string
		for _, r := range p.Params() {
			thetaParts = append(thetaParts, fmt.Sprintf("%d-%d", r.Lo, r.Hi))
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name(),
			"(" + strings.Join(thetaParts, ", ") + ")",
			p.Space().String(),
			fmtF(pr.Precision), fmtF(pr.Recall),
			fmtF(bfPR.Precision), fmtF(bfPR.Recall),
			fmtPct(metrics.BloatFraction(p.Space(), res.Approx)),
		})
	}
	return rep, nil
}

// kondoRunWithCarve runs the pipeline with a custom carve config.
func kondoRunWithCarve(ctx context.Context, p workload.Program, opts Options, seed int64, carveCfg carve.Config) (*kondo.Result, error) {
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = seed
	cfg.Fuzz.MaxEvals = opts.EvalBudget
	cfg.Fuzz.Workers = opts.Workers
	cfg.Carve = carveCfg
	return kondo.Debloat(ctx, p, cfg)
}
