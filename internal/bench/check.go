package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// metricClass says how the regression gate compares one metric against
// its committed baseline.
type metricClass int

const (
	// classExempt skips the metric: wall-clock and machine-dependent
	// values (seconds, speedups, worker counts) vary run to run.
	classExempt metricClass = iota
	// classExact requires the fresh value to equal the baseline (within
	// float formatting tolerance). Used for deterministic structural
	// counts: changing one means the algorithm's output changed.
	classExact
	// classLowerBetter fails when the fresh value grows beyond the
	// baseline: a cost counter regressed.
	classLowerBetter
	// classHigherBetter fails when the fresh value drops below the
	// baseline: an efficiency headline regressed.
	classHigherBetter
)

// checkTol is the relative tolerance for the gate's comparisons. The
// gated metrics are deterministic counts and their ratios, so the
// tolerance only has to absorb float formatting, not run-to-run noise.
const checkTol = 1e-6

// checkedExperiments classifies every metric of the experiments the
// regression gate covers (`kondo-bench -check`, `make bench-check`).
// Metrics not listed here are exempt; baselines must be regenerated
// with `make bench-json` whenever an intentional change shifts a gated
// metric.
var checkedExperiments = map[string]map[string]metricClass{
	"carve": {
		"points":                  classExact,
		"initial_hulls":           classExact,
		"final_hulls":             classExact,
		"merges":                  classExact,
		"merge_passes":            classExact,
		"prune_hits":              classExact,
		"naive_pair_bound":        classExact,
		"rasterized_indices":      classExact,
		"raster_rows":             classExact,
		"raster_runs":             classExact,
		"raster_point_tests_bbox": classExact,
		"pair_tests":              classLowerBetter,
		"raster_point_tests":      classLowerBetter,
		"pair_test_reduction":     classHigherBetter,
		"raster_point_reduction":  classHigherBetter,
		"engine_seconds":          classExempt,
		"naive_seconds":           classExempt,
		"carve_speedup":           classExempt,
		"raster_serial_seconds":   classExempt,
		"raster_workers_seconds":  classExempt,
		"raster_speedup":          classExempt,
		"raster_workers":          classExempt,
	},
	"perf": {
		"evaluations":          classExact,
		"hulls":                classExact,
		"merge_passes":         classExact,
		"kept_indices":         classExact,
		"space_size":           classExact,
		"original_bytes":       classExact,
		"bytes_kept":           classExact,
		"recovery_round_trips": classExact,
		"hull_shrinkage":       classHigherBetter,
		"reduction":            classHigherBetter,
		"precision":            classHigherBetter,
		"recall":               classHigherBetter,
		"saturation":           classHigherBetter,
		"waste_ratio":          classLowerBetter,
		"evals_per_sec":        classExempt,
		"fuzz_seconds":         classExempt,
		"carve_seconds":        classExempt,
		"write_seconds":        classExempt,
	},
	"orchestra": {
		"evaluations":    classExact,
		"indices":        classExact,
		"digest_matches": classExact,
		"digest_runs":    classExact,
		// Telemetry-laden runs must stay bit-identical too: the whole
		// observability path is off the deterministic merge path.
		"telemetry_digest_matches": classExact,
		"telemetry_digest_runs":    classExact,
		// The raw overhead ratio is wall clock (exempt); the gated copy
		// is floored at the telemetry budget so it fails exactly when
		// fleet telemetry costs more than that, never on sub-floor noise.
		"telemetry_overhead":       classExempt,
		"telemetry_overhead_gated": classLowerBetter,
		"reissued_leases":          classExact,
		"late_results":             classExempt,
		"evals_per_sec_1":          classExempt,
		"evals_per_sec_2":          classExempt,
		"evals_per_sec_4":          classExempt,
		"reissue_evals_per_sec":    classExempt,
	},
	"serve": {
		// Closed-loop runs are count-bounded, so request/error totals and
		// the stitched client+server trace geometry are exact.
		"requests":   classExact,
		"errors":     classExact,
		"trace_pids": classExact,
		// Wall-clock shapes vary with the host; report, don't gate.
		"throughput_rps":  classExempt,
		"p50_ms":          classExempt,
		"p95_ms":          classExempt,
		"p99_ms":          classExempt,
		"cache_hit_rate":  classExempt,
		"slo_attainment":  classExempt,
		"slo_budget_used": classExempt,
		// The raw overhead ratio is wall clock (exempt); the gated copy
		// is floored at the serving observability budget so it fails
		// exactly when tracing + SLO accounting cost more than that,
		// never on sub-floor noise.
		"serve_overhead":       classExempt,
		"serve_overhead_gated": classLowerBetter,
		// Merkle verification: proof counts vary with singleflight timing
		// (report only), failures must stay exactly zero, and the paired
		// verify-on overhead shares the floored ≤5% gate.
		"verify_proofs":         classExempt,
		"verify_failed":         classExact,
		"verify_overhead":       classExempt,
		"verify_overhead_gated": classLowerBetter,
	},
}

// CheckFailure is one gated metric that failed the regression gate.
type CheckFailure struct {
	// Metric is the metric name within the experiment.
	Metric string
	// Got and Baseline are the fresh and committed values. NaN marks a
	// side that was missing entirely.
	Got, Baseline float64
	// Reason classifies the failure for the rendered diff.
	Reason string
}

// CheckError is the regression gate's verdict for one experiment: the
// complete list of gated metrics that regressed, not just the first.
// Its Error rendering is an aligned metric/got/baseline diff so a CI
// log shows the whole regression at a glance.
type CheckError struct {
	// Experiment is the report id that was gated.
	Experiment string
	// Baseline is the path of the committed baseline JSON.
	Baseline string
	// Failures lists every regressed metric in name order.
	Failures []CheckFailure
}

// Error renders the aligned diff.
func (e *CheckError) Error() string {
	fmtVal := func(v float64) string {
		if math.IsNaN(v) {
			return "(missing)"
		}
		return fmtGateVal(v)
	}
	rows := make([][3]string, 0, len(e.Failures))
	wName, wGot, wBase := len("metric"), len("fresh"), len("baseline")
	for _, f := range e.Failures {
		r := [3]string{f.Metric, fmtVal(f.Got), fmtVal(f.Baseline)}
		rows = append(rows, r)
		if len(r[0]) > wName {
			wName = len(r[0])
		}
		if len(r[1]) > wGot {
			wGot = len(r[1])
		}
		if len(r[2]) > wBase {
			wBase = len(r[2])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bench: %s: %d gated metric(s) regressed vs %s:\n",
		e.Experiment, len(e.Failures), e.Baseline)
	fmt.Fprintf(&b, "  %-*s  %*s  %*s\n", wName, "metric", wGot, "fresh", wBase, "baseline")
	for i, f := range e.Failures {
		r := rows[i]
		fmt.Fprintf(&b, "  %-*s  %*s  %*s  %s\n", wName, r[0], wGot, r[1], wBase, r[2], f.Reason)
	}
	b.WriteString("if the change is intentional, regenerate baselines with `make bench-json`")
	return b.String()
}

// fmtGateVal formats a gate value the way Report.JSON would, trimming
// trailing zeros so counts print as integers.
func fmtGateVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Check compares a freshly produced report against the committed
// baseline JSON at baselinePath. On regression it returns a
// *CheckError listing every gated metric that failed — callers can
// aggregate errors across experiments before exiting. Wall-clock
// metrics are exempt; the gated ones are deterministic counts (and
// their ratios), so any drift is a real behavior change, not noise.
// Intentional changes are accepted by regenerating the baseline with
// `make bench-json`.
func Check(rep *Report, baselinePath string) error {
	classes, ok := checkedExperiments[rep.ID]
	if !ok {
		return fmt.Errorf("bench: experiment %q has no regression gate", rep.ID)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w (regenerate with `make bench-json`)", err)
	}
	var base struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}

	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	cerr := &CheckError{Experiment: rep.ID, Baseline: baselinePath}
	for _, name := range names {
		class := classes[name]
		if class == classExempt {
			continue
		}
		got, inRep := rep.Metrics[name]
		want, inBase := base.Metrics[name]
		switch {
		case !inRep:
			cerr.Failures = append(cerr.Failures, CheckFailure{
				Metric: name, Got: math.NaN(), Baseline: want,
				Reason: "missing from the fresh report"})
			continue
		case !inBase:
			cerr.Failures = append(cerr.Failures, CheckFailure{
				Metric: name, Got: got, Baseline: math.NaN(),
				Reason: "missing from the baseline"})
			continue
		}
		tol := checkTol * math.Max(math.Abs(want), 1)
		switch class {
		case classExact:
			if math.Abs(got-want) > tol {
				cerr.Failures = append(cerr.Failures, CheckFailure{
					Metric: name, Got: got, Baseline: want,
					Reason: "exact metric changed"})
			}
		case classLowerBetter:
			if got > want+tol {
				cerr.Failures = append(cerr.Failures, CheckFailure{
					Metric: name, Got: got, Baseline: want,
					Reason: "cost counter regressed"})
			}
		case classHigherBetter:
			if got < want-tol {
				cerr.Failures = append(cerr.Failures, CheckFailure{
					Metric: name, Got: got, Baseline: want,
					Reason: "headline regressed"})
			}
		}
	}
	if len(cerr.Failures) > 0 {
		return cerr
	}
	return nil
}
