package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// metricClass says how the regression gate compares one metric against
// its committed baseline.
type metricClass int

const (
	// classExempt skips the metric: wall-clock and machine-dependent
	// values (seconds, speedups, worker counts) vary run to run.
	classExempt metricClass = iota
	// classExact requires the fresh value to equal the baseline (within
	// float formatting tolerance). Used for deterministic structural
	// counts: changing one means the algorithm's output changed.
	classExact
	// classLowerBetter fails when the fresh value grows beyond the
	// baseline: a cost counter regressed.
	classLowerBetter
	// classHigherBetter fails when the fresh value drops below the
	// baseline: an efficiency headline regressed.
	classHigherBetter
)

// checkTol is the relative tolerance for the gate's comparisons. The
// gated metrics are deterministic counts and their ratios, so the
// tolerance only has to absorb float formatting, not run-to-run noise.
const checkTol = 1e-6

// checkedExperiments classifies every metric of the experiments the
// regression gate covers (`kondo-bench -check`, `make bench-check`).
// Metrics not listed here are exempt; baselines must be regenerated
// with `make bench-json` whenever an intentional change shifts a gated
// metric.
var checkedExperiments = map[string]map[string]metricClass{
	"carve": {
		"points":                  classExact,
		"initial_hulls":           classExact,
		"final_hulls":             classExact,
		"merges":                  classExact,
		"merge_passes":            classExact,
		"prune_hits":              classExact,
		"naive_pair_bound":        classExact,
		"rasterized_indices":      classExact,
		"raster_rows":             classExact,
		"raster_runs":             classExact,
		"raster_point_tests_bbox": classExact,
		"pair_tests":              classLowerBetter,
		"raster_point_tests":      classLowerBetter,
		"pair_test_reduction":     classHigherBetter,
		"raster_point_reduction":  classHigherBetter,
		"engine_seconds":          classExempt,
		"naive_seconds":           classExempt,
		"carve_speedup":           classExempt,
		"raster_serial_seconds":   classExempt,
		"raster_workers_seconds":  classExempt,
		"raster_speedup":          classExempt,
		"raster_workers":          classExempt,
	},
	"perf": {
		"evaluations":          classExact,
		"hulls":                classExact,
		"merge_passes":         classExact,
		"kept_indices":         classExact,
		"space_size":           classExact,
		"original_bytes":       classExact,
		"bytes_kept":           classExact,
		"recovery_round_trips": classExact,
		"hull_shrinkage":       classHigherBetter,
		"reduction":            classHigherBetter,
		"precision":            classHigherBetter,
		"recall":               classHigherBetter,
		"saturation":           classHigherBetter,
		"waste_ratio":          classLowerBetter,
		"evals_per_sec":        classExempt,
		"fuzz_seconds":         classExempt,
		"carve_seconds":        classExempt,
		"write_seconds":        classExempt,
	},
}

// Check compares a freshly produced report against the committed
// baseline JSON at baselinePath and returns an error describing every
// gated metric that regressed. Wall-clock metrics are exempt; the
// gated ones are deterministic counts (and their ratios), so any drift
// is a real behavior change, not noise. Intentional changes are
// accepted by regenerating the baseline with `make bench-json`.
func Check(rep *Report, baselinePath string) error {
	classes, ok := checkedExperiments[rep.ID]
	if !ok {
		return fmt.Errorf("bench: experiment %q has no regression gate", rep.ID)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w (regenerate with `make bench-json`)", err)
	}
	var base struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}

	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		class := classes[name]
		if class == classExempt {
			continue
		}
		got, inRep := rep.Metrics[name]
		want, inBase := base.Metrics[name]
		switch {
		case !inRep:
			failures = append(failures, fmt.Sprintf("%s: missing from the fresh report", name))
			continue
		case !inBase:
			failures = append(failures, fmt.Sprintf("%s: missing from baseline %s (regenerate with `make bench-json`)", name, baselinePath))
			continue
		}
		tol := checkTol * math.Max(math.Abs(want), 1)
		switch class {
		case classExact:
			if math.Abs(got-want) > tol {
				failures = append(failures, fmt.Sprintf("%s: %v, baseline %v (exact metric changed)", name, got, want))
			}
		case classLowerBetter:
			if got > want+tol {
				failures = append(failures, fmt.Sprintf("%s: %v, baseline %v (cost counter regressed)", name, got, want))
			}
		case classHigherBetter:
			if got < want-tol {
				failures = append(failures, fmt.Sprintf("%s: %v, baseline %v (headline regressed)", name, got, want))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: %s regressed vs %s:\n  %s\nif the change is intentional, regenerate baselines with `make bench-json`",
			rep.ID, baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}
