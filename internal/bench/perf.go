package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/sdf"
	"repro/internal/workload"
)

// perfRecoverySample bounds the number of missing elements the perf
// experiment recovers through the origin fetcher.
const perfRecoverySample = 200

// Perf is the machine-readable performance experiment: one end-to-end
// pipeline run (fuzz → carve → rasterize → debloated file write →
// recovery reads) on the CS2 micro benchmark, reporting the headline
// numbers the perf trajectory tracks across PRs — evals/s, hull count,
// waste ratio, bytes kept, and recovery round-trips. The values land
// in Report.Metrics, which `kondo-bench -json` serializes as
// BENCH_perf.json.
func Perf(ctx context.Context, opts Options) (*Report, error) {
	p := workload.MustCS(2, opts.Size2D)
	res, err := kondoRun(ctx, p, opts, opts.Seed)
	if err != nil {
		return nil, err
	}
	pr, err := prOfApprox(p, res.Approx)
	if err != nil {
		return nil, err
	}
	evalsPerSec := 0.0
	if s := res.Fuzz.Elapsed.Seconds(); s > 0 {
		evalsPerSec = float64(res.Fuzz.Evaluations) / s
	}
	wasteRatio := res.WasteRatio()

	// Materialize the origin and the debloated file.
	dir, err := os.MkdirTemp("", "kondo-bench-perf-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	orig := filepath.Join(dir, "orig.sdf")
	w := sdf.NewWriter(orig)
	dw, err := w.CreateDataset("data", p.Space(), array.Float64, nil)
	if err != nil {
		return nil, err
	}
	if err := dw.Fill(func(ix array.Index) float64 { return float64(ix[0] + ix[1]) }); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	// Fine chunks so the cross-stencil's empty corners produce chunks
	// that are absent from the debloated file (coarser chunks would
	// all overlap the kept set, leaving recovery nothing to do).
	deb := filepath.Join(dir, "deb.sdf")
	chunk := make([]int, p.Space().Rank())
	for k := range chunk {
		chunk[k] = 4
	}
	writeStart := time.Now()
	stats, err := debloat.WriteSubset(orig, deb, "data", res.Approx, chunk)
	if err != nil {
		return nil, err
	}
	writeTime := time.Since(writeStart)

	// Recovery round-trips: read a sample of carved-away elements back
	// through the origin fetcher.
	roundTrips, err := perfRecovery(deb, orig, res.Approx)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Columns: []string{"metric", "value"},
		Metrics: map[string]float64{
			"evaluations":          float64(res.Fuzz.Evaluations),
			"evals_per_sec":        evalsPerSec,
			"fuzz_seconds":         res.FuzzTime.Seconds(),
			"carve_seconds":        res.CarveTime.Seconds(),
			"write_seconds":        writeTime.Seconds(),
			"hulls":                float64(len(res.Hulls)),
			"merge_passes":         float64(res.CarveStats.MergePasses),
			"hull_shrinkage":       res.CarveStats.Shrinkage(),
			"waste_ratio":          wasteRatio,
			"kept_indices":         float64(res.Approx.Len()),
			"space_size":           float64(p.Space().Size()),
			"original_bytes":       float64(stats.OriginalBytes),
			"bytes_kept":           float64(stats.DebloatedBytes),
			"reduction":            stats.Reduction(),
			"recovery_round_trips": float64(roundTrips),
			"precision":            pr.Precision,
			"recall":               pr.Recall,
			"saturation":           res.Fuzz.Coverage.Saturation(),
		},
		Notes: []string{
			fmt.Sprintf("program %s at %s, budget %d, seed %d", p.Name(), p.Space(), opts.EvalBudget, opts.Seed),
			fmt.Sprintf("recovery sample capped at %d missing elements", perfRecoverySample),
			"wall-clock metrics (evals_per_sec, *_seconds) are machine-dependent; counts and ratios are deterministic",
		},
	}
	for _, m := range []string{
		"evaluations", "evals_per_sec", "fuzz_seconds", "carve_seconds", "write_seconds",
		"hulls", "merge_passes", "hull_shrinkage", "waste_ratio", "kept_indices", "space_size",
		"original_bytes", "bytes_kept", "reduction", "recovery_round_trips",
		"precision", "recall", "saturation",
	} {
		rep.Rows = append(rep.Rows, []string{m, fmtF(rep.Metrics[m])})
	}
	return rep, nil
}

// perfRecovery opens the debloated file with an origin fetcher and
// reads up to perfRecoverySample carved-away elements, returning the
// number of recovery round-trips performed.
func perfRecovery(debPath, origPath string, approx *array.IndexSet) (int, error) {
	f, err := sdf.Open(debPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		return 0, err
	}
	fetcher := debloat.NewOriginFetcher(origPath)
	defer fetcher.Close()
	rt := debloat.NewRuntime(ds, fetcher)
	space := ds.Space()
	read := 0
	var readErr error
	space.Each(func(ix array.Index) bool {
		if read >= perfRecoverySample {
			return false
		}
		if approx.Contains(ix) {
			return true
		}
		if _, err := rt.ReadElement(ix); err != nil {
			readErr = fmt.Errorf("recovering %v: %w", ix, err)
			return false
		}
		read++
		return true
	})
	if readErr != nil {
		return 0, readErr
	}
	return int(rt.Recovered()), nil
}
