package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/ioevent"
	"repro/internal/kondo"
	"repro/internal/metrics"
	"repro/internal/sdf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig4 contrasts the plain exploit-and-explore schedule with the
// boundary-based schedule on the same budget, reporting how the
// evaluated parameter values distribute around the subset boundary.
func Fig4(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"schedule", "tests", "useful", "non-useful",
			"near-boundary", "clusters(u/n)", "|IS|"},
		Notes: []string{
			"program: CS2 (stepX <= stepY); boundary band: |stepX - stepY| <= 10",
			"expected shape: boundary-based EE concentrates tests near the boundary",
		},
	}
	p := workload.MustCS(2, opts.Size2D)
	runs := 1500
	if opts.Quick {
		runs = 600
	}
	for _, boundary := range []bool{false, true} {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.MaxEvals = runs
		cfg.MaxIter = 4 * runs
		cfg.Workers = opts.Workers
		cfg.StopIter = 0 // fixed-budget campaign, as in the figure
		cfg.Boundary = boundary
		if boundary {
			// Engage boundary mutations within the budget.
			cfg.DecayIter = 50
			cfg.Decay = 0.8
		}
		f, err := fuzz.ForProgram(p, cfg)
		if err != nil {
			return nil, err
		}
		res, err := f.Run(ctx)
		if err != nil {
			return nil, err
		}
		near := 0
		for _, s := range res.Seeds {
			if math.Abs(s.V[0]-s.V[1]) <= 10 {
				near++
			}
		}
		name := "exploit-explore"
		if boundary {
			name = "boundary-based EE"
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprint(res.Evaluations),
			fmt.Sprint(res.Useful),
			fmt.Sprint(res.NonUseful),
			fmtPct(float64(near) / float64(len(res.Seeds))),
			fmt.Sprintf("%d/%d", res.UsefulClusters, res.NonUsefulClusters),
			fmt.Sprint(res.Indices.Len()),
		})
	}
	return rep, nil
}

// Fig6 demonstrates the merge algorithm on a synthetic three-cluster
// point set: per-cell hulls, the merged hull set, and the single-hull
// baseline.
func Fig6(ctx context.Context, opts Options) (*Report, error) {
	space := array.MustSpace(96, 96)
	truth := array.NewIndexSet(space)
	// Three clusters: two close together (they should merge), one far
	// away (it should stay separate) — the shape of the paper's
	// Fig. 6 walkthrough.
	addBlock := func(r0, c0, r1, c1 int) {
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				truth.Add(array.NewIndex(r, c))
			}
		}
	}
	addBlock(0, 0, 20, 20)
	addBlock(26, 10, 40, 30) // near the first: boundary distance ~6
	addBlock(70, 70, 92, 92) // far from both

	cells := carve.DefaultConfig()
	hulls, err := carve.Carve(truth, cells)
	if err != nil {
		return nil, err
	}
	merged, err := carve.Rasterize(hulls, space)
	if err != nil {
		return nil, err
	}
	single, err := carve.SimpleConvex(truth)
	if err != nil {
		return nil, err
	}
	singleRaster, err := single.Rasterize(space)
	if err != nil {
		return nil, err
	}

	prMerged := metrics.Evaluate(truth, merged)
	prSingle := metrics.Evaluate(truth, singleRaster)
	rep := &Report{
		Columns: []string{"carver", "hulls", "precision", "recall"},
		Rows: [][]string{
			{"bottom-up merge (Kondo)", fmt.Sprint(len(hulls)), fmtF(prMerged.Precision), fmtF(prMerged.Recall)},
			{"single convex hull", "1", fmtF(prSingle.Precision), fmtF(prSingle.Recall)},
		},
		Notes: []string{
			"three input clusters; the two near ones merge, the far one stays separate",
			"expected shape: merged carver keeps precision high; single hull covers the gap",
		},
	}
	return rep, nil
}

// Fig11a sweeps the data file size for the CS3 program (the paper's
// lowest-recall benchmark) and reports precision/recall stability.
func Fig11a(ctx context.Context, opts Options) (*Report, error) {
	sizes := []int{128, 256, 512, 1024, 2048}
	if opts.Quick {
		sizes = []int{64, 128, 256}
	}
	rep := &Report{
		Columns: []string{"array", "file size", "precision", "recall"},
		Notes: []string{
			"program: CS3; 16-byte elements as in §V-B",
			"expected shape: recall stable, precision improves with size",
		},
	}
	rep.Notes = append(rep.Notes,
		"distance parameters (mutation frames, cluster diameter, cell size, merge",
		"thresholds) are fixed in normalized coordinates, i.e. scaled with the extent:",
		"that is the size-independent configuration §V-D4 argues for")
	runs := opts.Runs
	if runs > 3 && !opts.Quick {
		runs = 3 // the sweep is expensive at 2048^2; 3 seeded runs suffice for the trend
	}
	base := sizes[0]
	for _, n := range sizes {
		p := workload.MustCS(3, n)
		scale := float64(n) / float64(base)
		var precs, recalls []float64
		for r := 0; r < runs; r++ {
			cfg := kondo.DefaultConfig()
			cfg.Fuzz.Seed = opts.Seed + int64(r)
			cfg.Fuzz.MaxEvals = opts.EvalBudget
			cfg.Fuzz.Workers = opts.Workers
			cfg.Fuzz.UsefulDist = [2]float64{5 * scale, 15 * scale}
			cfg.Fuzz.NonUsefulDist = [2]float64{30 * scale, 50 * scale}
			cfg.Fuzz.Diameter = 20 * scale
			cfg.Carve.CellSize = int(16 * scale)
			cfg.Carve.CenterDistThresh = 20 * scale
			cfg.Carve.BoundaryDistThresh = 10 * scale
			res, err := kondo.Debloat(ctx, p, cfg)
			if err != nil {
				return nil, err
			}
			pr, err := prOfApprox(p, res.Approx)
			if err != nil {
				return nil, err
			}
			precs = append(precs, pr.Precision)
			recalls = append(recalls, pr.Recall)
		}
		bytes := int64(n) * int64(n) * 16
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d×%d", n, n),
			fmt.Sprintf("%d KB", bytes/1024),
			fmtF(avg(precs)),
			fmtF(avg(recalls)),
		})
	}
	return rep, nil
}

// Fig11bc sweeps center_d_thresh and reports precision (Fig. 11b) and
// recall (Fig. 11c) averaged over the micro-benchmarks.
func Fig11bc(ctx context.Context, opts Options) (*Report, error) {
	thresholds := []float64{5, 10, 20, 40, 80, 160}
	if opts.Quick {
		thresholds = []float64{5, 20, 160}
	}
	rep := &Report{
		Columns: []string{"center_d_thresh", "precision", "recall"},
		Notes: []string{
			"programs with gapped/sparse regions (CS1, CS5, LDC2D, PRL2D) under a reduced",
			"observation budget, where merging decisions actually change the carved subset",
			"expected shape: recall rises with the threshold, precision falls; recall stays above ~0.75",
		},
	}
	// A reduced budget leaves the observations fragmented, so the
	// merge threshold decides whether sandwiched truth gets covered
	// (recall) and whether separate regions get bridged (precision) —
	// the regime the paper's sensitivity plot probes.
	sweepOpts := opts
	sweepOpts.EvalBudget = maxInt(150, opts.EvalBudget/8)
	programs := []workload.Program{
		workload.MustCS(1, opts.Size2D),
		workload.MustCS(5, opts.Size2D),
		workload.MustLDC(opts.Size2D, opts.Size2D),
		workload.MustPRL(opts.Size2D, opts.Size2D),
	}
	for _, th := range thresholds {
		var precs, recalls []float64
		for _, p := range programs {
			for r := 0; r < minInt(opts.Runs, 3); r++ {
				res, err := kondoRunWithCarve(ctx, p, sweepOpts, opts.Seed+int64(r), carveCfgFor(th))
				if err != nil {
					return nil, err
				}
				pr, err := prOfApprox(p, res.Approx)
				if err != nil {
					return nil, err
				}
				precs = append(precs, pr.Precision)
				recalls = append(recalls, pr.Recall)
			}
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(th), fmtF(avg(precs)), fmtF(avg(recalls))})
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Missed reports the §V-D1 measure: the percentage of parameter
// valuations whose run would touch at least one carved-away index.
func Missed(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "missed valuations"},
		Notes:   []string{"paper reports 0.0%–0.8% across programs"},
	}
	rows, err := forEachProgram(allPrograms(opts), func(p workload.Program) ([]string, error) {
		res, err := kondoRun(ctx, p, opts, opts.Seed)
		if err != nil {
			return nil, err
		}
		rate, err := metrics.MissedValuationRate(p, res.Approx, 1<<20, 2000, opts.Seed)
		if err != nil {
			return nil, err
		}
		return []string{p.Name(), fmtPct(rate)}, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// Audit measures the I/O event audit overhead (§V-D6): the same
// program runs against a real data file with and without the trace
// layer, over growing file sizes.
func Audit(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "array", "events", "untraced", "traced", "overhead"},
		Notes: []string{
			"overhead = (traced − untraced) / untraced wall time over the same reads",
			"paper reports ~31% average; I/O-intensive programs sit higher",
		},
	}
	sizes := []int{64, 128, 256}
	if opts.Quick {
		sizes = []int{32, 64}
	}
	dir, err := os.MkdirTemp("", "kondo-audit")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var overheads []float64
	for _, n := range sizes {
		for _, mk := range []func(int) workload.Program{
			func(n int) workload.Program { return workload.MustCS(2, n) },
			func(n int) workload.Program { return workload.MustPRL(n, n) },
			func(n int) workload.Program { return workload.MustLDC(n, n) },
		} {
			p := mk(n)
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.sdf", p.Name(), n))
			if err := writeDataFile(path, p.Space()); err != nil {
				return nil, err
			}
			events, untraced, traced, overhead, err := auditOnce(p, path, opts)
			if err != nil {
				return nil, err
			}
			overheads = append(overheads, overhead)
			rep.Rows = append(rep.Rows, []string{
				p.Name(), p.Space().String(), fmt.Sprint(events),
				fmtDur(untraced), fmtDur(traced), fmtPct(overhead),
			})
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("average overhead: %s", fmtPct(avg(overheads))))
	return rep, nil
}

// writeDataFile creates a chunked long-double data file for the space.
func writeDataFile(path string, space array.Space) error {
	w := sdf.NewWriter(path)
	chunk := make([]int, space.Rank())
	for k := range chunk {
		chunk[k] = minInt(space.Dim(k), 16)
	}
	dw, err := w.CreateDataset("data", space, array.LongDouble, chunk)
	if err != nil {
		return err
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		return err
	}
	return w.Close()
}

// auditOnce measures the audit overhead for one program and file: the
// same spread of parameter values runs against the file untraced and
// traced, repeated several times. The reported overhead is the median
// of the per-repetition traced/untraced ratios (single sub-millisecond
// runs are too noisy to subtract).
func auditOnce(p workload.Program, path string, opts Options) (events int64, untraced, traced time.Duration, overhead float64, err error) {
	params := p.Params()
	const spread = 36
	values := make([][]float64, 0, spread)
	for i := 0; i < spread; i++ {
		v := make([]float64, len(params))
		for k, r := range params {
			v[k] = float64(r.Lo) + float64(i)*float64(r.Hi-r.Lo)/float64(spread-1)
		}
		values = append(values, v)
	}

	runAll := func(acc workload.Accessor) error {
		env := &workload.Env{Acc: acc}
		for _, v := range values {
			if err := p.Run(v, env); err != nil {
				return err
			}
		}
		return nil
	}

	reps := 5
	if opts.Quick {
		reps = 3
	}
	var untracedSamples, tracedSamples []time.Duration
	for rep := 0; rep < reps; rep++ {
		// Untraced.
		start := time.Now()
		f, err := sdf.Open(path)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ds, err := f.Dataset("data")
		if err != nil {
			f.Close()
			return 0, 0, 0, 0, err
		}
		if err := runAll(workload.NewFileAccessor(ds)); err != nil {
			f.Close()
			return 0, 0, 0, 0, err
		}
		f.Close()
		untracedSamples = append(untracedSamples, time.Since(start))

		// Traced.
		start = time.Now()
		store := ioevent.NewStore()
		tr := trace.NewTracer(store)
		tf, err := tr.Open(tr.NewProcess(), path)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		af, err := sdf.OpenFrom(tf)
		if err != nil {
			tf.Close()
			return 0, 0, 0, 0, err
		}
		ads, err := af.Dataset("data")
		if err != nil {
			af.Close()
			return 0, 0, 0, 0, err
		}
		if err := runAll(workload.NewFileAccessor(ads)); err != nil {
			af.Close()
			return 0, 0, 0, 0, err
		}
		af.Close()
		tracedSamples = append(tracedSamples, time.Since(start))
		events = store.Events()
	}
	ratios := make([]float64, len(untracedSamples))
	for i := range untracedSamples {
		ratios[i] = float64(tracedSamples[i]-untracedSamples[i]) / float64(untracedSamples[i])
	}
	sort.Float64s(ratios)
	return events, median(untracedSamples), median(tracedSamples), ratios[len(ratios)/2], nil
}

// median returns the median of the samples (they are few; sort a copy).
func median(ds []time.Duration) time.Duration {
	cp := append([]time.Duration(nil), ds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
