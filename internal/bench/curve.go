package bench

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/fuzz"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Curve traces recall as a function of the number of debloat tests for
// Kondo, BF and AFL on one program — the trajectory underlying the
// Fig. 7 endpoints and the Fig. 10 budget gaps.
func Curve(ctx context.Context, opts Options) (*Report, error) {
	p := workload.MustCS(2, opts.Size2D)
	gt, err := groundTruth(p)
	if err != nil {
		return nil, err
	}
	budget := opts.EvalBudget
	checkpoints := 10
	step := budget / checkpoints

	rep := &Report{
		Columns: []string{"tests", "Kondo raw", "Kondo carved", "BF recall", "AFL recall"},
		Notes: []string{
			fmt.Sprintf("program: %s; raw = accumulated observations, carved = after hulls", p.Name()),
			"expected shape: carving closes the gap between sparse observations and full",
			"recall early; AFL's curve flattens lowest; BF's raw sweep is dense but cannot",
			"generalize (and falls behind as |Θ| outgrows the budget)",
		},
	}

	// Kondo's fuzzer exposes the cumulative curve directly.
	fcfg := fuzzCfg(opts, opts.Seed)
	fcfg.StopIter = 0
	fcfg.MaxIter = 4 * budget
	f, err := fuzz.ForProgram(p, fcfg)
	if err != nil {
		return nil, err
	}
	kres, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	truthLen := float64(gt.Len())
	kondoAt := func(tests int) float64 {
		if len(kres.Curve) == 0 {
			return 0
		}
		i := tests - 1
		if i >= len(kres.Curve) {
			i = len(kres.Curve) - 1
		}
		// Observed IS is always a subset of truth for exact debloat
		// tests, so |IS|/|I_Θ| is the recall.
		return float64(kres.Curve[i]) / truthLen
	}

	// BF: sample recall at each checkpoint via the incremental driver.
	bfAt := make(map[int]float64)
	next := step
	_, err = baseline.BruteForceUntil(ctx, p, step, func(r *baseline.Result) bool {
		if r.Evaluations >= next {
			bfAt[next] = metrics.Recall(gt, r.Indices)
			next += step
		}
		return r.Evaluations >= budget
	})
	if err != nil {
		return nil, err
	}

	// AFL: same sampling through its progress hook.
	aflAt := make(map[int]float64)
	aflNext := step
	acfg := baseline.DefaultAFLConfig()
	acfg.Seed = opts.Seed
	acfg.MaxEvals = budget
	acfg.ProgressEvery = step
	acfg.Progress = func(r *baseline.Result) bool {
		if r.Evaluations >= aflNext {
			aflAt[aflNext] = metrics.Recall(gt, r.Indices)
			aflNext += step
		}
		return false
	}
	ares, err := baseline.AFL(ctx, p, acfg)
	if err != nil {
		return nil, err
	}
	finalAFL := metrics.Recall(gt, ares.Indices)

	// Carved recall at each checkpoint: re-run the pipeline with the
	// checkpoint's budget (the fuzzer is seeded, so each prefix run
	// retraces the same campaign).
	carvedAt := func(tests int) (float64, error) {
		cOpts := opts
		cOpts.EvalBudget = tests
		res, err := kondoRun(ctx, p, cOpts, opts.Seed)
		if err != nil {
			return 0, err
		}
		return metrics.Recall(gt, res.Approx), nil
	}

	lastBF, lastAFL := 0.0, 0.0
	for t := step; t <= budget; t += step {
		if v, ok := bfAt[t]; ok {
			lastBF = v
		}
		if v, ok := aflAt[t]; ok {
			lastAFL = v
		} else if t == budget {
			lastAFL = finalAFL
		}
		carved, err := carvedAt(t)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(t), fmtF(kondoAt(t)), fmtF(carved), fmtF(lastBF), fmtF(lastAFL),
		})
	}
	return rep, nil
}
