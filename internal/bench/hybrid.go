package bench

import (
	"context"
	"fmt"

	"repro/internal/fuzz"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Hybrid evaluates the §VI extension: after Kondo's campaign, spend a
// secondary budget on an AFL-style havoc phase and merge any extra
// offsets it finds. Run with deliberately tight primary budgets so
// there is recall left to recover.
func Hybrid(ctx context.Context, opts Options) (*Report, error) {
	rep := &Report{
		Columns: []string{"program", "primary tests", "Kondo recall", "hybrid recall", "AFL added"},
		Notes: []string{
			"§VI future work: consult other fuzzing schedules for missed offsets",
			"recall of raw observations under a tight primary budget; the hybrid can",
			"only add offsets, never lose them",
		},
	}
	primary := maxInt(100, opts.EvalBudget/10)
	secondary := opts.EvalBudget / 2
	programs := []workload.Program{
		workload.MustCS(2, opts.Size2D),
		workload.MustCS(5, opts.Size2D),
		workload.MustPRL(opts.Size2D, opts.Size2D),
	}
	for _, p := range programs {
		gt, err := groundTruth(p)
		if err != nil {
			return nil, err
		}
		fcfg := fuzz.DefaultConfig()
		fcfg.Seed = opts.Seed
		fcfg.MaxEvals = primary

		pure, err := hybrid.Run(ctx, p, hybrid.Config{Fuzz: fcfg})
		if err != nil {
			return nil, err
		}
		hyb, err := hybrid.Run(ctx, p, hybrid.Config{Fuzz: fcfg, AFLBudget: secondary, AFLSeed: opts.Seed})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name(),
			fmt.Sprint(primary),
			fmtF(metrics.Recall(gt, pure.Indices)),
			fmtF(metrics.Recall(gt, hyb.Indices)),
			fmt.Sprint(hyb.AFLAdded),
		})
	}
	return rep, nil
}
