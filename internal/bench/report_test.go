package bench

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestReportCSV(t *testing.T) {
	r := &Report{
		Columns: []string{"a", "b"},
		Rows: [][]string{
			{"plain", "1.0"},
			{"with,comma", `with"quote`},
		},
	}
	out := r.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma","with""quote"` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestStddev(t *testing.T) {
	if s := stddev(nil); s != 0 {
		t.Errorf("stddev(nil) = %v", s)
	}
	if s := stddev([]float64{5}); s != 0 {
		t.Errorf("stddev of one = %v", s)
	}
	// Known sample: 2,4,4,4,5,5,7,9 → sample stddev ≈ 2.138.
	s := stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("stddev = %v, want ≈2.138", s)
	}
	if s := stddev([]float64{3, 3, 3}); s != 0 {
		t.Errorf("stddev of constants = %v", s)
	}
}

func TestForEachProgramOrderAndErrors(t *testing.T) {
	progs := workload.Micro(32)
	rows, err := forEachProgram(progs, func(p workload.Program) ([]string, error) {
		return []string{p.Name()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if rows[i][0] != p.Name() {
			t.Errorf("row %d = %v, want %s (input order preserved)", i, rows[i], p.Name())
		}
	}
	// Errors propagate.
	_, err = forEachProgram(progs, func(p workload.Program) ([]string, error) {
		if p.Name() == "LDC2D" {
			return nil, errSentinel
		}
		return []string{p.Name()}, nil
	})
	if err != errSentinel {
		t.Errorf("error = %v, want sentinel", err)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

// TestKondoRunDeterministic: identical seeds produce identical
// approximations — what makes every reported number reproducible.
func TestKondoRunDeterministic(t *testing.T) {
	opts := QuickOptions()
	p := workload.MustCS(2, 64)
	a, err := kondoRun(context.Background(), p, opts, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kondoRun(context.Background(), p, opts, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Approx.Equal(b.Approx) {
		t.Error("same-seed runs produced different approximations")
	}
	if a.Fuzz.Evaluations != b.Fuzz.Evaluations {
		t.Error("same-seed runs used different numbers of evaluations")
	}
	c, err := kondoRun(context.Background(), p, opts, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Approx.Equal(c.Approx) && a.Fuzz.Evaluations == c.Fuzz.Evaluations {
		t.Log("different seeds coincided (possible but unusual)")
	}
}
