package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-runs every registered experiment in
// quick mode and sanity-checks report structure.
func TestAllExperimentsRunQuick(t *testing.T) {
	opts := QuickOptions()
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(context.Background(), id, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id || rep.Title == "" {
				t.Errorf("report metadata incomplete: %q %q", rep.ID, rep.Title)
			}
			if len(rep.Columns) == 0 || len(rep.Rows) == 0 {
				t.Fatalf("report %s has no data", id)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Errorf("row width %d != %d columns: %v", len(row), len(rep.Columns), row)
				}
			}
			out := rep.String()
			if !strings.Contains(out, rep.Title) {
				t.Error("String() missing title")
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "nope", QuickOptions()); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestFig7Shape asserts the paper's headline ordering at the quick
// scale: Kondo recall ≥ BF recall and Kondo recall ≥ AFL recall per
// micro benchmark, with Kondo close to 1.
func TestFig7Shape(t *testing.T) {
	rep, err := Run(context.Background(), "fig7", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		name := row[0]
		kondo := parseF(t, row[1])
		bf := parseF(t, row[3])
		afl := parseF(t, row[4])
		t.Logf("%s: kondo=%.3f bf=%.3f afl=%.3f", name, kondo, bf, afl)
		if kondo < 0.9 {
			t.Errorf("%s: Kondo recall %.3f < 0.9", name, kondo)
		}
		if kondo < bf-0.05 {
			t.Errorf("%s: Kondo recall %.3f below BF %.3f", name, kondo, bf)
		}
		if kondo < afl {
			t.Errorf("%s: Kondo recall %.3f below AFL %.3f", name, kondo, afl)
		}
	}
}

// TestFig8Shape asserts Kondo's precision dominates SC's on the
// separated-region programs.
func TestFig8Shape(t *testing.T) {
	rep, err := Run(context.Background(), "fig8", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	for _, name := range []string{"LDC2D", "RDC2D"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("missing program %s", name)
		}
		kondo := parseF(t, row[1])
		sc := parseF(t, row[4])
		if kondo < 0.95 {
			t.Errorf("%s: Kondo precision %.3f, want ~1", name, kondo)
		}
		if sc > kondo {
			t.Errorf("%s: SC precision %.3f above Kondo %.3f", name, sc, kondo)
		}
	}
}

// TestFig6Shape asserts the merge carver beats the single hull on the
// synthetic cluster demo.
func TestFig6Shape(t *testing.T) {
	rep, err := Run(context.Background(), "fig6", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	merged := parseF(t, rep.Rows[0][2])
	single := parseF(t, rep.Rows[1][2])
	if merged <= single {
		t.Errorf("merged precision %.3f not above single-hull %.3f", merged, single)
	}
	if recall := parseF(t, rep.Rows[0][3]); recall < 0.999 {
		t.Errorf("merged recall %.3f, want 1 (input points are the truth)", recall)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
