package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/geom"
	"repro/internal/hull"
)

// carveBlobField builds the carve benchmark's synthetic 2-D point set:
// a lattice of well-separated L-shaped blobs, each covering three
// adjacent split cells. Every blob costs the merge loop two merges,
// and the blobs are spaced beyond the CLOSE thresholds, so the field
// exercises exactly the regime the candidate-pair engine targets —
// many hulls, local merges, no long-range pairs.
func carveBlobField(space array.Space, cellSize, stride int) (*array.IndexSet, error) {
	set := array.NewIndexSet(space)
	dims := space.Dims()
	for r := cellSize; r+2*cellSize < dims[0]; r += stride {
		for c := cellSize; c+2*cellSize < dims[1]; c += stride {
			for _, off := range [][2]int{{0, 0}, {cellSize, 0}, {0, cellSize}} {
				for dr := 0; dr < 3; dr++ {
					for dc := 0; dc < 3; dc++ {
						if _, err := set.Add(array.NewIndex(r+off[0]+dr*5, c+off[1]+dc*5)); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return set, nil
}

// Carve is the output-sensitivity experiment for the carve hot path:
// it runs the candidate-pair engine and the retained naive reference
// on the same many-hull field and reports the pair-test reduction and
// wall-clock speedup, plus serial-vs-parallel rasterization timings.
// The headline numbers land in Report.Metrics (BENCH_carve.json).
func Carve(ctx context.Context, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	side := 1600
	if opts.Quick {
		side = 800
	}
	space := array.MustSpace(side, side)
	cfg := carve.DefaultConfig()
	cfg.Workers = opts.Workers
	set, err := carveBlobField(space, cfg.CellSize, 96)
	if err != nil {
		return nil, err
	}

	engineStart := time.Now()
	hulls, st, err := carve.CarveStats(ctx, set, cfg)
	if err != nil {
		return nil, err
	}
	engineTime := time.Since(engineStart)

	naiveStart := time.Now()
	naive, err := carve.CarveNaive(set, cfg)
	if err != nil {
		return nil, err
	}
	naiveTime := time.Since(naiveStart)

	identical := len(hulls) == len(naive)
	if identical {
	cmp:
		for i := range hulls {
			gv, wv := hulls[i].Vertices(), naive[i].Vertices()
			if len(gv) != len(wv) {
				identical = false
				break
			}
			for j := range gv {
				for k := range gv[j] {
					if gv[j][k] != wv[j][k] {
						identical = false
						break cmp
					}
				}
			}
		}
	}
	if !identical {
		return nil, fmt.Errorf("carve: engine and naive reference disagree (%d vs %d hulls)", len(hulls), len(naive))
	}

	// The naive algorithm restarts its O(n²) scan after every merge; its
	// pair-test budget is bounded by passes × n². The engine's counted
	// tests against that bound is the output-sensitivity headline.
	n := int64(st.InitialHulls)
	naiveBound := int64(st.MergePasses) * n * n
	pairReduction := 0.0
	if st.PairTests > 0 {
		pairReduction = float64(naiveBound) / float64(st.PairTests)
	}
	speedup := 0.0
	if engineTime > 0 {
		speedup = naiveTime.Seconds() / engineTime.Seconds()
	}

	// Rasterization timing uses thin diagonal strip hulls — the paper's
	// diagonal stencils are the bbox-scan worst case (kept area is a
	// sliver of the scanned bbox), which is exactly where spreading the
	// lattice walk across workers pays. Fat hulls are bound by the final
	// set inserts, which no worker count can parallelize.
	strips := make([]*hull.Hull, 0, 48)
	reach := side/4 - 8
	for i := 0; i < 48; i++ {
		base := float64((i * 37) % (side - reach - 16))
		off := float64((i * 61) % (side - reach - 16))
		h, err := hull.New([]geom.Point{
			geom.NewPoint(base, off),
			geom.NewPoint(base+8, off),
			geom.NewPoint(base+float64(reach)+8, off+float64(reach)),
			geom.NewPoint(base+float64(reach), off+float64(reach)),
		})
		if err != nil {
			return nil, err
		}
		strips = append(strips, h)
	}
	serialStart := time.Now()
	serial, rst, err := carve.RasterizeStats(ctx, strips, space, 1)
	if err != nil {
		return nil, err
	}
	serialTime := time.Since(serialStart)
	parStart := time.Now()
	par, _, err := carve.RasterizeStats(ctx, strips, space, opts.Workers)
	if err != nil {
		return nil, err
	}
	parTime := time.Since(parStart)
	if !serial.Equal(par) {
		return nil, fmt.Errorf("carve: parallel rasterization kept %d indices, serial kept %d", par.Len(), serial.Len())
	}
	// The retained bbox-scan reference doubles as the equivalence oracle
	// and the baseline for the point-test-reduction headline.
	reference, refSt, err := hull.RasterizeReference(ctx, strips, space)
	if err != nil {
		return nil, err
	}
	if !serial.Equal(reference) {
		return nil, fmt.Errorf("carve: scanline rasterization kept %d indices, bbox-scan reference kept %d", serial.Len(), reference.Len())
	}
	pointReduction := 0.0
	if rst.PointTests > 0 {
		pointReduction = float64(refSt.PointTests) / float64(rst.PointTests)
	}
	rasterSpeedup := 0.0
	if parTime > 0 {
		rasterSpeedup = serialTime.Seconds() / parTime.Seconds()
	}
	rasterWorkers := opts.Workers
	if rasterWorkers <= 0 {
		rasterWorkers = runtime.GOMAXPROCS(0)
	}
	// RasterizeAllStats never runs more workers than hulls; report the
	// count actually used, not the requested one.
	if rasterWorkers > len(strips) {
		rasterWorkers = len(strips)
	}

	rep := &Report{
		Columns: []string{"metric", "value"},
		Metrics: map[string]float64{
			"points":                  float64(set.Len()),
			"initial_hulls":           float64(st.InitialHulls),
			"final_hulls":             float64(st.FinalHulls),
			"merges":                  float64(st.Merges),
			"merge_passes":            float64(st.MergePasses),
			"pair_tests":              float64(st.PairTests),
			"prune_hits":              float64(st.PruneHits),
			"naive_pair_bound":        float64(naiveBound),
			"pair_test_reduction":     pairReduction,
			"engine_seconds":          engineTime.Seconds(),
			"naive_seconds":           naiveTime.Seconds(),
			"carve_speedup":           speedup,
			"raster_serial_seconds":   serialTime.Seconds(),
			"raster_workers_seconds":  parTime.Seconds(),
			"raster_speedup":          rasterSpeedup,
			"raster_workers":          float64(rasterWorkers),
			"rasterized_indices":      float64(serial.Len()),
			"raster_rows":             float64(rst.Rows),
			"raster_runs":             float64(rst.Runs),
			"raster_point_tests":      float64(rst.PointTests),
			"raster_point_tests_bbox": float64(refSt.PointTests),
			"raster_point_reduction":  pointReduction,
		},
		Notes: []string{
			fmt.Sprintf("blob field on %s: %d points -> %d cell hulls -> %d merged hulls", space, set.Len(), st.InitialHulls, st.FinalHulls),
			"engine and naive reference produced bit-identical hull sets",
			fmt.Sprintf("rasterization timed over %d thin diagonal strips (bbox-scan worst case) using %d worker(s); raster_speedup ~ 1 is expected on a single-CPU machine", len(strips), rasterWorkers),
			"scanline output verified bit-identical to the point-by-point bbox-scan reference",
			"wall-clock metrics (*_seconds, *_speedup) are machine-dependent; counts are deterministic",
		},
	}
	for _, m := range []string{
		"points", "initial_hulls", "final_hulls", "merges", "merge_passes",
		"pair_tests", "prune_hits", "naive_pair_bound", "pair_test_reduction",
		"engine_seconds", "naive_seconds", "carve_speedup",
		"raster_serial_seconds", "raster_workers_seconds", "raster_speedup", "raster_workers",
		"rasterized_indices",
		"raster_rows", "raster_runs", "raster_point_tests", "raster_point_tests_bbox",
		"raster_point_reduction",
	} {
		rep.Rows = append(rep.Rows, []string{m, fmtF(rep.Metrics[m])})
	}
	return rep, nil
}
