// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§V). Each experiment is a
// named runner producing a Report — the same rows/series the paper
// plots — so `kondo-bench -exp fig7` prints the Fig. 7 data, and the
// root benchmark suite wraps the runners in testing.B benchmarks.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/kondo"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics holds the report's headline numbers keyed by metric
	// name, for machine consumption (`kondo-bench -json` writes them
	// as BENCH_<id>.json). Experiments that only produce tables may
	// leave it nil.
	Metrics map[string]float64
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the report as a machine-readable document: the table
// verbatim plus the Metrics map, so downstream tooling can track the
// perf trajectory without parsing aligned text.
func (r *Report) JSON() ([]byte, error) {
	doc := struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Columns []string           `json:"columns"`
		Rows    [][]string         `json:"rows"`
		Notes   []string           `json:"notes,omitempty"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
	}{r.ID, r.Title, r.Columns, r.Rows, r.Notes, r.Metrics}
	return json.MarshalIndent(doc, "", "  ")
}

// CSV renders the report as RFC-4180 CSV (header row + data rows),
// for plotting the regenerated figures.
func (r *Report) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRec(r.Columns)
	for _, row := range r.Rows {
		writeRec(row)
	}
	return b.String()
}

// Options tunes the harness. Quick mode shrinks sizes and repetition
// counts so the full suite runs in seconds (used by tests); the
// defaults follow the paper's methodology (§V-C): averages over 10
// Kondo/BF runs and 2 AFL runs.
type Options struct {
	// Runs is the number of repetitions for Kondo and BF.
	Runs int
	// AFLRuns is the number of repetitions for AFL.
	AFLRuns int
	// EvalBudget is the per-campaign debloat-test budget used where
	// the paper fixes a time budget; expressing the budget in test
	// executions makes the comparison machine-independent. Wall-clock
	// per campaign is also reported.
	EvalBudget int
	// Size2D and Size3D are the benchmark array extents.
	Size2D, Size3D int
	// Seed is the base RNG seed; run i uses Seed+i.
	Seed int64
	// Quick trims the heaviest experiments (fewer sweep points,
	// smaller maxima).
	Quick bool
	// Workers is the fuzz worker-pool size per campaign (0 = one
	// worker per available CPU). The experiment outcomes are
	// worker-count independent; only wall-clock changes.
	Workers int
}

// DefaultOptions mirrors §V-B/§V-C.
func DefaultOptions() Options {
	return Options{
		Runs:       10,
		AFLRuns:    2,
		EvalBudget: 2000,
		Size2D:     workload.Default2D,
		Size3D:     workload.Default3D,
		Seed:       1,
	}
}

// QuickOptions is a fast configuration for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Runs:       3,
		AFLRuns:    1,
		EvalBudget: 1200,
		Size2D:     64,
		Size3D:     32,
		Seed:       1,
		Quick:      true,
	}
}

// Runner is one experiment. The context cancels the experiment's
// campaigns; a canceled run returns the context's error.
type Runner func(context.Context, Options) (*Report, error)

// registry maps experiment ids to runners.
var registry = map[string]struct {
	title string
	run   Runner
}{
	"tableI":    {"Types of stencils (micro-benchmark access patterns)", TableI},
	"tableII":   {"Benchmark programs, parameter spaces, ground-truth subsets", TableII},
	"tableIII":  {"Programs derived from real applications (ARD, MSI)", TableIII},
	"fig4":      {"EE vs boundary-based EE fuzz campaigns", Fig4},
	"fig6":      {"Bottom-up hull merging vs single convex hull", Fig6},
	"fig7":      {"Average recall for a fixed budget (Kondo vs BF vs AFL)", Fig7},
	"fig8":      {"Precision per program (Kondo vs BF vs AFL vs SC)", Fig8},
	"fig9":      {"Fraction of data bloat identified vs ground truth", Fig9},
	"fig10":     {"Budget needed to reach Kondo's recall", Fig10},
	"fig11a":    {"Precision/recall with growing data file size (CS3)", Fig11a},
	"fig11bc":   {"Precision/recall sensitivity to center_d_thresh", Fig11bc},
	"missed":    {"Fraction of valuations with at least one missed access (§V-D1)", Missed},
	"audit":     {"I/O event audit overhead (§V-D6)", Audit},
	"curve":     {"Recall vs number of debloat tests (Kondo vs BF vs AFL)", Curve},
	"hybrid":    {"Hybrid schedule: Kondo + AFL havoc phase (§VI extension)", Hybrid},
	"perf":      {"End-to-end pipeline performance (machine-readable trajectory)", Perf},
	"carve":     {"Carve merge engine vs naive reference (output sensitivity)", Carve},
	"orchestra": {"Distributed campaign orchestrator (throughput, re-issue, bit-identity)", Orchestra},
	"serve":     {"Recovery plane under load (throughput, tail latency, SLO, tracing overhead)", Serve},
}

// Experiments returns the available experiment ids, sorted.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id under the given context.
func Run(ctx context.Context, id string, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
	}
	rep, err := e.run(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", id, err)
	}
	rep.ID = id
	rep.Title = e.title
	return rep, nil
}

// --- shared helpers ---

// truthCache avoids recomputing ground truths across experiments in
// one process. Guarded: experiments fan work out across programs.
var (
	truthMu    sync.Mutex
	truthCache = map[string]*array.IndexSet{}
)

func groundTruth(p workload.Program) (*array.IndexSet, error) {
	key := fmt.Sprintf("%s@%s", p.Name(), p.Space())
	truthMu.Lock()
	gt, ok := truthCache[key]
	truthMu.Unlock()
	if ok {
		return gt, nil
	}
	gt, err := workload.GroundTruth(p)
	if err != nil {
		return nil, err
	}
	truthMu.Lock()
	truthCache[key] = gt
	truthMu.Unlock()
	return gt, nil
}

// forEachProgram runs fn for every program concurrently (bounded by
// GOMAXPROCS) and returns the per-program row results in input order.
// The first error wins.
func forEachProgram(programs []workload.Program, fn func(p workload.Program) ([]string, error)) ([][]string, error) {
	rows := make([][]string, len(programs))
	errs := make([]error, len(programs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range programs {
		wg.Add(1)
		go func(i int, p workload.Program) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// kondoRun executes one seeded Kondo pipeline run under the eval
// budget and returns the rasterized approximation plus timings.
func kondoRun(ctx context.Context, p workload.Program, opts Options, seed int64) (*kondo.Result, error) {
	cfg := kondo.DefaultConfig()
	cfg.Fuzz.Seed = seed
	cfg.Fuzz.MaxEvals = opts.EvalBudget
	cfg.Fuzz.Workers = opts.Workers
	return kondo.Debloat(ctx, p, cfg)
}

// avg returns the mean of the values.
func avg(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// stddev returns the sample standard deviation (0 for fewer than two
// values) — the error bars of the paper's Fig. 7.
func stddev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := avg(vals)
	var s float64
	for _, v := range vals {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)-1))
}

// fmtF formats a float with 3 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct formats a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// fmtDur formats a duration compactly, keeping microsecond resolution
// for sub-10ms values so fast audited runs don't render as "0s".
func fmtDur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// micro returns the four micro benchmarks at the configured size.
func micro(opts Options) []workload.Program { return workload.Micro(opts.Size2D) }

// allPrograms returns the 11-program suite at the configured sizes.
func allPrograms(opts Options) []workload.Program {
	return append(workload.Micro(opts.Size2D), workload.Synthetic(opts.Size2D, opts.Size3D)...)
}

// prOfApprox evaluates an approximation against a program's truth.
func prOfApprox(p workload.Program, approx *array.IndexSet) (metrics.PR, error) {
	gt, err := groundTruth(p)
	if err != nil {
		return metrics.PR{}, err
	}
	return metrics.Evaluate(gt, approx), nil
}

// carveCfgFor allows experiments to tweak the carve configuration.
func carveCfgFor(centerThresh float64) carve.Config {
	cfg := carve.DefaultConfig()
	cfg.CenterDistThresh = centerThresh
	return cfg
}

// fuzzCfg returns the default fuzz configuration under the harness
// budget with the given seed.
func fuzzCfg(opts Options, seed int64) fuzz.Config {
	cfg := fuzz.DefaultConfig()
	cfg.Seed = seed
	cfg.MaxEvals = opts.EvalBudget
	cfg.Workers = opts.Workers
	return cfg
}
