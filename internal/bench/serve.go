package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/array"
	"repro/internal/dataserve"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// serveOverheadFloor is the serving observability budget: the gated
// metric is max(measured, floor), so the regression gate fires exactly
// when request tracing + SLO accounting cost more than this fraction
// of the plain run, while sub-floor jitter compares floor-to-floor.
const serveOverheadFloor = 0.05

// Serve measures the recovery plane under heavy traffic: a kondo-serve
// origin driven closed-loop through the real caching client (Zipfian
// chunk popularity), reporting throughput, tail latency, cache hit
// rate and SLO attainment — and, the gated headline, the wall-clock
// overhead of the full serving observability path (client+server
// request tracing with wire-propagated trace contexts, plus a ticking
// SLO engine) measured in off/on pairs exactly like the orchestra
// telemetry gate. The stitched client+server trace must span 2 pids.
func Serve(ctx context.Context, opts Options) (*Report, error) {
	dir, err := os.MkdirTemp("", "kondo-bench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The origin: a chunked 2-D dataset big enough that the Zipf tail
	// keeps producing misses alongside the hot-chunk hits.
	size := opts.Size2D
	if size <= 0 {
		size = 128
	}
	space, err := array.NewSpace(size, size)
	if err != nil {
		return nil, err
	}
	chunk := []int{16, 16}
	originPath := filepath.Join(dir, "origin.sdf")
	w := sdf.NewWriter(originPath)
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		return nil, err
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 0.5
	}); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	// The Merkle spec the verifying client pins: built once from the
	// origin exactly the way `kondo debloat` embeds it in the manifest.
	spec, err := func() (sdf.MerkleSpec, error) {
		f, err := sdf.Open(originPath)
		if err != nil {
			return sdf.MerkleSpec{}, err
		}
		defer f.Close()
		ds, err := f.Dataset("data")
		if err != nil {
			return sdf.MerkleSpec{}, err
		}
		tree, err := sdf.BuildDatasetMerkle(ds, sdf.ServingChunk(ds))
		if err != nil {
			return sdf.MerkleSpec{}, err
		}
		return tree.SpecOf(ds), nil
	}()
	if err != nil {
		return nil, fmt.Errorf("serve: building origin merkle spec: %w", err)
	}

	reqs := 6000
	conc := 8
	if opts.Quick {
		reqs = 2500
	}

	// runOnce serves the origin on a fresh loopback listener and drives
	// one closed-loop run against it. With telemetry on it exercises
	// the whole serving observability path: client trace + wire
	// trace-context propagation, server child spans, and a ticking SLO
	// engine over the chunk endpoint; the stitched 2-pid trace and the
	// SLO report come back with the result.
	// A second paired gate measures Merkle verification the same way:
	// verify-off vs verify-on (telemetry off in both), so the ≤5% bound
	// covers exactly the proof-frame fetch + inclusion-proof check on
	// the miss path of the same hit-heavy Zipf workload.
	runOnce := func(telemetry, verify bool) (*load.Result, *obs.Trace, obs.SLOReport, error) {
		srv, err := dataserve.NewServer(originPath)
		if err != nil {
			return nil, nil, obs.SLOReport{}, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, obs.SLOReport{}, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()

		runCtx := ctx
		var tr, serverTr *obs.Trace
		var slo *obs.SLO
		if telemetry {
			tr = obs.NewTrace()
			tr.SetProcessName(obs.LocalPID, "kondo-load")
			runCtx = obs.WithTrace(ctx, tr)
			serverTr = obs.NewTrace()
			srv.EnableTracing(serverTr, "kondo-serve")
			slo = obs.NewSLO(30*time.Second, obs.SLOObjective{
				Name:         "chunk",
				Quantile:     0.99,
				LatencyBound: 50 * time.Millisecond,
				Target:       0.99,
				Source:       srv.Recorder().SLOSource("chunk"),
			})
			srv.SetSLO(slo)
			tickCtx, stopTick := context.WithCancel(ctx)
			defer stopTick()
			go slo.Run(tickCtx, 10*time.Millisecond)
		}
		// Prime first-touch costs outside the measured window on both
		// sides: one plain chunk read warms the origin's file pages, and
		// one proof read triggers the server's one-time lazy Merkle tree
		// build — startup cost (counted by kondo_serve_proof_trees_total),
		// not the per-request serving overhead this gate bounds.
		base := "http://" + ln.Addr().String()
		warm := base + "/chunk?dataset=data&chunk=0,0"
		if verify {
			warm += "&proof=1"
		}
		if resp, err := http.Get(warm); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cfg := load.Config{
			BaseURL:     base,
			Mode:        load.Closed,
			Popularity:  load.Zipf,
			Requests:    reqs,
			Concurrency: conc,
			Seed:        opts.Seed,
		}
		if verify {
			cfg.Verify = &spec
		}
		res, err := load.Run(runCtx, cfg)
		if err != nil {
			return nil, nil, obs.SLOReport{}, err
		}
		var sloRep obs.SLOReport
		if telemetry {
			tr.MergeWire(2, serverTr.ExportWire("kondo-serve", 0))
			sloRep = slo.Report(time.Now())
		}
		return res, tr, sloRep, nil
	}

	rep := &Report{
		Columns: []string{"run", "requests", "seconds", "rps", "p50 ms", "p99 ms", "hit %"},
	}
	addRow := func(name string, res *load.Result) {
		rep.Rows = append(rep.Rows, []string{
			name, fmt.Sprintf("%d", res.Requests), fmt.Sprintf("%.3f", res.Seconds),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.3f", res.P50*1e3), fmt.Sprintf("%.3f", res.P99*1e3),
			fmt.Sprintf("%.1f", 100*res.HitRate),
		})
	}

	// Overhead in off/on pairs (PR-8 orchestra style): adjacent in
	// time, heap leveled by a GC, first side alternating; the estimate
	// is the median per-pair ratio, so process-wide drift cancels
	// within a pair and one stalled run cannot swing it.
	const reps = 5
	var bestOff, lastOn, lastVerified *load.Result
	var lastTrace *obs.Trace
	var lastSLO obs.SLOReport
	measure := func(verify bool) (float64, error) {
		what := "telemetry"
		if verify {
			what = "verify"
		}
		var ratios []float64
		for i := 0; i < reps; i++ {
			var offSec, onSec float64
			order := []bool{false, true}
			if i%2 == 1 {
				order = []bool{true, false}
			}
			for _, on := range order {
				runtime.GC()
				res, tr, sloRep, err := runOnce(on && !verify, on && verify)
				if err != nil {
					return 0, fmt.Errorf("serve run (%s=%v): %w", what, on, err)
				}
				if res.Requests != int64(reqs) || res.Errors != 0 {
					return 0, fmt.Errorf("serve run (%s=%v): %d requests (%d errors), want exactly %d clean",
						what, on, res.Requests, res.Errors, reqs)
				}
				if on {
					onSec = res.Seconds
					if verify {
						if res.Fetch.VerifyFailed != 0 || res.Fetch.VerifyOK == 0 {
							return 0, fmt.Errorf("serve run (verify=on): %d proofs verified, %d failed; want >0 verified, 0 failed",
								res.Fetch.VerifyOK, res.Fetch.VerifyFailed)
						}
						lastVerified = res
					} else {
						lastOn, lastTrace, lastSLO = res, tr, sloRep
					}
				} else {
					offSec = res.Seconds
					if bestOff == nil || res.Seconds < bestOff.Seconds {
						bestOff = res
					}
				}
			}
			ratios = append(ratios, onSec/offSec)
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)/2] - 1, nil
	}
	// A loaded machine can poison a whole round of pairs; a real
	// regression also fails the (at most two) confirmation rounds.
	gated := func(verify bool) (float64, error) {
		overhead, err := measure(verify)
		if err != nil {
			return 0, err
		}
		for tries := 0; overhead > serveOverheadFloor && tries < 2; tries++ {
			confirm, cerr := measure(verify)
			if cerr != nil {
				return 0, cerr
			}
			if confirm < overhead {
				overhead = confirm
			}
		}
		return overhead, nil
	}
	overhead, err := gated(false)
	if err != nil {
		return nil, err
	}
	verifyOverhead, err := gated(true)
	if err != nil {
		return nil, err
	}
	addRow("plain", bestOff)
	addRow("traced+slo", lastOn)
	addRow("verified", lastVerified)

	pids := len(lastTrace.PIDs())
	sloObj := lastSLO.Objective("chunk")
	rep.Metrics = map[string]float64{
		"requests":              float64(bestOff.Requests),
		"errors":                float64(bestOff.Errors + lastOn.Errors),
		"trace_pids":            float64(pids),
		"throughput_rps":        bestOff.Throughput,
		"p50_ms":                bestOff.P50 * 1e3,
		"p95_ms":                bestOff.P95 * 1e3,
		"p99_ms":                bestOff.P99 * 1e3,
		"cache_hit_rate":        bestOff.HitRate,
		"slo_attainment":        sloObj.Attainment,
		"slo_budget_used":       sloObj.ErrorBudgetUsed,
		"serve_overhead":        overhead,
		"serve_overhead_gated":  math.Max(overhead, serveOverheadFloor),
		"verify_proofs":         float64(lastVerified.Fetch.VerifyOK),
		"verify_failed":         float64(lastVerified.Fetch.VerifyFailed),
		"verify_overhead":       verifyOverhead,
		"verify_overhead_gated": math.Max(verifyOverhead, serveOverheadFloor),
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("closed loop, %d requests x %d workers, zipf chunk popularity over a %dx%d origin (%dx%d chunks)",
			reqs, conc, size, size, chunk[0], chunk[1]),
		fmt.Sprintf("stitched client+server trace spans %d pids (gated: must stay 2)", pids),
		fmt.Sprintf("SLO attainment %.4f, error budget used %.3f (50ms bound, 0.99 target, chunk endpoint)",
			sloObj.Attainment, sloObj.ErrorBudgetUsed),
		fmt.Sprintf("request tracing + SLO accounting cost %.1f%% wall clock; the gate fires above %.0f%%",
			overhead*100, serveOverheadFloor*100),
		fmt.Sprintf("merkle verification (%d proofs checked, 0 failed) cost %.1f%% wall clock on the hit-heavy mix; same %.0f%% gate",
			lastVerified.Fetch.VerifyOK, verifyOverhead*100, serveOverheadFloor*100),
	)
	return rep, nil
}
