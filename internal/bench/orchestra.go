package bench

import (
	"context"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/orchestra"
)

// Orchestra measures the distributed campaign orchestrator over
// loopback TCP: evaluation throughput against the number of connected
// workers, the overhead of a worker dying mid-campaign (its lease
// re-issued), and — the headline — that every distributed run's result
// digest is bit-identical to the in-process baseline. The digest and
// count metrics are gated exactly; a drift means the distribution
// seam leaked into the campaign's decisions.
func Orchestra(ctx context.Context, opts Options) (*Report, error) {
	spec := orchestra.Spec{Program: "CS2", Dims: []int{opts.Size2D, opts.Size2D}}
	params, space, err := orchestra.ParamsForSpec(spec)
	if err != nil {
		return nil, err
	}
	eval, err := orchestra.EvaluatorForSpec(spec)
	if err != nil {
		return nil, err
	}
	mkCfg := func() fuzz.Config {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.MaxEvals = opts.EvalBudget
		return cfg
	}

	// In-process baseline: the digest every distributed run must match.
	f, err := fuzz.New(params, space, eval, mkCfg())
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	base, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	baseElapsed := time.Since(t0)
	baseDigest := orchestra.Digest(base)

	rep := &Report{
		Columns: []string{"setup", "workers", "evals", "seconds", "evals/s", "reissued", "digest=local"},
		Metrics: map[string]float64{
			"evaluations": float64(base.Evaluations),
			"indices":     float64(base.Indices.Len()),
		},
	}
	addRow := func(setup string, workers int, res *fuzz.Result, elapsed time.Duration, reissued int64, match bool) {
		eps := float64(res.Evaluations) / elapsed.Seconds()
		rep.Rows = append(rep.Rows, []string{
			setup, fmt.Sprintf("%d", workers), fmt.Sprintf("%d", res.Evaluations),
			fmt.Sprintf("%.3f", elapsed.Seconds()), fmt.Sprintf("%.0f", eps),
			fmt.Sprintf("%d", reissued), fmt.Sprintf("%v", match),
		})
	}
	addRow("local pool", base.Workers, base, baseElapsed, 0, true)

	counts := []int{1, 2, 4}
	if opts.Quick {
		counts = []int{1, 2}
	}
	digestRuns, digestMatches := 0, 0
	var reissuedTotal, lateTotal int64

	// distributed runs one campaign through a loopback coordinator with
	// the given workers (one optionally crashing after two leases) and
	// returns the result plus the run's lease-churn counters. With
	// telemetry on, the coordinator binds a fleet trace (so every lease
	// requests a worker sub-trace) and each worker carries its own
	// registry and trace — the full observability path of
	// `kondo-coord -trace-out` plus `kondo-worker -status-addr`.
	distributed := func(cfg fuzz.Config, workers, span int, withCrash, telemetry bool) (*fuzz.Result, time.Duration, int64, int64, error) {
		reg := obs.NewRegistry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, 0, 0, 0, err
		}
		coord := orchestra.NewCoordinator(orchestra.Config{
			SpanSeeds:  span,
			WorkerWait: time.Minute,
			Registry:   reg,
		})
		runCtx, cancel := context.WithCancel(ctx)
		serveCtx := runCtx
		if telemetry {
			serveCtx = obs.WithTrace(runCtx, obs.NewTrace())
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = coord.Serve(serveCtx, ln)
		}()
		startWorker := func(maxLeases int) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := &orchestra.Worker{Addr: ln.Addr().String(), MaxLeases: maxLeases}
				wctx := runCtx
				if telemetry {
					w.Registry = obs.NewRegistry()
					wctx = obs.WithTrace(runCtx, obs.NewTrace())
				}
				_ = w.Run(wctx)
			}()
		}
		for i := 0; i < workers; i++ {
			startWorker(0)
		}
		if withCrash {
			startWorker(2)
		}
		t0 := time.Now()
		res, err := coord.RunCampaign(runCtx, orchestra.Campaign{ID: "bench", Spec: spec, Fuzz: cfg})
		elapsed := time.Since(t0)
		cancel()
		wg.Wait()
		reissued := reg.Counter("kondo_orchestra_leases_reissued_total").Value()
		late := reg.Counter("kondo_orchestra_late_results_total").Value()
		return res, elapsed, reissued, late, err
	}

	for _, n := range counts {
		res, elapsed, reissued, late, err := distributed(mkCfg(), n, 4, false, false)
		if err != nil {
			return nil, fmt.Errorf("orchestra %d-worker run: %w", n, err)
		}
		match := orchestra.Digest(res) == baseDigest
		digestRuns++
		if match {
			digestMatches++
		}
		reissuedTotal += reissued
		lateTotal += late
		addRow("distributed", n, res, elapsed, reissued, match)
		rep.Metrics[fmt.Sprintf("evals_per_sec_%d", n)] = float64(res.Evaluations) / elapsed.Seconds()
	}

	// Worker-death run: two healthy workers plus one that crashes while
	// holding its third lease, forcing exactly one re-issue.
	res, elapsed, reissued, late, err := distributed(mkCfg(), 2, 4, true, false)
	if err != nil {
		return nil, fmt.Errorf("orchestra worker-death run: %w", err)
	}
	match := orchestra.Digest(res) == baseDigest
	digestRuns++
	if match {
		digestMatches++
	}
	reissuedTotal += reissued
	lateTotal += late
	addRow("worker death", 3, res, elapsed, reissued, match)
	rep.Metrics["reissue_evals_per_sec"] = float64(res.Evaluations) / elapsed.Seconds()

	// Fleet telemetry overhead: the same campaign with the full
	// observability path active (coordinator fleet trace, per-lease
	// worker sub-traces piggybacked on results, metrics federation and
	// clock sampling) against the plain run. The comparison is shaped
	// for a stable ratio rather than churn: a single worker (a
	// deterministic lease sequence — no assignment races to randomize
	// the wall clock), leases big enough that evaluation dominates
	// framing (the span-4 runs above deliberately maximize churn
	// instead), and a longer budget so each timed run is far above
	// scheduler jitter. Runs are timed in off/on pairs — adjacent in
	// time, heap leveled by a GC, first side alternating — and the
	// overhead is the median of the per-pair ratios, so slow drift in
	// the process cancels within a pair and a single stalled run cannot
	// swing the estimate. Telemetry-on digests are checked against the
	// telemetry-off run of the same budget; the gate is on a floored
	// copy of the ratio so sub-5% jitter never trips it.
	// Lease size is capped by the schedule's batch size, so the
	// telemetry config raises both: span and batch of 256 seeds make
	// each lease ~milliseconds of evaluation against ~10µs of fixed
	// telemetry, as in a real campaign (span-4 leases of the default
	// 32-seed batch would measure framing, not telemetry).
	const telemetrySpan = 256
	telCfg := mkCfg()
	telCfg.MaxEvals = 16 * opts.EvalBudget
	telCfg.BatchSize = telemetrySpan
	const reps = 5
	telemetryRuns, telemetryMatches := 0, 0
	telDigest := ""
	var onBest time.Duration
	var telEvals int
	// measure times reps off/on pairs and returns the median per-pair
	// ratio minus one. Digest bookkeeping accumulates across calls.
	measure := func() (float64, error) {
		var ratios []float64
		for i := 0; i < reps; i++ {
			var offElapsed, onElapsed time.Duration
			order := []bool{false, true}
			if i%2 == 1 {
				order = []bool{true, false}
			}
			for _, telemetry := range order {
				runtime.GC()
				res, elapsed, _, _, err := distributed(telCfg, 1, telemetrySpan, false, telemetry)
				if err != nil {
					return 0, fmt.Errorf("orchestra telemetry run (on=%v): %w", telemetry, err)
				}
				telEvals = res.Evaluations
				// The first run (a telemetry-off one: rep 0 runs off
				// first) fixes the reference digest; every telemetry-on
				// run must reproduce it bit for bit.
				d := orchestra.Digest(res)
				if telDigest == "" {
					telDigest = d
				}
				if telemetry {
					telemetryRuns++
					if d == telDigest {
						telemetryMatches++
					}
					onElapsed = elapsed
					if onBest == 0 || elapsed < onBest {
						onBest = elapsed
					}
				} else {
					offElapsed = elapsed
				}
			}
			ratios = append(ratios, onElapsed.Seconds()/offElapsed.Seconds())
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)/2] - 1, nil
	}
	overhead, err := measure()
	if err != nil {
		return nil, err
	}
	// A loaded machine can poison a whole round of pairs; a real
	// regression also fails the (at most two) confirmation rounds.
	for tries := 0; overhead > telemetryOverheadFloor && tries < 2; tries++ {
		confirm, cerr := measure()
		if cerr != nil {
			return nil, cerr
		}
		if confirm < overhead {
			overhead = confirm
		}
	}
	rep.Rows = append(rep.Rows, []string{
		"telemetry on", "1", fmt.Sprintf("%d", telEvals),
		fmt.Sprintf("%.3f", onBest.Seconds()),
		fmt.Sprintf("%.0f", float64(telEvals)/onBest.Seconds()),
		"0", fmt.Sprintf("%v", telemetryMatches == telemetryRuns),
	})

	rep.Metrics["digest_runs"] = float64(digestRuns)
	rep.Metrics["digest_matches"] = float64(digestMatches)
	rep.Metrics["reissued_leases"] = float64(reissuedTotal)
	rep.Metrics["late_results"] = float64(lateTotal)
	rep.Metrics["telemetry_digest_runs"] = float64(telemetryRuns)
	rep.Metrics["telemetry_digest_matches"] = float64(telemetryMatches)
	rep.Metrics["telemetry_overhead"] = overhead
	rep.Metrics["telemetry_overhead_gated"] = math.Max(overhead, telemetryOverheadFloor)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("every distributed digest must equal the local baseline (%d/%d matched)", digestMatches, digestRuns),
		"the worker-death run crashes one worker mid-lease; the coordinator re-issues its lease and the digest is unaffected",
		fmt.Sprintf("fleet telemetry (stitched traces, federated metrics, clock samples) costs %.1f%% wall clock; the gate fires above %.0f%%",
			overhead*100, telemetryOverheadFloor*100),
	)
	return rep, nil
}

// telemetryOverheadFloor is the telemetry wall-clock budget: the gated
// metric is max(measured, floor), so the regression gate fires exactly
// when the observability path costs more than this fraction of the
// plain run, while sub-floor jitter compares floor-to-floor.
const telemetryOverheadFloor = 0.05
