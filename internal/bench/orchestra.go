package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/orchestra"
)

// Orchestra measures the distributed campaign orchestrator over
// loopback TCP: evaluation throughput against the number of connected
// workers, the overhead of a worker dying mid-campaign (its lease
// re-issued), and — the headline — that every distributed run's result
// digest is bit-identical to the in-process baseline. The digest and
// count metrics are gated exactly; a drift means the distribution
// seam leaked into the campaign's decisions.
func Orchestra(ctx context.Context, opts Options) (*Report, error) {
	spec := orchestra.Spec{Program: "CS2", Dims: []int{opts.Size2D, opts.Size2D}}
	params, space, err := orchestra.ParamsForSpec(spec)
	if err != nil {
		return nil, err
	}
	eval, err := orchestra.EvaluatorForSpec(spec)
	if err != nil {
		return nil, err
	}
	mkCfg := func() fuzz.Config {
		cfg := fuzz.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.MaxEvals = opts.EvalBudget
		return cfg
	}

	// In-process baseline: the digest every distributed run must match.
	f, err := fuzz.New(params, space, eval, mkCfg())
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	base, err := f.Run(ctx)
	if err != nil {
		return nil, err
	}
	baseElapsed := time.Since(t0)
	baseDigest := orchestra.Digest(base)

	rep := &Report{
		Columns: []string{"setup", "workers", "evals", "seconds", "evals/s", "reissued", "digest=local"},
		Metrics: map[string]float64{
			"evaluations": float64(base.Evaluations),
			"indices":     float64(base.Indices.Len()),
		},
	}
	addRow := func(setup string, workers int, res *fuzz.Result, elapsed time.Duration, reissued int64, match bool) {
		eps := float64(res.Evaluations) / elapsed.Seconds()
		rep.Rows = append(rep.Rows, []string{
			setup, fmt.Sprintf("%d", workers), fmt.Sprintf("%d", res.Evaluations),
			fmt.Sprintf("%.3f", elapsed.Seconds()), fmt.Sprintf("%.0f", eps),
			fmt.Sprintf("%d", reissued), fmt.Sprintf("%v", match),
		})
	}
	addRow("local pool", base.Workers, base, baseElapsed, 0, true)

	counts := []int{1, 2, 4}
	if opts.Quick {
		counts = []int{1, 2}
	}
	digestRuns, digestMatches := 0, 0
	var reissuedTotal, lateTotal int64

	// distributed runs one campaign through a loopback coordinator with
	// the given workers (one optionally crashing after two leases) and
	// returns the result plus the run's lease-churn counters.
	distributed := func(workers int, withCrash bool) (*fuzz.Result, time.Duration, int64, int64, error) {
		reg := obs.NewRegistry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, 0, 0, 0, err
		}
		coord := orchestra.NewCoordinator(orchestra.Config{
			SpanSeeds:  4,
			WorkerWait: time.Minute,
			Registry:   reg,
		})
		runCtx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = coord.Serve(runCtx, ln)
		}()
		startWorker := func(maxLeases int) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := &orchestra.Worker{Addr: ln.Addr().String(), MaxLeases: maxLeases}
				_ = w.Run(runCtx)
			}()
		}
		for i := 0; i < workers; i++ {
			startWorker(0)
		}
		if withCrash {
			startWorker(2)
		}
		t0 := time.Now()
		res, err := coord.RunCampaign(runCtx, orchestra.Campaign{ID: "bench", Spec: spec, Fuzz: mkCfg()})
		elapsed := time.Since(t0)
		cancel()
		wg.Wait()
		reissued := reg.Counter("kondo_orchestra_leases_reissued_total").Value()
		late := reg.Counter("kondo_orchestra_late_results_total").Value()
		return res, elapsed, reissued, late, err
	}

	for _, n := range counts {
		res, elapsed, reissued, late, err := distributed(n, false)
		if err != nil {
			return nil, fmt.Errorf("orchestra %d-worker run: %w", n, err)
		}
		match := orchestra.Digest(res) == baseDigest
		digestRuns++
		if match {
			digestMatches++
		}
		reissuedTotal += reissued
		lateTotal += late
		addRow("distributed", n, res, elapsed, reissued, match)
		rep.Metrics[fmt.Sprintf("evals_per_sec_%d", n)] = float64(res.Evaluations) / elapsed.Seconds()
	}

	// Worker-death run: two healthy workers plus one that crashes while
	// holding its third lease, forcing exactly one re-issue.
	res, elapsed, reissued, late, err := distributed(2, true)
	if err != nil {
		return nil, fmt.Errorf("orchestra worker-death run: %w", err)
	}
	match := orchestra.Digest(res) == baseDigest
	digestRuns++
	if match {
		digestMatches++
	}
	reissuedTotal += reissued
	lateTotal += late
	addRow("worker death", 3, res, elapsed, reissued, match)
	rep.Metrics["reissue_evals_per_sec"] = float64(res.Evaluations) / elapsed.Seconds()

	rep.Metrics["digest_runs"] = float64(digestRuns)
	rep.Metrics["digest_matches"] = float64(digestMatches)
	rep.Metrics["reissued_leases"] = float64(reissuedTotal)
	rep.Metrics["late_results"] = float64(lateTotal)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("every distributed digest must equal the local baseline (%d/%d matched)", digestMatches, digestRuns),
		"the worker-death run crashes one worker mid-lease; the coordinator re-issues its lease and the digest is unaffected",
	)
	return rep, nil
}
