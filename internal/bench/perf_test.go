package bench

import (
	"context"
	"encoding/json"
	"testing"
)

// TestPerfMetricsContract pins the machine-readable surface of the
// perf experiment: every metric the trajectory tracks is present,
// sane, and survives the JSON rendering kondo-bench writes.
func TestPerfMetricsContract(t *testing.T) {
	rep, err := Run(context.Background(), "perf", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"evals_per_sec", "hulls", "waste_ratio", "bytes_kept", "recovery_round_trips",
		"evaluations", "kept_indices", "original_bytes", "reduction", "saturation",
	} {
		v, ok := rep.Metrics[key]
		if !ok {
			t.Errorf("metric %q missing", key)
			continue
		}
		if v < 0 {
			t.Errorf("metric %q negative: %v", key, v)
		}
	}
	if rep.Metrics["hulls"] < 1 {
		t.Errorf("no hulls carved: %v", rep.Metrics["hulls"])
	}
	if rep.Metrics["waste_ratio"] < 1 {
		t.Errorf("waste ratio %v < 1: hulls cannot keep fewer indices than observed", rep.Metrics["waste_ratio"])
	}
	if rep.Metrics["bytes_kept"] <= 0 || rep.Metrics["bytes_kept"] > rep.Metrics["original_bytes"] {
		t.Errorf("bytes kept %v outside (0, %v]", rep.Metrics["bytes_kept"], rep.Metrics["original_bytes"])
	}
	if rep.Metrics["recovery_round_trips"] <= 0 {
		t.Errorf("recovery exercised no round-trips: %v", rep.Metrics["recovery_round_trips"])
	}

	doc, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string             `json:"id"`
		Columns []string           `json:"columns"`
		Rows    [][]string         `json:"rows"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(doc, &got); err != nil {
		t.Fatalf("Report.JSON not valid JSON: %v", err)
	}
	if got.ID != "perf" || len(got.Rows) == 0 {
		t.Fatalf("JSON document incomplete: id=%q rows=%d", got.ID, len(got.Rows))
	}
	if got.Metrics["hulls"] != rep.Metrics["hulls"] {
		t.Errorf("metrics map did not round-trip: %v != %v", got.Metrics["hulls"], rep.Metrics["hulls"])
	}
}
