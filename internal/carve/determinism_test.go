package carve

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/hull"
)

// sameHulls asserts the two hull sets are bit-identical: same count,
// same order, same vertices.
func sameHulls(t *testing.T, label string, got, want []*hull.Hull) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d hulls, reference has %d", label, len(got), len(want))
		return
	}
	for i := range got {
		gv, wv := got[i].Vertices(), want[i].Vertices()
		if len(gv) != len(wv) {
			t.Errorf("%s: hull %d has %d vertices, reference has %d", label, i, len(gv), len(wv))
			continue
		}
		for j := range gv {
			for k := range gv[j] {
				if gv[j][k] != wv[j][k] {
					t.Errorf("%s: hull %d vertex %d differs: %v vs %v", label, i, j, gv[j], wv[j])
					break
				}
			}
		}
	}
}

// randomCloud scatters n points over the space: half uniform, half in
// small clusters, so the carve sees both long merge chains and
// isolated hulls.
func randomCloud(t *testing.T, rng *rand.Rand, space array.Space, n int) *array.IndexSet {
	t.Helper()
	set := array.NewIndexSet(space)
	dims := space.Dims()
	addClamped := func(ix array.Index) {
		for k := range ix {
			if ix[k] < 0 {
				ix[k] = 0
			}
			if ix[k] >= dims[k] {
				ix[k] = dims[k] - 1
			}
		}
		if _, err := set.Add(ix); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		ix := make(array.Index, len(dims))
		for k := range ix {
			ix[k] = rng.Intn(dims[k])
		}
		addClamped(ix)
	}
	clusters := 4 + rng.Intn(6)
	for c := 0; c < clusters; c++ {
		center := make(array.Index, len(dims))
		for k := range center {
			center[k] = rng.Intn(dims[k])
		}
		for i := 0; i < n/(2*clusters)+1; i++ {
			ix := make(array.Index, len(dims))
			for k := range ix {
				ix[k] = center[k] + rng.Intn(13) - 6
			}
			addClamped(ix)
		}
	}
	return set
}

// TestEnginePinsNaiveReference is the determinism property test: over
// random point clouds, both CloseModes, and worker counts {1, 4, 8},
// the candidate-pair engine must produce the identical hull set —
// count, order, and vertices — as the retained naive reference.
func TestEnginePinsNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 10
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		var space array.Space
		var n int
		if trial%3 == 2 {
			space = array.MustSpace(48, 48, 48)
			n = 150 + rng.Intn(150)
		} else {
			space = array.MustSpace(256, 256)
			n = 200 + rng.Intn(300)
		}
		set := randomCloud(t, rng, space, n)
		for _, mode := range []CloseMode{CloseEither, CloseBoth} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			// Jitter the thresholds so the candidate radius varies
			// relative to the cell size.
			cfg.CenterDistThresh = 8 + float64(rng.Intn(25))
			cfg.BoundaryDistThresh = 4 + float64(rng.Intn(15))
			naive, err := CarveNaive(set, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4, 8} {
				cfg.Workers = w
				hulls, _, err := CarveStats(context.Background(), set, cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("trial %d mode %d workers %d (%d points)", trial, mode, w, set.Len())
				sameHulls(t, label, hulls, naive)
			}
		}
	}
}

// blobField builds a synthetic 2-D point set with many well-separated
// multi-cell blobs: stride spaces the blobs beyond the merge
// thresholds, and each blob covers a few adjacent cells so the engine
// still performs merges.
func blobField(t testing.TB, space array.Space, cellSize, stride int) *array.IndexSet {
	t.Helper()
	set := array.NewIndexSet(space)
	dims := space.Dims()
	for r := cellSize; r+2*cellSize < dims[0]; r += stride {
		for c := cellSize; c+2*cellSize < dims[1]; c += stride {
			// A 2x2-cell L-shaped blob: three occupied cells.
			for _, off := range [][2]int{{0, 0}, {cellSize, 0}, {0, cellSize}} {
				for dr := 0; dr < 3; dr++ {
					for dc := 0; dc < 3; dc++ {
						if _, err := set.Add(array.NewIndex(r+off[0]+dr*5, c+off[1]+dc*5)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
	return set
}

// TestCarveOutputSensitive is the acceptance check for the engine: on
// a synthetic 2-D point set producing well over 500 initial cell
// hulls, the engine must perform at least 10x fewer CLOSE pair tests
// than the naive pass-count × n² bound, while producing the identical
// hull set as the reference.
func TestCarveOutputSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("naive reference on a 500-hull field is slow under -race")
	}
	space := array.MustSpace(1600, 1600)
	cfg := DefaultConfig()
	set := blobField(t, space, cfg.CellSize, 96)
	hulls, st, err := CarveStats(context.Background(), set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.InitialHulls < 500 {
		t.Fatalf("field produced only %d initial hulls, want >= 500", st.InitialHulls)
	}
	if st.Merges == 0 {
		t.Fatal("field produced no merges; the bound below would be trivial")
	}
	n := int64(st.InitialHulls)
	naiveBound := int64(st.MergePasses) * n * n
	if st.PairTests*10 > naiveBound {
		t.Errorf("engine ran %d pair tests; want >= 10x fewer than the naive bound %d (passes %d x %d^2)",
			st.PairTests, naiveBound, st.MergePasses, n)
	}
	naive, err := CarveNaive(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameHulls(t, "blob field", hulls, naive)
	t.Logf("hulls %d->%d, merges %d in %d passes, pair tests %d (naive bound %d, %.0fx fewer), prune hits %d",
		st.InitialHulls, st.FinalHulls, st.Merges, st.MergePasses,
		st.PairTests, naiveBound, float64(naiveBound)/float64(st.PairTests), st.PruneHits)
}

// TestCarveStatsCounters pins the engine's work accounting on a small
// deterministic field: pair tests at least cover the initial candidate
// generation, passes count dependent-merge depth (not one pass per
// merge), and the canceled-context path surfaces the context error.
func TestCarveStatsCounters(t *testing.T) {
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	// Two far-apart strips of two adjacent cells each: two independent
	// merges that a true fixpoint performs in ONE pass (the old
	// accounting would report 3 passes, one per merge plus the empty
	// one).
	for _, r0 := range []int{0, 40} {
		for c := 0; c < 30; c++ {
			for r := r0; r < r0+4; r++ {
				if _, err := set.Add(array.NewIndex(r, c)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	_, st, err := CarveStats(context.Background(), set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalHulls != 2 {
		t.Fatalf("strips carved into %d hulls, want 2", st.FinalHulls)
	}
	if st.Merges != 2 {
		t.Errorf("merges = %d, want 2", st.Merges)
	}
	if st.MergePasses != 2 {
		t.Errorf("merge passes = %d, want 2 (both merges are independent: one merging pass + the empty one)",
			st.MergePasses)
	}
	if st.PairTests <= 0 {
		t.Error("no pair tests counted")
	}
}

// TestBBoxPrunePreservesClose pins the bbox lower bound: it must skip
// the O(V²) boundary scan exactly when it cannot change the verdict,
// and closeTest must agree with Config.close everywhere.
func TestBBoxPrunePreservesClose(t *testing.T) {
	mk := func(pts ...[2]float64) *hull.Hull {
		gp := make([]geom.Point, len(pts))
		for i, p := range pts {
			gp[i] = geom.NewPoint(p[0], p[1])
		}
		h, err := hull.New(gp)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Two elongated strips: x-ranges overlap so the bbox gap is the
	// 12-unit vertical offset — above the boundary threshold (10),
	// below the center threshold (20) — while the centroids are ~41
	// apart. The only decisive test is the boundary scan, and the bbox
	// bound resolves it without running it.
	a := mk([2]float64{0, 0}, [2]float64{60, 0})
	b := mk([2]float64{40, 12}, [2]float64{100, 12})
	cfg := DefaultConfig()
	e := newMergeEngine(cfg)
	if e.closeTest(a, b) {
		t.Error("strips should not be CLOSE")
	}
	if e.st.pruneHits != 1 {
		t.Errorf("prune hits = %d, want 1 (bbox bound should have skipped the boundary scan)", e.st.pruneHits)
	}
	if e.st.pairTests != 1 {
		t.Errorf("pair tests = %d, want 1", e.st.pairTests)
	}
	if cfg.close(a, b) {
		t.Error("Config.close disagrees with closeTest on the strips")
	}

	// Property: closeTest ≡ Config.close over random hull pairs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var ph, qh []geom.Point
		for i := 0; i < 3+rng.Intn(5); i++ {
			ph = append(ph, geom.NewPoint(float64(rng.Intn(80)), float64(rng.Intn(80))))
		}
		off := float64(rng.Intn(40))
		for i := 0; i < 3+rng.Intn(5); i++ {
			qh = append(qh, geom.NewPoint(off+float64(rng.Intn(80)), off+float64(rng.Intn(80))))
		}
		hp, err := hull.New(ph)
		if err != nil {
			t.Fatal(err)
		}
		hq, err := hull.New(qh)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []CloseMode{CloseEither, CloseBoth} {
			c := Config{CellSize: 16, CenterDistThresh: float64(rng.Intn(30)), BoundaryDistThresh: float64(rng.Intn(20)), Mode: mode}
			e := newMergeEngine(c)
			if got, want := e.closeTest(hp, hq), c.close(hp, hq); got != want {
				t.Fatalf("trial %d mode %d: closeTest = %v, Config.close = %v", trial, mode, got, want)
			}
		}
	}
}
