package carve

import (
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

// fill adds a dense rectangle of indices to the set.
func fill(t *testing.T, set *array.IndexSet, r0, c0, r1, c1 int) {
	t.Helper()
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			if _, err := set.Add(array.NewIndex(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCarveEmpty(t *testing.T) {
	set := array.NewIndexSet(array.MustSpace(32, 32))
	hulls, err := Carve(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hulls != nil {
		t.Errorf("empty carve returned %d hulls", len(hulls))
	}
}

func TestCarveConfigValidation(t *testing.T) {
	set := array.NewIndexSet(array.MustSpace(8, 8))
	set.AddLinear(0)
	if _, err := Carve(set, Config{CellSize: 0}); err == nil {
		t.Error("zero cell size should error")
	}
	if _, err := Carve(set, Config{CellSize: 4, CenterDistThresh: -1}); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestCarveSingleDenseRegion(t *testing.T) {
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 30, 30)
	hulls, err := Carve(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 1 {
		t.Fatalf("dense region carved into %d hulls, want 1", len(hulls))
	}
	raster, err := Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	// The merged hull must cover exactly the filled square.
	if raster.Len() != 31*31 {
		t.Errorf("rasterized %d indices, want %d", raster.Len(), 31*31)
	}
}

func TestCarveKeepsDistantRegionsSeparate(t *testing.T) {
	// Two 8x8 blocks at opposite corners of 128x128, far beyond both
	// thresholds — the LDC/RDC situation where precision stays 1.
	space := array.MustSpace(128, 128)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 7, 7)
	fill(t, set, 120, 120, 127, 127)
	hulls, err := Carve(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 2 {
		t.Fatalf("distant regions carved into %d hulls, want 2", len(hulls))
	}
	raster, err := Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	if raster.Len() != 128 {
		t.Errorf("rasterized %d indices, want 128", raster.Len())
	}
	if raster.Contains(array.NewIndex(64, 64)) {
		t.Error("midpoint between regions should not be covered")
	}
}

func TestCarveMergesNearbyRegions(t *testing.T) {
	// Two blocks 4 apart (boundary distance < 10): they must merge,
	// covering the sandwiched gap.
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 7, 7)
	fill(t, set, 0, 12, 7, 19)
	hulls, err := Carve(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 1 {
		t.Fatalf("nearby regions carved into %d hulls, want 1", len(hulls))
	}
	raster, err := Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Contains(array.NewIndex(4, 10)) {
		t.Error("gap between merged regions should be covered")
	}
}

func TestCarve3D(t *testing.T) {
	space := array.MustSpace(32, 32, 32)
	set := array.NewIndexSet(space)
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			for z := 0; z < 6; z++ {
				set.Add(array.NewIndex(x, y, z))
			}
		}
	}
	hulls, err := Carve(set, Config{CellSize: 8, CenterDistThresh: 20, BoundaryDistThresh: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 1 {
		t.Fatalf("3D block carved into %d hulls", len(hulls))
	}
	raster, err := Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	if raster.Len() != 6*6*6 {
		t.Errorf("rasterized %d indices, want %d", raster.Len(), 6*6*6)
	}
}

func TestSimpleConvexCoversHole(t *testing.T) {
	// SC hulls everything at once: a two-cluster point set gets one
	// hull covering the space between — the precision failure Fig. 8
	// attributes to SC.
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 5, 5)
	fill(t, set, 58, 58, 63, 63)
	h, err := SimpleConvex(set)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(geom.NewPoint(30, 30)) {
		t.Error("SC hull should cover the midpoint")
	}
}

func TestEmptyInputContract(t *testing.T) {
	// Carve and SimpleConvex agree on empty input: carving nothing
	// yields nothing — nil result, nil error (documented contract).
	space := array.MustSpace(64, 64)
	empty := array.NewIndexSet(space)
	hulls, err := Carve(empty, DefaultConfig())
	if err != nil || hulls != nil {
		t.Errorf("Carve(empty) = %v, %v; want nil, nil", hulls, err)
	}
	h, err := SimpleConvex(empty)
	if err != nil || h != nil {
		t.Errorf("SimpleConvex(empty) = %v, %v; want nil, nil", h, err)
	}
	naive, err := CarveNaive(empty, DefaultConfig())
	if err != nil || naive != nil {
		t.Errorf("CarveNaive(empty) = %v, %v; want nil, nil", naive, err)
	}
}

func TestCarveRecallInvariant(t *testing.T) {
	// Every observed point must be covered by the carved hulls
	// (rasterization of ℍ ⊇ IS): carving may over-approximate but
	// never drops observed indices.
	space := array.MustSpace(48, 48)
	set := array.NewIndexSet(space)
	// An irregular scatter.
	for i := 0; i < 200; i++ {
		set.AddLinear(int64((i * 37) % (48 * 48)))
	}
	hulls, err := Carve(set, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := Rasterize(hulls, space)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	set.Each(func(ix array.Index) bool {
		if !raster.Contains(ix) {
			missing++
			t.Errorf("observed index %v not covered by carved hulls", ix)
		}
		return missing < 5
	})
}

func TestCloseModeAblation(t *testing.T) {
	// Two blocks whose hull centroids are ~22 apart but whose nearest
	// vertices touch within the boundary threshold: disjunction
	// merges them, conjunction does not.
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 15, 15)
	fill(t, set, 0, 22, 15, 37)

	either := DefaultConfig()
	hulls, err := Carve(set, either)
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 1 {
		t.Errorf("CloseEither carved %d hulls, want 1 (merge via boundary distance)", len(hulls))
	}

	both := DefaultConfig()
	both.Mode = CloseBoth
	// Block 2's two cell hulls (centers 8 apart) still merge, but the
	// two blocks (centers ~22 apart) no longer do.
	both.CenterDistThresh = 10
	hulls, err = Carve(set, both)
	if err != nil {
		t.Fatal(err)
	}
	if len(hulls) != 2 {
		t.Errorf("CloseBoth carved %d hulls, want 2", len(hulls))
	}
}

func TestSplitDeterministic(t *testing.T) {
	space := array.MustSpace(64, 64)
	set := array.NewIndexSet(space)
	fill(t, set, 0, 0, 40, 40)
	a := split(set, 16)
	b := split(set, 16)
	if len(a) != len(b) {
		t.Fatalf("split sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("cell %d sizes differ", i)
		}
	}
	// 41x41 points over 16-cells: cells 0..2 per axis = 9 cells.
	if len(a) != 9 {
		t.Errorf("split produced %d cells, want 9", len(a))
	}
}
