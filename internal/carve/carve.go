// Package carve implements Kondo's bottom-up convex-hull carving
// algorithm (paper §IV-B, Alg. 2). Given the index points observed
// during fuzzing, it SPLITs the offset space into fixed-size cells,
// computes a convex hull per occupied cell, and repeatedly merges
// hulls that are CLOSE — by boundary distance while hulls are small,
// and by center distance once a hull has grown (the output-sensitive
// merge the paper contrasts with classical divide-and-conquer hull
// merging). The resulting hull set ℍ, rasterized, is the approximated
// index subset I'_Θ.
//
// The merge fixpoint runs on a candidate-pair engine (engine.go): a
// spatial grid proposes neighbor pairs, a bbox-distance lower bound
// prunes hopeless boundary scans, and a merge re-tests only pairs
// involving the merged hull — so the work scales with the observed
// hull neighborhoods, not with passes × n². The engine's output is
// bit-identical to the retained naive reference (naive.go).
//
// Empty input is not an error anywhere in this package: carving
// nothing yields nothing (nil hulls, nil error) from both Carve and
// SimpleConvex.
package carve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/hull"
	"repro/internal/obs"
)

// CloseMode selects how the two distance tests compose in the CLOSE
// predicate. The paper's prose supports disjunction (boundary distance
// drives early merges of small hulls; center distance lets a grown
// hull keep absorbing near ones, §IV-B); conjunction is provided as an
// ablation.
type CloseMode uint8

const (
	// CloseEither merges when either distance test passes (default,
	// the output-sensitive behaviour described in the paper).
	CloseEither CloseMode = iota
	// CloseBoth merges only when both tests pass.
	CloseBoth
)

// Config controls the carving algorithm. The distance thresholds are
// the paper's center_d_thresh and bound_d_thresh (Fig. 5), with §V-B
// defaults 20 and 10.
type Config struct {
	// CellSize is the edge length of the SPLIT grid cells in index
	// units.
	CellSize int
	// CenterDistThresh merges two hulls whose centroids are within
	// this distance.
	CenterDistThresh float64
	// BoundaryDistThresh merges two hulls whose nearest vertices are
	// within this distance.
	BoundaryDistThresh float64
	// Mode composes the two distance tests (see CloseMode).
	Mode CloseMode
	// Workers bounds the worker pool used for per-cell hull
	// construction and hull rasterization (0 or negative: one per
	// available CPU). The carve result is bit-identical at any worker
	// count; only wall-clock changes.
	Workers int
}

// DefaultConfig returns the paper's §V-B carving configuration.
func DefaultConfig() Config {
	return Config{
		CellSize:           16,
		CenterDistThresh:   20,
		BoundaryDistThresh: 10,
	}
}

func (c Config) validate() error {
	if c.CellSize <= 0 {
		return fmt.Errorf("carve: cell size %d must be positive", c.CellSize)
	}
	if c.CenterDistThresh < 0 || c.BoundaryDistThresh < 0 {
		return fmt.Errorf("carve: negative distance threshold")
	}
	return nil
}

// workers resolves the configured pool size against the machine.
func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// close is the paper's CLOSE predicate. Boundary distance drives the
// early merging of small neighbouring cell hulls; center distance
// lets a grown hull keep absorbing nearby small hulls whose vertices
// have drifted apart (§IV-B's discussion of output sensitivity). The
// O(V²) boundary-vertex scan only runs when the O(d) bbox gap — a
// lower bound on the boundary distance — could still pass the
// threshold.
func (c Config) close(a, b *hull.Hull) bool {
	center := a.CenterDist(b) <= c.CenterDistThresh
	if c.Mode == CloseBoth {
		if !center {
			return false
		}
	} else if center {
		return true
	}
	if a.BBoxGap(b) > c.BoundaryDistThresh {
		return false
	}
	return a.BoundaryDist(b) <= c.BoundaryDistThresh
}

// Stats are the hull-quality measurements of one carve invocation.
// The waste ratio (hull volume vs. observed indices) needs the
// rasterized set and is computed one level up, in internal/kondo.
type Stats struct {
	// Points is |IS|, the observed-index count carving started from.
	Points int
	// Cells is the number of occupied SPLIT grid cells.
	Cells int
	// InitialHulls is the per-cell hull count before merging
	// (= Cells today, but kept separate in case empty-hull cells are
	// ever dropped).
	InitialHulls int
	// FinalHulls is |ℍ| after the CLOSE-merge fixpoint.
	FinalHulls int
	// MergePasses is the number of true fixpoint passes: the longest
	// chain of dependent merges (a merge enabled by the hull produced
	// by the previous one) plus the final pass that found nothing to
	// merge. A pass may contain many independent merges.
	MergePasses int
	// Merges is the total number of pairwise hull merges performed.
	Merges int
	// PairTests is the number of CLOSE pair evaluations the engine
	// performed. The naive fixpoint would evaluate on the order of
	// MergePasses × InitialHulls² pairs; the candidate-pair engine
	// tests only grid-proposed neighbors.
	PairTests int64
	// PruneHits is the number of pair tests the bbox-distance lower
	// bound resolved without running the O(V²) boundary-vertex scan.
	PruneHits int64
}

// Shrinkage is the fraction of initial hulls eliminated by merging —
// 0 when nothing merged, approaching 1 when almost everything
// collapsed into a few hulls.
func (s Stats) Shrinkage() float64 {
	if s.InitialHulls == 0 {
		return 0
	}
	return float64(s.InitialHulls-s.FinalHulls) / float64(s.InitialHulls)
}

// Carve runs Alg. 2 on the observed index points IS and returns the
// merged hull set ℍ. An empty point set carves to nil hulls with nil
// error.
func Carve(points *array.IndexSet, cfg Config) ([]*hull.Hull, error) {
	return CarveContext(context.Background(), points, cfg)
}

// CarveContext is Carve with a context carrying cancellation and
// optional observability state: when an obs trace is attached, the
// SPLIT, per-cell hull, and merge stages emit spans.
func CarveContext(ctx context.Context, points *array.IndexSet, cfg Config) ([]*hull.Hull, error) {
	hulls, _, err := CarveStats(ctx, points, cfg)
	return hulls, err
}

// CarveStats is CarveContext returning the invocation's hull-quality
// Stats alongside the hull set. When the context carries a metrics
// registry the stats are also published as kondo_carve_* instruments.
func CarveStats(ctx context.Context, points *array.IndexSet, cfg Config) ([]*hull.Hull, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	if points.Len() == 0 {
		return nil, st, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st.Points = points.Len()
	sp := obs.Start(ctx, "carve.split")
	cells := split(points, cfg.CellSize)
	st.Cells = len(cells)
	if sp != nil {
		sp.Arg("points", points.Len()).Arg("cells", len(cells))
	}
	sp.End()

	sp = obs.Start(ctx, "carve.cell-hulls")
	hulls, err := cellHulls(ctx, cells, cfg.workers())
	if err != nil {
		sp.End()
		return nil, st, err
	}
	st.InitialHulls = len(hulls)
	if sp != nil {
		sp.Arg("hulls", len(hulls)).Arg("workers", cfg.workers())
	}
	sp.End()

	sp = obs.Start(ctx, "carve.merge")
	hulls, ms, err := mergeAll(ctx, hulls, cfg)
	if sp != nil {
		sp.Arg("passes", ms.passes).Arg("merges", ms.merges).
			Arg("pair_tests", ms.pairTests).Arg("prune_hits", ms.pruneHits)
	}
	sp.End()
	if err != nil {
		return nil, st, err
	}
	st.MergePasses = ms.passes
	st.Merges = ms.merges
	st.PairTests = ms.pairTests
	st.PruneHits = ms.pruneHits
	st.FinalHulls = len(hulls)
	publishStats(ctx, st)
	return hulls, st, nil
}

// cellHulls builds one convex hull per occupied cell through a bounded
// worker pool, preserving deterministic cell order. hull.New is a pure
// function of its cell's points, so the result is identical at any
// worker count.
func cellHulls(ctx context.Context, cells [][]geom.Point, workers int) ([]*hull.Hull, error) {
	hulls := make([]*hull.Hull, len(cells))
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, cellPts := range cells {
			h, err := hull.New(cellPts)
			if err != nil {
				return nil, err
			}
			hulls[i] = h
		}
		return hulls, nil
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) || errs[w] != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				hulls[i], errs[w] = hull.New(cells[i])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return hulls, nil
}

// publishStats records one carve invocation's hull-quality stats in
// the context's metrics registry (a no-op without one).
func publishStats(ctx context.Context, st Stats) {
	reg := obs.RegistryOf(ctx)
	reg.Gauge("kondo_carve_points").Set(float64(st.Points))
	reg.Gauge("kondo_carve_cells").Set(float64(st.Cells))
	reg.Gauge("kondo_carve_hulls").Set(float64(st.FinalHulls))
	reg.Gauge("kondo_carve_merge_passes").Set(float64(st.MergePasses))
	reg.Gauge("kondo_carve_shrinkage").Set(st.Shrinkage())
	reg.Counter("kondo_carve_merges_total").Add(int64(st.Merges))
	reg.Counter("kondo_carve_pair_tests_total").Add(st.PairTests)
	reg.Counter("kondo_carve_prune_hits_total").Add(st.PruneHits)
}

// SimpleConvex is the paper's SC baseline: the fuzzer's points carved
// with a single regular convex hull (no cells, no merge thresholds).
// Like Carve, an empty point set yields a nil hull with nil error —
// callers must treat the nil hull as an empty approximation.
func SimpleConvex(points *array.IndexSet) (*hull.Hull, error) {
	if points.Len() == 0 {
		return nil, nil
	}
	return hull.New(collectPoints(points))
}

// split partitions the points into fixed-size grid cells (Alg. 2's
// SPLIT), returned in deterministic cell order with each cell's points
// in row-major order. The within-cell ordering matters: in three and
// more dimensions the extreme-vertex reduction is insertion-order
// dependent, so an unordered (map-iteration) split would make the
// whole carve nondeterministic call-to-call.
func split(points *array.IndexSet, cellSize int) [][]geom.Point {
	type cellKey string
	byCell := make(map[cellKey][]int64)
	var order []cellKey
	space := points.Space()
	points.Each(func(ix array.Index) bool {
		key := make(array.Index, len(ix))
		for k, v := range ix {
			key[k] = v / cellSize
		}
		ck := cellKey(key.String())
		if _, ok := byCell[ck]; !ok {
			order = append(order, ck)
		}
		lin, err := space.Linear(ix)
		if err != nil {
			return true // unreachable: ix came from the set itself
		}
		byCell[ck] = append(byCell[ck], lin)
		return true
	})
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([][]geom.Point, len(order))
	for i, ck := range order {
		lins := byCell[ck]
		sort.Slice(lins, func(a, b int) bool { return lins[a] < lins[b] })
		pts := make([]geom.Point, len(lins))
		for j, lin := range lins {
			ix, err := space.Unlinear(lin)
			if err != nil {
				continue // unreachable by construction
			}
			pts[j] = indexToPoint(ix)
		}
		out[i] = pts
	}
	return out
}

// indexToPoint converts an array index to a geometric point.
func indexToPoint(ix array.Index) geom.Point {
	p := make(geom.Point, len(ix))
	for k, v := range ix {
		p[k] = float64(v)
	}
	return p
}

// collectPoints materializes an index set as geometric points in
// row-major order, so hulls built from them are deterministic even
// where the vertex reduction is insertion-order dependent (3D+).
func collectPoints(points *array.IndexSet) []geom.Point {
	lins := make([]int64, 0, points.Len())
	points.EachLinear(func(lin int64) bool {
		lins = append(lins, lin)
		return true
	})
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	space := points.Space()
	out := make([]geom.Point, 0, len(lins))
	for _, lin := range lins {
		ix, err := space.Unlinear(lin)
		if err != nil {
			continue // unreachable by construction
		}
		out = append(out, indexToPoint(ix))
	}
	return out
}

// Rasterize converts a hull set into the approximated index subset
// I'_Θ over the data array's space.
func Rasterize(hulls []*hull.Hull, space array.Space) (*array.IndexSet, error) {
	return hull.RasterizeAll(hulls, space)
}

// RasterizeContext is Rasterize with cancellation and bounded
// parallelism: hulls are sharded across up to workers goroutines (0 or
// negative: one per available CPU) and the per-worker index sets are
// unioned deterministically. The result is bit-identical at any worker
// count.
func RasterizeContext(ctx context.Context, hulls []*hull.Hull, space array.Space, workers int) (*array.IndexSet, error) {
	return hull.RasterizeAllContext(ctx, hulls, space, workers)
}

// RasterizeStats is RasterizeContext also returning the scanline work
// counters (rows, point tests, emitted runs) — the deterministic
// metrics the bench regression gate tracks.
func RasterizeStats(ctx context.Context, hulls []*hull.Hull, space array.Space, workers int) (*array.IndexSet, hull.RasterStats, error) {
	return hull.RasterizeAllStats(ctx, hulls, space, workers)
}
