// Package carve implements Kondo's bottom-up convex-hull carving
// algorithm (paper §IV-B, Alg. 2). Given the index points observed
// during fuzzing, it SPLITs the offset space into fixed-size cells,
// computes a convex hull per occupied cell, and repeatedly merges
// hulls that are CLOSE — by boundary distance while hulls are small,
// and by center distance once a hull has grown (the output-sensitive
// merge the paper contrasts with classical divide-and-conquer hull
// merging). The resulting hull set ℍ, rasterized, is the approximated
// index subset I'_Θ.
package carve

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/hull"
	"repro/internal/obs"
)

// CloseMode selects how the two distance tests compose in the CLOSE
// predicate. The paper's prose supports disjunction (boundary distance
// drives early merges of small hulls; center distance lets a grown
// hull keep absorbing near ones, §IV-B); conjunction is provided as an
// ablation.
type CloseMode uint8

const (
	// CloseEither merges when either distance test passes (default,
	// the output-sensitive behaviour described in the paper).
	CloseEither CloseMode = iota
	// CloseBoth merges only when both tests pass.
	CloseBoth
)

// Config controls the carving algorithm. The distance thresholds are
// the paper's center_d_thresh and bound_d_thresh (Fig. 5), with §V-B
// defaults 20 and 10.
type Config struct {
	// CellSize is the edge length of the SPLIT grid cells in index
	// units.
	CellSize int
	// CenterDistThresh merges two hulls whose centroids are within
	// this distance.
	CenterDistThresh float64
	// BoundaryDistThresh merges two hulls whose nearest vertices are
	// within this distance.
	BoundaryDistThresh float64
	// Mode composes the two distance tests (see CloseMode).
	Mode CloseMode
}

// DefaultConfig returns the paper's §V-B carving configuration.
func DefaultConfig() Config {
	return Config{
		CellSize:           16,
		CenterDistThresh:   20,
		BoundaryDistThresh: 10,
	}
}

func (c Config) validate() error {
	if c.CellSize <= 0 {
		return fmt.Errorf("carve: cell size %d must be positive", c.CellSize)
	}
	if c.CenterDistThresh < 0 || c.BoundaryDistThresh < 0 {
		return fmt.Errorf("carve: negative distance threshold")
	}
	return nil
}

// close is the paper's CLOSE predicate. Boundary distance drives the
// early merging of small neighbouring cell hulls; center distance
// lets a grown hull keep absorbing nearby small hulls whose vertices
// have drifted apart (§IV-B's discussion of output sensitivity).
func (c Config) close(a, b *hull.Hull) bool {
	boundary := a.BoundaryDist(b) <= c.BoundaryDistThresh
	center := a.CenterDist(b) <= c.CenterDistThresh
	if c.Mode == CloseBoth {
		return boundary && center
	}
	return boundary || center
}

// Stats are the hull-quality measurements of one carve invocation.
// The waste ratio (hull volume vs. observed indices) needs the
// rasterized set and is computed one level up, in internal/kondo.
type Stats struct {
	// Points is |IS|, the observed-index count carving started from.
	Points int
	// Cells is the number of occupied SPLIT grid cells.
	Cells int
	// InitialHulls is the per-cell hull count before merging
	// (= Cells today, but kept separate in case empty-hull cells are
	// ever dropped).
	InitialHulls int
	// FinalHulls is |ℍ| after the CLOSE-merge fixpoint.
	FinalHulls int
	// MergePasses is the number of fixpoint passes (including the
	// final pass that found nothing to merge).
	MergePasses int
	// Merges is the total number of pairwise hull merges performed.
	Merges int
}

// Shrinkage is the fraction of initial hulls eliminated by merging —
// 0 when nothing merged, approaching 1 when almost everything
// collapsed into a few hulls.
func (s Stats) Shrinkage() float64 {
	if s.InitialHulls == 0 {
		return 0
	}
	return float64(s.InitialHulls-s.FinalHulls) / float64(s.InitialHulls)
}

// Carve runs Alg. 2 on the observed index points IS and returns the
// merged hull set ℍ.
func Carve(points *array.IndexSet, cfg Config) ([]*hull.Hull, error) {
	return CarveContext(context.Background(), points, cfg)
}

// CarveContext is Carve with a context carrying optional
// observability state: when an obs trace is attached, the SPLIT,
// per-cell hull, and each fixpoint merge pass emit spans.
func CarveContext(ctx context.Context, points *array.IndexSet, cfg Config) ([]*hull.Hull, error) {
	hulls, _, err := CarveStats(ctx, points, cfg)
	return hulls, err
}

// CarveStats is CarveContext returning the invocation's hull-quality
// Stats alongside the hull set. When the context carries a metrics
// registry the stats are also published as kondo_carve_* instruments.
func CarveStats(ctx context.Context, points *array.IndexSet, cfg Config) ([]*hull.Hull, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	if points.Len() == 0 {
		return nil, st, nil
	}
	st.Points = points.Len()
	sp := obs.Start(ctx, "carve.split")
	cells := split(points, cfg.CellSize)
	st.Cells = len(cells)
	if sp != nil {
		sp.Arg("points", points.Len()).Arg("cells", len(cells))
	}
	sp.End()

	sp = obs.Start(ctx, "carve.cell-hulls")
	hulls := make([]*hull.Hull, 0, len(cells))
	for _, cellPts := range cells {
		h, err := hull.New(cellPts)
		if err != nil {
			sp.End()
			return nil, st, err
		}
		hulls = append(hulls, h)
	}
	st.InitialHulls = len(hulls)
	if sp != nil {
		sp.Arg("hulls", len(hulls))
	}
	sp.End()

	hulls, passes, merges, err := mergeAll(ctx, hulls, cfg)
	if err != nil {
		return nil, st, err
	}
	st.MergePasses = passes
	st.Merges = merges
	st.FinalHulls = len(hulls)
	publishStats(ctx, st)
	return hulls, st, nil
}

// publishStats records one carve invocation's hull-quality stats in
// the context's metrics registry (a no-op without one).
func publishStats(ctx context.Context, st Stats) {
	reg := obs.RegistryOf(ctx)
	reg.Gauge("kondo_carve_points").Set(float64(st.Points))
	reg.Gauge("kondo_carve_cells").Set(float64(st.Cells))
	reg.Gauge("kondo_carve_hulls").Set(float64(st.FinalHulls))
	reg.Gauge("kondo_carve_merge_passes").Set(float64(st.MergePasses))
	reg.Gauge("kondo_carve_shrinkage").Set(st.Shrinkage())
	reg.Counter("kondo_carve_merges_total").Add(int64(st.Merges))
}

// SimpleConvex is the paper's SC baseline: the fuzzer's points carved
// with a single regular convex hull (no cells, no merge thresholds).
func SimpleConvex(points *array.IndexSet) (*hull.Hull, error) {
	if points.Len() == 0 {
		return nil, fmt.Errorf("carve: no points")
	}
	return hull.New(collectPoints(points))
}

// split partitions the points into fixed-size grid cells (Alg. 2's
// SPLIT), returned in deterministic cell order.
func split(points *array.IndexSet, cellSize int) [][]geom.Point {
	type cellKey string
	byCell := make(map[cellKey][]geom.Point)
	var order []cellKey
	points.Each(func(ix array.Index) bool {
		key := make(array.Index, len(ix))
		for k, v := range ix {
			key[k] = v / cellSize
		}
		ck := cellKey(key.String())
		if _, ok := byCell[ck]; !ok {
			order = append(order, ck)
		}
		byCell[ck] = append(byCell[ck], indexToPoint(ix))
		return true
	})
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([][]geom.Point, len(order))
	for i, ck := range order {
		out[i] = byCell[ck]
	}
	return out
}

// mergeAll iterates the CLOSE-merge loop of Alg. 2 to fixpoint,
// returning the hull set plus the pass and merge counts. Each merge
// strictly reduces the hull count, so the loop terminates after at
// most len(hulls)-1 merges.
func mergeAll(ctx context.Context, hulls []*hull.Hull, cfg Config) ([]*hull.Hull, int, int, error) {
	passes, merges := 0, 0
	merged := true
	for pass := 1; merged; pass++ {
		merged = false
		passes = pass
		sp := obs.Start(ctx, "carve.merge-pass")
		if sp != nil {
			sp.Arg("pass", pass).Arg("hulls", len(hulls))
		}
	scan:
		for i := 0; i < len(hulls); i++ {
			for j := i + 1; j < len(hulls); j++ {
				if !cfg.close(hulls[i], hulls[j]) {
					continue
				}
				m, err := hull.Merge(hulls[i], hulls[j])
				if err != nil {
					sp.End()
					return nil, passes, merges, err
				}
				// Remove j first (higher index), then i.
				hulls = append(hulls[:j], hulls[j+1:]...)
				hulls[i] = m
				merged = true
				merges++
				break scan
			}
		}
		sp.End()
	}
	return hulls, passes, merges, nil
}

// indexToPoint converts an array index to a geometric point.
func indexToPoint(ix array.Index) geom.Point {
	p := make(geom.Point, len(ix))
	for k, v := range ix {
		p[k] = float64(v)
	}
	return p
}

// collectPoints materializes an index set as geometric points.
func collectPoints(points *array.IndexSet) []geom.Point {
	out := make([]geom.Point, 0, points.Len())
	points.Each(func(ix array.Index) bool {
		out = append(out, indexToPoint(ix))
		return true
	})
	return out
}

// Rasterize converts a hull set into the approximated index subset
// I'_Θ over the data array's space.
func Rasterize(hulls []*hull.Hull, space array.Space) (*array.IndexSet, error) {
	return hull.RasterizeAll(hulls, space)
}
