package carve

import (
	"container/heap"
	"context"
	"math"
	"strconv"
	"strings"

	"repro/internal/hull"
)

// maxGridCover bounds how many grid cells a single hull may register
// in. A hull whose expanded bounding box outgrows the bound (a merged
// hull spanning much of the space) moves to a catch-all bucket that is
// candidate-paired against every hull — still sound, just less
// selective — so grid registration stays O(1)-ish per hull instead of
// exploding in high dimensions.
const maxGridCover = 2048

// mergeStats are the merge stage's work counters: true fixpoint passes
// (longest dependent-merge chain + the final pass that finds nothing),
// merges performed, CLOSE pair evaluations, and boundary scans skipped
// by the bbox lower bound.
type mergeStats struct {
	passes    int
	merges    int
	pairTests int64
	pruneHits int64
}

// pairItem is one CLOSE pair in the engine's worklist. Pairs order
// lexicographically by the hulls' surviving-order keys, so draining
// the heap replays the naive algorithm's merge sequence (lowest
// surviving index wins) exactly. ida is always the id of the lower-key
// hull: hull.Merge's argument order — and with it the vertex layout of
// degenerate merges — matches the reference implementation.
type pairItem struct {
	ka, kb   int // order keys, ka < kb
	ida, idb int // immutable hull ids; a dead id makes the pair stale
	depth    int // dependent-merge chain depth; initial pairs are 1
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].ka != h[j].ka {
		return h[i].ka < h[j].ka
	}
	return h[i].kb < h[j].kb
}
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mergeEngine is the output-sensitive CLOSE-merge fixpoint (paper
// §IV-B). A uniform spatial grid over hull bounding boxes proposes
// candidate neighbor pairs; only candidates are CLOSE-tested, close
// pairs enter a worklist ordered by surviving index, and a merge
// re-tests only pairs involving the merged hull. The invariant — the
// worklist always contains every CLOSE pair among live hulls (plus
// skippable stale entries) — makes the drained sequence identical to
// the naive restart-from-scratch scan at a fraction of the pair tests.
type mergeEngine struct {
	cfg Config
	// pruneRadius is the candidate cut-off: a pair whose bbox gap
	// exceeds it can never satisfy CLOSE (gap lower-bounds both the
	// boundary and the center distance).
	pruneRadius float64
	cellSide    float64

	hulls []*hull.Hull // by id; nil once merged away
	keys  []int        // by id: surviving-order key (array-position rank)
	grid  map[string][]int
	big   []int // ids registered in the catch-all bucket

	work pairHeap
	st   mergeStats
}

func newMergeEngine(cfg Config) *mergeEngine {
	r := math.Max(cfg.BoundaryDistThresh, cfg.CenterDistThresh)
	if cfg.Mode == CloseBoth {
		// Conjunction fails as soon as either distance exceeds its
		// threshold, and the gap lower-bounds both distances.
		r = math.Min(cfg.BoundaryDistThresh, cfg.CenterDistThresh)
	}
	return &mergeEngine{
		cfg:         cfg,
		pruneRadius: r,
		cellSide:    math.Max(1, math.Max(r, float64(cfg.CellSize))),
		grid:        make(map[string][]int),
	}
}

// closeTest is Config.close with work accounting: every candidate
// evaluation counts as a pair test, and a boundary scan skipped by the
// bbox lower bound counts as a prune hit.
func (e *mergeEngine) closeTest(a, b *hull.Hull) bool {
	e.st.pairTests++
	center := a.CenterDist(b) <= e.cfg.CenterDistThresh
	if e.cfg.Mode == CloseBoth {
		if !center {
			return false
		}
	} else if center {
		return true
	}
	// Only the boundary test remains decisive; its O(V²) vertex scan
	// cannot pass the threshold when the bbox gap already exceeds it.
	if a.BBoxGap(b) > e.cfg.BoundaryDistThresh {
		e.st.pruneHits++
		return false
	}
	return a.BoundaryDist(b) <= e.cfg.BoundaryDistThresh
}

// addHull registers a hull under the given surviving-order key and
// returns its id.
func (e *mergeEngine) addHull(h *hull.Hull, key int) int {
	id := len(e.hulls)
	e.hulls = append(e.hulls, h)
	e.keys = append(e.keys, key)

	// Register the bbox expanded by pruneRadius/2 per side: two hulls
	// whose gap is within the prune radius then share at least one
	// grid cell.
	bb := h.BBox()
	dim := len(bb.Min)
	lo := make([]int, dim)
	hi := make([]int, dim)
	cover := 1
	for k := 0; k < dim; k++ {
		lo[k] = int(math.Floor((bb.Min[k] - e.pruneRadius/2) / e.cellSide))
		hi[k] = int(math.Floor((bb.Max[k] + e.pruneRadius/2) / e.cellSide))
		cover *= hi[k] - lo[k] + 1
		if cover > maxGridCover {
			e.big = append(e.big, id)
			return id
		}
	}
	cur := append([]int(nil), lo...)
	for {
		ck := gridKey(cur)
		e.grid[ck] = append(e.grid[ck], id)
		k := dim - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return id
		}
	}
}

func gridKey(cell []int) string {
	var b strings.Builder
	for i, c := range cell {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// neighbors returns the live candidate partners of id: hulls sharing a
// grid cell with it, plus every catch-all hull (and, for a catch-all
// hull, every live hull). The returned set is deduplicated; its order
// is irrelevant because every candidate is tested, never short-
// circuited.
func (e *mergeEngine) neighbors(id int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(nb int) {
		if nb == id || seen[nb] || e.hulls[nb] == nil {
			return
		}
		seen[nb] = true
		out = append(out, nb)
	}
	inBig := false
	for _, b := range e.big {
		if b == id {
			inBig = true
			break
		}
	}
	if inBig {
		for nb := range e.hulls {
			add(nb)
		}
		return out
	}
	bb := e.hulls[id].BBox()
	dim := len(bb.Min)
	lo := make([]int, dim)
	hi := make([]int, dim)
	for k := 0; k < dim; k++ {
		lo[k] = int(math.Floor((bb.Min[k] - e.pruneRadius/2) / e.cellSide))
		hi[k] = int(math.Floor((bb.Max[k] + e.pruneRadius/2) / e.cellSide))
	}
	cur := append([]int(nil), lo...)
	for {
		for _, nb := range e.grid[gridKey(cur)] {
			add(nb)
		}
		k := dim - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			break
		}
	}
	for _, nb := range e.big {
		add(nb)
	}
	return out
}

// push enqueues a CLOSE pair between the two ids, normalizing so the
// lower-key hull leads.
func (e *mergeEngine) push(ida, idb, depth int) {
	ka, kb := e.keys[ida], e.keys[idb]
	if kb < ka {
		ka, kb = kb, ka
		ida, idb = idb, ida
	}
	heap.Push(&e.work, pairItem{ka: ka, kb: kb, ida: ida, idb: idb, depth: depth})
}

// run drives the worklist to the fixpoint and returns the surviving
// hulls in surviving-order (identical to the naive array order).
func (e *mergeEngine) run(ctx context.Context, hulls []*hull.Hull) ([]*hull.Hull, mergeStats, error) {
	for i, h := range hulls {
		e.addHull(h, i)
	}
	// Seed the worklist with every initially-CLOSE candidate pair.
	// Seed ids coincide with order keys, so nb < id visits each
	// unordered pair exactly once with the lower key leading.
	for id := range e.hulls {
		for _, nb := range e.neighbors(id) {
			if nb > id {
				continue
			}
			if e.closeTest(e.hulls[nb], e.hulls[id]) {
				e.push(nb, id, 1)
			}
		}
	}

	maxDepth := 0
	polls := 0
	for e.work.Len() > 0 {
		if polls++; polls%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, e.st, err
			}
		}
		it := heap.Pop(&e.work).(pairItem)
		a, b := e.hulls[it.ida], e.hulls[it.idb]
		if a == nil || b == nil {
			continue // stale: a constituent was merged away
		}
		m, err := hull.Merge(a, b)
		if err != nil {
			return nil, e.st, err
		}
		e.hulls[it.ida] = nil
		e.hulls[it.idb] = nil
		id := e.addHull(m, it.ka) // merged hull survives under the lower key
		e.st.merges++
		if it.depth > maxDepth {
			maxDepth = it.depth
		}
		for _, nb := range e.neighbors(id) {
			if e.closeTest(m, e.hulls[nb]) {
				e.push(id, nb, it.depth+1)
			}
		}
	}

	// Collect survivors in key order — the order the naive in-place
	// array ends up in, since a merged hull inherits the lower
	// participant's position.
	type keyed struct {
		key int
		h   *hull.Hull
	}
	var alive []keyed
	for id, h := range e.hulls {
		if h != nil {
			alive = append(alive, keyed{e.keys[id], h})
		}
	}
	for i := 1; i < len(alive); i++ {
		for j := i; j > 0 && alive[j].key < alive[j-1].key; j-- {
			alive[j], alive[j-1] = alive[j-1], alive[j]
		}
	}
	out := make([]*hull.Hull, len(alive))
	for i, k := range alive {
		out[i] = k.h
	}
	e.st.passes = maxDepth + 1 // + the pass that found nothing to merge
	return out, e.st, nil
}

// mergeAll iterates the CLOSE-merge loop of Alg. 2 to fixpoint through
// the candidate-pair engine. The result is bit-identical to the
// retained naive reference (mergeAllNaive): same hulls, same order,
// same vertices.
func mergeAll(ctx context.Context, hulls []*hull.Hull, cfg Config) ([]*hull.Hull, mergeStats, error) {
	return newMergeEngine(cfg).run(ctx, hulls)
}
