package carve

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/hull"
)

// CarveNaive is the retained pre-engine reference implementation of
// Carve: SPLIT, sequential per-cell hulls, and the restart-from-
// scratch fixpoint that rescans every pair after each merge. It is
// quadratic-per-merge by construction and exists only so tests can pin
// the candidate-pair engine's output against it and the bench harness
// can measure the speedup; the pipeline never calls it.
func CarveNaive(points *array.IndexSet, cfg Config) ([]*hull.Hull, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if points.Len() == 0 {
		return nil, nil
	}
	cells := split(points, cfg.CellSize)
	hulls := make([]*hull.Hull, 0, len(cells))
	for _, cellPts := range cells {
		h, err := hull.New(cellPts)
		if err != nil {
			return nil, fmt.Errorf("carve: cell hull: %w", err)
		}
		hulls = append(hulls, h)
	}
	return mergeAllNaive(hulls, cfg)
}

// mergeAllNaive is the original merge loop: each pass scans pairs in
// lexicographic index order, merges the first CLOSE pair it finds into
// the lower slot, and restarts. The engine replays exactly this merge
// sequence — lowest surviving index wins — without the rescans.
func mergeAllNaive(hulls []*hull.Hull, cfg Config) ([]*hull.Hull, error) {
	merged := true
	for merged {
		merged = false
	scan:
		for i := 0; i < len(hulls); i++ {
			for j := i + 1; j < len(hulls); j++ {
				if !cfg.close(hulls[i], hulls[j]) {
					continue
				}
				m, err := hull.Merge(hulls[i], hulls[j])
				if err != nil {
					return nil, err
				}
				// Remove j first (higher index), then replace i.
				hulls = append(hulls[:j], hulls[j+1:]...)
				hulls[i] = m
				merged = true
				break scan
			}
		}
	}
	return hulls, nil
}
