// Package container models the containerized-application setting Kondo
// debloats (paper §II): a Dockerfile-like specification declaring
// environment dependencies, data dependencies, an entry executable,
// and the supported parameter ranges Θ (the PARAM line of Fig. 2a); a
// built image with byte-accurate content sizes; and a runtime that
// executes the entry program against the image's (possibly debloated)
// data files.
package container

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// AddEntry is one ADD instruction: a source file bundled into the
// image at a destination path.
type AddEntry struct {
	Src, Dst string
}

// Spec is a parsed container specification.
type Spec struct {
	// From is the base image reference.
	From string
	// Runs are the RUN instructions (environment dependencies; they
	// are recorded, not executed).
	Runs []string
	// Adds are the data and code dependencies copied into the image.
	Adds []AddEntry
	// Params is the advertised parameter space Θ.
	Params workload.ParamSpace
	// Entrypoint names the entry executable X̄.
	Entrypoint string
	// Cmd is the default command line: parameter values followed by
	// the data file path.
	Cmd []string
}

// DataFile returns the image path of the data file the default
// command runs against (the last CMD element), or an error if the CMD
// is empty.
func (s *Spec) DataFile() (string, error) {
	if len(s.Cmd) == 0 {
		return "", fmt.Errorf("container: spec has no CMD")
	}
	return s.Cmd[len(s.Cmd)-1], nil
}

// DefaultParams returns the parameter values of the default command
// (all CMD elements but the last, parsed as numbers).
func (s *Spec) DefaultParams() ([]float64, error) {
	if len(s.Cmd) < 2 {
		return nil, fmt.Errorf("container: CMD carries no parameter values")
	}
	out := make([]float64, len(s.Cmd)-1)
	for i, tok := range s.Cmd[:len(s.Cmd)-1] {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("container: CMD parameter %q: %w", tok, err)
		}
		out[i] = v
	}
	return out, nil
}

// ParseSpec reads a container specification. Supported instructions:
//
//	FROM <ref>
//	RUN <command...>
//	ADD <src> <dst>
//	PARAM [lo-hi, lo-hi, ...]
//	ENTRYPOINT ["<name>"]
//	CMD [v1, v2, ..., <datafile>]
//
// Blank lines and #-comments are ignored.
func ParseSpec(r io.Reader) (*Spec, error) {
	spec := &Spec{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		instr, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch strings.ToUpper(instr) {
		case "FROM":
			spec.From = rest
		case "RUN":
			spec.Runs = append(spec.Runs, rest)
		case "ADD":
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, fmt.Errorf("container: line %d: ADD wants <src> <dst>", lineNo)
			}
			spec.Adds = append(spec.Adds, AddEntry{Src: fields[0], Dst: fields[1]})
		case "PARAM":
			ps, err := parseParamRanges(rest)
			if err != nil {
				return nil, fmt.Errorf("container: line %d: %w", lineNo, err)
			}
			spec.Params = ps
		case "ENTRYPOINT":
			items, err := parseBracketList(rest)
			if err != nil || len(items) != 1 {
				return nil, fmt.Errorf("container: line %d: ENTRYPOINT wants [\"name\"]", lineNo)
			}
			spec.Entrypoint = strings.Trim(items[0], `"`)
		case "CMD":
			items, err := parseBracketList(rest)
			if err != nil {
				return nil, fmt.Errorf("container: line %d: %w", lineNo, err)
			}
			spec.Cmd = items
		default:
			return nil, fmt.Errorf("container: line %d: unknown instruction %q", lineNo, instr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spec.From == "" {
		return nil, fmt.Errorf("container: spec missing FROM")
	}
	if spec.Entrypoint == "" {
		return nil, fmt.Errorf("container: spec missing ENTRYPOINT")
	}
	return spec, nil
}

// parseParamRanges parses the PARAM payload: "[0-30, 300.00-1200.00,
// 0-50]" → a ParamSpace of rounded integer ranges.
func parseParamRanges(s string) (workload.ParamSpace, error) {
	items, err := parseBracketList(s)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("PARAM list empty")
	}
	ps := make(workload.ParamSpace, len(items))
	for i, item := range items {
		// Split on the dash separating lo and hi; tolerate a leading
		// minus sign on lo.
		sep := strings.LastIndex(item, "-")
		if sep <= 0 {
			return nil, fmt.Errorf("PARAM range %q wants lo-hi", item)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(item[:sep]), 64)
		if err != nil {
			return nil, fmt.Errorf("PARAM range %q: %w", item, err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(item[sep+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("PARAM range %q: %w", item, err)
		}
		if hi < lo {
			return nil, fmt.Errorf("PARAM range %q inverted", item)
		}
		ps[i] = workload.ParamRange{
			Name: fmt.Sprintf("p%d", i+1),
			Lo:   workload.RoundParam(lo),
			Hi:   workload.RoundParam(hi),
		}
	}
	return ps, nil
}

// parseBracketList parses "[a, b, c]" into trimmed items.
func parseBracketList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("expected [ ... ] list, got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out, nil
}
