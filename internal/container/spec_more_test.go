package container

import (
	"strings"
	"testing"
)

func TestDefaultParamsErrors(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"FROM a\nENTRYPOINT [\"X\"]\nCMD [abc, /data.sdf]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.DefaultParams(); err == nil {
		t.Error("non-numeric CMD parameter should error")
	}

	spec2, err := ParseSpec(strings.NewReader(
		"FROM a\nENTRYPOINT [\"X\"]\nCMD [/data.sdf]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec2.DefaultParams(); err == nil {
		t.Error("CMD without parameters should error")
	}

	spec3, err := ParseSpec(strings.NewReader("FROM a\nENTRYPOINT [\"X\"]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec3.DataFile(); err == nil {
		t.Error("missing CMD should error on DataFile")
	}
}

func TestParseSpecCommentsAndBlankLines(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`
# leading comment

FROM base

# mid comment
ENTRYPOINT ["CS2"]
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.From != "base" || spec.Entrypoint != "CS2" {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseBracketListEmpty(t *testing.T) {
	items, err := parseBracketList("[]")
	if err != nil || items != nil {
		t.Errorf("empty list = %v, %v", items, err)
	}
	if _, err := parseBracketList("not a list"); err == nil {
		t.Error("missing brackets should error")
	}
}

func TestBuildMissingSource(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"FROM a\nADD ./missing.bin /app/missing.bin\nENTRYPOINT [\"X\"]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(spec, t.TempDir(), t.TempDir()); err == nil {
		t.Error("missing ADD source should error")
	}
}

func TestBuildRejectsEscapingAdd(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"FROM a\nADD ./x /../../escape\nENTRYPOINT [\"X\"]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(spec, t.TempDir(), t.TempDir()); err == nil {
		t.Error("escaping ADD destination should error")
	}
}
