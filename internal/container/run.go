package container

import (
	"fmt"

	"repro/internal/debloat"
	"repro/internal/sdf"
	"repro/internal/workload"
)

// RunReport is the outcome of executing a container's entry program.
type RunReport struct {
	// Misses counts reads that touched carved-away data (0 for an
	// un-debloated image).
	Misses int64
	// Recovered reports whether misses were served by a fetcher.
	Recovered bool
}

// Run executes the image's entry program with the given parameter
// values against the image's data file. The entrypoint is resolved to
// a benchmark program via workload.ByName. If the data file is
// debloated and fetcher is non-nil, carved-away reads are recovered
// through it; with a nil fetcher they surface the data-missing
// exception (paper §III, §VI).
func (img *Image) Run(v []float64, dataset string, fetcher debloat.Fetcher) (*RunReport, error) {
	dataPath, err := img.Spec.DataFile()
	if err != nil {
		return nil, err
	}
	hostPath, err := img.HostPath(dataPath)
	if err != nil {
		return nil, err
	}
	f, err := sdf.Open(hostPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := f.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	prog, err := workload.ForSpace(img.Spec.Entrypoint, ds.Space().Dims())
	if err != nil {
		return nil, fmt.Errorf("container: resolving entrypoint: %w", err)
	}

	rt := debloat.NewRuntime(ds, fetcher)
	if err := prog.Run(v, &workload.Env{Acc: rt}); err != nil {
		return &RunReport{Misses: rt.Misses()}, err
	}
	return &RunReport{Misses: rt.Misses(), Recovered: fetcher != nil && rt.Misses() > 0}, nil
}
