package container

import (
	"archive/tar"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Image distribution: a built image exports to a tar stream (the unit
// a container registry would ship, and what the user downloads — the
// cost Fig. 9's reductions translate into), and imports back to a
// directory-rooted image.

// ExportTar writes the image's files to w as a tar archive. Paths are
// stored image-relative (no leading slash), in sorted order for
// byte-stable output.
func (img *Image) ExportTar(w io.Writer) error {
	files, err := img.Files()
	if err != nil {
		return err
	}
	tw := tar.NewWriter(w)
	for _, fe := range files {
		host, err := img.HostPath(fe.Path)
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Name: strings.TrimPrefix(fe.Path, "/"),
			Mode: 0o644,
			Size: fe.Size,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("container: tar header for %s: %w", fe.Path, err)
		}
		f, err := os.Open(host)
		if err != nil {
			return err
		}
		if _, err := io.Copy(tw, f); err != nil {
			f.Close()
			return fmt.Errorf("container: tar body for %s: %w", fe.Path, err)
		}
		f.Close()
	}
	return tw.Close()
}

// ImportTar materializes a tar stream produced by ExportTar under
// root and returns the image. spec is attached as the image's
// specification (tar archives carry only files).
func ImportTar(r io.Reader, spec *Spec, root string) (*Image, error) {
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("container: reading tar: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		dst, err := resolveInRoot(root, "/"+hdr.Name)
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return nil, err
		}
		out, err := os.Create(dst)
		if err != nil {
			return nil, err
		}
		if _, err := io.Copy(out, tr); err != nil { //nolint:gosec // sizes bounded by archive
			out.Close()
			return nil, fmt.Errorf("container: extracting %s: %w", hdr.Name, err)
		}
		if err := out.Close(); err != nil {
			return nil, err
		}
	}
	return &Image{Spec: spec, Root: root}, nil
}
