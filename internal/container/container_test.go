package container

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/sdf"
	"repro/internal/workload"
)

const sampleSpec = `
# Cross-stencil container (paper Fig. 2a)
FROM ubuntu:20.04
RUN apt-get install -y gcc
RUN apt-get install -y libhdf5-dev
ADD ./mnist.sdf /stencil/mnist.sdf
ADD ./notes.txt /stencil/notes.txt
PARAM [0-63, 0-63]
ENTRYPOINT ["CS2"]
CMD [1, 1, /stencil/mnist.sdf]
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.From != "ubuntu:20.04" {
		t.Errorf("From = %q", spec.From)
	}
	if len(spec.Runs) != 2 {
		t.Errorf("Runs = %v", spec.Runs)
	}
	if len(spec.Adds) != 2 || spec.Adds[0].Dst != "/stencil/mnist.sdf" {
		t.Errorf("Adds = %v", spec.Adds)
	}
	if len(spec.Params) != 2 || spec.Params[0].Lo != 0 || spec.Params[1].Hi != 63 {
		t.Errorf("Params = %v", spec.Params)
	}
	if spec.Entrypoint != "CS2" {
		t.Errorf("Entrypoint = %q", spec.Entrypoint)
	}
	df, err := spec.DataFile()
	if err != nil || df != "/stencil/mnist.sdf" {
		t.Errorf("DataFile = %q, %v", df, err)
	}
	dp, err := spec.DefaultParams()
	if err != nil || len(dp) != 2 || dp[0] != 1 || dp[1] != 1 {
		t.Errorf("DefaultParams = %v, %v", dp, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"RUN x\nENTRYPOINT [\"CS2\"]",             // missing FROM
		"FROM a",                                  // missing ENTRYPOINT
		"FROM a\nENTRYPOINT [\"X\"]\nADD one",     // bad ADD
		"FROM a\nENTRYPOINT [\"X\"]\nPARAM 0-30",  // PARAM without brackets
		"FROM a\nENTRYPOINT [\"X\"]\nPARAM [5-2]", // inverted range
		"FROM a\nENTRYPOINT [\"X\"]\nBOGUS y",     // unknown instruction
	}
	for i, c := range cases {
		if _, err := ParseSpec(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestParamRangeWithFloats(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"FROM a\nENTRYPOINT [\"X\"]\nPARAM [0-30, 300.00-1200.00, 0-50]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Params) != 3 {
		t.Fatalf("Params = %v", spec.Params)
	}
	if spec.Params[1].Lo != 300 || spec.Params[1].Hi != 1200 {
		t.Errorf("float range parsed as %v", spec.Params[1])
	}
}

// buildTestImage creates a source dir with a CS2-compatible data file
// and builds the sample container.
func buildTestImage(t *testing.T) (*Image, string) {
	t.Helper()
	srcDir := t.TempDir()
	space := array.MustSpace(64, 64)
	w := sdf.NewWriter(filepath.Join(srcDir, "mnist.sdf"))
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcDir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	spec, err := ParseSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	img, err := Build(spec, srcDir, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return img, srcDir
}

func TestBuildAndSize(t *testing.T) {
	img, _ := buildTestImage(t)
	files, err := img.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("Files = %v", files)
	}
	size, err := img.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size < 64*64*8 {
		t.Errorf("Size = %d, want at least the data bytes", size)
	}
	if _, err := img.HostPath("/../escape"); err == nil {
		t.Error("path escape should be rejected")
	}
}

func TestRunOriginalImage(t *testing.T) {
	img, _ := buildTestImage(t)
	rep, err := img.Run([]float64{1, 1}, "data", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		t.Errorf("original image run had %d misses", rep.Misses)
	}
}

func TestDebloatedImageEndToEnd(t *testing.T) {
	img, srcDir := buildTestImage(t)

	// Carve with the exact ground truth so every supported run works.
	p := workload.MustCS(2, 64)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	deb, stats, err := img.DebloatData(t.TempDir(), "/stencil/mnist.sdf", "data", truth, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reduction() <= 0 {
		t.Errorf("Reduction = %v, want > 0", stats.Reduction())
	}
	origSize, _ := img.Size()
	debSize, _ := deb.Size()
	if debSize >= origSize {
		t.Errorf("debloated image %d not smaller than original %d", debSize, origSize)
	}

	// Supported runs behave identically (no misses).
	for _, v := range [][]float64{{1, 1}, {0, 5}, {3, 7}} {
		rep, err := deb.Run(v, "data", nil)
		if err != nil {
			t.Fatalf("run %v: %v", v, err)
		}
		if rep.Misses != 0 {
			t.Errorf("run %v: %d misses", v, rep.Misses)
		}
	}

	// A hand-carved smaller subset must miss, and recover with a
	// fetcher.
	small := array.NewIndexSet(p.Space())
	small.AddLinear(0) // only index (0,0)
	deb2, _, err := img.DebloatData(t.TempDir(), "/stencil/mnist.sdf", "data", small, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deb2.Run([]float64{1, 1}, "data", nil); err == nil {
		t.Error("run beyond carved subset should fail without a fetcher")
	} else if !errors.Is(err, debloat.ErrDataMissing) {
		t.Errorf("error = %v, want data missing", err)
	}
	fetcher := debloat.NewOriginFetcher(filepath.Join(srcDir, "mnist.sdf"))
	defer fetcher.Close()
	rep, err := deb2.Run([]float64{1, 1}, "data", fetcher)
	if err != nil {
		t.Fatalf("recovered run failed: %v", err)
	}
	if rep.Misses == 0 || !rep.Recovered {
		t.Errorf("expected recovered misses, got %+v", rep)
	}
}
