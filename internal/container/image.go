package container

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/array"
	"repro/internal/debloat"
)

// Image is a built container image: the spec plus its bundled files
// materialized under a root directory.
type Image struct {
	Spec *Spec
	// Root is the directory holding the image contents; ADD
	// destinations are resolved beneath it.
	Root string
}

// Build materializes the spec's ADD entries from srcDir into root and
// returns the image. It is the moral equivalent of `docker build`:
// downloading E's and D's and laying out the filesystem (paper §II).
func Build(spec *Spec, srcDir, root string) (*Image, error) {
	for _, add := range spec.Adds {
		src := filepath.Join(srcDir, filepath.FromSlash(strings.TrimPrefix(add.Src, "./")))
		dst, err := resolveInRoot(root, add.Dst)
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
		if err := copyFile(src, dst); err != nil {
			return nil, fmt.Errorf("container: ADD %s: %w", add.Src, err)
		}
	}
	return &Image{Spec: spec, Root: root}, nil
}

// resolveInRoot maps an in-image absolute path to the host filesystem,
// rejecting escapes above the image root.
func resolveInRoot(root, imagePath string) (string, error) {
	rel := strings.TrimPrefix(imagePath, "/")
	dst := filepath.Join(root, filepath.FromSlash(rel))
	cleanRoot := filepath.Clean(root) + string(filepath.Separator)
	if !strings.HasPrefix(filepath.Clean(dst)+string(filepath.Separator), cleanRoot) {
		return "", fmt.Errorf("container: path %q escapes image root", imagePath)
	}
	return dst, nil
}

// HostPath maps an in-image path to its location on the host.
func (img *Image) HostPath(imagePath string) (string, error) {
	return resolveInRoot(img.Root, imagePath)
}

// Size returns the total byte size of the image's files — the
// download cost a user pays (paper §I).
func (img *Image) Size() (int64, error) {
	var total int64
	err := filepath.Walk(img.Root, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// Files lists the image's files (image-relative, sorted) with sizes.
func (img *Image) Files() ([]FileEntry, error) {
	var out []FileEntry
	err := filepath.Walk(img.Root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.Mode().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(img.Root, p)
		if err != nil {
			return err
		}
		out = append(out, FileEntry{Path: "/" + filepath.ToSlash(rel), Size: info.Size()})
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, err
}

// FileEntry is one file in an image listing.
type FileEntry struct {
	Path string
	Size int64
}

// DebloatData builds a debloated copy of this image at newRoot: the
// named data file (in-image path) is replaced by its carved subset,
// everything else is copied through. This is the container-rebuild
// step of paper Fig. 3 — "the developer includes the corresponding
// debloated data file in the container instead of the original".
func (img *Image) DebloatData(newRoot, imageDataPath, dataset string, approx *array.IndexSet, chunk []int) (*Image, debloat.Stats, error) {
	var stats debloat.Stats
	srcData, err := img.HostPath(imageDataPath)
	if err != nil {
		return nil, stats, err
	}
	// Copy all files except the data file.
	err = filepath.Walk(img.Root, func(p string, info os.FileInfo, werr error) error {
		if werr != nil {
			return werr
		}
		if !info.Mode().IsRegular() || p == srcData {
			return nil
		}
		rel, err := filepath.Rel(img.Root, p)
		if err != nil {
			return err
		}
		dst := filepath.Join(newRoot, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return copyFile(p, dst)
	})
	if err != nil {
		return nil, stats, fmt.Errorf("container: copying image: %w", err)
	}
	dstData, err := resolveInRoot(newRoot, imageDataPath)
	if err != nil {
		return nil, stats, err
	}
	if err := os.MkdirAll(filepath.Dir(dstData), 0o755); err != nil {
		return nil, stats, err
	}
	stats, err = debloat.WriteSubset(srcData, dstData, dataset, approx, chunk)
	if err != nil {
		return nil, stats, err
	}
	return &Image{Spec: img.Spec, Root: newRoot}, stats, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
