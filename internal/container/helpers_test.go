package container

import (
	"archive/tar"
	"io"

	"repro/internal/array"
	"repro/internal/workload"
)

// progForImage resolves the image's entry program at its data file's
// shape (test helper mirroring Image.Run's resolution).
func progForImage(img *Image) (workload.Program, error) {
	return workload.ForSpace(img.Spec.Entrypoint, []int{64, 64})
}

// groundTruthOf wraps workload.GroundTruth for test brevity.
func groundTruthOf(p workload.Program) (*array.IndexSet, error) {
	return workload.GroundTruth(p)
}

// newEvilTar writes a single-entry tar with an arbitrary (possibly
// malicious) path.
func newEvilTar(w io.Writer, name string, body []byte) error {
	tw := tar.NewWriter(w)
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(body))}); err != nil {
		return err
	}
	if _, err := tw.Write(body); err != nil {
		return err
	}
	return tw.Close()
}
