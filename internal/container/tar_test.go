package container

import (
	"bytes"
	"testing"
)

func TestExportImportTarRoundTrip(t *testing.T) {
	img, _ := buildTestImage(t)
	var buf bytes.Buffer
	if err := img.ExportTar(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty tar")
	}

	back, err := ImportTar(bytes.NewReader(buf.Bytes()), img.Spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	origFiles, err := img.Files()
	if err != nil {
		t.Fatal(err)
	}
	backFiles, err := back.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(backFiles) != len(origFiles) {
		t.Fatalf("imported %d files, want %d", len(backFiles), len(origFiles))
	}
	for i := range origFiles {
		if backFiles[i] != origFiles[i] {
			t.Fatalf("file %d: %v != %v", i, backFiles[i], origFiles[i])
		}
	}

	// The imported image still runs.
	rep, err := back.Run([]float64{1, 1}, "data", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		t.Errorf("imported image run had %d misses", rep.Misses)
	}
}

// TestTarSizeReflectsDebloating is the end-of-pipe claim: the shipped
// artifact (the tar) shrinks by roughly the data reduction.
func TestTarSizeReflectsDebloating(t *testing.T) {
	img, _ := buildTestImage(t)
	p, err := progForImage(img)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := groundTruthOf(p)
	if err != nil {
		t.Fatal(err)
	}
	deb, _, err := img.DebloatData(t.TempDir(), "/stencil/mnist.sdf", "data", truth, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	var origTar, debTar bytes.Buffer
	if err := img.ExportTar(&origTar); err != nil {
		t.Fatal(err)
	}
	if err := deb.ExportTar(&debTar); err != nil {
		t.Fatal(err)
	}
	if debTar.Len() >= origTar.Len() {
		t.Errorf("debloated tar (%d) not smaller than original (%d)", debTar.Len(), origTar.Len())
	}
}

func TestImportTarRejectsEscapes(t *testing.T) {
	// Handcraft a tar with a path escaping the root.
	var buf bytes.Buffer
	tw := newEvilTar(&buf, "../escape.txt", []byte("boom"))
	if tw != nil {
		t.Fatal(tw)
	}
	if _, err := ImportTar(bytes.NewReader(buf.Bytes()), &Spec{}, t.TempDir()); err == nil {
		t.Error("path escape should be rejected")
	}
}
