package metrics

import (
	"fmt"
	"time"

	"repro/internal/fuzz"
	"repro/internal/obs"
)

// CampaignStats summarizes the throughput side of a fuzz campaign —
// the §V observability counters the worker-pool evaluator exposes:
// debloat tests per second, how busy the pool's workers were, how
// many tests failed, and how deep the mutant queue grew.
type CampaignStats struct {
	// Evaluations is the number of successful debloat tests.
	Evaluations int
	// FailedEvals is the number of debloat tests that errored and were
	// skipped.
	FailedEvals int
	// DedupSkips counts seeds dropped without a test because their
	// valuation had already been evaluated.
	DedupSkips int
	// Batches is the number of seed batches dispatched to the pool.
	Batches int
	// Workers is the resolved worker count of the campaign.
	Workers int
	// MaxQueueDepth is the high-water mark of the pending-mutant
	// queue.
	MaxQueueDepth int
	// Elapsed is the campaign's wall-clock duration; EvalWall is the
	// summed in-evaluator time across all workers.
	Elapsed  time.Duration
	EvalWall time.Duration
	// StopReason states why the campaign ended.
	StopReason fuzz.StopReason
}

// Campaign extracts the throughput stats of a fuzz result.
func Campaign(res *fuzz.Result) CampaignStats {
	return CampaignStats{
		Evaluations:   res.Evaluations,
		FailedEvals:   len(res.Failures),
		DedupSkips:    res.DedupSkips,
		Batches:       res.Batches,
		Workers:       res.Workers,
		MaxQueueDepth: res.MaxQueueDepth,
		Elapsed:       res.Elapsed,
		EvalWall:      res.EvalWall,
		StopReason:    res.StopReason,
	}
}

// EvalsPerSec returns the campaign's debloat-test throughput
// (successful and failed tests over wall-clock time).
func (s CampaignStats) EvalsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Evaluations+s.FailedEvals) / s.Elapsed.Seconds()
}

// WorkerUtilization returns the fraction of the pool's capacity spent
// inside the evaluator: EvalWall / (Elapsed × Workers), clamped to
// [0, 1]. A value near 1/Workers means the campaign was effectively
// sequential (evaluations too cheap to amortize the pool); a value
// near 1 means the workers were saturated.
func (s CampaignStats) WorkerUtilization() float64 {
	if s.Elapsed <= 0 || s.Workers <= 0 {
		return 0
	}
	u := s.EvalWall.Seconds() / (s.Elapsed.Seconds() * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Publish exports the campaign summary into a registry as gauges
// under the kondo_campaign_* family. Gauges (not counters) so that
// re-publishing a later campaign overwrites rather than accumulates.
// Nil-safe on the registry.
func (s CampaignStats) Publish(reg *obs.Registry) {
	reg.SetHelp("kondo_campaign_evals", "Successful debloat tests in the last campaign.")
	reg.Gauge("kondo_campaign_evals").Set(float64(s.Evaluations))
	reg.Gauge("kondo_campaign_failed_evals").Set(float64(s.FailedEvals))
	reg.Gauge("kondo_campaign_dedup_skips").Set(float64(s.DedupSkips))
	reg.Gauge("kondo_campaign_batches").Set(float64(s.Batches))
	reg.Gauge("kondo_campaign_workers").Set(float64(s.Workers))
	reg.Gauge("kondo_campaign_max_queue_depth").Set(float64(s.MaxQueueDepth))
	reg.Gauge("kondo_campaign_elapsed_seconds").Set(s.Elapsed.Seconds())
	reg.Gauge("kondo_campaign_eval_wall_seconds").Set(s.EvalWall.Seconds())
	reg.Gauge("kondo_campaign_evals_per_sec").Set(s.EvalsPerSec())
	reg.Gauge("kondo_campaign_worker_utilization").Set(s.WorkerUtilization())
}

// String renders the stats as a one-line summary.
func (s CampaignStats) String() string {
	return fmt.Sprintf("%d evals (%d failed, %d deduped) in %v over %d batches: %.0f evals/s, %d workers at %.0f%% utilization, queue peak %d, stop: %s",
		s.Evaluations, s.FailedEvals, s.DedupSkips, s.Elapsed.Round(time.Millisecond),
		s.Batches, s.EvalsPerSec(), s.Workers, 100*s.WorkerUtilization(),
		s.MaxQueueDepth, s.StopReason)
}
