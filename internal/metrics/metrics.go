// Package metrics computes the evaluation measures of paper §V-C:
// precision and recall of the approximated index subset I'_Θ against
// the ground truth I_Θ, the identified bloat fraction (Fig. 9), and
// the missed-access valuation rate of §V-D1.
package metrics

import (
	"fmt"
	"math/rand"

	"repro/internal/array"
	"repro/internal/workload"
)

// PR bundles precision and recall of an approximated index subset.
type PR struct {
	Precision float64
	Recall    float64
}

// Precision returns |I_Θ ∩ I'_Θ| / |I'_Θ|: the fraction of the carved
// subset that actually appears in the ground truth. An empty
// approximation has precision 1 by convention (it includes nothing
// wasteful).
func Precision(truth, approx *array.IndexSet) float64 {
	if approx.Len() == 0 {
		return 1
	}
	return float64(truth.IntersectLen(approx)) / float64(approx.Len())
}

// Recall returns |I_Θ ∩ I'_Θ| / |I_Θ|: the fraction of the ground
// truth captured by the approximation. A recall of 1 signifies
// soundness. An empty ground truth has recall 1 by convention.
func Recall(truth, approx *array.IndexSet) float64 {
	if truth.Len() == 0 {
		return 1
	}
	return float64(truth.IntersectLen(approx)) / float64(truth.Len())
}

// Evaluate returns both measures.
func Evaluate(truth, approx *array.IndexSet) PR {
	return PR{Precision: Precision(truth, approx), Recall: Recall(truth, approx)}
}

// BloatFraction returns |I − S| / |I|: the fraction of the full index
// space a subset identifies as bloat (never accessed). Applied to
// I'_Θ it is Kondo's identified bloat; applied to I_Θ it is the
// ground-truth bloat (Fig. 9).
func BloatFraction(space array.Space, subset *array.IndexSet) float64 {
	total := float64(space.Size())
	return (total - float64(subset.Len())) / total
}

// MissedValuationRate estimates the fraction of parameter valuations
// v ∈ Θ whose run would touch at least one index missing from the
// approximation — the §V-D1 measure of how often a user hits the
// "data missing" exception. If |Θ| is at most exhaustLimit every
// valuation is checked; otherwise sampleSize valuations are drawn
// uniformly (seeded for reproducibility).
func MissedValuationRate(p workload.Program, approx *array.IndexSet, exhaustLimit int64, sampleSize int, seed int64) (float64, error) {
	params := p.Params()
	missed, total := 0, 0

	check := func(v []float64) error {
		iv, err := workload.RunOnVirtual(p, v)
		if err != nil {
			return err
		}
		total++
		ok := true
		iv.EachLinear(func(lin int64) bool {
			if !approx.ContainsLinear(lin) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			missed++
		}
		return nil
	}

	if params.Valuations() <= exhaustLimit {
		var runErr error
		params.EachValuation(func(v []float64) bool {
			if err := check(v); err != nil {
				runErr = err
				return false
			}
			return true
		})
		if runErr != nil {
			return 0, runErr
		}
	} else {
		if sampleSize <= 0 {
			return 0, fmt.Errorf("metrics: sampleSize must be positive for sampled estimation")
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < sampleSize; i++ {
			if err := check(params.Sample(rng)); err != nil {
				return 0, err
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: no valuations checked")
	}
	return float64(missed) / float64(total), nil
}
