package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// serveBuckets are the latency histogram bucket upper bounds of the
// recovery data plane, spanning in-memory cache-adjacent handling
// (tens of microseconds) to a slow origin disk or network (seconds).
var serveBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// ServeBucketBounds returns the histogram bucket upper bounds used by
// ServeRecorder (the last implicit bucket is +Inf).
func ServeBucketBounds() []time.Duration {
	return append([]time.Duration(nil), serveBuckets...)
}

// EndpointStats is the per-endpoint counter snapshot of a recovery
// server: request and error counts, payload bytes served, and a
// fixed-bucket latency histogram.
type EndpointStats struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"` // responses with status >= 400
	Bytes    int64  `json:"bytes"`  // payload bytes written
	// Latency[i] counts requests completed within serveBuckets[i];
	// the final entry counts everything slower than the last bound.
	Latency []int64 `json:"latency_buckets"`
	// TotalLatencyNS accumulates summed request latency, for mean
	// latency without histogram interpolation.
	TotalLatencyNS int64 `json:"total_latency_ns"`
}

// MeanLatency returns the average request latency of the endpoint.
func (e EndpointStats) MeanLatency() time.Duration {
	if e.Requests == 0 {
		return 0
	}
	return time.Duration(e.TotalLatencyNS / e.Requests)
}

// ServeStats is a point-in-time snapshot of a ServeRecorder, ordered
// by endpoint name. It is the JSON body of the /metrics endpoint.
type ServeStats struct {
	Endpoints []EndpointStats `json:"endpoints"`
	// Requests, Errors and Bytes aggregate across endpoints.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Bytes    int64 `json:"bytes"`
}

// Endpoint returns the stats of one endpoint (zero value if the
// endpoint has not been hit).
func (s ServeStats) Endpoint(name string) EndpointStats {
	for _, e := range s.Endpoints {
		if e.Endpoint == name {
			return e
		}
	}
	return EndpointStats{Endpoint: name}
}

// String renders a compact multi-line summary.
func (s ServeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests (%d errors), %d payload bytes", s.Requests, s.Errors, s.Bytes)
	for _, e := range s.Endpoints {
		fmt.Fprintf(&b, "\n  %-10s %8d req  %6d err  %12d B  mean %v",
			e.Endpoint, e.Requests, e.Errors, e.Bytes, e.MeanLatency().Round(time.Microsecond))
	}
	return b.String()
}

// ServeRecorder collects per-endpoint request metrics for the recovery
// data plane. It is safe for concurrent use by HTTP handlers.
type ServeRecorder struct {
	mu  sync.Mutex
	per map[string]*EndpointStats
}

// NewServeRecorder returns an empty recorder.
func NewServeRecorder() *ServeRecorder {
	return &ServeRecorder{per: make(map[string]*EndpointStats)}
}

// Record notes one completed request: its endpoint, HTTP status,
// payload bytes written, and wall-clock latency.
func (r *ServeRecorder) Record(endpoint string, status int, bytes int64, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.per[endpoint]
	if !ok {
		e = &EndpointStats{Endpoint: endpoint, Latency: make([]int64, len(serveBuckets)+1)}
		r.per[endpoint] = e
	}
	e.Requests++
	if status >= 400 {
		e.Errors++
	}
	e.Bytes += bytes
	e.TotalLatencyNS += elapsed.Nanoseconds()
	i := sort.Search(len(serveBuckets), func(i int) bool { return elapsed <= serveBuckets[i] })
	e.Latency[i]++
}

// Snapshot returns a copy of the accumulated stats.
func (r *ServeRecorder) Snapshot() ServeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s ServeStats
	for _, e := range r.per {
		cp := *e
		cp.Latency = append([]int64(nil), e.Latency...)
		s.Endpoints = append(s.Endpoints, cp)
		s.Requests += e.Requests
		s.Errors += e.Errors
		s.Bytes += e.Bytes
	}
	sort.Slice(s.Endpoints, func(i, j int) bool { return s.Endpoints[i].Endpoint < s.Endpoints[j].Endpoint })
	return s
}
