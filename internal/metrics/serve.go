package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// serveBuckets are the default latency histogram bucket upper bounds
// of the recovery data plane, spanning in-memory cache-adjacent
// handling (tens of microseconds) to a slow origin disk or network
// (seconds).
var serveBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// ServeBucketBounds returns the default histogram bucket upper bounds
// used by NewServeRecorder (the last implicit bucket is +Inf).
func ServeBucketBounds() []time.Duration {
	return append([]time.Duration(nil), serveBuckets...)
}

// EndpointStats is the per-endpoint counter snapshot of a recovery
// server: request and error counts, payload bytes served, and a
// fixed-bucket latency histogram.
type EndpointStats struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"` // responses with status >= 400
	Bytes    int64  `json:"bytes"`  // payload bytes written
	// Latency[i] counts requests completed within the recorder's i-th
	// bucket bound; the final entry counts everything slower than the
	// last bound.
	Latency []int64 `json:"latency_buckets"`
	// TotalLatencyNS accumulates summed request latency, for mean
	// latency without histogram interpolation.
	TotalLatencyNS int64 `json:"total_latency_ns"`
}

// MeanLatency returns the average request latency of the endpoint.
func (e EndpointStats) MeanLatency() time.Duration {
	if e.Requests == 0 {
		return 0
	}
	return time.Duration(e.TotalLatencyNS / e.Requests)
}

// ServeStats is a point-in-time snapshot of a ServeRecorder, ordered
// by endpoint name. It is the JSON body of the /metrics endpoint.
type ServeStats struct {
	Endpoints []EndpointStats `json:"endpoints"`
	// Requests, Errors and Bytes aggregate across endpoints.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Bytes    int64 `json:"bytes"`
}

// Endpoint returns the stats of one endpoint (zero value if the
// endpoint has not been hit).
func (s ServeStats) Endpoint(name string) EndpointStats {
	for _, e := range s.Endpoints {
		if e.Endpoint == name {
			return e
		}
	}
	return EndpointStats{Endpoint: name}
}

// String renders a compact multi-line summary.
func (s ServeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests (%d errors), %d payload bytes", s.Requests, s.Errors, s.Bytes)
	for _, e := range s.Endpoints {
		fmt.Fprintf(&b, "\n  %-10s %8d req  %6d err  %12d B  mean %v",
			e.Endpoint, e.Requests, e.Errors, e.Bytes, e.MeanLatency().Round(time.Microsecond))
	}
	return b.String()
}

// epInstruments caches one endpoint's registered instruments so the
// request hot path is four atomic updates, not four registry lookups.
type epInstruments struct {
	requests *obs.Counter
	errors   *obs.Counter
	bytes    *obs.Counter
	latency  *obs.Histogram
}

// ServeRecorder collects per-endpoint request metrics for the recovery
// data plane. It is safe for concurrent use by HTTP handlers.
//
// The instruments live in an obs.Registry, so the same counters back
// the legacy JSON snapshot and Prometheus text exposition.
type ServeRecorder struct {
	reg    *obs.Registry
	bounds []time.Duration // histogram upper bounds, ascending
	secs   []float64       // bounds in seconds, same order

	mu  sync.Mutex
	per map[string]*epInstruments
}

// NewServeRecorder returns an empty recorder with the default latency
// buckets.
func NewServeRecorder() *ServeRecorder {
	return NewServeRecorderWithBuckets(nil)
}

// NewServeRecorderWithBuckets returns an empty recorder whose latency
// histogram uses the given ascending upper bounds (an implicit +Inf
// bucket is always appended). A nil or empty slice selects the default
// ServeBucketBounds. Unsorted bounds are sorted; duplicates removed.
func NewServeRecorderWithBuckets(bounds []time.Duration) *ServeRecorder {
	if len(bounds) == 0 {
		bounds = serveBuckets
	}
	bs := append([]time.Duration(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	bs = dedup
	secs := make([]float64, len(bs))
	for i, b := range bs {
		secs[i] = b.Seconds()
	}
	reg := obs.NewRegistry()
	reg.SetHelp("kondo_serve_requests_total", "Requests served, by endpoint.")
	reg.SetHelp("kondo_serve_errors_total", "Responses with status >= 400, by endpoint.")
	reg.SetHelp("kondo_serve_response_bytes_total", "Payload bytes written, by endpoint.")
	reg.SetHelp("kondo_serve_request_seconds", "Request latency, by endpoint.")
	return &ServeRecorder{
		reg:    reg,
		bounds: bs,
		secs:   secs,
		per:    make(map[string]*epInstruments),
	}
}

// Registry exposes the recorder's instrument registry, so callers can
// register adjacent gauges (cache sizes, build info) and serve the
// whole set as one Prometheus exposition.
func (r *ServeRecorder) Registry() *obs.Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// BucketBounds returns this recorder's latency bucket upper bounds.
func (r *ServeRecorder) BucketBounds() []time.Duration {
	return append([]time.Duration(nil), r.bounds...)
}

func (r *ServeRecorder) endpoint(name string) *epInstruments {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.per[name]
	if !ok {
		l := obs.L("endpoint", name)
		e = &epInstruments{
			requests: r.reg.Counter("kondo_serve_requests_total", l),
			errors:   r.reg.Counter("kondo_serve_errors_total", l),
			bytes:    r.reg.Counter("kondo_serve_response_bytes_total", l),
			latency:  r.reg.Histogram("kondo_serve_request_seconds", r.secs, l),
		}
		r.per[name] = e
	}
	return e
}

// SLOSource returns an obs.SLOSource over one endpoint's instruments,
// for wiring the endpoint into an obs.SLO engine. The instruments are
// created on first use, so the source is valid before traffic arrives.
func (r *ServeRecorder) SLOSource(endpoint string) obs.SLOSource {
	e := r.endpoint(endpoint)
	return obs.SLOSource{
		Requests: e.requests.Value,
		Errors:   e.errors.Value,
		Latency:  e.latency,
	}
}

// Record notes one completed request: its endpoint, HTTP status,
// payload bytes written, and wall-clock latency.
func (r *ServeRecorder) Record(endpoint string, status int, bytes int64, elapsed time.Duration) {
	e := r.endpoint(endpoint)
	e.requests.Inc()
	if status >= 400 {
		e.errors.Inc()
	}
	e.bytes.Add(bytes)
	e.latency.Observe(elapsed.Seconds())
}

// Snapshot returns a copy of the accumulated stats, reconstructed from
// the registered instruments. Bucket counts are non-cumulative, one
// per bound plus a final overflow entry, matching the /metrics JSON
// contract.
func (r *ServeRecorder) Snapshot() ServeStats {
	r.mu.Lock()
	eps := make(map[string]*epInstruments, len(r.per))
	for name, e := range r.per {
		eps[name] = e
	}
	r.mu.Unlock()

	var s ServeStats
	for name, e := range eps {
		st := EndpointStats{
			Endpoint:       name,
			Requests:       e.requests.Value(),
			Errors:         e.errors.Value(),
			Bytes:          e.bytes.Value(),
			Latency:        e.latency.BucketCounts(),
			TotalLatencyNS: int64(math.Round(e.latency.Sum() * 1e9)),
		}
		s.Endpoints = append(s.Endpoints, st)
		s.Requests += st.Requests
		s.Errors += st.Errors
		s.Bytes += st.Bytes
	}
	sort.Slice(s.Endpoints, func(i, j int) bool { return s.Endpoints[i].Endpoint < s.Endpoints[j].Endpoint })
	return s
}
