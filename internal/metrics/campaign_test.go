package metrics

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/workload"
)

func TestCampaignStatsArithmetic(t *testing.T) {
	s := CampaignStats{
		Evaluations: 90,
		FailedEvals: 10,
		Workers:     4,
		Elapsed:     2 * time.Second,
		EvalWall:    6 * time.Second,
	}
	if got := s.EvalsPerSec(); got != 50 {
		t.Errorf("EvalsPerSec = %v, want 50", got)
	}
	if got := s.WorkerUtilization(); got != 0.75 {
		t.Errorf("WorkerUtilization = %v, want 0.75", got)
	}
	// Degenerate inputs must not divide by zero or exceed the clamp.
	if (CampaignStats{}).EvalsPerSec() != 0 || (CampaignStats{}).WorkerUtilization() != 0 {
		t.Error("zero-valued stats should report 0")
	}
	over := CampaignStats{Workers: 1, Elapsed: time.Second, EvalWall: 10 * time.Second}
	if got := over.WorkerUtilization(); got != 1 {
		t.Errorf("utilization not clamped: %v", got)
	}
}

func TestCampaignFromFuzzResult(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := fuzz.DefaultConfig()
	cfg.Seed = 1
	cfg.MaxEvals = 120
	f, err := fuzz.ForProgram(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := Campaign(res)
	if s.Evaluations != res.Evaluations || s.Workers != res.Workers ||
		s.Batches != res.Batches || s.StopReason != res.StopReason {
		t.Errorf("stats do not mirror the result: %+v vs %+v", s, res)
	}
	if s.EvalsPerSec() <= 0 {
		t.Error("live campaign should report positive throughput")
	}
	line := s.String()
	for _, want := range []string{"evals", "workers", "stop:"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}
