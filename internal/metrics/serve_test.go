package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestServeRecorderCounts(t *testing.T) {
	r := NewServeRecorder()
	r.Record("chunk", 200, 1024, 80*time.Microsecond)
	r.Record("chunk", 200, 2048, 300*time.Microsecond)
	r.Record("chunk", 404, 32, 2*time.Second) // beyond the last bucket
	r.Record("element", 200, 16, time.Millisecond)

	s := r.Snapshot()
	if s.Requests != 4 || s.Errors != 1 || s.Bytes != 1024+2048+32+16 {
		t.Errorf("aggregate = %d req, %d err, %d B", s.Requests, s.Errors, s.Bytes)
	}
	c := s.Endpoint("chunk")
	if c.Requests != 3 || c.Errors != 1 || c.Bytes != 1024+2048+32 {
		t.Errorf("chunk = %+v", c)
	}
	// 80µs lands in the second bucket (≤100µs), 300µs in the fourth
	// (≤500µs), 2s in the overflow bucket.
	bounds := ServeBucketBounds()
	if len(c.Latency) != len(bounds)+1 {
		t.Fatalf("latency has %d buckets, want %d", len(c.Latency), len(bounds)+1)
	}
	if c.Latency[1] != 1 || c.Latency[3] != 1 || c.Latency[len(bounds)] != 1 {
		t.Errorf("latency buckets = %v", c.Latency)
	}
	var total int64
	for _, n := range c.Latency {
		total += n
	}
	if total != c.Requests {
		t.Errorf("histogram total %d != requests %d", total, c.Requests)
	}
	if got := c.MeanLatency(); got <= 0 {
		t.Errorf("mean latency = %v", got)
	}
	// Unknown endpoint yields the zero value.
	if e := s.Endpoint("nope"); e.Requests != 0 || e.Endpoint != "nope" {
		t.Errorf("unknown endpoint = %+v", e)
	}
}

func TestServeStatsJSONAndString(t *testing.T) {
	r := NewServeRecorder()
	r.Record("slab", 200, 100, time.Millisecond)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back ServeStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != 1 || back.Endpoint("slab").Bytes != 100 {
		t.Errorf("round-tripped = %+v", back)
	}
	if s := back.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestServeRecorderConcurrent(t *testing.T) {
	r := NewServeRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("chunk", 200, 8, time.Microsecond)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Requests; got != 800 {
		t.Errorf("requests = %d, want 800", got)
	}
}
