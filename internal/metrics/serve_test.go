package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeRecorderCounts(t *testing.T) {
	r := NewServeRecorder()
	r.Record("chunk", 200, 1024, 80*time.Microsecond)
	r.Record("chunk", 200, 2048, 300*time.Microsecond)
	r.Record("chunk", 404, 32, 2*time.Second) // beyond the last bucket
	r.Record("element", 200, 16, time.Millisecond)

	s := r.Snapshot()
	if s.Requests != 4 || s.Errors != 1 || s.Bytes != 1024+2048+32+16 {
		t.Errorf("aggregate = %d req, %d err, %d B", s.Requests, s.Errors, s.Bytes)
	}
	c := s.Endpoint("chunk")
	if c.Requests != 3 || c.Errors != 1 || c.Bytes != 1024+2048+32 {
		t.Errorf("chunk = %+v", c)
	}
	// 80µs lands in the second bucket (≤100µs), 300µs in the fourth
	// (≤500µs), 2s in the overflow bucket.
	bounds := ServeBucketBounds()
	if len(c.Latency) != len(bounds)+1 {
		t.Fatalf("latency has %d buckets, want %d", len(c.Latency), len(bounds)+1)
	}
	if c.Latency[1] != 1 || c.Latency[3] != 1 || c.Latency[len(bounds)] != 1 {
		t.Errorf("latency buckets = %v", c.Latency)
	}
	var total int64
	for _, n := range c.Latency {
		total += n
	}
	if total != c.Requests {
		t.Errorf("histogram total %d != requests %d", total, c.Requests)
	}
	if got := c.MeanLatency(); got <= 0 {
		t.Errorf("mean latency = %v", got)
	}
	// Unknown endpoint yields the zero value.
	if e := s.Endpoint("nope"); e.Requests != 0 || e.Endpoint != "nope" {
		t.Errorf("unknown endpoint = %+v", e)
	}
}

func TestServeStatsJSONAndString(t *testing.T) {
	r := NewServeRecorder()
	r.Record("slab", 200, 100, time.Millisecond)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back ServeStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != 1 || back.Endpoint("slab").Bytes != 100 {
		t.Errorf("round-tripped = %+v", back)
	}
	if s := back.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestServeRecorderConcurrent(t *testing.T) {
	r := NewServeRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("chunk", 200, 8, time.Microsecond)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Requests; got != 800 {
		t.Errorf("requests = %d, want 800", got)
	}
}

func TestServeRecorderCustomBuckets(t *testing.T) {
	// Unsorted with a duplicate: recorder sorts and dedups.
	r := NewServeRecorderWithBuckets([]time.Duration{
		time.Second, time.Millisecond, time.Second,
	})
	got := r.BucketBounds()
	want := []time.Duration{time.Millisecond, time.Second}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	r.Record("chunk", 200, 10, 500*time.Microsecond) // <= 1ms
	r.Record("chunk", 200, 10, 100*time.Millisecond) // <= 1s
	r.Record("chunk", 200, 10, 5*time.Second)        // overflow
	e := r.Snapshot().Endpoint("chunk")
	if len(e.Latency) != 3 {
		t.Fatalf("latency has %d buckets, want 3 (2 bounds + overflow)", len(e.Latency))
	}
	for i, want := range []int64{1, 1, 1} {
		if e.Latency[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, e.Latency[i], want)
		}
	}
	if e.MeanLatency() <= 0 {
		t.Error("mean latency not accumulated")
	}
}

func TestServeRecorderDefaultBucketsUnchanged(t *testing.T) {
	// The zero-arg constructor must keep the documented default bounds
	// so existing /metrics consumers see identical bucket layout.
	r := NewServeRecorder()
	def := ServeBucketBounds()
	got := r.BucketBounds()
	if len(got) != len(def) {
		t.Fatalf("default recorder has %d bounds, want %d", len(got), len(def))
	}
	for i := range def {
		if got[i] != def[i] {
			t.Errorf("bound %d = %v, want %v", i, got[i], def[i])
		}
	}
}

func TestServeRecorderPrometheus(t *testing.T) {
	r := NewServeRecorder()
	r.Record("chunk", 200, 128, 80*time.Microsecond)
	r.Record("chunk", 500, 0, 300*time.Microsecond)
	var sb strings.Builder
	if err := r.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`kondo_serve_requests_total{endpoint="chunk"} 2`,
		`kondo_serve_errors_total{endpoint="chunk"} 1`,
		`kondo_serve_response_bytes_total{endpoint="chunk"} 128`,
		"# TYPE kondo_serve_request_seconds histogram",
		`kondo_serve_request_seconds_count{endpoint="chunk"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
