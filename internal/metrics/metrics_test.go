package metrics

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/workload"
)

func setOf(space array.Space, lins ...int64) *array.IndexSet {
	s := array.NewIndexSet(space)
	for _, l := range lins {
		s.AddLinear(l)
	}
	return s
}

func TestPrecisionRecall(t *testing.T) {
	sp := array.MustSpace(10, 10)
	truth := setOf(sp, 0, 1, 2, 3)
	approx := setOf(sp, 2, 3, 4, 5)

	if p := Precision(truth, approx); p != 0.5 {
		t.Errorf("Precision = %v, want 0.5", p)
	}
	if r := Recall(truth, approx); r != 0.5 {
		t.Errorf("Recall = %v, want 0.5", r)
	}
	pr := Evaluate(truth, approx)
	if pr.Precision != 0.5 || pr.Recall != 0.5 {
		t.Errorf("Evaluate = %+v", pr)
	}

	// Perfect approximation.
	pr = Evaluate(truth, truth.Clone())
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Errorf("perfect Evaluate = %+v", pr)
	}

	// Conventions for empty sets.
	empty := array.NewIndexSet(sp)
	if Precision(truth, empty) != 1 {
		t.Error("empty approximation should have precision 1")
	}
	if Recall(empty, approx) != 1 {
		t.Error("empty truth should have recall 1")
	}
}

func TestBloatFraction(t *testing.T) {
	sp := array.MustSpace(10, 10)
	subset := setOf(sp, 0, 1, 2, 3, 4) // 5 of 100
	if b := BloatFraction(sp, subset); math.Abs(b-0.95) > 1e-12 {
		t.Errorf("BloatFraction = %v, want 0.95", b)
	}
	if b := BloatFraction(sp, array.NewIndexSet(sp)); b != 1 {
		t.Errorf("empty subset bloat = %v, want 1", b)
	}
}

func TestMissedValuationRateExhaustive(t *testing.T) {
	p := workload.MustCS(2, 32)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	// With the full truth, nothing is missed.
	rate, err := MissedValuationRate(p, truth, 1<<20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("full-truth missed rate = %v, want 0", rate)
	}
	// Remove the origin block, which every useful run touches: every
	// useful valuation now misses.
	crippled := truth.Clone()
	// Rebuild without (0,0).
	without := array.NewIndexSet(p.Space())
	crippled.Each(func(ix array.Index) bool {
		if !(ix[0] == 0 && ix[1] == 0) {
			without.Add(ix)
		}
		return true
	})
	rate, err = MissedValuationRate(p, without, 1<<20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Valid fraction for CS2 on 32x32: stepX <= stepY pairs over
	// [0,31]^2 = 528/1024.
	want := 528.0 / 1024.0
	if math.Abs(rate-want) > 1e-12 {
		t.Errorf("missed rate = %v, want %v", rate, want)
	}
}

func TestMissedValuationRateSampled(t *testing.T) {
	p := workload.MustCS(2, 128)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	// Force the sampled path with a tiny exhaustLimit.
	rate, err := MissedValuationRate(p, truth, 10, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("sampled full-truth missed rate = %v, want 0", rate)
	}
	// Sampled path requires a positive sample size.
	if _, err := MissedValuationRate(p, truth, 10, 0, 42); err == nil {
		t.Error("zero sampleSize on sampled path should error")
	}
}
