// Package kondo wires Kondo's pipeline together (paper Fig. 3): sample
// initial parameter values from Θ, run audited debloat tests, expand
// the observed index set with the fuzzing schedule, carve the
// observations into a set of convex hulls, and rasterize the hulls
// into the approximated index subset I'_Θ that the debloated data file
// is built from.
package kondo

import (
	"context"
	"fmt"
	"time"

	"repro/internal/array"
	"repro/internal/carve"
	"repro/internal/fuzz"
	"repro/internal/hull"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config configures one debloating run.
type Config struct {
	Fuzz  fuzz.Config
	Carve carve.Config
}

// DefaultConfig returns the paper's §V-B configuration for both
// stages.
func DefaultConfig() Config {
	return Config{Fuzz: fuzz.DefaultConfig(), Carve: carve.DefaultConfig()}
}

// Result is the outcome of one debloating run.
type Result struct {
	// Fuzz is the fuzzing campaign's outcome, including IS = ∪ I_v.
	Fuzz *fuzz.Result
	// Hulls is the carved hull set ℍ.
	Hulls []*hull.Hull
	// Approx is I'_Θ: the rasterized union of the hulls — the index
	// subset the debloated file keeps.
	Approx *array.IndexSet
	// CarveStats are the carve stage's hull-quality measurements.
	CarveStats carve.Stats
	// FuzzTime and CarveTime split the pipeline's wall-clock cost.
	FuzzTime  time.Duration
	CarveTime time.Duration
}

// Elapsed returns the total pipeline time.
func (r *Result) Elapsed() time.Duration { return r.FuzzTime + r.CarveTime }

// WasteRatio is |I'_Θ| / |IS|: how many indices the hulls keep per
// observed index. 1 means the hulls add nothing beyond the
// observations; large values mean convex over-approximation is
// keeping data no test ever touched. Zero when nothing was observed.
func (r *Result) WasteRatio() float64 {
	if r.Fuzz == nil || r.Approx == nil || r.Fuzz.Indices.Len() == 0 {
		return 0
	}
	return float64(r.Approx.Len()) / float64(r.Fuzz.Indices.Len())
}

// Debloat runs the full pipeline for a program using the virtual
// debloat test (the paper's fuzz/carve methodology, §V-C). The
// context bounds the whole pipeline: a canceled context stops the
// fuzz campaign within one batch, and the partial result (fuzz stage
// only, no hulls) is returned alongside the context's error.
func Debloat(ctx context.Context, p workload.Program, cfg Config) (*Result, error) {
	f, err := fuzz.ForProgram(p, cfg.Fuzz)
	if err != nil {
		return nil, err
	}
	return debloat(ctx, f, p.Space(), cfg)
}

// DebloatWithEvaluator runs the pipeline against a custom debloat-test
// evaluator (e.g. one auditing real file I/O through the trace layer).
func DebloatWithEvaluator(ctx context.Context, params workload.ParamSpace, space array.Space, eval fuzz.Evaluator, cfg Config) (*Result, error) {
	f, err := fuzz.New(params, space, eval, cfg.Fuzz)
	if err != nil {
		return nil, err
	}
	return debloat(ctx, f, space, cfg)
}

func debloat(ctx context.Context, f *fuzz.Fuzzer, space array.Space, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fuzzStart := time.Now()
	fuzzSpan := obs.Start(ctx, "kondo.fuzz")
	fres, err := f.Run(ctx)
	if fuzzSpan != nil && fres != nil {
		fuzzSpan.Arg("evals", fres.Evaluations).Arg("indices", fres.Indices.Len())
	}
	fuzzSpan.End()
	if err != nil {
		return nil, fmt.Errorf("kondo: fuzzing: %w", err)
	}
	fuzzTime := time.Since(fuzzStart)
	if err := ctx.Err(); err != nil {
		// Canceled mid-campaign: surface the fuzz stage's partial
		// observations without spending time carving them.
		return &Result{Fuzz: fres, FuzzTime: fuzzTime}, err
	}

	carveStart := time.Now()
	carveSpan := obs.Start(ctx, "kondo.carve")
	hulls, cstats, err := carve.CarveStats(ctx, fres.Indices, cfg.Carve)
	if carveSpan != nil {
		carveSpan.Arg("hulls", len(hulls))
	}
	carveSpan.End()
	if err != nil {
		return nil, fmt.Errorf("kondo: carving: %w", err)
	}
	rastSpan := obs.Start(ctx, "kondo.rasterize")
	approx, err := carve.RasterizeContext(ctx, hulls, space, cfg.Carve.Workers)
	if rastSpan != nil && approx != nil {
		rastSpan.Arg("indices", approx.Len())
	}
	rastSpan.End()
	if err != nil {
		return nil, fmt.Errorf("kondo: rasterizing: %w", err)
	}
	carveTime := time.Since(carveStart)

	res := &Result{
		Fuzz:       fres,
		Hulls:      hulls,
		Approx:     approx,
		CarveStats: cstats,
		FuzzTime:   fuzzTime,
		CarveTime:  carveTime,
	}
	reg := obs.RegistryOf(ctx)
	reg.Gauge("kondo_pipeline_kept_indices").Set(float64(approx.Len()))
	reg.Gauge("kondo_pipeline_waste_ratio").Set(res.WasteRatio())
	return res, nil
}
