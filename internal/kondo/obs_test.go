package kondo

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestDebloatEmitsPipelineSpans runs the full pipeline with a trace
// attached and checks that every phase span (fuzz, carve, rasterize,
// plus the carve-internal passes) lands in the export with a non-zero
// duration.
func TestDebloatEmitsPipelineSpans(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := DefaultConfig()
	cfg.Fuzz.Seed = 5
	cfg.Fuzz.MaxIter = 400

	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := Debloat(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx.Empty() {
		t.Fatal("pipeline produced no approximation")
	}

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	durs := map[string]float64{}
	for _, e := range out.TraceEvents {
		if e.Dur != nil && *e.Dur > durs[e.Name] {
			durs[e.Name] = *e.Dur
		}
	}
	for _, name := range []string{"kondo.fuzz", "kondo.carve", "kondo.rasterize", "fuzz.run", "carve.split", "carve.merge"} {
		if durs[name] <= 0 {
			t.Errorf("no %s span with positive duration (got %v)", name, durs[name])
		}
	}
	// Categories come from the prefix before the first dot, so the
	// viewer can filter whole subsystems.
	for _, e := range out.TraceEvents {
		if e.Name == "kondo.carve" && e.Cat != "kondo" {
			t.Errorf("kondo.carve category = %q", e.Cat)
		}
	}
}
