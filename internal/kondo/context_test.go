package kondo

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/workload"
)

// TestDebloatCanceledReturnsPartialFuzz: a canceled pipeline skips the
// carve stage but hands back the fuzz observations gathered so far,
// alongside the context's error.
func TestDebloatCanceledReturnsPartialFuzz(t *testing.T) {
	p := workload.MustCS(2, 64)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	eval := func(v []float64) (*array.IndexSet, error) {
		if evals.Add(1) == 30 {
			cancel()
		}
		return workload.RunOnVirtual(p, v)
	}
	cfg := DefaultConfig()
	cfg.Fuzz.Seed = 4
	cfg.Fuzz.MaxIter = 100000
	cfg.Fuzz.StopIter = 0
	start := time.Now()
	res, err := DebloatWithEvaluator(ctx, p.Params(), p.Space(), eval, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", took)
	}
	if res == nil || res.Fuzz == nil {
		t.Fatal("canceled pipeline discarded the partial fuzz result")
	}
	if res.Fuzz.Evaluations == 0 || res.Fuzz.Indices.Empty() {
		t.Error("partial fuzz result lost the accumulated observations")
	}
	if res.Approx != nil && !res.Approx.Empty() {
		t.Error("carve stage ran despite cancellation")
	}
}

// TestDebloatAlreadyCanceled: a context canceled before the call stops
// the pipeline immediately.
func TestDebloatAlreadyCanceled(t *testing.T) {
	p := workload.MustCS(2, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Debloat(ctx, p, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDebloatDeterministicAcrossWorkers: the full pipeline, not just
// the fuzzer, is worker-count independent.
func TestDebloatDeterministicAcrossWorkers(t *testing.T) {
	p := workload.MustCS(2, 64)
	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Fuzz.Seed = 6
		cfg.Fuzz.MaxEvals = 300
		cfg.Fuzz.Workers = workers
		res, err := Debloat(context.Background(), p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Approx.Len() != b.Approx.Len() || len(a.Hulls) != len(b.Hulls) {
		t.Errorf("worker count changed the pipeline outcome: %d indices/%d hulls vs %d/%d",
			a.Approx.Len(), len(a.Hulls), b.Approx.Len(), len(b.Hulls))
	}
	if a.Approx.IntersectLen(b.Approx) != a.Approx.Len() {
		t.Error("approximations differ element-wise")
	}
}
