package kondo

import (
	"context"
	"testing"

	"repro/internal/array"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestDebloatCS2Quality runs the full pipeline on the base cross
// stencil and checks the paper's headline quality band: recall near 1,
// precision well above the trivial baseline.
func TestDebloatCS2Quality(t *testing.T) {
	p := workload.MustCS(2, 128)
	cfg := DefaultConfig()
	cfg.Fuzz.Seed = 1
	res, err := Debloat(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx.Empty() || len(res.Hulls) == 0 {
		t.Fatal("pipeline produced no approximation")
	}
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Approx)
	t.Logf("CS2: precision=%.3f recall=%.3f hulls=%d evals=%d fuzz=%v carve=%v",
		pr.Precision, pr.Recall, len(res.Hulls), res.Fuzz.Evaluations,
		res.FuzzTime, res.CarveTime)
	if pr.Recall < 0.9 {
		t.Errorf("recall = %.3f, want >= 0.9", pr.Recall)
	}
	if pr.Precision < 0.7 {
		t.Errorf("precision = %.3f, want >= 0.7", pr.Precision)
	}
	if res.Fuzz.Evaluations >= int(p.Params().Valuations()) {
		t.Errorf("pipeline used %d evaluations, not fewer than |Θ| = %d",
			res.Fuzz.Evaluations, p.Params().Valuations())
	}
}

// TestDebloatLDCSeparation checks that the corner-blocks program keeps
// its two regions as separate hulls with precision 1 (paper §V-D2).
func TestDebloatLDCSeparation(t *testing.T) {
	p := workload.MustLDC(128, 128)
	cfg := DefaultConfig()
	cfg.Fuzz.Seed = 2
	res, err := Debloat(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := metrics.Evaluate(truth, res.Approx)
	t.Logf("LDC2D: precision=%.3f recall=%.3f hulls=%d", pr.Precision, pr.Recall, len(res.Hulls))
	if pr.Precision < 0.99 {
		t.Errorf("LDC precision = %.3f, want ~1", pr.Precision)
	}
	if pr.Recall < 0.9 {
		t.Errorf("LDC recall = %.3f, want >= 0.9", pr.Recall)
	}
	if len(res.Hulls) != 2 {
		t.Errorf("LDC carved into %d hulls, want 2", len(res.Hulls))
	}
}

// TestDebloatWithEvaluator checks the custom-evaluator entry point:
// the pipeline must call the provided debloat test and build its
// approximation from what the evaluator reports.
func TestDebloatWithEvaluator(t *testing.T) {
	p := workload.MustCS(2, 64)
	evals := 0
	eval := func(v []float64) (*array.IndexSet, error) {
		evals++
		return workload.RunOnVirtual(p, v)
	}
	cfg := DefaultConfig()
	cfg.Fuzz.Seed = 3
	cfg.Fuzz.MaxIter = 300
	res, err := DebloatWithEvaluator(context.Background(), p.Params(), p.Space(), eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if evals == 0 || evals != res.Fuzz.Evaluations {
		t.Errorf("evaluator called %d times, result reports %d", evals, res.Fuzz.Evaluations)
	}
	if res.Approx.Empty() {
		t.Error("no approximation built")
	}
	if res.Elapsed() < res.FuzzTime || res.Elapsed() < res.CarveTime {
		t.Error("Elapsed inconsistent with stage times")
	}
}
