package kondo

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/array"
	"repro/internal/workload"
)

func TestDebloatPropagatesConfigErrors(t *testing.T) {
	p := workload.MustCS(2, 64)
	cfg := DefaultConfig()
	cfg.Fuzz.MaxIter = 0 // invalid
	if _, err := Debloat(context.Background(), p, cfg); err == nil {
		t.Error("invalid fuzz config should error")
	}
	cfg = DefaultConfig()
	cfg.Carve.CellSize = -1
	if _, err := Debloat(context.Background(), p, cfg); err == nil {
		t.Error("invalid carve config should error")
	}
}

func TestDebloatPropagatesEvaluatorErrors(t *testing.T) {
	p := workload.MustCS(2, 64)
	boom := fmt.Errorf("synthetic failure")
	eval := func(v []float64) (*array.IndexSet, error) {
		return nil, boom
	}
	cfg := DefaultConfig()
	_, err := DebloatWithEvaluator(context.Background(), p.Params(), p.Space(), eval, cfg)
	if err == nil {
		t.Fatal("evaluator error should propagate")
	}
}

func TestDebloatEmptyObservations(t *testing.T) {
	// An evaluator that never finds anything: the pipeline must
	// terminate with an empty approximation, not fail.
	p := workload.MustCS(2, 64)
	eval := func(v []float64) (*array.IndexSet, error) {
		return array.NewIndexSet(p.Space()), nil
	}
	cfg := DefaultConfig()
	cfg.Fuzz.StopIter = 30
	res, err := DebloatWithEvaluator(context.Background(), p.Params(), p.Space(), eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approx.Empty() || len(res.Hulls) != 0 {
		t.Errorf("empty observations produced %d hulls, %d indices",
			len(res.Hulls), res.Approx.Len())
	}
}
