package load

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/array"
	"repro/internal/dataserve"
	"repro/internal/sdf"
)

// startVerifiedOrigin is startOrigin plus the trusted Merkle spec built
// from the origin file, the way a debloat manifest would carry it.
func startVerifiedOrigin(t testing.TB, space array.Space, chunk []int) (*httptest.Server, sdf.MerkleSpec) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "origin.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := dataserve.NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	f, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sdf.BuildDatasetMerkle(ds, sdf.ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	return ts, tree.SpecOf(ds)
}

// TestRunVerifiedLoad pins the harness wiring: Config.Verify arms the
// fetcher, every miss carries a checked proof, the window stats report
// the verify counters, and OnFetcher observes the run's fetcher.
func TestRunVerifiedLoad(t *testing.T) {
	ts, spec := startVerifiedOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	var observed *dataserve.Fetcher
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mode:        Closed,
		Popularity:  Uniform,
		Requests:    200,
		Concurrency: 4,
		Seed:        7,
		Verify:      &spec,
		OnFetcher:   func(f *dataserve.Fetcher) { observed = f },
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed == nil {
		t.Fatal("OnFetcher was not called")
	}
	if res.Requests != 200 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 200/0", res.Requests, res.Errors)
	}
	if res.Fetch.VerifyOK == 0 || res.Fetch.VerifyFailed != 0 {
		t.Fatalf("window verify ok=%d failed=%d, want >0/0", res.Fetch.VerifyOK, res.Fetch.VerifyFailed)
	}
	if st := observed.Stats(); st.VerifyOK == 0 {
		t.Fatalf("fetcher verify counters empty: %+v", st)
	}
}

// TestRunVerifiedLoadMeasuresBlastRadius pins that verification
// failures do not abort the run: a wrong root makes every miss fail
// terminally, the run completes, and the window counts the damage.
func TestRunVerifiedLoadMeasuresBlastRadius(t *testing.T) {
	ts, spec := startVerifiedOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	spec.Root[0] ^= 0xff
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mode:        Closed,
		Popularity:  Uniform,
		Requests:    100,
		Concurrency: 4,
		Seed:        7,
		Verify:      &spec,
		Fetcher:     dataserve.FetcherConfig{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 {
		t.Fatalf("run aborted at %d requests", res.Requests)
	}
	if res.Errors == 0 || res.Fetch.VerifyFailed == 0 {
		t.Fatalf("tampered root went unnoticed: errors=%d verify_failed=%d", res.Errors, res.Fetch.VerifyFailed)
	}
	if res.Fetch.VerifyOK != 0 {
		t.Fatalf("VerifyOK = %d under a wrong root", res.Fetch.VerifyOK)
	}
}
