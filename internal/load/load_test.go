package load

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/dataserve"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// startOrigin materializes a filled origin and serves it.
func startOrigin(t testing.TB, space array.Space, chunk []int) (*dataserve.Server, *httptest.Server) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "origin.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := dataserve.NewServer(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestRunClosedLoopDeterministicCount(t *testing.T) {
	_, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mode:        Closed,
		Popularity:  Zipf,
		Requests:    200,
		Concurrency: 4,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Fatalf("requests = %d, want exactly 200 (closed loop, count-bounded)", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible result: %+v", res)
	}
	// Zipf over a 16-chunk grid with 200 requests must hit the cache.
	if res.HitRate <= 0 {
		t.Fatalf("zipf run had zero cache hits: %+v", res.Fetch)
	}
	if res.Fetch.Elements != 200 {
		t.Fatalf("window elements = %d, want 200", res.Fetch.Elements)
	}
}

func TestRunWarmupExcludedFromWindow(t *testing.T) {
	_, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mode:        Closed,
		Popularity:  Uniform,
		Requests:    64,
		Concurrency: 2,
		Warmup:      128, // touches most of the 16 chunks
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 64 {
		t.Fatalf("requests = %d, want 64 (warmup excluded)", res.Requests)
	}
	if res.Fetch.Elements != 64 {
		t.Fatalf("window elements = %d, want 64", res.Fetch.Elements)
	}
	// A warmed cache over 16 chunks must serve mostly hits.
	if res.HitRate < 0.5 {
		t.Fatalf("warm run hit rate = %v, want >= 0.5", res.HitRate)
	}
}

func TestRunOpenLoopPacesAndSheds(t *testing.T) {
	_, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	start := time.Now()
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Mode:        Open,
		Popularity:  Uniform,
		Rate:        400,
		Requests:    100,
		Concurrency: 8,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 100 arrivals at 400/s is a 250ms schedule; allow generous slack
	// but catch a generator that ignores pacing entirely (instant) or
	// deadlocks (seconds).
	if elapsed < 200*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("open-loop pacing off: 100 arrivals at 400/s took %v", elapsed)
	}
	if res.Requests+res.Shed != 100 {
		t.Fatalf("requests(%d) + shed(%d) != 100 arrivals", res.Requests, res.Shed)
	}
	if res.Requests == 0 {
		t.Fatal("everything was shed")
	}
}

func TestRunRampStages(t *testing.T) {
	_, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	res, err := Run(context.Background(), Config{
		BaseURL:    ts.URL,
		Mode:       Closed,
		Popularity: Zipf,
		Seed:       11,
		Stages: []Stage{
			{Requests: 50, Concurrency: 2},
			{Requests: 100, Concurrency: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(res.Stages))
	}
	if res.Stages[0].Requests != 50 || res.Stages[1].Requests != 100 {
		t.Fatalf("stage counts = %d/%d, want 50/100", res.Stages[0].Requests, res.Stages[1].Requests)
	}
	if res.Requests != 150 {
		t.Fatalf("total = %d, want 150", res.Requests)
	}
	if res.Stages[1].Concurrency != 4 {
		t.Fatalf("stage 1 concurrency = %d", res.Stages[1].Concurrency)
	}
}

func TestRunSoakPollsSloz(t *testing.T) {
	srv, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	slo := obs.NewSLO(time.Minute, obs.SLOObjective{
		Name:         "chunk",
		LatencyBound: time.Second,
		Target:       0.99,
		Source:       srv.Recorder().SLOSource("chunk"),
	})
	srv.SetSLO(slo)
	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Mode:         Closed,
		Requests:     300,
		Concurrency:  2,
		Seed:         5,
		SoakInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoakPolls == 0 {
		t.Fatal("soak mode performed no /sloz polls")
	}
	if res.SoakViolations != 0 {
		t.Fatalf("healthy run reported %d budget violations", res.SoakViolations)
	}
}

func TestRunEmitsInstrumentsAndTraces(t *testing.T) {
	srv, ts := startOrigin(t, array.MustSpace(32, 32), []int{8, 8})
	serverTr := obs.NewTrace()
	srv.EnableTracing(serverTr, "kondo-serve")

	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := Run(ctx, Config{
		BaseURL:     ts.URL,
		Mode:        Closed,
		Requests:    40,
		Concurrency: 2,
		Seed:        9,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 {
		t.Fatalf("requests = %d", res.Requests)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kondo_load_requests_total 40",
		"kondo_load_errors_total 0",
		"kondo_load_request_seconds_count 40",
		"kondo_load_inflight",
		"kondo_load_stage",
		"kondo_load_target",
		"kondo_load_shed_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	// The run's fetch spans landed in the caller's trace, and the
	// server recorded child spans — stitching them yields 2 pids.
	if tr.Len() == 0 {
		t.Fatal("caller trace recorded nothing")
	}
	tr.MergeWire(2, serverTr.ExportWire("kondo-serve", 0))
	if pids := tr.PIDs(); len(pids) < 2 {
		t.Fatalf("stitched pids = %v", pids)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: "weird"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mode: Open, Requests: 5}); err == nil {
		t.Fatal("open loop without rate accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("unbounded run accepted")
	}
}
