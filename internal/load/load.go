// Package load is the heavy-traffic harness for the recovery plane:
// it drives a dataserve origin through the real caching Fetcher in
// open-loop (fixed arrival rate) or closed-loop (fixed concurrency)
// mode, with Zipfian or uniform chunk popularity, cold/warm cache
// mixes, ramp schedules, and a soak mode that asserts the origin's
// error budget is not exhausted mid-run (DESIGN.md §14).
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/array"
	"repro/internal/dataserve"
	"repro/internal/obs"
	"repro/internal/sdf"
)

// Mode selects how offered load is generated.
type Mode string

const (
	// Open is open-loop generation: arrivals fire at a fixed rate
	// regardless of completions, the way independent users do. Requests
	// that would exceed the in-flight cap are shed (counted, not sent),
	// so a saturated server shows up as shed + tail latency rather than
	// silently throttling the generator (coordinated omission).
	Open Mode = "open"
	// Closed is closed-loop generation: a fixed worker pool where each
	// worker issues its next request as soon as the previous completes —
	// the classic saturation-throughput harness.
	Closed Mode = "closed"
)

// Popularity selects the chunk-popularity distribution.
type Popularity string

const (
	// Zipf skews accesses onto a few hot chunks (s=1.2), the shape real
	// content traffic has; it exercises cache hits and singleflight.
	Zipf Popularity = "zipf"
	// Uniform spreads accesses evenly — the cache-hostile worst case.
	Uniform Popularity = "uniform"
)

// Stage is one step of a ramp schedule. Zero fields inherit the
// config's top-level values, so a schedule only states what changes.
type Stage struct {
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64 `json:"rate,omitempty"`
	// Concurrency is the closed-loop worker count (and the open-loop
	// in-flight cap).
	Concurrency int `json:"concurrency,omitempty"`
	// Requests bounds the stage by count (closed loop default).
	Requests int `json:"requests,omitempty"`
	// Duration bounds the stage by time (open loop default; whichever
	// of count/duration hits first ends the stage).
	Duration time.Duration `json:"duration,omitempty"`
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the dataserve origin (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Dataset names the dataset to hammer.
	Dataset string
	// Mode selects open- vs closed-loop generation (default Closed).
	Mode Mode
	// Popularity selects the chunk mix (default Zipf).
	Popularity Popularity
	// ZipfS is the Zipf skew parameter (> 1; default 1.2).
	ZipfS float64

	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Concurrency is the worker count (closed) or in-flight cap (open);
	// default 8.
	Concurrency int
	// Requests bounds the run by count; Duration by time. At least one
	// must be set (directly or via Stages).
	Requests int
	Duration time.Duration
	// Stages, when non-empty, replaces the single implicit stage with a
	// ramp schedule executed in order.
	Stages []Stage

	// Warmup issues this many requests before the measurement window
	// (same popularity mix), so the cache starts warm; 0 measures the
	// cold cache. Warmup traffic is excluded from the results.
	Warmup int

	// Seed makes the popularity sequence reproducible (0 seeds from the
	// clock).
	Seed int64

	// Fetcher overrides the client configuration (zero value = fetcher
	// defaults: 64 MiB cache, 4 attempts).
	Fetcher dataserve.FetcherConfig

	// Verify, when set, arms Merkle verification on the client: every
	// chunk miss is fetched with an inclusion proof and checked against
	// this manifest-derived spec before entering the cache. A
	// verification failure is terminal per chunk (counted in
	// Result.Fetch.VerifyFailed) — the load keeps running so the blast
	// radius is measured, not hidden behind the first error.
	Verify *sdf.MerkleSpec

	// OnFetcher, when set, observes the run's fetcher right after
	// construction — the hook a daemon uses to expose live verify
	// counters on its own /statusz.
	OnFetcher func(*dataserve.Fetcher)

	// SoakInterval, when positive, polls BaseURL/sloz every interval
	// during the run and records a violation whenever any objective's
	// error budget is exhausted — the mid-run assertion of soak mode.
	SoakInterval time.Duration

	// Registry, when set, receives kondo_load_* instruments.
	Registry *obs.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, errors.New("load: BaseURL required")
	}
	if c.Dataset == "" {
		c.Dataset = "data"
	}
	if c.Mode == "" {
		c.Mode = Closed
	}
	if c.Mode != Open && c.Mode != Closed {
		return c, fmt.Errorf("load: unknown mode %q", c.Mode)
	}
	if c.Popularity == "" {
		c.Popularity = Zipf
	}
	if c.Popularity != Zipf && c.Popularity != Uniform {
		return c, fmt.Errorf("load: unknown popularity %q", c.Popularity)
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if len(c.Stages) == 0 {
		c.Stages = []Stage{{}}
	}
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.Rate <= 0 {
			st.Rate = c.Rate
		}
		if st.Concurrency <= 0 {
			st.Concurrency = c.Concurrency
		}
		if st.Requests <= 0 && st.Duration <= 0 {
			st.Requests = c.Requests
			st.Duration = c.Duration
		}
		if st.Requests <= 0 && st.Duration <= 0 {
			return c, fmt.Errorf("load: stage %d unbounded (set Requests or Duration)", i)
		}
		if c.Mode == Open && st.Rate <= 0 {
			return c, fmt.Errorf("load: stage %d: open-loop mode needs a rate", i)
		}
	}
	return c, nil
}

// instruments is the generator's own kondo_load_* metric set.
type instruments struct {
	requests *obs.Counter
	errors   *obs.Counter
	shed     *obs.Counter
	latency  *obs.Histogram
	inflight *obs.Gauge
	stage    *obs.Gauge
	target   *obs.Gauge
}

func newInstruments(reg *obs.Registry) *instruments {
	if reg == nil {
		return nil
	}
	reg.SetHelp("kondo_load_requests_total", "Load-generator requests completed (measurement window only).")
	reg.SetHelp("kondo_load_errors_total", "Load-generator requests that failed.")
	reg.SetHelp("kondo_load_shed_total", "Open-loop arrivals shed because the in-flight cap was reached.")
	reg.SetHelp("kondo_load_request_seconds", "Load-generator request latency.")
	reg.SetHelp("kondo_load_inflight", "Requests currently in flight.")
	reg.SetHelp("kondo_load_stage", "Index of the ramp stage currently executing.")
	reg.SetHelp("kondo_load_target", "Current offered-load target: rate (open loop) or concurrency (closed loop).")
	bounds := make([]float64, 0, 12)
	for _, d := range []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 500 * time.Millisecond, time.Second,
	} {
		bounds = append(bounds, d.Seconds())
	}
	return &instruments{
		requests: reg.Counter("kondo_load_requests_total"),
		errors:   reg.Counter("kondo_load_errors_total"),
		shed:     reg.Counter("kondo_load_shed_total"),
		latency:  reg.Histogram("kondo_load_request_seconds", bounds),
		inflight: reg.Gauge("kondo_load_inflight"),
		stage:    reg.Gauge("kondo_load_stage"),
		target:   reg.Gauge("kondo_load_target"),
	}
}

// geometry is the generator's resolved view of the target dataset:
// enough to enumerate serving chunks and pick one element per chunk.
type geometry struct {
	dims, chunk []int
	grid        []int // chunks per axis
	chunks      int64 // total chunk count
}

func resolveGeometry(ctx context.Context, baseURL, dataset string) (geometry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/meta?dataset="+dataset, nil)
	if err != nil {
		return geometry{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return geometry{}, fmt.Errorf("load: resolving %q geometry: %w", dataset, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geometry{}, fmt.Errorf("load: meta of %q: status %s", dataset, resp.Status)
	}
	var meta dataserve.DatasetMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return geometry{}, fmt.Errorf("load: decoding meta of %q: %w", dataset, err)
	}
	g := geometry{dims: meta.Dims, chunk: meta.Chunk, chunks: 1}
	g.grid = make([]int, len(meta.Dims))
	for k, d := range meta.Dims {
		if k >= len(meta.Chunk) || meta.Chunk[k] <= 0 {
			return geometry{}, fmt.Errorf("load: meta of %q: bad chunk shape %v", dataset, meta.Chunk)
		}
		g.grid[k] = (d + meta.Chunk[k] - 1) / meta.Chunk[k]
		g.chunks *= int64(g.grid[k])
	}
	if g.chunks <= 0 {
		return geometry{}, fmt.Errorf("load: meta of %q: empty chunk grid", dataset)
	}
	return g, nil
}

// picker chooses the next element index under one goroutine's rng (not
// safe for concurrent use; each worker owns one).
type picker struct {
	g    geometry
	rng  *rand.Rand
	zipf *rand.Zipf // nil for uniform
	perm []int      // shuffled chunk ranks, so the Zipf-hot chunks are scattered
}

func newPicker(g geometry, pop Popularity, zipfS float64, seed int64) *picker {
	rng := rand.New(rand.NewSource(seed))
	p := &picker{g: g, rng: rng}
	if pop == Zipf && g.chunks > 1 {
		p.zipf = rand.NewZipf(rng, zipfS, 1, uint64(g.chunks-1))
		// Scatter the popularity ranks across the chunk grid so "hot"
		// does not mean "first rows of the array" (skipped for huge
		// grids, where rank order is as good a scatter as any).
		if g.chunks <= 1<<20 {
			p.perm = rng.Perm(int(g.chunks))
		}
	}
	return p
}

// next returns the element index of the next request: a chunk drawn
// from the popularity distribution, then a uniform element within it.
func (p *picker) next() array.Index {
	var lin int64
	if p.zipf != nil {
		lin = int64(p.zipf.Uint64())
		if p.perm != nil {
			lin = int64(p.perm[lin])
		}
	} else if p.g.chunks > 1 {
		lin = p.rng.Int63n(p.g.chunks)
	}
	ix := make(array.Index, len(p.g.dims))
	for k := len(p.g.grid) - 1; k >= 0; k-- {
		cc := int(lin % int64(p.g.grid[k]))
		lin /= int64(p.g.grid[k])
		lo := cc * p.g.chunk[k]
		hi := lo + p.g.chunk[k]
		if hi > p.g.dims[k] {
			hi = p.g.dims[k]
		}
		ix[k] = lo + p.rng.Intn(hi-lo)
	}
	return ix
}
