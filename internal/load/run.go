package load

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataserve"
	"repro/internal/obs"
)

// StageResult is one ramp stage's measured slice of the run.
type StageResult struct {
	Stage       int     `json:"stage"`
	Mode        string  `json:"mode"`
	Rate        float64 `json:"rate,omitempty"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed,omitempty"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`
}

// Result is one load run's measurement: counts, exact-sample latency
// quantiles, cache behaviour over the measurement window, and any soak
// violations.
type Result struct {
	Mode       string        `json:"mode"`
	Popularity string        `json:"popularity"`
	Requests   int64         `json:"requests"`
	Errors     int64         `json:"errors"`
	Shed       int64         `json:"shed,omitempty"`
	Seconds    float64       `json:"seconds"`
	Throughput float64       `json:"throughput_rps"`
	P50        float64       `json:"p50_seconds"`
	P95        float64       `json:"p95_seconds"`
	P99        float64       `json:"p99_seconds"`
	P999       float64       `json:"p999_seconds"`
	MaxLatency float64       `json:"max_seconds"`
	HitRate    float64       `json:"cache_hit_rate"`
	Stages     []StageResult `json:"stages,omitempty"`
	// SoakViolations counts /sloz polls that found an exhausted error
	// budget; SoakPolls counts polls performed.
	SoakPolls      int `json:"soak_polls,omitempty"`
	SoakViolations int `json:"soak_violations,omitempty"`
	// Fetch is the client-side cache/retry accounting over the
	// measurement window (warmup excluded).
	Fetch dataserve.FetchStats `json:"fetch"`
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %d req (%d err, %d shed) in %.2fs = %.0f rps; p50 %.3gms p95 %.3gms p99 %.3gms; cache %.1f%% hit",
		r.Mode, r.Popularity, r.Requests, r.Errors, r.Shed, r.Seconds, r.Throughput,
		r.P50*1e3, r.P95*1e3, r.P99*1e3, 100*r.HitRate)
}

// sampler accumulates per-request latencies for exact quantiles. The
// generator's request counts are bench-gated, so quantiles come from
// every sample rather than a histogram approximation.
type sampler struct {
	mu      sync.Mutex
	samples []float64
}

func (s *sampler) add(d time.Duration) {
	s.mu.Lock()
	s.samples = append(s.samples, d.Seconds())
	s.mu.Unlock()
}

// quantiles returns exact (nearest-rank interpolated) quantiles and
// the maximum. Call once, after the run.
func (s *sampler) quantiles(qs ...float64) ([]float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(qs))
	if len(s.samples) == 0 {
		return out, 0
	}
	sort.Float64s(s.samples)
	for i, q := range qs {
		pos := q * float64(len(s.samples)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = s.samples[lo]*(1-frac) + s.samples[hi]*frac
	}
	return out, s.samples[len(s.samples)-1]
}

// runner carries one Run's shared state across stages.
type runner struct {
	cfg     Config
	fetcher *dataserve.Fetcher
	geom    geometry
	inst    *instruments
	samples *sampler

	requests atomic.Int64
	errors   atomic.Int64
	shed     atomic.Int64
	inflight atomic.Int64
}

// Run executes the configured load against the origin, returning the
// measurement. It respects ctx (cancel ends the run early with the
// partial result); when ctx carries an obs.Trace, every request's
// fetch spans and trace-context stamps record into it.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	geom, err := resolveGeometry(ctx, cfg.BaseURL, cfg.Dataset)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:     cfg,
		fetcher: dataserve.NewFetcherConfig(cfg.BaseURL, nil, cfg.Fetcher),
		geom:    geom,
		inst:    newInstruments(cfg.Registry),
		samples: &sampler{},
	}
	if cfg.Verify != nil {
		if err := r.fetcher.SetVerify(cfg.Dataset, *cfg.Verify); err != nil {
			return nil, fmt.Errorf("load: arming verification: %w", err)
		}
	}
	if cfg.Registry != nil {
		r.fetcher.Register(cfg.Registry)
	}
	if cfg.OnFetcher != nil {
		cfg.OnFetcher(r.fetcher)
	}
	// Warmup: same mix, separate rng stream, nothing recorded.
	if cfg.Warmup > 0 {
		if err := r.warm(ctx); err != nil {
			return nil, err
		}
	}

	// Soak poller (if configured) runs for the whole measurement.
	var soakPolls, soakViolations atomic.Int64
	soakCtx, stopSoak := context.WithCancel(ctx)
	defer stopSoak()
	var soakWG sync.WaitGroup
	if cfg.SoakInterval > 0 {
		soakWG.Add(1)
		go func() {
			defer soakWG.Done()
			r.soak(soakCtx, &soakPolls, &soakViolations)
		}()
	}

	statsBase := r.fetcher.Stats()
	start := time.Now()
	var stages []StageResult
	for i, st := range cfg.Stages {
		if ctx.Err() != nil {
			break
		}
		if r.inst != nil {
			r.inst.stage.Set(float64(i))
		}
		sres, err := r.runStage(ctx, i, st)
		if err != nil {
			return nil, err
		}
		stages = append(stages, sres)
	}
	elapsed := time.Since(start)
	stopSoak()
	soakWG.Wait()
	// Final end-of-run assertion under the parent context, so the
	// budget verdict covers the whole run including its last requests.
	if cfg.SoakInterval > 0 && ctx.Err() == nil {
		r.soakPoll(ctx, &soakPolls, &soakViolations)
	}

	qs, maxLat := r.samples.quantiles(0.50, 0.95, 0.99, 0.999)
	stats := r.fetcher.Stats()
	window := dataserve.FetchStats{
		Elements:     stats.Elements - statsBase.Elements,
		RoundTrips:   stats.RoundTrips - statsBase.RoundTrips,
		Retries:      stats.Retries - statsBase.Retries,
		CacheHits:    stats.CacheHits - statsBase.CacheHits,
		CacheMisses:  stats.CacheMisses - statsBase.CacheMisses,
		FlightShared: stats.FlightShared - statsBase.FlightShared,
		CacheEntries: stats.CacheEntries,
		CacheBytes:   stats.CacheBytes,
		VerifyOK:     stats.VerifyOK - statsBase.VerifyOK,
		VerifyFailed: stats.VerifyFailed - statsBase.VerifyFailed,
	}
	res := &Result{
		Mode:           string(cfg.Mode),
		Popularity:     string(cfg.Popularity),
		Requests:       r.requests.Load(),
		Errors:         r.errors.Load(),
		Shed:           r.shed.Load(),
		Seconds:        elapsed.Seconds(),
		P50:            qs[0],
		P95:            qs[1],
		P99:            qs[2],
		P999:           qs[3],
		MaxLatency:     maxLat,
		HitRate:        window.HitRate(),
		Stages:         stages,
		SoakPolls:      int(soakPolls.Load()),
		SoakViolations: int(soakViolations.Load()),
		Fetch:          window,
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
	}
	return res, nil
}

// warm issues the warmup requests closed-loop at the configured
// concurrency, ignoring errors (a cold origin warming up may flap).
func (r *runner) warm(ctx context.Context) error {
	var remaining atomic.Int64
	remaining.Store(int64(r.cfg.Warmup))
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := newPicker(r.geom, r.cfg.Popularity, r.cfg.ZipfS, seed)
			for ctx.Err() == nil && remaining.Add(-1) >= 0 {
				_, _ = r.fetcher.FetchContext(ctx, r.cfg.Dataset, p.next())
			}
		}(r.cfg.Seed ^ int64(0x5eed0000+w))
	}
	wg.Wait()
	return ctx.Err()
}

// soak polls /sloz at the configured interval (starting immediately,
// so short runs still assert at least once), counting polls that
// report an exhausted error budget.
func (r *runner) soak(ctx context.Context, polls, violations *atomic.Int64) {
	t := time.NewTicker(r.cfg.SoakInterval)
	defer t.Stop()
	for {
		r.soakPoll(ctx, polls, violations)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// soakPoll performs one /sloz assertion. Transport or decode failures
// are skipped silently (the origin may still be coming up); only a
// well-formed report counts as a poll.
func (r *runner) soakPoll(ctx context.Context, polls, violations *atomic.Int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/sloz", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	var rep obs.SLOReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	polls.Add(1)
	if rep.Exhausted() {
		violations.Add(1)
	}
}

// issue performs one measured request.
func (r *runner) issue(ctx context.Context, p *picker) {
	ix := p.next()
	r.inflight.Add(1)
	if r.inst != nil {
		r.inst.inflight.Set(float64(r.inflight.Load()))
	}
	t0 := time.Now()
	_, err := r.fetcher.FetchContext(ctx, r.cfg.Dataset, ix)
	d := time.Since(t0)
	r.inflight.Add(-1)
	r.requests.Add(1)
	r.samples.add(d)
	if r.inst != nil {
		r.inst.requests.Inc()
		r.inst.latency.Observe(d.Seconds())
		r.inst.inflight.Set(float64(r.inflight.Load()))
	}
	if err != nil && ctx.Err() == nil {
		r.errors.Add(1)
		if r.inst != nil {
			r.inst.errors.Inc()
		}
	}
}

// runStage executes one ramp stage in the configured mode.
func (r *runner) runStage(ctx context.Context, idx int, st Stage) (StageResult, error) {
	base := StageResult{
		Stage:       idx,
		Mode:        string(r.cfg.Mode),
		Rate:        st.Rate,
		Concurrency: st.Concurrency,
	}
	req0 := r.requests.Load()
	err0 := r.errors.Load()
	shed0 := r.shed.Load()
	start := time.Now()
	var err error
	if r.cfg.Mode == Open {
		err = r.runOpen(ctx, st)
	} else {
		base.Rate = 0
		err = r.runClosed(ctx, st)
	}
	if err != nil {
		return base, err
	}
	base.Seconds = time.Since(start).Seconds()
	base.Requests = r.requests.Load() - req0
	base.Errors = r.errors.Load() - err0
	base.Shed = r.shed.Load() - shed0
	if base.Seconds > 0 {
		base.Throughput = float64(base.Requests) / base.Seconds
	}
	return base, nil
}

// runClosed runs a fixed worker pool; each worker fires its next
// request as soon as the previous one returns, until the stage's
// request count (or duration, or ctx) is exhausted. With a request
// count and no errors the completed-request total is deterministic.
func (r *runner) runClosed(ctx context.Context, st Stage) error {
	if r.inst != nil {
		r.inst.target.Set(float64(st.Concurrency))
	}
	sctx := ctx
	var cancel context.CancelFunc
	if st.Duration > 0 {
		sctx, cancel = context.WithTimeout(ctx, st.Duration)
		defer cancel()
	}
	var remaining atomic.Int64
	if st.Requests > 0 {
		remaining.Store(int64(st.Requests))
	} else {
		remaining.Store(math.MaxInt64)
	}
	var wg sync.WaitGroup
	for w := 0; w < st.Concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := newPicker(r.geom, r.cfg.Popularity, r.cfg.ZipfS, seed)
			for sctx.Err() == nil && remaining.Add(-1) >= 0 {
				r.issue(sctx, p)
			}
		}(r.cfg.Seed + int64(w)*7919)
	}
	wg.Wait()
	// The parent dying is an error; the stage timer firing is not.
	return ctx.Err()
}

// runOpen paces arrivals at the stage rate regardless of completions.
// Arrivals past the in-flight cap are shed and counted — back-pressure
// must be visible, not silently absorbed into the arrival schedule.
func (r *runner) runOpen(ctx context.Context, st Stage) error {
	if r.inst != nil {
		r.inst.target.Set(st.Rate)
	}
	interval := time.Duration(float64(time.Second) / st.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := st.Requests
	if total <= 0 {
		total = int(st.Rate*st.Duration.Seconds() + 0.5)
	}
	deadline := time.Time{}
	if st.Duration > 0 {
		deadline = time.Now().Add(st.Duration)
	}

	sem := make(chan struct{}, st.Concurrency)
	var wg sync.WaitGroup
	// One picker per in-flight slot, so concurrent requests never share
	// an rng; the dispatcher hands out slot-bound pickers.
	pickers := make(chan *picker, st.Concurrency)
	for i := 0; i < st.Concurrency; i++ {
		pickers <- newPicker(r.geom, r.cfg.Popularity, r.cfg.ZipfS, r.cfg.Seed+int64(i)*104729)
	}

	startAt := time.Now()
	for i := 0; total <= 0 || i < total; i++ {
		if ctx.Err() != nil {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		// Open-loop pacing: arrival i fires at start + i*interval. If
		// the generator falls behind it catches up by firing
		// immediately (no sleep), preserving the offered rate.
		next := startAt.Add(time.Duration(i) * interval)
		if wait := time.Until(next); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		select {
		case sem <- struct{}{}:
			p := <-pickers
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.issue(ctx, p)
				pickers <- p
				<-sem
			}()
		default:
			// In-flight cap reached: shed the arrival.
			r.shed.Add(1)
			if r.inst != nil {
				r.inst.shed.Inc()
			}
		}
	}
	wg.Wait()
	return ctx.Err()
}
