package array

import (
	"fmt"
	"sort"
)

// IndexSet is a set of indices within one Space. It is the
// representation of the paper's index subsets: I_v (accesses of one
// run), IS = ∪ I_v (accumulated fuzz observations), I_Θ (ground
// truth), and I'_Θ (the carved approximation). Indices are stored by
// their row-major linear position.
//
// The set is backed by one of two representations and migrates
// between them based on how it is populated:
//
//   - a hash map (the historical backend), optimal for the fuzzer's
//     scattered point inserts, where membership and insertion are O(1);
//   - sorted run-length intervals, optimal for the scanline
//     rasterizer, which emits whole rows at a time: a run of any
//     length inserts in O(log r) (amortized O(1) when runs arrive in
//     ascending order), and union/intersection walk run-at-a-time
//     instead of element-at-a-time.
//
// A set starts on the map backend; the first AddRun (or a union with
// a run-backed set) converts it to runs. The migration is a
// deterministic function of the operation sequence, and every public
// operation is representation-independent, so two sets holding the
// same indices are Equal regardless of backend.
//
// IndexSet is not safe for concurrent mutation.
type IndexSet struct {
	space Space
	// m is the hash backend; nil when the set is run-backed.
	m map[int64]struct{}
	// runs is the interval backend: sorted, pairwise disjoint,
	// non-adjacent (maximal) inclusive [Lo, Hi] spans.
	runs []Run
	// n is the run-backend cardinality (maintained incrementally so
	// Len stays O(1)).
	n int64
	// scratch is a reusable buffer for run-at-a-time unions, retained
	// across calls so the steady-state union inner loop does not
	// allocate.
	scratch []Run
}

// Run is one inclusive span [Lo, Hi] of row-major linear positions.
type Run struct {
	Lo, Hi int64
}

// NewIndexSet returns an empty set over the given space.
func NewIndexSet(space Space) *IndexSet {
	return &IndexSet{space: space, m: make(map[int64]struct{})}
}

// Space returns the index space the set ranges over.
func (s *IndexSet) Space() Space { return s.space }

// runBacked reports whether the set currently uses the interval
// backend.
func (s *IndexSet) runBacked() bool { return s.m == nil }

// toRuns migrates the set from the hash backend to the interval
// backend: sort the keys, coalesce adjacent positions into runs. The
// result is canonical, so the migration is deterministic regardless
// of map iteration order.
func (s *IndexSet) toRuns() {
	if s.m == nil {
		return
	}
	lins := make([]int64, 0, len(s.m))
	for lin := range s.m {
		lins = append(lins, lin)
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	s.runs = s.runs[:0]
	for _, lin := range lins {
		if k := len(s.runs); k > 0 && s.runs[k-1].Hi+1 == lin {
			s.runs[k-1].Hi = lin
		} else {
			s.runs = append(s.runs, Run{lin, lin})
		}
	}
	s.n = int64(len(lins))
	s.m = nil
}

// Add inserts ix into the set. It reports whether the index was newly
// added (false if already present) and returns an error for indices
// outside the space.
func (s *IndexSet) Add(ix Index) (bool, error) {
	lin, err := s.space.Linear(ix)
	if err != nil {
		return false, err
	}
	return s.AddLinear(lin), nil
}

// AddLinear inserts a row-major linear position directly. Callers that
// already hold linear positions (e.g. the audit offset resolver) avoid
// the tuple round-trip.
func (s *IndexSet) AddLinear(lin int64) bool {
	if lin < 0 || lin >= s.space.Size() {
		return false
	}
	if s.m != nil {
		if _, ok := s.m[lin]; ok {
			return false
		}
		s.m[lin] = struct{}{}
		return true
	}
	return s.addRun(lin, lin) > 0
}

// AddRun inserts the inclusive span [lo, hi] of linear positions and
// returns the number of newly added indices. This is the scanline
// rasterizer's emission primitive: a whole lattice row costs one
// ordered-interval insertion instead of one hash insert per index.
// The span must lie inside the space.
//
// AddRun migrates a map-backed set to the interval backend first (a
// deterministic conversion), so sets that interleave point adds and
// run adds stay consistent.
func (s *IndexSet) AddRun(lo, hi int64) (int64, error) {
	if lo > hi || lo < 0 || hi >= s.space.Size() {
		return 0, fmt.Errorf("array: run [%d, %d] out of range for space of size %d", lo, hi, s.space.Size())
	}
	s.toRuns()
	return s.addRun(lo, hi), nil
}

// addRun inserts [lo, hi] into the run backend and returns the count
// of newly covered positions. Appending at or beyond the tail — the
// scanline emission order — is O(1) amortized.
func (s *IndexSet) addRun(lo, hi int64) int64 {
	rs := s.runs
	if k := len(rs); k == 0 || lo > rs[k-1].Hi+1 {
		s.runs = append(rs, Run{lo, hi})
		s.n += hi - lo + 1
		return hi - lo + 1
	}
	if k := len(rs); lo >= rs[k-1].Lo {
		// Tail overlap/adjacency fast path (ascending emission). Runs
		// are sorted and disjoint, so only the last run can interact.
		last := &s.runs[k-1]
		if hi <= last.Hi {
			return 0
		}
		added := hi - last.Hi
		last.Hi = hi
		s.n += added
		return added
	}
	// General case: binary search for the first run that overlaps or
	// touches [lo, hi], merge the covered range, splice.
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi >= lo-1 })
	if i == len(rs) || rs[i].Lo > hi+1 {
		// Fully disjoint: insert at i.
		rs = append(rs, Run{})
		copy(rs[i+1:], rs[i:])
		rs[i] = Run{lo, hi}
		s.runs = rs
		s.n += hi - lo + 1
		return hi - lo + 1
	}
	nlo, nhi := lo, hi
	var covered int64
	j := i
	for j < len(rs) && rs[j].Lo <= hi+1 {
		if rs[j].Lo < nlo {
			nlo = rs[j].Lo
		}
		if rs[j].Hi > nhi {
			nhi = rs[j].Hi
		}
		if olo, ohi := max64(rs[j].Lo, lo), min64(rs[j].Hi, hi); olo <= ohi {
			covered += ohi - olo + 1
		}
		j++
	}
	added := (hi - lo + 1) - covered
	rs[i] = Run{nlo, nhi}
	if j > i+1 {
		rs = append(rs[:i+1], rs[j:]...)
	}
	s.runs = rs
	s.n += added
	return added
}

// Contains reports whether ix is in the set. Indices outside the space
// are never contained.
func (s *IndexSet) Contains(ix Index) bool {
	lin, err := s.space.Linear(ix)
	if err != nil {
		return false
	}
	return s.ContainsLinear(lin)
}

// ContainsLinear reports whether the linear position is in the set.
func (s *IndexSet) ContainsLinear(lin int64) bool {
	if s.m != nil {
		_, ok := s.m[lin]
		return ok
	}
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi >= lin })
	return i < len(s.runs) && s.runs[i].Lo <= lin
}

// Len returns the number of indices in the set.
func (s *IndexSet) Len() int {
	if s.m != nil {
		return len(s.m)
	}
	return int(s.n)
}

// Empty reports whether the set has no elements. A fuzz seed whose
// debloat test yields an empty set is a "not useful" parameter value
// (paper §IV).
func (s *IndexSet) Empty() bool { return s.Len() == 0 }

// Reset empties the set while retaining the backend's allocated
// capacity (map buckets, run and scratch buffers), so refilling it
// does not re-allocate. The current backend is kept.
func (s *IndexSet) Reset() {
	if s.m != nil {
		clear(s.m)
	}
	s.runs = s.runs[:0]
	s.n = 0
}

// UnionWith adds every element of o into s. The two sets must range
// over the same space. When both sets are run-backed the union is a
// single run-at-a-time merge sweep; a run-backed o migrates a
// map-backed s to runs first.
func (s *IndexSet) UnionWith(o *IndexSet) {
	switch {
	case s.m != nil && o.m != nil:
		for lin := range o.m {
			s.m[lin] = struct{}{}
		}
	case o.m != nil: // s run-backed
		for lin := range o.m {
			s.addRun(lin, lin)
		}
	default: // o run-backed
		s.toRuns()
		s.unionRuns(o.runs, o.n)
	}
}

// unionRuns merges the sorted run list other into s's runs with one
// linear sweep through both lists. The output is built in the
// retained scratch buffer and the two buffers are swapped, so the
// steady-state sweep performs no allocations.
func (s *IndexSet) unionRuns(other []Run, otherN int64) {
	if len(other) == 0 {
		return
	}
	if len(s.runs) == 0 {
		s.runs = append(s.runs[:0], other...)
		s.n = otherN
		return
	}
	a, b := s.runs, other
	out := s.scratch[:0]
	var n int64
	i, j := 0, 0
	take := func() Run {
		if j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo) {
			r := a[i]
			i++
			return r
		}
		r := b[j]
		j++
		return r
	}
	cur := take()
	for i < len(a) || j < len(b) {
		r := take()
		if r.Lo <= cur.Hi+1 {
			if r.Hi > cur.Hi {
				cur.Hi = r.Hi
			}
		} else {
			out = append(out, cur)
			n += cur.Hi - cur.Lo + 1
			cur = r
		}
	}
	out = append(out, cur)
	n += cur.Hi - cur.Lo + 1
	s.scratch = s.runs[:0]
	s.runs = out
	s.n = n
}

// IntersectLen returns |s ∩ o| without materializing the
// intersection. Precision and recall only need this cardinality.
// Run-backed pairs overlap run-at-a-time with a two-pointer walk;
// mixed pairs probe the hash side's elements against the run side.
func (s *IndexSet) IntersectLen(o *IndexSet) int {
	switch {
	case s.m != nil && o.m != nil:
		small, big := s, o
		if big.Len() < small.Len() {
			small, big = big, small
		}
		n := 0
		for lin := range small.m {
			if _, ok := big.m[lin]; ok {
				n++
			}
		}
		return n
	case s.m == nil && o.m == nil:
		var n int64
		a, b := s.runs, o.runs
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if lo, hi := max64(a[i].Lo, b[j].Lo), min64(a[i].Hi, b[j].Hi); lo <= hi {
				n += hi - lo + 1
			}
			if a[i].Hi < b[j].Hi {
				i++
			} else {
				j++
			}
		}
		return int(n)
	default:
		mapped, runned := s, o
		if mapped.m == nil {
			mapped, runned = o, s
		}
		n := 0
		for lin := range mapped.m {
			if runned.ContainsLinear(lin) {
				n++
			}
		}
		return n
	}
}

// Each calls fn for every index in the set, stopping early if fn
// returns false. A run-backed set is visited in ascending row-major
// order; a map-backed set in unspecified order. The Index passed to
// fn is fresh per call and may be retained.
func (s *IndexSet) Each(fn func(Index) bool) {
	s.EachLinear(func(lin int64) bool {
		ix, err := s.space.Unlinear(lin)
		if err != nil {
			return true // unreachable by construction
		}
		return fn(ix)
	})
}

// EachLinear calls fn for every linear position in the set, stopping
// early if fn returns false. Visit order matches Each.
func (s *IndexSet) EachLinear(fn func(int64) bool) {
	if s.m != nil {
		for lin := range s.m {
			if !fn(lin) {
				return
			}
		}
		return
	}
	for _, r := range s.runs {
		for lin := r.Lo; lin <= r.Hi; lin++ {
			if !fn(lin) {
				return
			}
		}
	}
}

// EachRun calls fn for every maximal run of consecutive linear
// positions in ascending order, stopping early if fn returns false.
// On a run-backed set this is a direct O(r) walk; a map-backed set
// sorts a copy of its elements first (allocating).
func (s *IndexSet) EachRun(fn func(lo, hi int64) bool) {
	if s.m == nil {
		for _, r := range s.runs {
			if !fn(r.Lo, r.Hi) {
				return
			}
		}
		return
	}
	lins := make([]int64, 0, len(s.m))
	for lin := range s.m {
		lins = append(lins, lin)
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	for i := 0; i < len(lins); {
		j := i + 1
		for j < len(lins) && lins[j] == lins[j-1]+1 {
			j++
		}
		if !fn(lins[i], lins[j-1]) {
			return
		}
		i = j
	}
}

// RunCount returns the number of maximal runs the set stores: the
// interval count for a run-backed set, or the element count for a
// map-backed one (each element its own run in the worst case). It is
// a fragmentation measure, not part of the set semantics.
func (s *IndexSet) RunCount() int {
	if s.m != nil {
		return len(s.m)
	}
	return len(s.runs)
}

// Clone returns a deep copy of the set (on the same backend).
func (s *IndexSet) Clone() *IndexSet {
	c := &IndexSet{space: s.space}
	if s.m != nil {
		c.m = make(map[int64]struct{}, len(s.m))
		for lin := range s.m {
			c.m[lin] = struct{}{}
		}
		return c
	}
	c.runs = append([]Run(nil), s.runs...)
	c.n = s.n
	return c
}

// Equal reports whether two sets over the same space hold exactly the
// same indices, regardless of backend.
func (s *IndexSet) Equal(o *IndexSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	switch {
	case s.m != nil && o.m != nil:
		for lin := range s.m {
			if _, ok := o.m[lin]; !ok {
				return false
			}
		}
		return true
	case s.m == nil && o.m == nil:
		// Both canonical run lists: equal sets iff equal runs.
		for i, r := range s.runs {
			if o.runs[i] != r {
				return false
			}
		}
		return true
	default:
		mapped, runned := s, o
		if mapped.m == nil {
			mapped, runned = o, s
		}
		for lin := range mapped.m {
			if !runned.ContainsLinear(lin) {
				return false
			}
		}
		return true
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
