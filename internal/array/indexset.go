package array

// IndexSet is a set of indices within one Space. It is the
// representation of the paper's index subsets: I_v (accesses of one
// run), IS = ∪ I_v (accumulated fuzz observations), I_Θ (ground
// truth), and I'_Θ (the carved approximation). Indices are stored by
// their row-major linear position, which makes membership and set
// algebra O(1) per element.
//
// IndexSet is not safe for concurrent mutation.
type IndexSet struct {
	space Space
	m     map[int64]struct{}
}

// NewIndexSet returns an empty set over the given space.
func NewIndexSet(space Space) *IndexSet {
	return &IndexSet{space: space, m: make(map[int64]struct{})}
}

// Space returns the index space the set ranges over.
func (s *IndexSet) Space() Space { return s.space }

// Add inserts ix into the set. It reports whether the index was newly
// added (false if already present) and returns an error for indices
// outside the space.
func (s *IndexSet) Add(ix Index) (bool, error) {
	lin, err := s.space.Linear(ix)
	if err != nil {
		return false, err
	}
	if _, ok := s.m[lin]; ok {
		return false, nil
	}
	s.m[lin] = struct{}{}
	return true, nil
}

// AddLinear inserts a row-major linear position directly. Callers that
// already hold linear positions (e.g. the audit offset resolver) avoid
// the tuple round-trip.
func (s *IndexSet) AddLinear(lin int64) bool {
	if lin < 0 || lin >= s.space.Size() {
		return false
	}
	if _, ok := s.m[lin]; ok {
		return false
	}
	s.m[lin] = struct{}{}
	return true
}

// Contains reports whether ix is in the set. Indices outside the space
// are never contained.
func (s *IndexSet) Contains(ix Index) bool {
	lin, err := s.space.Linear(ix)
	if err != nil {
		return false
	}
	_, ok := s.m[lin]
	return ok
}

// ContainsLinear reports whether the linear position is in the set.
func (s *IndexSet) ContainsLinear(lin int64) bool {
	_, ok := s.m[lin]
	return ok
}

// Len returns the number of indices in the set.
func (s *IndexSet) Len() int { return len(s.m) }

// Empty reports whether the set has no elements. A fuzz seed whose
// debloat test yields an empty set is a "not useful" parameter value
// (paper §IV).
func (s *IndexSet) Empty() bool { return len(s.m) == 0 }

// UnionWith adds every element of o into s. The two sets must range
// over the same space.
func (s *IndexSet) UnionWith(o *IndexSet) {
	for lin := range o.m {
		s.m[lin] = struct{}{}
	}
}

// IntersectLen returns |s ∩ o| without materializing the
// intersection. Precision and recall only need this cardinality.
func (s *IndexSet) IntersectLen(o *IndexSet) int {
	small, big := s, o
	if big.Len() < small.Len() {
		small, big = big, small
	}
	n := 0
	for lin := range small.m {
		if _, ok := big.m[lin]; ok {
			n++
		}
	}
	return n
}

// Each calls fn for every index in the set, in unspecified order,
// stopping early if fn returns false. The Index passed to fn is fresh
// per call and may be retained.
func (s *IndexSet) Each(fn func(Index) bool) {
	for lin := range s.m {
		ix, err := s.space.Unlinear(lin)
		if err != nil {
			continue // unreachable by construction
		}
		if !fn(ix) {
			return
		}
	}
}

// EachLinear calls fn for every linear position in the set, stopping
// early if fn returns false.
func (s *IndexSet) EachLinear(fn func(int64) bool) {
	for lin := range s.m {
		if !fn(lin) {
			return
		}
	}
}

// Clone returns a deep copy of the set.
func (s *IndexSet) Clone() *IndexSet {
	c := NewIndexSet(s.space)
	for lin := range s.m {
		c.m[lin] = struct{}{}
	}
	return c
}

// Equal reports whether two sets over the same space hold exactly the
// same indices.
func (s *IndexSet) Equal(o *IndexSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for lin := range s.m {
		if _, ok := o.m[lin]; !ok {
			return false
		}
	}
	return true
}
