package array

import (
	"fmt"
)

// Layout maps index tuples to byte offsets within a dataset's data
// region. Kondo's audit needs this mapping in both directions: fuzzing
// and carving happen in index space, while system-call events carry
// byte offsets (paper §IV-C).
type Layout interface {
	// Offset returns the byte offset (relative to the start of the
	// dataset's data region) of the element at ix.
	Offset(ix Index) (int64, error)
	// IndexAt is the inverse of Offset. The offset must be
	// element-aligned.
	IndexAt(off int64) (Index, error)
	// DataSize returns the total size in bytes of the data region.
	DataSize() int64
}

// ContiguousLayout stores elements in row-major order, back to back.
type ContiguousLayout struct {
	space Space
	elem  int64 // element size in bytes
}

// NewContiguousLayout returns the row-major layout for the given
// space and element type.
func NewContiguousLayout(space Space, dt DType) *ContiguousLayout {
	return &ContiguousLayout{space: space, elem: int64(dt.Size())}
}

// Offset implements Layout.
func (l *ContiguousLayout) Offset(ix Index) (int64, error) {
	lin, err := l.space.Linear(ix)
	if err != nil {
		return 0, err
	}
	return lin * l.elem, nil
}

// IndexAt implements Layout.
func (l *ContiguousLayout) IndexAt(off int64) (Index, error) {
	if off%l.elem != 0 {
		return nil, fmt.Errorf("array: offset %d not aligned to %d-byte elements", off, l.elem)
	}
	return l.space.Unlinear(off / l.elem)
}

// DataSize implements Layout.
func (l *ContiguousLayout) DataSize() int64 { return l.space.Size() * l.elem }

// ChunkedLayout stores the array as a grid of fixed-shape chunks, each
// chunk contiguous (row-major within the chunk), chunks ordered
// row-major by chunk coordinate. Edge chunks are stored at full chunk
// size (as HDF5 does for fixed datasets), so the mapping stays
// bijective and cheap.
type ChunkedLayout struct {
	space     Space
	chunk     []int // chunk shape per dimension
	chunkGrid Space // space of chunk coordinates
	chunkVol  int64 // elements per chunk
	elem      int64
}

// NewChunkedLayout returns a chunked layout with the given chunk
// shape. Every chunk extent must be positive and no larger than the
// corresponding space extent.
func NewChunkedLayout(space Space, dt DType, chunk []int) (*ChunkedLayout, error) {
	if len(chunk) != space.Rank() {
		return nil, fmt.Errorf("array: chunk rank %d != space rank %d", len(chunk), space.Rank())
	}
	gridDims := make([]int, space.Rank())
	vol := int64(1)
	for k, c := range chunk {
		if c <= 0 {
			return nil, fmt.Errorf("array: invalid chunk extent %d", c)
		}
		gridDims[k] = (space.Dim(k) + c - 1) / c
		vol *= int64(c)
	}
	grid, err := NewSpace(gridDims...)
	if err != nil {
		return nil, err
	}
	cs := make([]int, len(chunk))
	copy(cs, chunk)
	return &ChunkedLayout{
		space:     space,
		chunk:     cs,
		chunkGrid: grid,
		chunkVol:  vol,
		elem:      int64(dt.Size()),
	}, nil
}

// ChunkShape returns a copy of the chunk extents.
func (l *ChunkedLayout) ChunkShape() []int {
	c := make([]int, len(l.chunk))
	copy(c, l.chunk)
	return c
}

// NumChunks returns the total number of chunks.
func (l *ChunkedLayout) NumChunks() int64 { return l.chunkGrid.Size() }

// Grid returns the space of chunk coordinates (the chunk grid).
func (l *ChunkedLayout) Grid() Space { return l.chunkGrid }

// ChunkSizeBytes returns the stored size of one chunk in bytes.
func (l *ChunkedLayout) ChunkSizeBytes() int64 { return l.chunkVol * l.elem }

// ChunkCoord returns the chunk coordinate containing ix and the
// intra-chunk index.
func (l *ChunkedLayout) ChunkCoord(ix Index) (chunk Index, within Index, err error) {
	if !l.space.Contains(ix) {
		return nil, nil, fmt.Errorf("array: index %v out of bounds", ix)
	}
	chunk = make(Index, len(ix))
	within = make(Index, len(ix))
	for k, v := range ix {
		chunk[k] = v / l.chunk[k]
		within[k] = v % l.chunk[k]
	}
	return chunk, within, nil
}

// ChunkLinear returns the row-major linear id of a chunk coordinate.
func (l *ChunkedLayout) ChunkLinear(chunk Index) (int64, error) {
	return l.chunkGrid.Linear(chunk)
}

// Offset implements Layout.
func (l *ChunkedLayout) Offset(ix Index) (int64, error) {
	chunk, within, err := l.ChunkCoord(ix)
	if err != nil {
		return 0, err
	}
	chunkLin, err := l.chunkGrid.Linear(chunk)
	if err != nil {
		return 0, err
	}
	var withinLin int64
	for k, v := range within {
		withinLin = withinLin*int64(l.chunk[k]) + int64(v)
	}
	return (chunkLin*l.chunkVol + withinLin) * l.elem, nil
}

// IndexAt implements Layout.
func (l *ChunkedLayout) IndexAt(off int64) (Index, error) {
	if off%l.elem != 0 {
		return nil, fmt.Errorf("array: offset %d not aligned to %d-byte elements", off, l.elem)
	}
	lin := off / l.elem
	chunkLin := lin / l.chunkVol
	withinLin := lin % l.chunkVol
	chunk, err := l.chunkGrid.Unlinear(chunkLin)
	if err != nil {
		return nil, fmt.Errorf("array: offset %d beyond data region: %w", off, err)
	}
	ix := make(Index, len(l.chunk))
	for k := len(l.chunk) - 1; k >= 0; k-- {
		c := int64(l.chunk[k])
		ix[k] = chunk[k]*l.chunk[k] + int(withinLin%c)
		withinLin /= c
	}
	if !l.space.Contains(ix) {
		// Offset lands in the padding of an edge chunk: a real byte
		// position but not a logical element.
		return nil, fmt.Errorf("array: offset %d falls in edge-chunk padding", off)
	}
	return ix, nil
}

// DataSize implements Layout. Edge chunks are padded to full size.
func (l *ChunkedLayout) DataSize() int64 {
	return l.chunkGrid.Size() * l.chunkVol * l.elem
}
