package array

import (
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty dims should error")
	}
	if _, err := NewSpace(10, 0); err == nil {
		t.Error("zero extent should error")
	}
	if _, err := NewSpace(10, -3); err == nil {
		t.Error("negative extent should error")
	}
	s, err := NewSpace(4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 3 || s.Size() != 120 {
		t.Errorf("Rank=%d Size=%d, want 3, 120", s.Rank(), s.Size())
	}
}

func TestSpaceContains(t *testing.T) {
	s := MustSpace(10, 20)
	cases := []struct {
		ix   Index
		want bool
	}{
		{NewIndex(0, 0), true},
		{NewIndex(9, 19), true},
		{NewIndex(10, 0), false},
		{NewIndex(0, 20), false},
		{NewIndex(-1, 0), false},
		{NewIndex(1, 2, 3), false}, // rank mismatch
		{NewIndex(1), false},
	}
	for _, c := range cases {
		if got := s.Contains(c.ix); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.ix, got, c.want)
		}
	}
}

func TestLinearRowMajor(t *testing.T) {
	s := MustSpace(3, 4)
	// Row-major: last dimension fastest.
	want := int64(0)
	s.Each(func(ix Index) bool {
		lin, err := s.Linear(ix)
		if err != nil {
			t.Fatalf("Linear(%v): %v", ix, err)
		}
		if lin != want {
			t.Fatalf("Linear(%v) = %d, want %d", ix, lin, want)
		}
		want++
		return true
	})
	if want != 12 {
		t.Errorf("Each visited %d indices, want 12", want)
	}
}

func TestLinearUnlinearRoundTrip(t *testing.T) {
	s := MustSpace(5, 7, 3)
	for lin := int64(0); lin < s.Size(); lin++ {
		ix, err := s.Unlinear(lin)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Linear(ix)
		if err != nil {
			t.Fatal(err)
		}
		if back != lin {
			t.Fatalf("round trip %d -> %v -> %d", lin, ix, back)
		}
	}
}

func TestLinearOutOfBounds(t *testing.T) {
	s := MustSpace(5, 5)
	if _, err := s.Linear(NewIndex(5, 0)); err == nil {
		t.Error("out-of-bounds Linear should error")
	}
	if _, err := s.Unlinear(25); err == nil {
		t.Error("out-of-range Unlinear should error")
	}
	if _, err := s.Unlinear(-1); err == nil {
		t.Error("negative Unlinear should error")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := MustSpace(10, 10)
	n := 0
	s.Each(func(Index) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d, want 7", n)
	}
}

func TestIndexEqualClone(t *testing.T) {
	a := NewIndex(1, 2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b[0] = 9
	if a[0] != 1 {
		t.Error("clone shares storage")
	}
	if a.Equal(NewIndex(1, 2)) {
		t.Error("different ranks reported equal")
	}
}

func TestSpaceString(t *testing.T) {
	if s := MustSpace(128, 128).String(); s != "128×128" {
		t.Errorf("String = %q", s)
	}
}

// Property: for any valid space up to rank 3, Linear and Unlinear are
// inverse bijections on random valid indices.
func TestLinearBijectionProperty(t *testing.T) {
	f := func(d1, d2, d3 uint8, l uint16) bool {
		dims := []int{int(d1%8) + 1, int(d2%8) + 1, int(d3%8) + 1}
		s := MustSpace(dims...)
		lin := int64(l) % s.Size()
		ix, err := s.Unlinear(lin)
		if err != nil {
			return false
		}
		back, err := s.Linear(ix)
		return err == nil && back == lin && s.Contains(ix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
