package array

import (
	"testing"
	"testing/quick"
)

func TestIndexSetBasics(t *testing.T) {
	s := NewIndexSet(MustSpace(10, 10))
	if !s.Empty() || s.Len() != 0 {
		t.Error("new set should be empty")
	}
	added, err := s.Add(NewIndex(3, 4))
	if err != nil || !added {
		t.Fatalf("Add = %v, %v", added, err)
	}
	added, err = s.Add(NewIndex(3, 4))
	if err != nil || added {
		t.Error("duplicate Add should report false")
	}
	if !s.Contains(NewIndex(3, 4)) || s.Contains(NewIndex(4, 3)) {
		t.Error("Contains wrong")
	}
	if s.Len() != 1 || s.Empty() {
		t.Error("Len/Empty wrong after insert")
	}
	if _, err := s.Add(NewIndex(10, 0)); err == nil {
		t.Error("out-of-space Add should error")
	}
	if s.Contains(NewIndex(99, 99)) {
		t.Error("out-of-space index should not be contained")
	}
}

func TestIndexSetAddLinear(t *testing.T) {
	s := NewIndexSet(MustSpace(4, 4))
	if !s.AddLinear(5) {
		t.Error("AddLinear(5) should succeed")
	}
	if s.AddLinear(5) {
		t.Error("duplicate AddLinear should report false")
	}
	if s.AddLinear(16) || s.AddLinear(-1) {
		t.Error("out-of-range AddLinear should report false")
	}
	if !s.Contains(NewIndex(1, 1)) {
		t.Error("linear 5 should be index (1,1)")
	}
	if !s.ContainsLinear(5) || s.ContainsLinear(6) {
		t.Error("ContainsLinear wrong")
	}
}

func TestIndexSetUnionIntersect(t *testing.T) {
	sp := MustSpace(10, 10)
	a := NewIndexSet(sp)
	b := NewIndexSet(sp)
	for i := 0; i < 5; i++ {
		a.AddLinear(int64(i))
	}
	for i := 3; i < 8; i++ {
		b.AddLinear(int64(i))
	}
	if n := a.IntersectLen(b); n != 2 {
		t.Errorf("IntersectLen = %d, want 2", n)
	}
	if n := b.IntersectLen(a); n != 2 {
		t.Errorf("IntersectLen not symmetric: %d", n)
	}
	a.UnionWith(b)
	if a.Len() != 8 {
		t.Errorf("union Len = %d, want 8", a.Len())
	}
}

func TestIndexSetCloneEqual(t *testing.T) {
	sp := MustSpace(6, 6)
	a := NewIndexSet(sp)
	a.AddLinear(1)
	a.AddLinear(7)
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c.AddLinear(9)
	if a.Equal(c) || a.Len() != 2 {
		t.Error("clone shares storage")
	}
	d := NewIndexSet(sp)
	d.AddLinear(1)
	d.AddLinear(8)
	if a.Equal(d) {
		t.Error("sets with same size, different members reported equal")
	}
}

func TestIndexSetEach(t *testing.T) {
	sp := MustSpace(5, 5)
	s := NewIndexSet(sp)
	want := map[int64]bool{0: true, 6: true, 24: true}
	for lin := range want {
		s.AddLinear(lin)
	}
	got := map[int64]bool{}
	s.Each(func(ix Index) bool {
		lin, err := sp.Linear(ix)
		if err != nil {
			t.Fatal(err)
		}
		got[lin] = true
		return true
	})
	if len(got) != len(want) {
		t.Errorf("Each visited %d, want %d", len(got), len(want))
	}
	for lin := range want {
		if !got[lin] {
			t.Errorf("Each missed %d", lin)
		}
	}
	// Early stop.
	n := 0
	s.EachLinear(func(int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("EachLinear early stop visited %d", n)
	}
}

// Property: |a ∩ b| + |a ∪ b| == |a| + |b|.
func TestIndexSetInclusionExclusion(t *testing.T) {
	sp := MustSpace(8, 8)
	f := func(av, bv []uint8) bool {
		a, b := NewIndexSet(sp), NewIndexSet(sp)
		for _, v := range av {
			a.AddLinear(int64(v) % sp.Size())
		}
		for _, v := range bv {
			b.AddLinear(int64(v) % sp.Size())
		}
		inter := a.IntersectLen(b)
		u := a.Clone()
		u.UnionWith(b)
		return inter+u.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
