package array

import "fmt"

// DType identifies the element type stored in a data array. The paper
// assumes 16-byte long-double elements (§V-B); scientific formats also
// commonly carry 4- and 8-byte floats and integers, so the format
// layer supports all of these.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota + 1
	Float64
	Int32
	Int64
	// LongDouble is a 16-byte extended-precision float. Go has no
	// native 128-bit float, so values are stored as a float64 payload
	// in the low 8 bytes with zero padding — the byte *size* (what
	// offset mapping depends on) matches the paper exactly.
	LongDouble
)

// Size returns the on-disk size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case LongDouble:
		return 16
	default:
		panic(fmt.Sprintf("array: unknown dtype %d", d))
	}
}

// Valid reports whether d is one of the supported element types.
func (d DType) Valid() bool {
	return d >= Float32 && d <= LongDouble
}

// String returns the conventional name of the element type.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case LongDouble:
		return "longdouble"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// ParseDType maps a type name back to its DType, the inverse of
// String for valid types.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32":
		return Float32, nil
	case "float64":
		return Float64, nil
	case "int32":
		return Int32, nil
	case "int64":
		return Int64, nil
	case "longdouble":
		return LongDouble, nil
	default:
		return 0, fmt.Errorf("array: unknown dtype %q", s)
	}
}
