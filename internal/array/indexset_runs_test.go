package array

import (
	"math/rand"
	"testing"
)

func TestAddRunBasics(t *testing.T) {
	s := NewIndexSet(MustSpace(10, 10))
	added, err := s.AddRun(5, 9)
	if err != nil || added != 5 {
		t.Fatalf("AddRun(5,9) = %d, %v; want 5, nil", added, err)
	}
	if !s.runBacked() {
		t.Fatal("AddRun should migrate the set to the run backend")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	// Overlapping re-add covers nothing new.
	if added, _ := s.AddRun(5, 9); added != 0 {
		t.Fatalf("duplicate AddRun added %d", added)
	}
	// Partial overlap counts only the fresh positions.
	if added, _ := s.AddRun(7, 12); added != 3 {
		t.Fatalf("overlapping AddRun added %d, want 3", added)
	}
	// Adjacent runs coalesce.
	if added, _ := s.AddRun(13, 13); added != 1 {
		t.Fatal("adjacent AddRun")
	}
	if s.RunCount() != 1 {
		t.Fatalf("adjacent runs did not coalesce: %d runs", s.RunCount())
	}
	for lin := int64(5); lin <= 13; lin++ {
		if !s.ContainsLinear(lin) {
			t.Fatalf("missing %d", lin)
		}
	}
	if s.ContainsLinear(4) || s.ContainsLinear(14) {
		t.Fatal("contains out-of-run position")
	}
	// Range errors.
	if _, err := s.AddRun(9, 5); err == nil {
		t.Error("inverted run should error")
	}
	if _, err := s.AddRun(-1, 3); err == nil {
		t.Error("negative run should error")
	}
	if _, err := s.AddRun(90, 100); err == nil {
		t.Error("out-of-space run should error")
	}
}

func TestAddRunMergesAcrossExistingRuns(t *testing.T) {
	s := NewIndexSet(MustSpace(100))
	for _, r := range [][2]int64{{0, 2}, {10, 12}, {20, 22}, {40, 42}} {
		if _, err := s.AddRun(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Bridge the middle three groups in one insert.
	added, err := s.AddRun(5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if added != 26-6 {
		t.Fatalf("bridging AddRun added %d", added)
	}
	if s.RunCount() != 3 {
		t.Fatalf("want 3 runs after bridge, got %d", s.RunCount())
	}
	if s.Len() != 3+26+3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAddLinearOnRunBackend(t *testing.T) {
	s := NewIndexSet(MustSpace(50))
	if _, err := s.AddRun(10, 12); err != nil {
		t.Fatal(err)
	}
	if !s.AddLinear(13) {
		t.Fatal("AddLinear adjacent should add")
	}
	if s.AddLinear(11) {
		t.Fatal("AddLinear inside run should report false")
	}
	if s.AddLinear(50) || s.AddLinear(-1) {
		t.Fatal("out-of-range AddLinear should report false")
	}
	if s.RunCount() != 1 || s.Len() != 4 {
		t.Fatalf("runs=%d len=%d", s.RunCount(), s.Len())
	}
}

func TestMapToRunMigrationKeepsContent(t *testing.T) {
	s := NewIndexSet(MustSpace(8, 8))
	for _, lin := range []int64{3, 4, 5, 17, 40, 41} {
		s.AddLinear(lin)
	}
	if s.runBacked() {
		t.Fatal("point adds should stay on the map backend")
	}
	before := s.Clone()
	if _, err := s.AddRun(20, 25); err != nil {
		t.Fatal(err)
	}
	if !s.runBacked() {
		t.Fatal("AddRun should migrate")
	}
	if s.Len() != before.Len()+6 {
		t.Fatalf("Len = %d", s.Len())
	}
	before.EachLinear(func(lin int64) bool {
		if !s.ContainsLinear(lin) {
			t.Fatalf("migration lost %d", lin)
		}
		return true
	})
}

// applyOps drives the same random operation sequence into a set,
// returning it. forceRuns front-loads an empty AddRun-migration so
// the set takes the interval backend from the start.
func applyOps(sp Space, ops []func(*IndexSet), forceRuns bool) *IndexSet {
	s := NewIndexSet(sp)
	if forceRuns {
		s.toRuns()
	}
	for _, op := range ops {
		op(s)
	}
	return s
}

// TestBackendEquivalence cross-checks the interval backend against the
// map backend: the same sequence of Add/AddLinear/AddRun/UnionWith/
// Reset operations must yield sets that are Equal (both directions),
// agree on Len/Contains/IntersectLen, enumerate the same elements,
// and Clone into equal sets.
func TestBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sp := MustSpace(16, 16)
	size := sp.Size()
	for trial := 0; trial < 200; trial++ {
		var ops []func(*IndexSet)
		for n := 0; n < 2+rng.Intn(12); n++ {
			switch rng.Intn(4) {
			case 0:
				lin := rng.Int63n(size)
				ops = append(ops, func(s *IndexSet) { s.AddLinear(lin) })
			case 1:
				ix := NewIndex(rng.Intn(16), rng.Intn(16))
				ops = append(ops, func(s *IndexSet) { s.Add(ix) })
			case 2:
				lo := rng.Int63n(size)
				hi := lo + rng.Int63n(size-lo)
				ops = append(ops, func(s *IndexSet) { s.AddRun(lo, hi) })
			case 3:
				// Union with a small set on a random backend.
				other := NewIndexSet(sp)
				if rng.Intn(2) == 0 {
					other.toRuns()
				}
				for k := 0; k < rng.Intn(5); k++ {
					other.AddLinear(rng.Int63n(size))
				}
				if rng.Intn(3) == 0 {
					lo := rng.Int63n(size)
					other.AddRun(lo, lo+rng.Int63n(size-lo))
				}
				ops = append(ops, func(s *IndexSet) { s.UnionWith(other) })
			}
		}
		runs := applyOps(sp, ops, true)
		maps := applyOps(sp, ops, false)

		if runs.Len() != maps.Len() {
			t.Fatalf("trial %d: Len %d (runs) vs %d (map)", trial, runs.Len(), maps.Len())
		}
		if !runs.Equal(maps) || !maps.Equal(runs) {
			t.Fatalf("trial %d: backends disagree on Equal", trial)
		}
		for lin := int64(0); lin < size; lin++ {
			if runs.ContainsLinear(lin) != maps.ContainsLinear(lin) {
				t.Fatalf("trial %d: ContainsLinear(%d) disagrees", trial, lin)
			}
		}
		// Enumeration parity (Each order is unspecified; compare sets).
		got := map[int64]bool{}
		runs.EachLinear(func(lin int64) bool { got[lin] = true; return true })
		maps.EachLinear(func(lin int64) bool {
			if !got[lin] {
				t.Fatalf("trial %d: runs enumeration missed %d", trial, lin)
			}
			delete(got, lin)
			return true
		})
		if len(got) != 0 {
			t.Fatalf("trial %d: runs enumerated %d extra elements", trial, len(got))
		}
		// Each yields valid tuples matching EachLinear.
		count := 0
		runs.Each(func(ix Index) bool {
			if !runs.Contains(ix) {
				t.Fatalf("trial %d: Each yielded non-member %v", trial, ix)
			}
			count++
			return true
		})
		if count != runs.Len() {
			t.Fatalf("trial %d: Each visited %d of %d", trial, count, runs.Len())
		}
		// Cross-backend set algebra.
		if n := runs.IntersectLen(maps); n != runs.Len() {
			t.Fatalf("trial %d: self-intersection via mixed backends = %d, want %d", trial, n, runs.Len())
		}
		if !runs.Clone().Equal(maps) || !maps.Clone().Equal(runs) {
			t.Fatalf("trial %d: Clone broke equivalence", trial)
		}
		// EachRun parity: coalesced spans must agree.
		var rr, mr [][2]int64
		runs.EachRun(func(lo, hi int64) bool { rr = append(rr, [2]int64{lo, hi}); return true })
		maps.EachRun(func(lo, hi int64) bool { mr = append(mr, [2]int64{lo, hi}); return true })
		if len(rr) != len(mr) {
			t.Fatalf("trial %d: EachRun %d vs %d spans", trial, len(rr), len(mr))
		}
		for i := range rr {
			if rr[i] != mr[i] {
				t.Fatalf("trial %d: EachRun span %d: %v vs %v", trial, i, rr[i], mr[i])
			}
		}
	}
}

func TestRunBackendUnionIntersect(t *testing.T) {
	sp := MustSpace(40)
	a := NewIndexSet(sp)
	b := NewIndexSet(sp)
	a.AddRun(0, 9)
	a.AddRun(20, 29)
	b.AddRun(5, 24)
	if n := a.IntersectLen(b); n != 10 {
		t.Fatalf("IntersectLen = %d, want 10", n)
	}
	if n := b.IntersectLen(a); n != 10 {
		t.Fatalf("IntersectLen not symmetric: %d", n)
	}
	u := a.Clone()
	u.UnionWith(b)
	if u.Len() != 30 || u.RunCount() != 1 {
		t.Fatalf("union len=%d runs=%d, want 30, 1", u.Len(), u.RunCount())
	}
	if a.Len() != 20 || b.Len() != 20 {
		t.Fatal("union mutated its inputs")
	}
}

func TestResetRetainsBackendAndCapacity(t *testing.T) {
	s := NewIndexSet(MustSpace(100))
	s.AddRun(0, 10)
	s.AddRun(50, 60)
	s.Reset()
	if !s.Empty() || s.Len() != 0 || !s.runBacked() {
		t.Fatal("Reset should empty the set and keep the backend")
	}
	if s.ContainsLinear(5) {
		t.Fatal("Reset left stale membership")
	}
	m := NewIndexSet(MustSpace(100))
	m.AddLinear(3)
	m.Reset()
	if !m.Empty() || m.runBacked() {
		t.Fatal("map-backed Reset should stay map-backed and empty")
	}
}

// The scanline rasterizer's emission loop — ascending AddRun calls
// into a warm set — must not allocate per run.
func TestAddRunEmissionZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is skipped in -short (race) runs")
	}
	s := NewIndexSet(MustSpace(1 << 20))
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for i := int64(0); i < 512; i++ {
			s.AddRun(i*100, i*100+60)
		}
	})
	if allocs != 0 {
		t.Fatalf("AddRun emission loop allocates %.1f per run, want 0", allocs)
	}
}

// Run-backed union must reach a zero-allocation steady state: the
// sweep reuses the set's retained scratch buffer.
func TestUnionRunsZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is skipped in -short (race) runs")
	}
	sp := MustSpace(1 << 20)
	o := NewIndexSet(sp)
	for i := int64(0); i < 256; i++ {
		o.AddRun(i*1000, i*1000+400)
	}
	s := NewIndexSet(sp)
	s.toRuns()
	seed := NewIndexSet(sp)
	for i := int64(0); i < 256; i++ {
		seed.AddRun(i*1000+500, i*1000+600)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		s.UnionWith(seed)
		s.UnionWith(o)
	})
	if allocs != 0 {
		t.Fatalf("run union allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkAddRunAscending(b *testing.B) {
	s := NewIndexSet(MustSpace(1 << 30))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for r := int64(0); r < 1024; r++ {
			s.AddRun(r*2048, r*2048+1024)
		}
	}
}

func BenchmarkAddLinearMap(b *testing.B) {
	s := NewIndexSet(MustSpace(1 << 30))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for r := int64(0); r < 1024; r++ {
			s.AddLinear(r * 7919)
		}
	}
}

func BenchmarkUnionRuns(b *testing.B) {
	sp := MustSpace(1 << 30)
	o := NewIndexSet(sp)
	for i := int64(0); i < 4096; i++ {
		o.AddRun(i*1000, i*1000+400)
	}
	s := NewIndexSet(sp)
	s.toRuns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.UnionWith(o)
	}
}
