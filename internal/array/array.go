// Package array implements Kondo's array-oriented data model (paper
// §III): a d-dimensional data array D is a map from a d-dimensional
// logical index space I to values. The package provides the index
// space abstraction, row-major and chunked linearizations, and the
// one-one mapping between index tuples and byte offsets that Kondo's
// I/O event audit relies on (paper §IV-C).
package array

import (
	"errors"
	"fmt"
	"strings"
)

// Index identifies one element of a data array: a d-dimensional vector
// of non-negative coordinates (i_1, ..., i_d).
type Index []int

// NewIndex returns an Index with the given coordinates.
func NewIndex(coords ...int) Index {
	ix := make(Index, len(coords))
	copy(ix, coords)
	return ix
}

// Clone returns a copy of the index sharing no storage with it.
func (ix Index) Clone() Index {
	c := make(Index, len(ix))
	copy(c, ix)
	return c
}

// Equal reports whether two indices have identical dimension and
// coordinates.
func (ix Index) Equal(o Index) bool {
	if len(ix) != len(o) {
		return false
	}
	for i := range ix {
		if ix[i] != o[i] {
			return false
		}
	}
	return true
}

// String formats the index as "[i1 i2 ...]".
func (ix Index) String() string {
	parts := make([]string, len(ix))
	for i, v := range ix {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Space is a d-dimensional logical index space with extent Dims[k]
// along dimension k. Valid indices satisfy 0 <= i_k < Dims[k].
type Space struct {
	dims []int
	size int64
}

// NewSpace returns the index space with the given extents. All
// extents must be positive.
func NewSpace(dims ...int) (Space, error) {
	if len(dims) == 0 {
		return Space{}, errors.New("array: space needs at least one dimension")
	}
	size := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return Space{}, fmt.Errorf("array: invalid extent %d", d)
		}
		size *= int64(d)
	}
	ds := make([]int, len(dims))
	copy(ds, dims)
	return Space{dims: ds, size: size}, nil
}

// MustSpace is NewSpace that panics on error, for tests and
// compile-time-constant shapes.
func MustSpace(dims ...int) Space {
	s, err := NewSpace(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the number of dimensions d.
func (s Space) Rank() int { return len(s.dims) }

// Dims returns a copy of the extents.
func (s Space) Dims() []int {
	d := make([]int, len(s.dims))
	copy(d, s.dims)
	return d
}

// Dim returns the extent along dimension k.
func (s Space) Dim(k int) int { return s.dims[k] }

// Size returns the total number of elements in the space.
func (s Space) Size() int64 { return s.size }

// Contains reports whether ix is a valid index into the space.
func (s Space) Contains(ix Index) bool {
	if len(ix) != len(s.dims) {
		return false
	}
	for k, v := range ix {
		if v < 0 || v >= s.dims[k] {
			return false
		}
	}
	return true
}

// Linear returns the row-major linear position of ix: the last
// dimension varies fastest, matching HDF5's C-order layout.
func (s Space) Linear(ix Index) (int64, error) {
	if !s.Contains(ix) {
		return 0, fmt.Errorf("array: index %v out of bounds for space %v", ix, s.dims)
	}
	var lin int64
	for k, v := range ix {
		lin = lin*int64(s.dims[k]) + int64(v)
	}
	return lin, nil
}

// Unlinear is the inverse of Linear: it maps a row-major linear
// position back to an index tuple.
func (s Space) Unlinear(lin int64) (Index, error) {
	if lin < 0 || lin >= s.size {
		return nil, fmt.Errorf("array: linear position %d out of range [0, %d)", lin, s.size)
	}
	ix := make(Index, len(s.dims))
	for k := len(s.dims) - 1; k >= 0; k-- {
		d := int64(s.dims[k])
		ix[k] = int(lin % d)
		lin /= d
	}
	return ix, nil
}

// Each calls fn for every index in the space in row-major order,
// stopping early if fn returns false. The Index passed to fn is reused
// between calls; clone it if it escapes.
func (s Space) Each(fn func(Index) bool) {
	ix := make(Index, len(s.dims))
	for {
		if !fn(ix) {
			return
		}
		k := len(ix) - 1
		for k >= 0 {
			ix[k]++
			if ix[k] < s.dims[k] {
				break
			}
			ix[k] = 0
			k--
		}
		if k < 0 {
			return
		}
	}
}

// String formats the space as "d1×d2×...".
func (s Space) String() string {
	parts := make([]string, len(s.dims))
	for i, v := range s.dims {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, "×")
}
