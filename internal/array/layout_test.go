package array

import (
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := []struct {
		dt   DType
		size int
		name string
	}{
		{Float32, 4, "float32"},
		{Float64, 8, "float64"},
		{Int32, 4, "int32"},
		{Int64, 8, "int64"},
		{LongDouble, 16, "longdouble"},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, c.dt.Size(), c.size)
		}
		if c.dt.String() != c.name {
			t.Errorf("String = %q, want %q", c.dt.String(), c.name)
		}
		back, err := ParseDType(c.name)
		if err != nil || back != c.dt {
			t.Errorf("ParseDType(%q) = %v, %v", c.name, back, err)
		}
		if !c.dt.Valid() {
			t.Errorf("%v should be valid", c.dt)
		}
	}
	if _, err := ParseDType("quux"); err == nil {
		t.Error("unknown dtype should error")
	}
	if DType(0).Valid() || DType(99).Valid() {
		t.Error("invalid dtypes reported valid")
	}
}

func TestContiguousLayout(t *testing.T) {
	s := MustSpace(4, 8)
	l := NewContiguousLayout(s, LongDouble)
	if l.DataSize() != 4*8*16 {
		t.Errorf("DataSize = %d", l.DataSize())
	}
	off, err := l.Offset(NewIndex(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if off != (8+3)*16 {
		t.Errorf("Offset = %d, want %d", off, (8+3)*16)
	}
	ix, err := l.IndexAt(off)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Equal(NewIndex(1, 3)) {
		t.Errorf("IndexAt = %v", ix)
	}
	if _, err := l.IndexAt(off + 1); err == nil {
		t.Error("unaligned offset should error")
	}
	if _, err := l.Offset(NewIndex(4, 0)); err == nil {
		t.Error("out-of-bounds Offset should error")
	}
}

func TestChunkedLayoutValidation(t *testing.T) {
	s := MustSpace(10, 10)
	if _, err := NewChunkedLayout(s, Float64, []int{2}); err == nil {
		t.Error("rank mismatch should error")
	}
	if _, err := NewChunkedLayout(s, Float64, []int{0, 2}); err == nil {
		t.Error("zero chunk extent should error")
	}
}

func TestChunkedLayoutExact(t *testing.T) {
	// 4x4 space, 2x2 chunks: 4 chunks of 4 elements each.
	s := MustSpace(4, 4)
	l, err := NewChunkedLayout(s, Float64, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumChunks() != 4 {
		t.Errorf("NumChunks = %d, want 4", l.NumChunks())
	}
	if l.ChunkSizeBytes() != 4*8 {
		t.Errorf("ChunkSizeBytes = %d", l.ChunkSizeBytes())
	}
	// Element (2,1) is in chunk (1,0), within-chunk (0,1):
	// offset = (chunkLin=2)*4 + (withinLin=1) elements.
	off, err := l.Offset(NewIndex(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if off != (2*4+1)*8 {
		t.Errorf("Offset = %d, want %d", off, (2*4+1)*8)
	}
}

func TestChunkedRoundTripAllIndices(t *testing.T) {
	s := MustSpace(5, 7) // deliberately not divisible by chunk shape
	l, err := NewChunkedLayout(s, Float32, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	s.Each(func(ix Index) bool {
		off, err := l.Offset(ix)
		if err != nil {
			t.Fatalf("Offset(%v): %v", ix, err)
		}
		if seen[off] {
			t.Fatalf("offset %d assigned twice", off)
		}
		seen[off] = true
		back, err := l.IndexAt(off)
		if err != nil {
			t.Fatalf("IndexAt(%d): %v", off, err)
		}
		if !back.Equal(ix) {
			t.Fatalf("round trip %v -> %d -> %v", ix, off, back)
		}
		return true
	})
	if int64(len(seen)) != s.Size() {
		t.Errorf("visited %d offsets, want %d", len(seen), s.Size())
	}
}

func TestChunkedEdgePadding(t *testing.T) {
	s := MustSpace(3, 3)
	l, err := NewChunkedLayout(s, Float64, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk grid is 2x2, data region padded to 4 chunks × 4 elements.
	if l.DataSize() != 4*4*8 {
		t.Errorf("DataSize = %d, want %d", l.DataSize(), 4*4*8)
	}
	// Element (0,1) of chunk (0,1) covers logical column 3, which does
	// not exist; its offset must map to a padding error.
	padOff := int64((1*4 + 1) * 8) // chunk 1, within (0,1)
	if _, err := l.IndexAt(padOff); err == nil {
		t.Error("padding offset should not resolve to an index")
	}
}

func TestChunkCoord(t *testing.T) {
	s := MustSpace(10, 10, 10)
	l, err := NewChunkedLayout(s, Float64, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	chunk, within, err := l.ChunkCoord(NewIndex(9, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !chunk.Equal(NewIndex(2, 0, 1)) || !within.Equal(NewIndex(1, 0, 1)) {
		t.Errorf("ChunkCoord = %v, %v", chunk, within)
	}
	if _, _, err := l.ChunkCoord(NewIndex(10, 0, 0)); err == nil {
		t.Error("out-of-bounds ChunkCoord should error")
	}
	lin, err := l.ChunkLinear(chunk)
	if err != nil || lin != 2*9+1 {
		t.Errorf("ChunkLinear = %d, %v; want %d", lin, err, 2*9+1)
	}
}

// Property: chunked Offset is injective and round-trips for random
// valid indices under random chunk shapes.
func TestChunkedBijectionProperty(t *testing.T) {
	f := func(d1, d2, c1, c2, pick uint8) bool {
		s := MustSpace(int(d1%16)+1, int(d2%16)+1)
		l, err := NewChunkedLayout(s, Int64, []int{int(c1%5) + 1, int(c2%5) + 1})
		if err != nil {
			return false
		}
		lin := int64(pick) % s.Size()
		ix, _ := s.Unlinear(lin)
		off, err := l.Offset(ix)
		if err != nil {
			return false
		}
		back, err := l.IndexAt(off)
		return err == nil && back.Equal(ix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
