package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

var codec = Codec{Magic: "KTST", UnitSize: 1, MaxCount: 1 << 20}

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {0x42}, []byte("hello frame"), make([]byte, 4096)} {
		buf := codec.Encode(payload)
		got, err := codec.Decode(bytes.NewReader(buf), int64(len(payload)))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round-trip mismatch: %d vs %d bytes", len(got), len(payload))
		}
		if _, err := codec.DecodeAll(bytes.NewReader(buf), -1); err != nil {
			t.Errorf("any-count DecodeAll: %v", err)
		}
	}
}

func TestStreamedFrames(t *testing.T) {
	// Decode (unlike DecodeAll) must leave the next frame on the
	// stream intact — the TCP lease-protocol contract.
	var stream bytes.Buffer
	if err := codec.Write(&stream, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := codec.Write(&stream, []byte("second!")); err != nil {
		t.Fatal(err)
	}
	a, err := codec.Decode(&stream, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codec.Decode(&stream, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "first" || string(b) != "second!" {
		t.Fatalf("streamed frames decoded as %q, %q", a, b)
	}
}

func TestDecodeErrors(t *testing.T) {
	good := codec.Encode([]byte{1, 2, 3})

	cases := []struct {
		name string
		buf  []byte
		want int64
		msg  string
	}{
		{"empty", nil, 3, "truncated frame header"},
		{"short header", good[:6], 3, "truncated frame header"},
		{"bad magic", append([]byte("XXXX"), good[4:]...), 3, "bad frame magic"},
		{"truncated payload", good[:len(good)-2], 3, "truncated frame payload"},
		{"count mismatch", good, 2, "want 2"},
		{"trailing bytes", append(append([]byte(nil), good...), 0xFF), 3, "trailing bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := codec.DecodeAll(bytes.NewReader(c.buf), c.want)
			if err == nil || !strings.Contains(err.Error(), c.msg) {
				t.Errorf("err = %v, want substring %q", err, c.msg)
			}
		})
	}

	corrupt := append([]byte(nil), good...)
	corrupt[HeaderSize] ^= 0x01
	if _, err := codec.Decode(bytes.NewReader(corrupt), 3); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted payload err = %v, want checksum mismatch", err)
	}

	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[4:], 1<<30)
	if _, err := codec.Decode(bytes.NewReader(huge), -1); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("huge count err = %v, want limit error", err)
	}
}
