// Package wire is the shared CRC32 frame codec of Kondo's binary
// protocols. A frame is a fixed 12-byte header followed by the
// payload:
//
//	magic (4 bytes) | count uint32 LE | crc32(payload) uint32 LE | payload
//
// count is a caller-defined unit count (float64 values for the
// dataserve recovery plane, raw bytes for the orchestra lease
// protocol); the payload length is count × Codec.UnitSize bytes. The
// checksum covers the payload, so a truncated or corrupted frame is
// detected before any content is trusted, and the count limit bounds
// the allocation a corrupt or hostile header can force.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// HeaderSize is the fixed frame prefix: magic (4) | count u32 | crc32
// u32 of the payload.
const HeaderSize = 12

// Codec describes one protocol's framing: its magic, the payload
// bytes one counted unit occupies, and the largest unit count a frame
// may claim.
type Codec struct {
	// Magic is the 4-byte frame signature.
	Magic string
	// UnitSize is the payload bytes per counted unit (8 for float64
	// value frames, 1 for raw byte payloads).
	UnitSize int
	// MaxCount bounds the unit count a frame may claim, protecting
	// the reader from allocating on a corrupt or hostile count field.
	MaxCount int64
}

// Encode renders the payload as one frame. The payload length must be
// a multiple of UnitSize; the count field is derived from it.
func (c Codec) Encode(payload []byte) []byte {
	buf := make([]byte, HeaderSize+len(payload))
	copy(buf, c.Magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)/c.UnitSize))
	copy(buf[HeaderSize:], payload)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	return buf
}

// Decode reads one frame from r and returns its payload. wantCount
// requires the frame to carry exactly that many units (wantCount < 0
// accepts any count within MaxCount). It fails on short reads, bad
// magic, count mismatches, and checksum mismatches; unlike DecodeAll
// it leaves anything after the frame unread, so frames can follow one
// another on a stream.
func (c Codec) Decode(r io.Reader, wantCount int64) ([]byte, error) {
	header := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	if string(header[:4]) != c.Magic {
		return nil, fmt.Errorf("wire: bad frame magic %q", header[:4])
	}
	count := int64(binary.LittleEndian.Uint32(header[4:]))
	wantCRC := binary.LittleEndian.Uint32(header[8:])
	if count > c.MaxCount {
		return nil, fmt.Errorf("wire: frame claims %d units (limit %d)", count, c.MaxCount)
	}
	if wantCount >= 0 && count != wantCount {
		return nil, fmt.Errorf("wire: frame carries %d units, want %d", count, wantCount)
	}
	payload := make([]byte, count*int64(c.UnitSize))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	return payload, nil
}

// DecodeAll decodes one frame that must be the entirety of r — the
// one-frame-per-HTTP-body contract of the recovery plane. Beyond
// Decode's checks it rejects trailing bytes after the frame.
func (c Codec) DecodeAll(r io.Reader, wantCount int64) ([]byte, error) {
	payload, err := c.Decode(r, wantCount)
	if err != nil {
		return nil, err
	}
	if extra, _ := io.Copy(io.Discard, io.LimitReader(r, 1)); extra != 0 {
		return nil, fmt.Errorf("wire: trailing bytes after %d-unit frame", len(payload)/c.UnitSize)
	}
	return payload, nil
}

// Write encodes the payload and writes the frame to w.
func (c Codec) Write(w io.Writer, payload []byte) error {
	_, err := w.Write(c.Encode(payload))
	return err
}
