// Package remote implements the missing-data recovery path sketched in
// paper §VI: "a container runtime can use audited information to pull
// missing data offsets from a remote server, when requested." A Server
// exposes the original (un-debloated) data file over HTTP; the Client
// is a debloat.Fetcher that resolves data-missing exceptions by
// fetching individual elements from it.
//
// Wire protocol (JSON over HTTP):
//
//	GET /element?dataset=<name>&index=i1,i2,...   → {"value": <float64>}
//	GET /datasets                                 → {"datasets": [...]}
//
// Errors come back as HTTP status codes with a JSON {"error": ...}
// body.
package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/sdf"
)

// Server serves element reads from an origin sdf file.
type Server struct {
	mu   sync.Mutex
	file *sdf.File
}

// NewServer opens the origin file and returns a server over it.
func NewServer(originPath string) (*Server, error) {
	f, err := sdf.Open(originPath)
	if err != nil {
		return nil, fmt.Errorf("remote: opening origin: %w", err)
	}
	return &Server{file: f}, nil
}

// Close releases the origin file.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Handler returns the HTTP handler exposing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/element", s.handleElement)
	mux.HandleFunc("/datasets", s.handleDatasets)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("origin closed"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": s.file.Names()})
}

func (s *Server) handleElement(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	indexArg := r.URL.Query().Get("index")
	if dataset == "" || indexArg == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset and index query parameters required"))
		return
	}
	ix, err := parseIndex(indexArg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("origin closed"))
		return
	}
	ds, err := s.file.Dataset(dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	v, err := ds.ReadElement(ix)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"value": v})
}

func parseIndex(s string) (array.Index, error) {
	parts := strings.Split(s, ",")
	ix := make(array.Index, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("remote: bad index component %q", p)
		}
		ix[i] = v
	}
	return ix, nil
}

// Client fetches missing elements over HTTP. It implements
// debloat.Fetcher.
type Client struct {
	baseURL string
	http    *http.Client

	mu      sync.Mutex
	fetched int64
}

// NewClient returns a client against the server's base URL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimSuffix(baseURL, "/"), http: httpClient}
}

// Fetched returns how many elements the client has pulled.
func (c *Client) Fetched() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetched
}

// Fetch implements debloat.Fetcher by requesting one element.
func (c *Client) Fetch(dataset string, ix array.Index) (float64, error) {
	parts := make([]string, len(ix))
	for i, v := range ix {
		parts[i] = strconv.Itoa(v)
	}
	url := fmt.Sprintf("%s/element?dataset=%s&index=%s", c.baseURL, dataset, strings.Join(parts, ","))
	resp, err := c.http.Get(url)
	if err != nil {
		return 0, fmt.Errorf("remote: fetch %v: %w", ix, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("remote: fetch %v: server says %s (%s)", ix, resp.Status, e.Error)
	}
	var out struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("remote: decoding response: %w", err)
	}
	c.mu.Lock()
	c.fetched++
	c.mu.Unlock()
	return out.Value, nil
}
