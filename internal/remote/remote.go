// Package remote implements the element-granular missing-data recovery
// path sketched in paper §VI: "a container runtime can use audited
// information to pull missing data offsets from a remote server, when
// requested." A Server exposes the original (un-debloated) data file
// over HTTP; the Client is a debloat.Fetcher that resolves
// data-missing exceptions by fetching individual elements from it.
//
// This is the compatibility protocol: one element per round trip,
// JSON-framed. The production data plane — chunk-granular batch
// transfer, client-side caching, retries — lives in
// internal/dataserve, whose server keeps these endpoints alive.
//
// Wire protocol (JSON over HTTP):
//
//	GET /element?dataset=<name>&index=i1,i2,...   → {"value": <float64>}
//	GET /datasets                                 → {"datasets": [...]}
//
// Errors come back as HTTP status codes with a JSON {"error": ...}
// body.
package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/array"
	"repro/internal/sdf"
)

// DefaultTimeout bounds one element fetch when the caller supplies no
// HTTP client and no context deadline: a dead origin fails instead of
// hanging the debloated runtime forever.
const DefaultTimeout = 10 * time.Second

// Server serves element reads from an origin sdf file. Reads are
// concurrent: the RWMutex is held shared during requests and
// exclusively only by Close, so concurrent misses no longer convoy
// behind a single lock.
type Server struct {
	mu   sync.RWMutex
	file *sdf.File
}

// NewServer opens the origin file and returns a server over it.
func NewServer(originPath string) (*Server, error) {
	f, err := sdf.Open(originPath)
	if err != nil {
		return nil, fmt.Errorf("remote: opening origin: %w", err)
	}
	return &Server{file: f}, nil
}

// Close releases the origin file. In-flight reads finish first.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Handler returns the HTTP handler exposing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/element", s.handleElement)
	mux.HandleFunc("/datasets", s.handleDatasets)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.file == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("origin closed"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": s.file.Names()})
}

func (s *Server) handleElement(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	indexArg := r.URL.Query().Get("index")
	if dataset == "" || indexArg == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("dataset and index query parameters required"))
		return
	}
	ix, err := parseIndex(indexArg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.file == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("origin closed"))
		return
	}
	ds, err := s.file.Dataset(dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	v, err := ds.ReadElement(ix)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"value": v})
}

func parseIndex(s string) (array.Index, error) {
	parts := strings.Split(s, ",")
	ix := make(array.Index, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("remote: bad index component %q", p)
		}
		ix[i] = v
	}
	return ix, nil
}

// Client fetches missing elements over HTTP, one element per round
// trip. It implements debloat.Fetcher and debloat.ContextFetcher and
// is safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	fetched atomic.Int64
}

// NewClient returns a client against the server's base URL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient gets a dedicated client
// with DefaultTimeout, so fetches cannot hang on a dead server.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{baseURL: strings.TrimSuffix(baseURL, "/"), http: httpClient}
}

// Fetched returns how many elements the client has pulled.
func (c *Client) Fetched() int64 {
	return c.fetched.Load()
}

// Fetch implements debloat.Fetcher by requesting one element.
func (c *Client) Fetch(dataset string, ix array.Index) (float64, error) {
	return c.FetchContext(context.Background(), dataset, ix)
}

// FetchContext implements debloat.ContextFetcher: the request is
// bound to ctx, so cancellation or a deadline aborts a hung fetch.
func (c *Client) FetchContext(ctx context.Context, dataset string, ix array.Index) (float64, error) {
	parts := make([]string, len(ix))
	for i, v := range ix {
		parts[i] = strconv.Itoa(v)
	}
	url := fmt.Sprintf("%s/element?dataset=%s&index=%s", c.baseURL, dataset, strings.Join(parts, ","))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("remote: fetch %v: %w", ix, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, fmt.Errorf("remote: fetch %v: %w", ix, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("remote: fetch %v: server says %s (%s)", ix, resp.Status, e.Error)
	}
	var out struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("remote: decoding response: %w", err)
	}
	c.fetched.Add(1)
	return out.Value, nil
}
