package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/debloat"
	"repro/internal/sdf"
	"repro/internal/workload"
)

func writeOrigin(t *testing.T) (path string, space array.Space) {
	t.Helper()
	space = array.MustSpace(32, 32)
	path = filepath.Join(t.TempDir(), "origin.sdf")
	w := sdf.NewWriter(path)
	dw, err := w.CreateDataset("data", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin) * 2
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, space
}

func TestServerClientFetch(t *testing.T) {
	origin, space := writeOrigin(t)
	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, nil)
	v, err := client.Fetch("data", array.NewIndex(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := space.Linear(array.NewIndex(3, 4))
	if v != float64(lin)*2 {
		t.Errorf("fetched %v, want %v", v, float64(lin)*2)
	}
	if client.Fetched() != 1 {
		t.Errorf("Fetched = %d", client.Fetched())
	}

	// Errors: unknown dataset, bad index, out-of-bounds.
	if _, err := client.Fetch("nope", array.NewIndex(0, 0)); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := client.Fetch("data", array.NewIndex(99, 99)); err == nil {
		t.Error("out-of-bounds index should error")
	}
}

// TestRuntimeRecoversOverHTTP is the §VI scenario end-to-end: a
// debloated file misses an element, and the runtime pulls it from the
// remote origin server.
func TestRuntimeRecoversOverHTTP(t *testing.T) {
	origin, space := writeOrigin(t)

	// Debloat to the CS2 truth of the 32x32 program; then access an
	// index outside it.
	p := workload.MustCS(2, 32)
	truth, err := workload.GroundTruth(p)
	if err != nil {
		t.Fatal(err)
	}
	deb := filepath.Join(t.TempDir(), "deb.sdf")
	if _, err := debloat.WriteSubset(origin, deb, "data", truth, []int{8, 8}); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, nil)

	f, err := sdf.Open(deb)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("data")
	rt := debloat.NewRuntime(ds, client)

	// (31, 0) is below the diagonal: carved away.
	missing := array.NewIndex(31, 0)
	if truth.Contains(missing) {
		t.Fatal("test premise broken: index is in truth")
	}
	v, err := rt.ReadElement(missing)
	if err != nil {
		t.Fatal(err)
	}
	lin, _ := space.Linear(missing)
	if v != float64(lin)*2 {
		t.Errorf("recovered %v, want %v", v, float64(lin)*2)
	}
	if rt.Misses() != 1 || client.Fetched() != 1 {
		t.Errorf("misses=%d fetched=%d, want 1/1", rt.Misses(), client.Fetched())
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	origin, _ := writeOrigin(t)
	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Missing query params on /element.
	resp2, err := ts.Client().Get(ts.URL + "/element")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("missing params status = %d, want 400", resp2.StatusCode)
	}
	// Malformed index.
	resp3, err := ts.Client().Get(ts.URL + "/element?dataset=data&index=a,b")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 400 {
		t.Errorf("malformed index status = %d, want 400", resp3.StatusCode)
	}
}

func TestClosedServer(t *testing.T) {
	origin, _ := writeOrigin(t)
	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	client := NewClient(ts.URL+"/", nil) // trailing slash is trimmed
	if _, err := client.Fetch("data", array.NewIndex(0, 0)); err == nil {
		t.Error("closed server should error")
	}
}

func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://127.0.0.1:0", nil)
	if c.http.Timeout != DefaultTimeout {
		t.Errorf("default timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
}

func TestFetchContextCancellation(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	// Long client timeout: the context must be what cuts the fetch short.
	client := NewClient(ts.URL, &http.Client{Timeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.FetchContext(ctx, "data", array.NewIndex(0, 0))
	if err == nil {
		t.Fatal("canceled fetch succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled fetch took %v", elapsed)
	}
}

func TestDeadServerErrorsInsteadOfHanging(t *testing.T) {
	origin, _ := writeOrigin(t)
	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	url := ts.URL
	ts.Close()

	client := NewClient(url, nil)
	start := time.Now()
	if _, err := client.Fetch("data", array.NewIndex(0, 0)); err == nil {
		t.Fatal("fetch against dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > DefaultTimeout+2*time.Second {
		t.Errorf("fetch took %v, want bounded by default timeout", elapsed)
	}
}

// TestConcurrentFetches exercises the server's shared read lock: many
// clients fetching at once must not serialize into corruption (run
// under -race) and all values must be correct.
func TestConcurrentFetches(t *testing.T) {
	origin, space := writeOrigin(t)
	srv, err := NewServer(origin)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, nil)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ix := array.NewIndex((g*5+i)%32, (g*11+i*3)%32)
				v, err := client.Fetch("data", ix)
				if err != nil {
					errCh <- err
					return
				}
				lin, _ := space.Linear(ix)
				if v != float64(lin)*2 {
					errCh <- fmt.Errorf("fetch(%v) = %v, want %v", ix, v, float64(lin)*2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := client.Fetched(); got != 400 {
		t.Errorf("fetched = %d, want 400", got)
	}
}
