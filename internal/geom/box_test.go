package geom

import (
	"testing"
	"testing/quick"
)

func TestBoundingBox(t *testing.T) {
	pts := []Point{NewPoint(1, 5), NewPoint(-2, 3), NewPoint(4, -1)}
	b := BoundingBox(pts)
	if !b.Min.Equal(NewPoint(-2, -1)) || !b.Max.Equal(NewPoint(4, 5)) {
		t.Errorf("BoundingBox = %v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box does not contain its input point %v", p)
		}
	}
}

func TestBoxContainsBoundary(t *testing.T) {
	b := NewBox(NewPoint(0, 0), NewPoint(10, 10))
	if !b.Contains(NewPoint(0, 0)) || !b.Contains(NewPoint(10, 10)) {
		t.Error("box boundary should be inclusive")
	}
	if b.Contains(NewPoint(10.001, 5)) {
		t.Error("box should not contain exterior point")
	}
}

func TestBoxIntersects(t *testing.T) {
	a := NewBox(NewPoint(0, 0), NewPoint(5, 5))
	cases := []struct {
		b    Box
		want bool
	}{
		{NewBox(NewPoint(4, 4), NewPoint(8, 8)), true},
		{NewBox(NewPoint(5, 5), NewPoint(9, 9)), true}, // touching corner
		{NewBox(NewPoint(6, 0), NewPoint(9, 5)), false},
		{NewBox(NewPoint(0, -3), NewPoint(5, -1)), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestBoxUnionVolume(t *testing.T) {
	a := NewBox(NewPoint(0, 0), NewPoint(2, 2))
	b := NewBox(NewPoint(3, 3), NewPoint(4, 4))
	u := a.Union(b)
	if !u.Min.Equal(NewPoint(0, 0)) || !u.Max.Equal(NewPoint(4, 4)) {
		t.Errorf("Union = %v", u)
	}
	if v := u.Volume(); v != 16 {
		t.Errorf("Volume = %v, want 16", v)
	}
	if v := NewBox(NewPoint(1, 1), NewPoint(1, 5)).Volume(); v != 0 {
		t.Errorf("degenerate Volume = %v, want 0", v)
	}
}

func TestBoxCenterClamp(t *testing.T) {
	b := NewBox(NewPoint(0, 0), NewPoint(10, 4))
	if c := b.Center(); !c.Equal(NewPoint(5, 2)) {
		t.Errorf("Center = %v", c)
	}
	if p := b.Clamp(NewPoint(-5, 9)); !p.Equal(NewPoint(0, 4)) {
		t.Errorf("Clamp = %v", p)
	}
	if p := b.Clamp(NewPoint(3, 2)); !p.Equal(NewPoint(3, 2)) {
		t.Errorf("Clamp of interior point = %v", p)
	}
}

// Property: a union contains both boxes' corners, and bounding box of
// clamped points always lies inside the box.
func TestBoxProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, px, py int8) bool {
		min := NewPoint(float64(min8(x1, x2)), float64(min8(y1, y2)))
		max := NewPoint(float64(max8(x1, x2)), float64(max8(y1, y2)))
		b := NewBox(min, max)
		p := b.Clamp(NewPoint(float64(px), float64(py)))
		return b.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min8(a, b int8) int8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}
