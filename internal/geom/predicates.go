package geom

import "math"

// Eps is the default tolerance for the floating-point orientation
// predicates. Index coordinates in Kondo are small integers mapped to
// float64, so a fixed absolute tolerance is adequate; we do not need
// adaptive-precision arithmetic.
const Eps = 1e-9

// Orient2D returns a positive value if a→b→c turns counter-clockwise,
// negative if clockwise, and zero (within Eps) if the three points are
// collinear. The magnitude is twice the signed triangle area.
func Orient2D(a, b, c Point) float64 {
	v := (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
	if math.Abs(v) <= Eps {
		return 0
	}
	return v
}

// Orient3D returns the signed volume (×6) of the tetrahedron a,b,c,d.
// Positive means d is on the positive side of the plane through a,b,c
// oriented counter-clockwise when viewed from the positive side.
func Orient3D(a, b, c, d Point) float64 {
	ab := b.Sub(a)
	ac := c.Sub(a)
	ad := d.Sub(a)
	v := ad.Dot(Cross3(ab, ac))
	if math.Abs(v) <= Eps {
		return 0
	}
	return v
}

// SegmentDist2 returns the squared distance from point p to segment
// [a, b] in any dimension.
func SegmentDist2(p, a, b Point) float64 {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return p.Dist2(a)
	}
	t := p.Sub(a).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := a.Add(ab.Scale(t))
	return p.Dist2(proj)
}

// PointInTriangle2D reports whether p lies inside or on the triangle
// a,b,c in the plane.
func PointInTriangle2D(p, a, b, c Point) bool {
	d1 := Orient2D(a, b, p)
	d2 := Orient2D(b, c, p)
	d3 := Orient2D(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}
