// Package geom provides the d-dimensional geometric primitives used by
// Kondo's fuzzer (parameter-space frames and clusters) and carver
// (convex hulls over index space): points, vectors, bounding boxes,
// and the orientation predicates needed for 2D and 3D hull
// construction.
//
// Points are represented as []float64 slices. All functions treat the
// slice length as the dimension d and panic on dimension mismatch;
// mixing dimensions is a programming error, not a runtime condition.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional euclidean space. The slice
// length is the dimension. A Point is also used as a displacement
// vector where that reading is natural (Sub, Dot, Cross).
type Point []float64

// NewPoint returns a Point with the given coordinates.
func NewPoint(coords ...float64) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a copy of p that shares no storage with it.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have the same dimension and identical
// coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether every coordinate of p is within eps of
// the corresponding coordinate of q.
func (p Point) ApproxEqual(q Point, eps float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > eps {
			return false
		}
	}
	return true
}

func checkDim(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d != %d", len(p), len(q)))
	}
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	checkDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	checkDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 {
	checkDim(p, q)
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm returns the euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared euclidean distance between p and q. It
// avoids the square root for comparison-only call sites such as
// nearest-cluster search.
func (p Point) Dist2(q Point) float64 {
	checkDim(p, q)
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Cross3 returns the 3D cross product p × q. Both points must be
// 3-dimensional.
func Cross3(p, q Point) Point {
	if len(p) != 3 || len(q) != 3 {
		panic("geom: Cross3 requires 3D points")
	}
	return Point{
		p[1]*q[2] - p[2]*q[1],
		p[2]*q[0] - p[0]*q[2],
		p[0]*q[1] - p[1]*q[0],
	}
}

// Centroid returns the arithmetic mean of the given points. It panics
// if pts is empty or dimensions disagree.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	c := make(Point, len(pts[0]))
	for _, p := range pts {
		checkDim(c, p)
		for i := range c {
			c[i] += p[i]
		}
	}
	inv := 1.0 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}

// String formats the point as "(x1, x2, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Less orders points lexicographically by coordinate. It is the sort
// order used by the 2D monotone-chain hull and by deterministic
// deduplication.
func (p Point) Less(q Point) bool {
	checkDim(p, q)
	for i := range p {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// Key returns a string key identifying the exact coordinates of p,
// suitable for map-based deduplication of evaluated fuzz seeds.
func (p Point) Key() string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v", v)
	}
	return b.String()
}
