package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := NewPoint(1, 2, 3)
	q := NewPoint(4, 5, 6)

	if got := p.Add(q); !got.Equal(NewPoint(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); !got.Equal(NewPoint(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(NewPoint(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestPointDim(t *testing.T) {
	if d := NewPoint(1, 2).Dim(); d != 2 {
		t.Errorf("Dim = %d, want 2", d)
	}
	if d := NewPoint().Dim(); d != 0 {
		t.Errorf("Dim = %d, want 0", d)
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := NewPoint(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestDistances(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(3, 4)
	if d := a.Dist(b); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := a.Dist2(b); d2 != 25 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	NewPoint(1, 2).Add(NewPoint(1, 2, 3))
}

func TestCross3(t *testing.T) {
	x := NewPoint(1, 0, 0)
	y := NewPoint(0, 1, 0)
	if got := Cross3(x, y); !got.Equal(NewPoint(0, 0, 1)) {
		t.Errorf("x × y = %v, want (0,0,1)", got)
	}
	// Anti-commutativity.
	if got := Cross3(y, x); !got.Equal(NewPoint(0, 0, -1)) {
		t.Errorf("y × x = %v, want (0,0,-1)", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{NewPoint(0, 0), NewPoint(2, 0), NewPoint(0, 2), NewPoint(2, 2)}
	if got := Centroid(pts); !got.Equal(NewPoint(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty centroid")
		}
	}()
	Centroid(nil)
}

func TestLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{NewPoint(0, 5), NewPoint(1, 0), true},
		{NewPoint(1, 0), NewPoint(1, 1), true},
		{NewPoint(1, 1), NewPoint(1, 1), false},
		{NewPoint(2, 0), NewPoint(1, 9), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyDistinguishesPoints(t *testing.T) {
	a := NewPoint(1, 23)
	b := NewPoint(12, 3)
	if a.Key() == b.Key() {
		t.Errorf("Key collision: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != NewPoint(1, 23).Key() {
		t.Error("Key not stable for equal points")
	}
}

// Property: distance is symmetric and satisfies the triangle
// inequality for finite inputs.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := NewPoint(float64(ax), float64(ay))
		b := NewPoint(float64(bx), float64(by))
		c := NewPoint(float64(cx), float64(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 equals Dist squared.
func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := NewPoint(float64(ax), float64(ay))
		b := NewPoint(float64(bx), float64(by))
		return math.Abs(a.Dist2(b)-a.Dist(b)*a.Dist(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := NewPoint(1, 2.5).String(); s != "(1, 2.5)" {
		t.Errorf("String = %q", s)
	}
}
