package geom

import (
	"testing"
	"testing/quick"
)

func TestOrient2D(t *testing.T) {
	a, b := NewPoint(0, 0), NewPoint(1, 0)
	if v := Orient2D(a, b, NewPoint(0, 1)); v <= 0 {
		t.Errorf("ccw turn gave %v, want > 0", v)
	}
	if v := Orient2D(a, b, NewPoint(0, -1)); v >= 0 {
		t.Errorf("cw turn gave %v, want < 0", v)
	}
	if v := Orient2D(a, b, NewPoint(2, 0)); v != 0 {
		t.Errorf("collinear gave %v, want 0", v)
	}
}

func TestOrient3D(t *testing.T) {
	a := NewPoint(0, 0, 0)
	b := NewPoint(1, 0, 0)
	c := NewPoint(0, 1, 0)
	if v := Orient3D(a, b, c, NewPoint(0, 0, 1)); v <= 0 {
		t.Errorf("above plane gave %v, want > 0", v)
	}
	if v := Orient3D(a, b, c, NewPoint(0, 0, -1)); v >= 0 {
		t.Errorf("below plane gave %v, want < 0", v)
	}
	if v := Orient3D(a, b, c, NewPoint(5, 5, 0)); v != 0 {
		t.Errorf("coplanar gave %v, want 0", v)
	}
}

func TestSegmentDist2(t *testing.T) {
	a, b := NewPoint(0, 0), NewPoint(10, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{NewPoint(5, 3), 9},    // perpendicular drop onto interior
		{NewPoint(-3, 4), 25},  // nearest endpoint a
		{NewPoint(13, -4), 25}, // nearest endpoint b
		{NewPoint(7, 0), 0},    // on the segment
	}
	for _, c := range cases {
		if got := SegmentDist2(c.p, a, b); got != c.want {
			t.Errorf("SegmentDist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	if got := SegmentDist2(NewPoint(3, 4), NewPoint(0, 0), NewPoint(0, 0)); got != 25 {
		t.Errorf("degenerate segment dist = %v, want 25", got)
	}
}

func TestPointInTriangle2D(t *testing.T) {
	a, b, c := NewPoint(0, 0), NewPoint(10, 0), NewPoint(0, 10)
	if !PointInTriangle2D(NewPoint(2, 2), a, b, c) {
		t.Error("interior point reported outside")
	}
	if !PointInTriangle2D(NewPoint(5, 0), a, b, c) {
		t.Error("edge point reported outside")
	}
	if !PointInTriangle2D(a, a, b, c) {
		t.Error("vertex reported outside")
	}
	if PointInTriangle2D(NewPoint(6, 6), a, b, c) {
		t.Error("exterior point reported inside")
	}
}

// Property: Orient2D is antisymmetric under swapping the last two
// arguments.
func TestOrient2DAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := NewPoint(float64(ax), float64(ay))
		b := NewPoint(float64(bx), float64(by))
		c := NewPoint(float64(cx), float64(cy))
		return Orient2D(a, b, c) == -Orient2D(a, c, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
