package geom

import (
	"fmt"
	"math"
)

// Box is an axis-aligned bounding box in d dimensions, inclusive on
// both ends. Min and Max must have the same dimension and satisfy
// Min[i] <= Max[i] for a non-empty box.
type Box struct {
	Min, Max Point
}

// NewBox returns the box spanning [min, max]. It panics on dimension
// mismatch.
func NewBox(min, max Point) Box {
	checkDim(min, max)
	return Box{Min: min.Clone(), Max: max.Clone()}
}

// BoundingBox returns the smallest box containing all points. It
// panics if pts is empty.
func BoundingBox(pts []Point) Box {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	min := pts[0].Clone()
	max := pts[0].Clone()
	for _, p := range pts[1:] {
		checkDim(min, p)
		for i := range p {
			if p[i] < min[i] {
				min[i] = p[i]
			}
			if p[i] > max[i] {
				max[i] = p[i]
			}
		}
	}
	return Box{Min: min, Max: max}
}

// Dim returns the dimension of the box.
func (b Box) Dim() int { return len(b.Min) }

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point) bool {
	checkDim(b.Min, p)
	for i := range p {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two boxes share at least one point.
func (b Box) Intersects(o Box) bool {
	checkDim(b.Min, o.Min)
	for i := range b.Min {
		if b.Max[i] < o.Min[i] || o.Max[i] < b.Min[i] {
			return false
		}
	}
	return true
}

// Gap returns the Euclidean distance between the two boxes: the
// smallest distance between any point of b and any point of o, zero
// when they intersect. It lower-bounds the distance between any two
// point sets contained in the boxes.
func (b Box) Gap(o Box) float64 {
	checkDim(b.Min, o.Min)
	var sum float64
	for i := range b.Min {
		var d float64
		switch {
		case o.Min[i] > b.Max[i]:
			d = o.Min[i] - b.Max[i]
		case b.Min[i] > o.Max[i]:
			d = b.Min[i] - o.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	checkDim(b.Min, o.Min)
	min := b.Min.Clone()
	max := b.Max.Clone()
	for i := range min {
		if o.Min[i] < min[i] {
			min[i] = o.Min[i]
		}
		if o.Max[i] > max[i] {
			max[i] = o.Max[i]
		}
	}
	return Box{Min: min, Max: max}
}

// Center returns the midpoint of the box.
func (b Box) Center() Point {
	c := make(Point, len(b.Min))
	for i := range c {
		c[i] = (b.Min[i] + b.Max[i]) / 2
	}
	return c
}

// Volume returns the product of the box's side lengths. A degenerate
// box (a point or lower-dimensional slab) has volume zero.
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Min {
		v *= b.Max[i] - b.Min[i]
	}
	return v
}

// Clamp returns p with every coordinate clamped into the box.
func (b Box) Clamp(p Point) Point {
	checkDim(b.Min, p)
	q := p.Clone()
	for i := range q {
		q[i] = math.Max(b.Min[i], math.Min(b.Max[i], q[i]))
	}
	return q
}

// String formats the box as "[min .. max]".
func (b Box) String() string {
	return fmt.Sprintf("[%s .. %s]", b.Min, b.Max)
}
