package prov

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/geom"
	"repro/internal/hull"
)

// SeedEntry is one evaluated parameter valuation, as retained in the
// index.
type SeedEntry struct {
	V      []float64 `json:"v"`
	Useful bool      `json:"useful"`
}

// InclusionIndex is the serialized inclusion-provenance index of one
// debloating run: the record of *why* each index kept in a debloated
// file survived carving. It joins the three layers of evidence the
// pipeline produces — the carved hull set ℍ (which region kept the
// index), the fuzz campaign's witness map (which debloat test first
// observed an index), and the seed log (which parameter valuation
// that test ran with) — into one queryable artifact, surfaced by
// `kondo explain`. Witness facts are stored as parallel arrays sorted
// by linear index position — compact, deterministic to marshal, and
// binary-searchable.
type InclusionIndex struct {
	// Tool identifies the producer.
	Tool string `json:"tool"`
	// Program and Dataset identify what was debloated.
	Program string `json:"program"`
	Dataset string `json:"dataset"`
	// Dims are the data array extents the index positions refer to.
	Dims []int `json:"dims"`
	// Granularity ("chunk" or "element") and Chunk mirror the debloat
	// manifest; at chunk granularity an index can be kept with no
	// containing hull, because its chunk overlaps one.
	Granularity string `json:"granularity,omitempty"`
	Chunk       []int  `json:"chunk,omitempty"`
	// Hulls are the carved hulls as vertex lists (manifest format).
	Hulls [][][]float64 `json:"hulls"`
	// Seeds are the campaign's evaluated valuations in schedule order.
	Seeds []SeedEntry `json:"seeds"`
	// WitnessLins and WitnessSeeds are parallel arrays: for each
	// directly observed linear index position, the ordinal into Seeds
	// of the debloat test that first covered it. Sorted by position.
	WitnessLins  []int64 `json:"witness_lins"`
	WitnessSeeds []int   `json:"witness_seeds"`

	space array.Space  // derived from Dims on first use
	hulls []*hull.Hull // rebuilt lazily
}

// New assembles an inclusion index from pipeline outputs. The
// witnesses map comes from fuzz.Result.Witnesses (requires
// fuzz.Config.Witnesses); seeds from fuzz.Result.Seeds.
func New(program, dataset string, space array.Space, granularity string, chunk []int,
	hulls []*hull.Hull, seeds []fuzz.SeedRecord, witnesses map[int64]int) *InclusionIndex {

	idx := &InclusionIndex{
		Tool:        "kondo-repro",
		Program:     program,
		Dataset:     dataset,
		Dims:        space.Dims(),
		Granularity: granularity,
		Chunk:       append([]int(nil), chunk...),
	}
	for _, h := range hulls {
		var verts [][]float64
		for _, v := range h.Vertices() {
			verts = append(verts, append([]float64(nil), v...))
		}
		idx.Hulls = append(idx.Hulls, verts)
	}
	for _, s := range seeds {
		idx.Seeds = append(idx.Seeds, SeedEntry{V: append([]float64(nil), s.V...), Useful: s.Useful})
	}
	lins := make([]int64, 0, len(witnesses))
	for lin := range witnesses {
		lins = append(lins, lin)
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	idx.WitnessLins = lins
	idx.WitnessSeeds = make([]int, len(lins))
	for i, lin := range lins {
		idx.WitnessSeeds[i] = witnesses[lin]
	}
	return idx
}

// Save writes the index as JSON.
func (x *InclusionIndex) Save(path string) error {
	data, err := json.MarshalIndent(x, "", "  ")
	if err != nil {
		return fmt.Errorf("prov: encoding index: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("prov: writing index: %w", err)
	}
	return nil
}

// Load reads an index written by Save.
func Load(path string) (*InclusionIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("prov: reading index: %w", err)
	}
	x := &InclusionIndex{}
	if err := json.Unmarshal(data, x); err != nil {
		return nil, fmt.Errorf("prov: decoding index %s: %w", path, err)
	}
	if len(x.WitnessLins) != len(x.WitnessSeeds) {
		return nil, fmt.Errorf("prov: index %s: %d witness positions but %d seed ordinals",
			path, len(x.WitnessLins), len(x.WitnessSeeds))
	}
	return x, nil
}

// Space returns the array space the index positions refer to.
func (x *InclusionIndex) Space() (array.Space, error) {
	if x.space.Size() == 0 {
		s, err := array.NewSpace(x.Dims...)
		if err != nil {
			return array.Space{}, fmt.Errorf("prov: index dims: %w", err)
		}
		x.space = s
	}
	return x.space, nil
}

func (x *InclusionIndex) rebuiltHulls() ([]*hull.Hull, error) {
	if x.hulls != nil || len(x.Hulls) == 0 {
		return x.hulls, nil
	}
	out := make([]*hull.Hull, 0, len(x.Hulls))
	for i, verts := range x.Hulls {
		pts := make([]geom.Point, len(verts))
		for j, v := range verts {
			pts[j] = geom.Point(v)
		}
		h, err := hull.New(pts)
		if err != nil {
			return nil, fmt.Errorf("prov: index hull %d: %w", i, err)
		}
		out = append(out, h)
	}
	x.hulls = out
	return out, nil
}

// Attribution explains why one index of the debloated file was kept.
type Attribution struct {
	// Index and Lin are the queried position.
	Index array.Index `json:"index"`
	Lin   int64       `json:"lin"`
	// Hull is the ordinal of the first carved hull containing the
	// index, or -1 when no hull contains it (possible at chunk
	// granularity, where a chunk is kept whole if any hull overlaps
	// it).
	Hull int `json:"hull"`
	// HullVertices is the containing hull's vertex count (0 if none).
	HullVertices int `json:"hull_vertices,omitempty"`
	// Witnessed reports whether a debloat test directly observed this
	// index. When false, Seed/SeedValue refer to the nearest witnessed
	// index (NearestLin) — the access that pulled the surrounding
	// region into a hull.
	Witnessed  bool  `json:"witnessed"`
	NearestLin int64 `json:"nearest_lin,omitempty"`
	// Seed is the ordinal (into the index's seed log) of the
	// attributing debloat test, -1 when the campaign recorded no
	// witnesses at all.
	Seed int `json:"seed"`
	// SeedValue is that test's parameter valuation; Useful its
	// verdict.
	SeedValue []float64 `json:"seed_value,omitempty"`
	Useful    bool      `json:"useful,omitempty"`
	// Note is the human-readable explanation.
	Note string `json:"note"`
}

// Explain attributes one array index to the hull and debloat test
// that caused its inclusion.
func (x *InclusionIndex) Explain(ix array.Index) (*Attribution, error) {
	space, err := x.Space()
	if err != nil {
		return nil, err
	}
	lin, err := space.Linear(ix)
	if err != nil {
		return nil, fmt.Errorf("prov: %w", err)
	}
	att := &Attribution{Index: append(array.Index(nil), ix...), Lin: lin, Hull: -1, Seed: -1}

	hulls, err := x.rebuiltHulls()
	if err != nil {
		return nil, err
	}
	p := make(geom.Point, len(ix))
	for k, v := range ix {
		p[k] = float64(v)
	}
	for i, h := range hulls {
		if h.Contains(p) {
			att.Hull = i
			att.HullVertices = h.NumVertices()
			break
		}
	}

	// Witness lookup: exact, else nearest by linear distance.
	n := len(x.WitnessLins)
	if n > 0 {
		pos := sort.Search(n, func(i int) bool { return x.WitnessLins[i] >= lin })
		if pos < n && x.WitnessLins[pos] == lin {
			att.Witnessed = true
			att.Seed = x.WitnessSeeds[pos]
		} else {
			best := -1
			if pos < n {
				best = pos
			}
			if pos > 0 && (best < 0 || lin-x.WitnessLins[pos-1] <= x.WitnessLins[best]-lin) {
				best = pos - 1
			}
			att.NearestLin = x.WitnessLins[best]
			att.Seed = x.WitnessSeeds[best]
		}
	}
	if att.Seed >= 0 && att.Seed < len(x.Seeds) {
		att.SeedValue = x.Seeds[att.Seed].V
		att.Useful = x.Seeds[att.Seed].Useful
	}

	switch {
	case att.Witnessed && att.Hull >= 0:
		att.Note = fmt.Sprintf("index %v was accessed by debloat test #%d (v=%v) and is inside hull %d",
			ix, att.Seed, att.SeedValue, att.Hull)
	case att.Witnessed:
		att.Note = fmt.Sprintf("index %v was accessed by debloat test #%d (v=%v); no carved hull contains it (kept at %s granularity)",
			ix, att.Seed, att.SeedValue, x.granularityName())
	case att.Hull >= 0 && att.Seed >= 0:
		att.Note = fmt.Sprintf("index %v was never directly accessed; it is inside hull %d, whose nearest observed access (lin %d) came from debloat test #%d (v=%v) — convex over-approximation kept it",
			ix, att.Hull, att.NearestLin, att.Seed, att.SeedValue)
	case att.Hull >= 0:
		att.Note = fmt.Sprintf("index %v is inside hull %d; the index carries no witness map, so the originating debloat test is unknown",
			ix, att.Hull)
	case att.Seed >= 0:
		att.Note = fmt.Sprintf("index %v is outside every carved hull; at %s granularity it was kept because its chunk overlaps a hull — nearest observed access (lin %d) came from debloat test #%d (v=%v)",
			ix, x.granularityName(), att.NearestLin, att.Seed, att.SeedValue)
	default:
		att.Note = fmt.Sprintf("index %v is outside every carved hull and the index carries no witness map — it was likely not kept by this run", ix)
	}
	return att, nil
}

func (x *InclusionIndex) granularityName() string {
	if x.Granularity == "" {
		return "element"
	}
	return x.Granularity
}
