package prov

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/fuzz"
	"repro/internal/geom"
	"repro/internal/hull"
)

func mustSpace(t *testing.T, dims ...int) array.Space {
	t.Helper()
	s, err := array.NewSpace(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustHull(t *testing.T, pts ...geom.Point) *hull.Hull {
	t.Helper()
	h, err := hull.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// testIndex builds a 2-D index over a 10x10 space with one square hull
// covering [2,6]x[2,6], two seeds, and witnesses at (2,2) (seed 0) and
// (6,6) (seed 1).
func testIndex(t *testing.T) *InclusionIndex {
	t.Helper()
	space := mustSpace(t, 10, 10)
	h := mustHull(t,
		geom.Point{2, 2}, geom.Point{2, 6}, geom.Point{6, 2}, geom.Point{6, 6})
	seeds := []fuzz.SeedRecord{
		{V: []float64{10, 20}, Useful: true},
		{V: []float64{30, 40}, Useful: true},
	}
	lin := func(i, j int) int64 {
		l, err := space.Linear(array.Index{i, j})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	witnesses := map[int64]int{
		lin(2, 2): 0,
		lin(6, 6): 1,
	}
	return New("prog", "data", space, "element", nil, []*hull.Hull{h}, seeds, witnesses)
}

func TestExplainWitnessedIndex(t *testing.T) {
	idx := testIndex(t)
	att, err := idx.Explain(array.Index{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !att.Witnessed {
		t.Fatal("expected (2,2) to be witnessed")
	}
	if att.Hull != 0 {
		t.Fatalf("Hull = %d, want 0", att.Hull)
	}
	if att.Seed != 0 || !reflect.DeepEqual(att.SeedValue, []float64{10, 20}) {
		t.Fatalf("attributed to seed %d v=%v, want seed 0 v=[10 20]", att.Seed, att.SeedValue)
	}
	if !strings.Contains(att.Note, "debloat test #0") {
		t.Fatalf("note %q does not name the debloat test", att.Note)
	}
}

func TestExplainOverApproximatedIndex(t *testing.T) {
	idx := testIndex(t)
	// (4,4) is inside the hull but never directly observed.
	att, err := idx.Explain(array.Index{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if att.Witnessed {
		t.Fatal("(4,4) should not be witnessed")
	}
	if att.Hull != 0 {
		t.Fatalf("Hull = %d, want 0", att.Hull)
	}
	if att.Seed < 0 {
		t.Fatal("expected a nearest-witness seed attribution")
	}
	if !strings.Contains(att.Note, "over-approximation") {
		t.Fatalf("note %q does not mention over-approximation", att.Note)
	}
}

func TestExplainOutsideHulls(t *testing.T) {
	idx := testIndex(t)
	att, err := idx.Explain(array.Index{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if att.Hull != -1 {
		t.Fatalf("Hull = %d, want -1", att.Hull)
	}
	if att.Seed != 1 {
		t.Fatalf("Seed = %d, want nearest witness 1", att.Seed)
	}
}

func TestExplainRejectsOutOfRange(t *testing.T) {
	idx := testIndex(t)
	if _, err := idx.Explain(array.Index{10, 0}); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx := testIndex(t)
	path := filepath.Join(t.TempDir(), "prov.json")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != idx.Program || got.Dataset != idx.Dataset {
		t.Fatalf("round trip lost identity: %+v", got)
	}
	if !reflect.DeepEqual(got.WitnessLins, idx.WitnessLins) ||
		!reflect.DeepEqual(got.WitnessSeeds, idx.WitnessSeeds) {
		t.Fatal("round trip lost witness arrays")
	}
	att, err := got.Explain(array.Index{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !att.Witnessed || att.Seed != 0 {
		t.Fatalf("loaded index attribution wrong: %+v", att)
	}
}

func TestLoadRejectsMismatchedWitnessArrays(t *testing.T) {
	idx := testIndex(t)
	idx.WitnessSeeds = idx.WitnessSeeds[:1]
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected mismatched parallel arrays to be rejected")
	}
}

func TestWitnessArraysAreSorted(t *testing.T) {
	idx := testIndex(t)
	for i := 1; i < len(idx.WitnessLins); i++ {
		if idx.WitnessLins[i-1] >= idx.WitnessLins[i] {
			t.Fatalf("witness lins not strictly sorted: %v", idx.WitnessLins)
		}
	}
}
