package prov

import (
	"strings"
	"testing"

	"repro/internal/ioevent"
)

func sampleStore(t *testing.T) *ioevent.Store {
	t.Helper()
	s := ioevent.NewStore()
	events := []ioevent.Event{
		{ID: ioevent.ID{PID: 1, File: "mnist.sdf"}, Op: ioevent.OpRead, Offset: 0, Size: 100},
		{ID: ioevent.ID{PID: 1, File: "mnist.sdf"}, Op: ioevent.OpRead, Offset: 200, Size: 50},
		{ID: ioevent.ID{PID: 2, File: "mnist.sdf"}, Op: ioevent.OpRead, Offset: 50, Size: 100},
		{ID: ioevent.ID{PID: 2, File: "out.log"}, Op: ioevent.OpWrite, Offset: 0, Size: 10},
	}
	for _, e := range events {
		if err := s.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestFromStoreStructure(t *testing.T) {
	g := FromStore(sampleStore(t))

	// Vertices: P1, P2, mnist.sdf, out.log.
	if _, ok := g.Vertex("process:1"); !ok {
		t.Error("missing process:1")
	}
	if _, ok := g.Vertex("process:2"); !ok {
		t.Error("missing process:2")
	}
	art, ok := g.Vertex("artifact:mnist.sdf")
	if !ok {
		t.Fatal("missing data artifact")
	}
	// File-level summary: ranges (0,150) and (200,250) → 2 ranges, 200 bytes.
	if art.Attrs["accessed_ranges"] != "2" || art.Attrs["accessed_bytes"] != "200" {
		t.Errorf("artifact attrs = %v", art.Attrs)
	}

	// Edges: two used edges to mnist, one used to out.log (the write
	// also counts as an access), one wasGeneratedBy from out.log.
	var used, generated int
	for _, e := range g.Edges() {
		switch e.Kind {
		case Used:
			used++
		case WasGeneratedBy:
			generated++
			if e.From != "artifact:out.log" || e.To != "process:2" {
				t.Errorf("wasGeneratedBy edge = %+v", e)
			}
		}
	}
	if used != 3 {
		t.Errorf("used edges = %d, want 3", used)
	}
	if generated != 1 {
		t.Errorf("wasGeneratedBy edges = %d, want 1", generated)
	}

	// The per-process used edge carries the fine-grained summary.
	for _, e := range g.Edges() {
		if e.Kind == Used && e.From == "process:1" {
			if e.Attrs["ranges"] != "2" || e.Attrs["bytes"] != "150" {
				t.Errorf("P1 used attrs = %v", e.Attrs)
			}
		}
	}
}

func TestRecordDebloatAndAncestry(t *testing.T) {
	g := FromStore(sampleStore(t))
	if err := RecordDebloat(g, "mnist.sdf", "mnist-debloated.sdf", "CS2", 1908, 0.4885); err != nil {
		t.Fatal(err)
	}
	anc := g.Ancestry("artifact:mnist-debloated.sdf")
	want := map[string]bool{
		"activity:kondo-debloat:CS2": true,
		"artifact:mnist.sdf":         true,
	}
	for _, id := range anc {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("ancestry missing %v (got %v)", want, anc)
	}
	// Ancestry excludes the start vertex.
	for _, id := range anc {
		if id == "artifact:mnist-debloated.sdf" {
			t.Error("ancestry includes the start vertex")
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.AddVertex("a", Artifact, "a", nil)
	if err := g.AddEdge("a", "missing", Used, nil); err == nil {
		t.Error("edge to unknown vertex should error")
	}
	if err := g.AddEdge("missing", "a", Used, nil); err == nil {
		t.Error("edge from unknown vertex should error")
	}
}

func TestDOTOutput(t *testing.T) {
	g := FromStore(sampleStore(t))
	if err := RecordDebloat(g, "mnist.sdf", "mnist-debloated.sdf", "CS2", 10, 0.5); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := g.DOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph provenance",
		`"process:1"`,
		`"artifact:mnist.sdf"`,
		"wasDerivedFrom",
		"wasGeneratedBy",
		"shape=hexagon", // the activity
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Process.String() != "process" || Artifact.String() != "artifact" || Activity.String() != "activity" {
		t.Error("Kind strings wrong")
	}
	if Used.String() != "used" || WasGeneratedBy.String() != "wasGeneratedBy" || WasDerivedFrom.String() != "wasDerivedFrom" {
		t.Error("EdgeKind strings wrong")
	}
}
