package status

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestStatuszOmitsVerifyWithoutSource(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["verify"]; ok {
		t.Fatal("verify key present without a source")
	}
}

func TestStatuszEmbedsLiveVerifyState(t *testing.T) {
	s := newTestServer()
	failed := int64(0)
	s.SetVerifySource(func() any {
		return map[string]any{"enabled": true, "verify_ok": 3, "verify_failed": failed}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	read := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap struct {
			Verify map[string]any `json:"verify"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap.Verify
	}
	if v := read(); v["enabled"] != true || v["verify_failed"] != float64(0) {
		t.Fatalf("verify view = %v", v)
	}
	// The source is read live: a rejection shows up on the next scrape.
	failed = 1
	if v := read(); v["verify_failed"] != float64(1) {
		t.Fatalf("verify view after failure = %v", v)
	}
}
