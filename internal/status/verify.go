package status

// Verify view: when the process runs a verifying recovery client (a
// kondo-load soak with a Merkle-rooted manifest, or any runtime that
// armed CachedFetcher.SetVerify), /statusz embeds the live
// verification state so an operator — or the verify-demo gate — can
// see tamper rejections without scraping Prometheus text. Like the
// fleet and SLO views, the status layer stays generic: the state is an
// opaque JSON-marshalable value supplied by the host, and processes
// without a verifying client pay nothing (the key is omitted).

// SetVerifySource installs the /statusz verify-state provider. Until
// one is set the snapshot omits the "verify" key. Safe to call
// concurrently with requests.
func (s *Server) SetVerifySource(fn func() any) {
	s.mu.Lock()
	s.verifySource = fn
	s.mu.Unlock()
}
