package status

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSlozWithoutSourceIs404(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/sloz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/sloz without a source = %d, want 404", resp.StatusCode)
	}
}

func TestSlozServesLiveReport(t *testing.T) {
	reg := obs.NewRegistry()
	requests := reg.Counter("test_requests_total")
	latency := reg.Histogram("test_latency_seconds", []float64{0.01, 0.1, 1})
	slo := obs.NewSLO(time.Minute, obs.SLOObjective{
		Name:         "chunk",
		LatencyBound: time.Second,
		Target:       0.99,
		Source: obs.SLOSource{
			Requests: requests.Value,
			Errors:   func() int64 { return 0 },
			Latency:  latency,
		},
	})
	s := newTestServer()
	s.SetSLOSource(func() any { return slo.Report(time.Now()) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	requests.Inc()
	latency.Observe(0.001)

	resp, err := http.Get(ts.URL + "/sloz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/sloz = %d, want 200", resp.StatusCode)
	}
	var rep obs.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	obj := rep.Objective("chunk")
	if obj.Requests != 1 {
		t.Fatalf("window requests = %d, want the live count 1", obj.Requests)
	}
	if rep.Exhausted() {
		t.Fatalf("healthy report exhausted: %+v", rep)
	}
}
