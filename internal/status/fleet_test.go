package status

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// testFleetEvent mirrors the shape cmd/kondo-coord publishes without
// importing orchestra (the status layer is deliberately generic).
type testFleetEvent struct {
	Kind    string `json:"kind"`
	LeaseID uint64 `json:"lease_id"`
	Worker  string `json:"worker"`
}

func TestFleetzWithoutSourceIs404(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/fleetz without a source = %d, want 404", resp.StatusCode)
	}
}

func TestFleetzServesSnapshot(t *testing.T) {
	s := newTestServer()
	s.SetFleetSource(func() any {
		return map[string]any{"workers": []map[string]any{{"worker": "alice", "straggler": true}}}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleetz = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Workers []struct {
			Worker    string `json:"worker"`
			Straggler bool   `json:"straggler"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workers) != 1 || body.Workers[0].Worker != "alice" || !body.Workers[0].Straggler {
		t.Fatalf("snapshot = %+v", body)
	}
}

func TestFleetStreamReplaysBacklogAndLiveEvents(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.PublishFleetEvent(testFleetEvent{Kind: "granted", LeaseID: 1, Worker: "alice"})
	s.PublishFleetEvent(testFleetEvent{Kind: "completed", LeaseID: 1, Worker: "alice"})

	resp, err := http.Get(ts.URL + "/fleetz/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var kinds []string
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(resp.Body)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "lease":
				var ev testFleetEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Errorf("bad lease frame: %v", err)
				}
				kinds = append(kinds, ev.Kind)
			}
			if event == "done" && line == "" {
				return
			}
		}
	}()

	s.PublishFleetEvent(testFleetEvent{Kind: "expired", LeaseID: 2, Worker: "bob"})
	s.Finish()
	wg.Wait()

	want := []string{"granted", "completed", "expired"}
	if len(kinds) != len(want) {
		t.Fatalf("stream delivered %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("stream delivered %v, want %v", kinds, want)
		}
	}
}

func TestFleetStreamBacklogIsBounded(t *testing.T) {
	s := newTestServer()
	for i := 0; i < fleetBacklog*3; i++ {
		s.PublishFleetEvent(testFleetEvent{Kind: "granted", LeaseID: uint64(i)})
	}
	backlog, _, cancel := s.subscribeFleet()
	defer cancel()
	if len(backlog) != fleetBacklog {
		t.Fatalf("backlog holds %d events, want %d", len(backlog), fleetBacklog)
	}
	// The tail is the most recent events.
	last := backlog[len(backlog)-1].(testFleetEvent)
	if last.LeaseID != uint64(fleetBacklog*3-1) {
		t.Fatalf("backlog tail = %+v, want the newest event", last)
	}
}

func TestFleetSlowSubscriberIsDroppedNotBlocking(t *testing.T) {
	s := newTestServer()
	_, ch, cancel := s.subscribeFleet()
	defer cancel()
	if ch == nil {
		t.Fatal("expected live channel")
	}
	for i := 0; i < subBuffer*4; i++ {
		s.PublishFleetEvent(testFleetEvent{Kind: "granted", LeaseID: uint64(i)})
	}
	// The subscriber was dropped: its channel is closed after the
	// buffered prefix.
	n := 0
	for range ch {
		n++
		if n > subBuffer {
			t.Fatal("slow subscriber was never dropped: " + strconv.Itoa(n))
		}
	}
	if n != subBuffer {
		t.Fatalf("drained %d buffered events, want %d", n, subBuffer)
	}
}
