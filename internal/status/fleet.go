package status

import "net/http"

// Fleet view: when the process is a coordinator, /fleetz serves a
// point-in-time health snapshot of every worker and /fleetz/stream a
// Server-Sent-Events feed of lease lifecycle events. The status layer
// stays generic — the snapshot and events are opaque JSON-marshalable
// values supplied by cmd/kondo-coord (orchestra.FleetSnapshot and
// orchestra.FleetEvent), so no orchestra dependency leaks in here.

// fleetBacklog is how many recent lease events a new /fleetz/stream
// subscriber replays before going live.
const fleetBacklog = 64

// SetFleetSource installs the /fleetz snapshot provider. Until one is
// set the endpoint answers 404 (the process is not a coordinator).
// Safe to call concurrently with requests.
func (s *Server) SetFleetSource(fn func() any) {
	s.mu.Lock()
	s.fleetSource = fn
	s.mu.Unlock()
}

// PublishFleetEvent fans one lease lifecycle event out to
// /fleetz/stream subscribers and into the replay backlog. Like
// Publish, a subscriber that cannot keep up is dropped, never blocking
// the coordinator's protocol goroutines.
func (s *Server) PublishFleetEvent(ev any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.fleetLog = append(s.fleetLog, ev)
	if len(s.fleetLog) > fleetBacklog {
		s.fleetLog = s.fleetLog[len(s.fleetLog)-fleetBacklog:]
	}
	for id, ch := range s.fleetSubs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(s.fleetSubs, id)
		}
	}
}

// subscribeFleet registers a stream subscriber: recent backlog, live
// channel (nil if the campaign already finished), unsubscribe func.
func (s *Server) subscribeFleet() ([]any, chan any, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	backlog := append([]any(nil), s.fleetLog...)
	if s.done {
		return backlog, nil, func() {}
	}
	id := s.nextSub
	s.nextSub++
	if s.fleetSubs == nil {
		s.fleetSubs = make(map[int]chan any)
	}
	ch := make(chan any, subBuffer)
	s.fleetSubs[id] = ch
	return backlog, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.fleetSubs, id)
	}
}

// handleFleetz serves the fleet health snapshot.
func (s *Server) handleFleetz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	src := s.fleetSource
	s.mu.Unlock()
	if src == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not a coordinator"})
		return
	}
	writeJSON(w, http.StatusOK, src())
}

// handleFleetStream is the lease lifecycle SSE feed: each event is one
// `event: lease` frame; the stream ends with `event: done` when the
// server finishes. New subscribers first replay the recent backlog
// (at most fleetBacklog events — unlike /statusz/stream this is a
// tail, not the full history).
func (s *Server) handleFleetStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	backlog, ch, cancel := s.subscribeFleet()
	defer cancel()
	for _, ev := range backlog {
		writeEvent(w, "lease", ev)
	}
	flusher.Flush()
	if ch == nil {
		writeEvent(w, "done", nil)
		flusher.Flush()
		return
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				writeEvent(w, "done", nil)
				flusher.Flush()
				return
			}
			writeEvent(w, "lease", ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.doneCh:
			for {
				select {
				case ev, open := <-ch:
					if !open {
						writeEvent(w, "done", nil)
						flusher.Flush()
						return
					}
					writeEvent(w, "lease", ev)
				default:
					writeEvent(w, "done", nil)
					flusher.Flush()
					return
				}
			}
		}
	}
}
