// Package status serves a running fuzz campaign's live coverage
// telemetry over HTTP: a /statusz JSON snapshot of the coverage
// series, a /statusz/stream Server-Sent-Events feed of points as they
// are recorded, the metrics registry in Prometheus text format, and a
// health probe. `cmd/kondo -status-addr` mounts it next to a campaign
// and feeds it through fuzz.Config.OnCoverage (DESIGN.md §9).
package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/fuzz"
	"repro/internal/obs"
)

// Campaign is the static metadata of the campaign being watched.
type Campaign struct {
	Program string `json:"program"`
	Dataset string `json:"dataset,omitempty"`
	Dims    []int  `json:"dims"`
	Workers int    `json:"workers"`
	// StartedAt is the campaign start in RFC 3339 form.
	StartedAt string `json:"started_at"`
}

// Snapshot is the /statusz response body.
type Snapshot struct {
	Campaign Campaign `json:"campaign"`
	// Done reports whether the campaign has finished.
	Done bool `json:"done"`
	// Coverage is the series recorded so far (points in round order).
	Coverage *fuzz.CoverageSeries `json:"coverage"`
	// Verify is the live chunk-verification state (host-supplied via
	// SetVerifySource); omitted when no verifying client runs here.
	Verify any `json:"verify,omitempty"`
}

// Server accumulates coverage points and serves them. Publish is safe
// to call from the campaign's merge goroutine while HTTP handlers
// read concurrently; slow SSE subscribers are dropped rather than
// allowed to block the campaign.
type Server struct {
	meta Campaign
	reg  *obs.Registry

	mu      sync.Mutex
	series  fuzz.CoverageSeries
	done    bool
	doneCh  chan struct{}
	subs    map[int]chan fuzz.CoveragePoint
	nextSub int

	// Fleet view (see fleet.go); nil/empty unless the process is a
	// coordinator and called SetFleetSource / PublishFleetEvent.
	fleetSource func() any
	fleetLog    []any
	fleetSubs   map[int]chan any

	// SLO view (see slo.go); nil unless the process runs an SLO engine
	// and called SetSLOSource.
	sloSource func() any

	// Verify view (see verify.go); nil unless the process runs a
	// verifying recovery client and called SetVerifySource.
	verifySource func() any
}

// subBuffer is the per-subscriber point buffer; a subscriber that
// falls further behind than this is disconnected.
const subBuffer = 64

// NewServer returns a status server for one campaign. The registry
// (may be nil) backs the /metrics endpoint.
func NewServer(meta Campaign, dims []int, spaceSize int64, reg *obs.Registry) *Server {
	if meta.StartedAt == "" {
		meta.StartedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if meta.Dims == nil {
		meta.Dims = dims
	}
	return &Server{
		meta:   meta,
		reg:    reg,
		series: fuzz.CoverageSeries{Dims: dims, SpaceSize: spaceSize},
		doneCh: make(chan struct{}),
		subs:   make(map[int]chan fuzz.CoveragePoint),
	}
}

// Publish appends one coverage point and fans it out to stream
// subscribers. It is the fuzz.Config.OnCoverage hook.
func (s *Server) Publish(p fuzz.CoveragePoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.series.Points = append(s.series.Points, p)
	for id, ch := range s.subs {
		select {
		case ch <- p:
		default:
			// The subscriber's buffer is full; drop it so the campaign
			// never blocks on a stalled client.
			close(ch)
			delete(s.subs, id)
		}
	}
}

// Finish marks the campaign done and ends every open stream.
func (s *Server) Finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	close(s.doneCh)
	for id, ch := range s.subs {
		close(ch)
		delete(s.subs, id)
	}
	for id, ch := range s.fleetSubs {
		close(ch)
		delete(s.fleetSubs, id)
	}
}

// subscribe registers a stream subscriber, returning the backlog
// recorded so far, the live channel (nil if already done), and an
// unsubscribe func.
func (s *Server) subscribe() ([]fuzz.CoveragePoint, chan fuzz.CoveragePoint, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	backlog := append([]fuzz.CoveragePoint(nil), s.series.Points...)
	if s.done {
		return backlog, nil, func() {}
	}
	id := s.nextSub
	s.nextSub++
	ch := make(chan fuzz.CoveragePoint, subBuffer)
	s.subs[id] = ch
	return backlog, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
		}
	}
}

// Handler returns the status mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/statusz/stream", s.handleStream)
	mux.HandleFunc("/fleetz", s.handleFleetz)
	mux.HandleFunc("/fleetz/stream", s.handleFleetStream)
	mux.HandleFunc("/sloz", s.handleSloz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := Snapshot{
		Campaign: s.meta,
		Done:     s.done,
		Coverage: &fuzz.CoverageSeries{
			Dims:      s.series.Dims,
			SpaceSize: s.series.SpaceSize,
			Points:    append([]fuzz.CoveragePoint(nil), s.series.Points...),
		},
	}
	verifySrc := s.verifySource
	s.mu.Unlock()
	if verifySrc != nil {
		// Read outside the lock: the source snapshots atomics.
		snap.Verify = verifySrc()
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleStream is the SSE feed: each recorded point is one
// `event: coverage` frame whose data is the point's JSON; the stream
// ends with an `event: done` frame when the campaign finishes. A new
// subscriber first receives the full backlog, so the concatenation of
// frames always replays the complete series.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	backlog, ch, cancel := s.subscribe()
	defer cancel()
	for _, p := range backlog {
		writeEvent(w, "coverage", p)
	}
	flusher.Flush()
	if ch == nil {
		writeEvent(w, "done", nil)
		flusher.Flush()
		return
	}
	for {
		select {
		case p, open := <-ch:
			if !open {
				// Campaign finished (or we lagged out): close the
				// stream with a terminal frame either way.
				writeEvent(w, "done", nil)
				flusher.Flush()
				return
			}
			writeEvent(w, "coverage", p)
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.doneCh:
			// Drain anything the publisher enqueued before finishing.
			for {
				select {
				case p, open := <-ch:
					if !open {
						writeEvent(w, "done", nil)
						flusher.Flush()
						return
					}
					writeEvent(w, "coverage", p)
				default:
					writeEvent(w, "done", nil)
					flusher.Flush()
					return
				}
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no metrics registry"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// writeEvent writes one SSE frame. A nil payload writes an empty data
// line (used by the terminal "done" event).
func writeEvent(w http.ResponseWriter, event string, payload any) {
	fmt.Fprintf(w, "event: %s\n", event)
	if payload == nil {
		fmt.Fprint(w, "data: {}\n\n")
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		fmt.Fprint(w, "data: {}\n\n")
		return
	}
	fmt.Fprintf(w, "data: %s\n\n", data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
