package status

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/obs"
)

func point(round, covered, added int) fuzz.CoveragePoint {
	return fuzz.CoveragePoint{
		Round:       round,
		Iterations:  round * 4,
		Evaluations: round * 4,
		Covered:     covered,
		New:         added,
		DimCoverage: []float64{0.5},
	}
}

func newTestServer() *Server {
	return NewServer(Campaign{Program: "ARD", Workers: 2}, []int{16, 16}, 256, obs.NewRegistry())
}

func getSnapshot(t *testing.T, ts *httptest.Server) Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestStatuszMonotonicSeries pins the acceptance criterion: as the
// campaign publishes points, /statusz serves a coverage series whose
// length and covered counts grow monotonically.
func TestStatuszMonotonicSeries(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	prevLen, prevCovered := 0, 0
	for round := 1; round <= 5; round++ {
		s.Publish(point(round, round*10, 10))
		snap := getSnapshot(t, ts)
		if got := len(snap.Coverage.Points); got <= prevLen-1 || got != round {
			t.Fatalf("round %d: series length %d, want %d", round, got, round)
		}
		last := snap.Coverage.Points[len(snap.Coverage.Points)-1]
		if last.Covered < prevCovered {
			t.Fatalf("round %d: covered %d shrank below %d", round, last.Covered, prevCovered)
		}
		for i := 1; i < len(snap.Coverage.Points); i++ {
			if snap.Coverage.Points[i].Covered < snap.Coverage.Points[i-1].Covered {
				t.Fatalf("series not monotone at point %d: %+v", i, snap.Coverage.Points)
			}
		}
		prevLen = len(snap.Coverage.Points)
		prevCovered = last.Covered
		if snap.Done {
			t.Fatal("campaign reported done while publishing")
		}
	}

	s.Finish()
	snap := getSnapshot(t, ts)
	if !snap.Done {
		t.Fatal("campaign should report done after Finish")
	}
	if snap.Campaign.Program != "ARD" || snap.Campaign.Workers != 2 {
		t.Fatalf("campaign meta lost: %+v", snap.Campaign)
	}
}

// TestStreamReplaysBacklogAndLivePoints reads the SSE feed and checks
// it replays pre-subscription points, delivers live ones, and
// terminates with a done event.
func TestStreamReplaysBacklogAndLivePoints(t *testing.T) {
	s := newTestServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.Publish(point(1, 10, 10))
	s.Publish(point(2, 25, 15))

	resp, err := http.Get(ts.URL + "/statusz/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var events []string
	var points []fuzz.CoveragePoint
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(resp.Body)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
				events = append(events, event)
			case strings.HasPrefix(line, "data: "):
				if event == "coverage" {
					var p fuzz.CoveragePoint
					if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
						t.Errorf("bad coverage frame: %v", err)
					}
					points = append(points, p)
				}
			}
			if event == "done" && line == "" {
				return
			}
		}
	}()

	s.Publish(point(3, 40, 15))
	s.Finish()
	wg.Wait()

	if len(points) != 3 {
		t.Fatalf("stream delivered %d points, want 3 (%v)", len(points), events)
	}
	for i, want := range []int{10, 25, 40} {
		if points[i].Covered != want {
			t.Fatalf("point %d covered = %d, want %d", i, points[i].Covered, want)
		}
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("last event = %q, want done", events[len(events)-1])
	}
}

// TestStreamAfterFinishSendsBacklogThenDone: subscribing to a
// finished campaign still replays the full series.
func TestStreamAfterFinishSendsBacklogThenDone(t *testing.T) {
	s := newTestServer()
	s.Publish(point(1, 5, 5))
	s.Finish()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/statusz/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	out := body.String()
	if !strings.Contains(out, "event: coverage") || !strings.Contains(out, "event: done") {
		t.Fatalf("finished-campaign stream missing frames:\n%s", out)
	}
}

// TestSlowSubscriberIsDroppedNotBlocking: a subscriber that never
// drains must not block Publish.
func TestSlowSubscriberIsDroppedNotBlocking(t *testing.T) {
	s := newTestServer()
	_, ch, cancel := s.subscribe()
	defer cancel()
	if ch == nil {
		t.Fatal("expected live channel")
	}
	// Publish far more than the buffer without reading; every call
	// must return promptly.
	for i := 0; i < subBuffer*2; i++ {
		s.Publish(point(i+1, i+1, 1))
	}
	s.mu.Lock()
	n := len(s.subs)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("lagging subscriber not dropped (%d live subs)", n)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("kondo_fuzz_saturation").Set(0.25)
	s := NewServer(Campaign{Program: "ARD"}, []int{4}, 4, reg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	if !strings.Contains(buf.String(), "kondo_fuzz_saturation 0.25") {
		t.Fatalf("/metrics missing gauge:\n%s", buf.String())
	}
}
