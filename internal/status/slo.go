package status

import "net/http"

// SLO view: when the process runs an SLO engine (a serving origin, or
// any campaign host that put endpoints under objectives), /sloz serves
// the live report. Like the fleet view, the status layer stays generic
// — the report is an opaque JSON-marshalable value supplied by the
// host (obs.SLOReport in practice), so callers without an engine pay
// nothing and the endpoint answers 404.

// SetSLOSource installs the /sloz report provider. Until one is set
// the endpoint answers 404 (no SLO engine in this process). Safe to
// call concurrently with requests.
func (s *Server) SetSLOSource(fn func() any) {
	s.mu.Lock()
	s.sloSource = fn
	s.mu.Unlock()
}

// handleSloz serves the live SLO report.
func (s *Server) handleSloz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	src := s.sloSource
	s.mu.Unlock()
	if src == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no slo engine"})
		return
	}
	writeJSON(w, http.StatusOK, src())
}
