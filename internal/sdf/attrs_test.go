package sdf

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/array"
)

func TestAttributesRoundTrip(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := filepath.Join(t.TempDir(), "attrs.sdf")
	w := NewWriter(path)
	dw, err := w.CreateDataset("d", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(array.Index) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{
		"kondo.tool":   "kondo-repro",
		"kondo.config": "u_reps=8 n_reps=5",
		"kondo.hulls":  "3",
		"units":        "kelvin",
		"long.value":   strings.Repeat("x", 1000),
	}
	for k, v := range attrs {
		if err := dw.SetAttr(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one.
	if err := dw.SetAttr("units", "celsius"); err != nil {
		t.Fatal(err)
	}
	attrs["units"] = "celsius"
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	keys := ds.AttrKeys()
	if len(keys) != len(attrs) {
		t.Fatalf("AttrKeys = %v, want %d keys", keys, len(attrs))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Error("AttrKeys not sorted")
		}
	}
	for k, want := range attrs {
		got, ok := ds.Attr(k)
		if !ok || got != want {
			t.Errorf("Attr(%q) = %q, %v; want %q", k, got, ok, want)
		}
	}
	if _, ok := ds.Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestAttributeValidation(t *testing.T) {
	w := NewWriter(filepath.Join(t.TempDir(), "x.sdf"))
	dw, err := w.CreateDataset("d", array.MustSpace(2, 2), array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.SetAttr("", "v"); err == nil {
		t.Error("empty key should error")
	}
	if err := dw.SetAttr("k", strings.Repeat("v", maxAttrLen+1)); err == nil {
		t.Error("oversized value should error")
	}
}

func TestNoAttributesIsCompatible(t *testing.T) {
	// Datasets without attributes read back with none.
	space := array.MustSpace(2, 2)
	path := writeTestFile(t, "d", space, array.Float64, nil, func(array.Index) float64 { return 0 })
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	if len(ds.AttrKeys()) != 0 {
		t.Errorf("unexpected attributes: %v", ds.AttrKeys())
	}
}
