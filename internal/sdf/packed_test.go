package sdf

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/array"
)

// writePackedFile creates a packed dataset keeping the given linear
// positions out of a space filled with value = linear position.
func writePackedFile(t *testing.T, space array.Space, keepLins []int64) string {
	t.Helper()
	keep := array.NewIndexSet(space)
	for _, lin := range keepLins {
		if !keep.AddLinear(lin) {
			t.Fatalf("bad keep lin %d", lin)
		}
	}
	path := filepath.Join(t.TempDir(), "packed.sdf")
	w := NewWriter(path)
	dw, err := w.CreateDataset("d", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}); err != nil {
		t.Fatal(err)
	}
	if err := dw.PackElements(keep); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPackRunsFromSetCoalesces(t *testing.T) {
	space := array.MustSpace(8, 8)
	keep := array.NewIndexSet(space)
	for _, lin := range []int64{5, 6, 7, 20, 30, 31} {
		keep.AddLinear(lin)
	}
	runs := packRunsFromSet(keep)
	if len(runs) != 3 {
		t.Fatalf("runs = %+v, want 3 coalesced runs", runs)
	}
	want := []struct{ start, count int64 }{{5, 3}, {20, 1}, {30, 2}}
	for i, w := range want {
		if runs[i].startLin != w.start || runs[i].count != w.count {
			t.Errorf("run %d = %+v, want %+v", i, runs[i], w)
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	space := array.MustSpace(8, 8)
	kept := []int64{0, 1, 2, 10, 11, 40, 63}
	path := writePackedFile(t, space, kept)

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Debloated() {
		t.Error("packed dataset should be marked debloated")
	}
	if ds.StoredBytes() != int64(len(kept))*8 {
		t.Errorf("StoredBytes = %d, want %d", ds.StoredBytes(), len(kept)*8)
	}
	if ds.LogicalBytes() != 64*8 {
		t.Errorf("LogicalBytes = %d, want %d", ds.LogicalBytes(), 64*8)
	}

	keptSet := map[int64]bool{}
	for _, lin := range kept {
		keptSet[lin] = true
	}
	space.Each(func(ix array.Index) bool {
		lin, _ := space.Linear(ix)
		v, err := ds.ReadElement(ix)
		if keptSet[lin] {
			if err != nil {
				t.Fatalf("kept element %v: %v", ix, err)
			}
			if v != float64(lin) {
				t.Fatalf("kept element %v = %v, want %v", ix, v, lin)
			}
		} else if !errors.Is(err, ErrDataMissing) {
			t.Fatalf("dropped element %v error = %v, want data missing", ix, err)
		}
		return true
	})
}

func TestPackedOffsetResolution(t *testing.T) {
	space := array.MustSpace(8, 8)
	kept := []int64{3, 4, 5, 33, 50}
	path := writePackedFile(t, space, kept)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")

	for _, lin := range kept {
		ix, _ := space.Unlinear(lin)
		abs, err := ds.FileOffset(ix)
		if err != nil {
			t.Fatalf("FileOffset(%v): %v", ix, err)
		}
		back, err := ds.ResolveOffset(abs)
		if err != nil {
			t.Fatalf("ResolveOffset(%d): %v", abs, err)
		}
		if !back.Equal(ix) {
			t.Fatalf("round trip %v -> %d -> %v", ix, abs, back)
		}
	}
	// Regions: 3 runs (3-5, 33, 50).
	regions := ds.DataRegions()
	if len(regions) != 3 {
		t.Errorf("DataRegions = %v, want 3 runs", regions)
	}
	// Header offset does not resolve.
	if _, err := ds.ResolveOffset(0); err == nil {
		t.Error("header offset should not resolve")
	}
}

func TestPackedHyperslabWithinRuns(t *testing.T) {
	space := array.MustSpace(8, 8)
	// Keep rows 2 and 3 entirely: linear 16..31.
	var kept []int64
	for lin := int64(16); lin < 32; lin++ {
		kept = append(kept, lin)
	}
	path := writePackedFile(t, space, kept)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	vals, err := ds.ReadHyperslab(Slab([]int{2, 0}, []int{2, 8}))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != float64(16+i) {
			t.Fatalf("vals[%d] = %v, want %v", i, v, 16+i)
		}
	}
	// A slab escaping the kept rows misses.
	if _, err := ds.ReadHyperslab(Slab([]int{1, 0}, []int{2, 8})); !errors.Is(err, ErrDataMissing) {
		t.Errorf("slab over dropped row error = %v", err)
	}
}

func TestPackElementsValidation(t *testing.T) {
	space := array.MustSpace(4, 4)
	w := NewWriter(filepath.Join(t.TempDir(), "x.sdf"))
	dw, err := w.CreateDataset("chunked", space, array.Float64, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	keep := array.NewIndexSet(space)
	keep.AddLinear(0)
	if err := dw.PackElements(keep); err == nil {
		t.Error("PackElements on chunked dataset should error")
	}
	dw2, err := w.CreateDataset("contig", space, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := array.NewIndexSet(array.MustSpace(2, 2))
	wrong.AddLinear(0)
	if err := dw2.PackElements(wrong); err == nil {
		t.Error("PackElements with mismatched space should error")
	}
}
