// Package sdf implements a self-describing data format for
// d-dimensional arrays, standing in for HDF5/NetCDF in this
// reproduction. Like those formats (and as Kondo's audit requires,
// paper §IV-C and §VI), an sdf file carries its own metadata — dataset
// names, dimensions, element type, and chunking — so the byte offset
// of every element is derivable from the metadata alone.
//
// A file holds one or more named datasets. Each dataset is stored
// either contiguously (row-major) or chunked (fixed-shape chunks,
// row-major chunk order, edge chunks padded). Chunked datasets carry a
// chunk table so that a *debloated* file can omit chunks entirely:
// reading an absent chunk yields ErrDataMissing, which is the
// "data missing" exception of paper §III.
//
// File layout:
//
//	offset 0:  magic "SDF1" | version u16 | reserved u16
//	           metaLen u32 | metaCRC u32
//	offset 16: metadata block (metaLen bytes, see encodeMeta)
//	then:      data regions, one per dataset, 8-byte aligned
package sdf

import (
	"errors"
	"fmt"
)

// Magic is the four-byte signature at the start of every sdf file.
const Magic = "SDF1"

// Version is the format version written by this package.
const Version uint16 = 1

// headerSize is the fixed-size prefix before the metadata block.
const headerSize = 16

// ErrDataMissing is returned when a read touches an element or chunk
// that was carved away during debloating. Kondo's runtime surfaces
// this as the "data missing" exception (paper §III, §VI).
var ErrDataMissing = errors.New("sdf: data missing (debloated away)")

// ErrNotFound is returned when a named dataset does not exist.
var ErrNotFound = errors.New("sdf: dataset not found")

// layoutKind discriminates dataset storage layouts.
type layoutKind uint8

const (
	layoutContiguous layoutKind = 1
	layoutChunked    layoutKind = 2
	layoutPacked     layoutKind = 3
)

// missingChunk marks an absent chunk in a chunk table.
const missingChunk = int64(-1)

func (k layoutKind) valid() bool {
	return k == layoutContiguous || k == layoutChunked || k == layoutPacked
}

func (k layoutKind) String() string {
	switch k {
	case layoutContiguous:
		return "contiguous"
	case layoutChunked:
		return "chunked"
	case layoutPacked:
		return "packed"
	default:
		return fmt.Sprintf("layout(%d)", uint8(k))
	}
}
