package sdf

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/array"
)

// encodeValue writes one element value into dst (which must be at
// least dt.Size() bytes) according to the dataset's element type. The
// API surfaces all values as float64; integer types truncate, and
// LongDouble stores the float64 payload in the low 8 bytes with zero
// padding so the on-disk element size is 16 bytes as in the paper.
func encodeValue(dst []byte, dt array.DType, v float64) {
	switch dt {
	case array.Float32:
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(v)))
	case array.Float64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
	case array.Int32:
		binary.LittleEndian.PutUint32(dst, uint32(int32(v)))
	case array.Int64:
		binary.LittleEndian.PutUint64(dst, uint64(int64(v)))
	case array.LongDouble:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
		binary.LittleEndian.PutUint64(dst[8:], 0)
	default:
		panic(fmt.Sprintf("sdf: encode of invalid dtype %d", dt))
	}
}

// decodeValue reads one element value from src according to the
// element type.
func decodeValue(src []byte, dt array.DType) float64 {
	switch dt {
	case array.Float32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(src)))
	case array.Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(src))
	case array.Int32:
		return float64(int32(binary.LittleEndian.Uint32(src)))
	case array.Int64:
		return float64(int64(binary.LittleEndian.Uint64(src)))
	case array.LongDouble:
		return math.Float64frombits(binary.LittleEndian.Uint64(src))
	default:
		panic(fmt.Sprintf("sdf: decode of invalid dtype %d", dt))
	}
}
