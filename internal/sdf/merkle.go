package sdf

// Verified recovery (DESIGN.md §15): a SHA-256 Merkle tree over a
// dataset's serving chunks turns every chunk the recovery plane ships
// into a content-addressed, position-bound object. The tree is built
// at debloat time over the ORIGINAL dataset — the bytes an origin
// server will later serve — and its root travels in the debloat
// manifest. A client holding the root can then verify any chunk it
// receives against an O(log n) inclusion proof, so substitution (a
// well-formed frame carrying the wrong chunk's bytes, which CRC32
// framing happily accepts) is rejected before the chunk enters the
// cache, and chunks become safe to serve from untrusted edge caches.
//
// Leaf i hashes the domain-separated tuple (leaf index, clipped chunk
// values):
//
//	leaf_i  = SHA256(0x00 || le64(i) || le64(float64 bits)...)
//	node    = SHA256(0x01 || left || right)
//
// Leaves are the serving chunks in row-major chunk-grid order; an odd
// node at any level is promoted unchanged (no duplication, so a
// repeated-last-leaf second preimage à la CVE-2012-2459 cannot exist).
// Binding the leaf index into the hash means a proof for chunk A can
// never validate a request for chunk B even if an origin echoes A's
// coordinates.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/array"
)

// MerkleAlgo names the one tree construction this package builds and
// verifies. A manifest carrying any other algo string is rejected at
// load time rather than mis-verified.
const MerkleAlgo = "sha256/serving-chunk-v1"

// DefaultServingElems is the serving-chunk volume target for datasets
// stored contiguously: 4096 float64 values ≈ 32 KiB per frame, big
// enough to amortize a round trip and small enough to keep a client
// cache granular. The dataserve origin and the manifest-time tree
// builder share this constant so both derive the same chunk grid.
const DefaultServingElems = 4096

// HashSize is the byte length of every node hash.
const HashSize = sha256.Size

// ServingChunkShape derives a serving chunk shape for a contiguous
// dataset by repeatedly halving the largest extent until the chunk
// volume drops to target elements. The derivation is deterministic, so
// every party — origin server, debloat-time tree builder, verifying
// client — sees the same chunk grid.
func ServingChunkShape(dims []int, target int64) []int {
	chunk := append([]int(nil), dims...)
	vol := int64(1)
	for _, d := range chunk {
		vol *= int64(d)
	}
	for vol > target {
		k := 0
		for i, c := range chunk {
			if c > chunk[k] {
				k = i
			}
		}
		if chunk[k] <= 1 {
			break
		}
		vol /= int64(chunk[k])
		chunk[k] = (chunk[k] + 1) / 2
		vol *= int64(chunk[k])
	}
	return chunk
}

// ServingChunk returns the serving chunk shape of a dataset: its
// storage chunk shape when chunked, otherwise the deterministic
// derived shape.
func ServingChunk(ds *Dataset) []int {
	if c := ds.ChunkShape(); c != nil {
		return c
	}
	return ServingChunkShape(ds.Space().Dims(), DefaultServingElems)
}

// ChunkSlab returns the start/count of serving chunk cc clipped to the
// dataset space (edge chunks shrink instead of padding, so a serving
// frame — and a Merkle leaf — carries logical elements only).
func ChunkSlab(space array.Space, chunk []int, cc []int) (start, count []int) {
	start = make([]int, len(cc))
	count = make([]int, len(cc))
	for k := range cc {
		start[k] = cc[k] * chunk[k]
		count[k] = chunk[k]
		if start[k]+count[k] > space.Dim(k) {
			count[k] = space.Dim(k) - start[k]
		}
	}
	return start, count
}

// ChunkLeafHash hashes one serving chunk's clipped values as Merkle
// leaf number leaf. The leaf index inside the preimage position-binds
// the content: identical values stored at two different chunk
// coordinates still produce distinct leaves.
func ChunkLeafHash(leaf int64, vals []float64) [HashSize]byte {
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte{0x00})
	binary.LittleEndian.PutUint64(buf[:], uint64(leaf))
	h.Write(buf[:])
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes into their parent.
func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// MerkleTree is the full tree over one dataset's serving chunks,
// retained level by level so inclusion proofs are O(log n) slice
// copies. The origin server holds one per dataset; clients only ever
// hold the root.
type MerkleTree struct {
	chunk  []int
	levels [][][HashSize]byte // levels[0] = leaves, last level = [root]
}

// BuildDatasetMerkle reads every serving chunk of ds (in row-major
// chunk-grid order, clipped at the edges exactly as the recovery plane
// serves them) and builds the tree. The chunk shape must be the
// dataset's serving shape — pass sdf.ServingChunk(ds) unless a
// specific grid is under test.
func BuildDatasetMerkle(ds *Dataset, chunk []int) (*MerkleTree, error) {
	space := ds.Space()
	grid, err := array.NewChunkedLayout(space, ds.DType(), chunk)
	if err != nil {
		return nil, fmt.Errorf("sdf: merkle chunk grid: %w", err)
	}
	n := grid.NumChunks()
	leaves := make([][HashSize]byte, 0, n)
	gridSpace := grid.Grid()
	for lin := int64(0); lin < n; lin++ {
		cc, err := gridSpace.Unlinear(lin)
		if err != nil {
			return nil, err
		}
		start, count := ChunkSlab(space, chunk, cc)
		vals, err := ds.ReadHyperslab(Slab(start, count))
		if err != nil {
			return nil, fmt.Errorf("sdf: merkle leaf %d (chunk %v): %w", lin, cc, err)
		}
		leaves = append(leaves, ChunkLeafHash(lin, vals))
	}
	return NewMerkleTree(chunk, leaves), nil
}

// NewMerkleTree folds precomputed leaves into a tree. Exposed for
// tests and for servers that hash chunks through another path.
func NewMerkleTree(chunk []int, leaves [][HashSize]byte) *MerkleTree {
	t := &MerkleTree{chunk: append([]int(nil), chunk...)}
	level := append([][HashSize]byte(nil), leaves...)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([][HashSize]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				// Odd node: promote unchanged.
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Leaves returns the leaf count.
func (t *MerkleTree) Leaves() int64 { return int64(len(t.levels[0])) }

// Chunk returns the serving chunk shape the tree was built over.
func (t *MerkleTree) Chunk() []int { return append([]int(nil), t.chunk...) }

// Root returns the tree root. A zero-leaf tree has no root to anchor
// trust on; callers reject empty datasets before building.
func (t *MerkleTree) Root() [HashSize]byte {
	if len(t.levels[0]) == 0 {
		return [HashSize]byte{}
	}
	return t.levels[len(t.levels)-1][0]
}

// Proof returns the inclusion proof of leaf: the sibling hash at each
// level from the leaves up, skipping levels where the node is an
// unpaired (promoted) last node. VerifyChunkProof consumes it with the
// same skip rule, so proof length is a deterministic function of
// (leaves, leaf).
func (t *MerkleTree) Proof(leaf int64) ([][HashSize]byte, error) {
	if leaf < 0 || leaf >= t.Leaves() {
		return nil, fmt.Errorf("sdf: merkle proof: leaf %d outside [0,%d)", leaf, t.Leaves())
	}
	var proof [][HashSize]byte
	idx := int(leaf)
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib < len(level) {
			proof = append(proof, level[sib])
		}
		idx >>= 1
	}
	return proof, nil
}

// VerifyChunkProof folds leafHash up through proof and reports whether
// it lands on root. leaves is the tree's total leaf count and leaf the
// index being proven — both come from the verifier's own trusted
// geometry (manifest dims/chunk), never from the wire. Extra,
// missing, or reordered siblings all fail: the fold consumes the proof
// exactly and any deviation lands off-root.
func VerifyChunkProof(root [HashSize]byte, leaves, leaf int64, leafHash [HashSize]byte, proof [][HashSize]byte) bool {
	if leaf < 0 || leaf >= leaves || leaves <= 0 {
		return false
	}
	h := leafHash
	idx := leaf
	levelSize := leaves
	pi := 0
	for levelSize > 1 {
		if idx == levelSize-1 && levelSize%2 == 1 {
			// Unpaired last node: promoted unchanged, no sibling.
		} else {
			if pi >= len(proof) {
				return false
			}
			if idx%2 == 0 {
				h = nodeHash(h, proof[pi])
			} else {
				h = nodeHash(proof[pi], h)
			}
			pi++
		}
		idx >>= 1
		levelSize = (levelSize + 1) / 2
	}
	return pi == len(proof) && h == root
}

// MerkleSpec is a client's trusted description of one dataset's tree:
// everything needed to verify proofs without trusting the origin for
// geometry. It is the parsed form of the manifest's merkle section.
type MerkleSpec struct {
	// Algo must be MerkleAlgo.
	Algo string
	// Root anchors trust.
	Root [HashSize]byte
	// Leaves is the tree's leaf (serving chunk) count.
	Leaves int64
	// Dims and Chunk pin the serving geometry: a verifying client
	// cross-checks the origin's advertised /meta against these before
	// trusting any chunk-coordinate arithmetic.
	Dims  []int
	Chunk []int
}

// SpecOf describes a built tree over a dataset as a MerkleSpec.
func (t *MerkleTree) SpecOf(ds *Dataset) MerkleSpec {
	return MerkleSpec{
		Algo:   MerkleAlgo,
		Root:   t.Root(),
		Leaves: t.Leaves(),
		Dims:   ds.Space().Dims(),
		Chunk:  t.Chunk(),
	}
}

// RootHex renders the root as lowercase hex (the manifest encoding).
func (s MerkleSpec) RootHex() string { return hex.EncodeToString(s.Root[:]) }

// Validate rejects malformed or internally inconsistent specs before
// any of their fields are trusted: unknown algo, bad root, non-positive
// leaf count, rank mismatches, or a leaf count that disagrees with the
// dims/chunk grid (the "root mismatch at manifest load" class of
// tampering).
func (s MerkleSpec) Validate() error {
	if s.Algo != MerkleAlgo {
		return fmt.Errorf("sdf: merkle spec: unsupported algo %q (want %q)", s.Algo, MerkleAlgo)
	}
	if s.Root == ([HashSize]byte{}) {
		return fmt.Errorf("sdf: merkle spec: zero root")
	}
	if s.Leaves <= 0 {
		return fmt.Errorf("sdf: merkle spec: non-positive leaf count %d", s.Leaves)
	}
	if len(s.Dims) == 0 || len(s.Chunk) != len(s.Dims) {
		return fmt.Errorf("sdf: merkle spec: dims %v / chunk %v rank mismatch", s.Dims, s.Chunk)
	}
	want := int64(1)
	for k, d := range s.Dims {
		if d <= 0 || s.Chunk[k] <= 0 {
			return fmt.Errorf("sdf: merkle spec: non-positive extent (dims %v, chunk %v)", s.Dims, s.Chunk)
		}
		want *= int64((d + s.Chunk[k] - 1) / s.Chunk[k])
	}
	if want != s.Leaves {
		return fmt.Errorf("sdf: merkle spec: %d leaves but dims %v / chunk %v give %d serving chunks",
			s.Leaves, s.Dims, s.Chunk, want)
	}
	return nil
}

// MatchesGeometry reports whether an origin's advertised geometry
// agrees with the spec; on disagreement it returns the discrepancy.
// A lying /meta (different dims or chunk grid) would shift every
// chunk-coordinate computation, so a verifying client calls this
// before its first chunk request.
func (s MerkleSpec) MatchesGeometry(dims, chunk []int) error {
	if !equalInts(s.Dims, dims) {
		return fmt.Errorf("sdf: origin advertises dims %v, manifest pinned %v", dims, s.Dims)
	}
	if !equalInts(s.Chunk, chunk) {
		return fmt.Errorf("sdf: origin advertises serving chunk %v, manifest pinned %v", chunk, s.Chunk)
	}
	return nil
}

// ParseMerkleRoot decodes the manifest's hex root encoding.
func ParseMerkleRoot(hexRoot string) ([HashSize]byte, error) {
	var root [HashSize]byte
	raw, err := hex.DecodeString(hexRoot)
	if err != nil {
		return root, fmt.Errorf("sdf: merkle root %q is not hex: %w", hexRoot, err)
	}
	if len(raw) != HashSize {
		return root, fmt.Errorf("sdf: merkle root has %d bytes, want %d", len(raw), HashSize)
	}
	copy(root[:], raw)
	return root, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualRoot is a constant-shape comparison helper for tests and
// callers that hold raw roots.
func EqualRoot(a, b [HashSize]byte) bool { return bytes.Equal(a[:], b[:]) }
