package sdf

import (
	"testing"
	"testing/quick"

	"repro/internal/array"
)

func TestSlabConstructor(t *testing.T) {
	h := Slab([]int{2, 3}, []int{4, 5})
	s := array.MustSpace(10, 10)
	if err := h.Validate(s); err != nil {
		t.Fatal(err)
	}
	if n := h.NumElements(); n != 20 {
		t.Errorf("NumElements = %d, want 20", n)
	}
	seen := 0
	h.Each(func(ix array.Index) bool {
		if ix[0] < 2 || ix[0] > 5 || ix[1] < 3 || ix[1] > 7 {
			t.Fatalf("index %v outside slab", ix)
		}
		seen++
		return true
	})
	if seen != 20 {
		t.Errorf("Each visited %d, want 20", seen)
	}
}

func TestHyperslabValidate(t *testing.T) {
	s := array.MustSpace(10, 10)
	cases := []struct {
		name string
		h    Hyperslab
		ok   bool
	}{
		{"valid strided", Hyperslab{Start: []int{0, 0}, Stride: []int{2, 2}, Count: []int{5, 5}, Block: []int{1, 1}}, true},
		{"rank mismatch", Hyperslab{Start: []int{0}, Stride: []int{1}, Count: []int{1}, Block: []int{1}}, false},
		{"negative start", Hyperslab{Start: []int{-1, 0}, Stride: []int{1, 1}, Count: []int{1, 1}, Block: []int{1, 1}}, false},
		{"zero count", Hyperslab{Start: []int{0, 0}, Stride: []int{1, 1}, Count: []int{0, 1}, Block: []int{1, 1}}, false},
		{"zero stride", Hyperslab{Start: []int{0, 0}, Stride: []int{0, 1}, Count: []int{2, 1}, Block: []int{1, 1}}, false},
		{"overlapping blocks", Hyperslab{Start: []int{0, 0}, Stride: []int{1, 1}, Count: []int{2, 1}, Block: []int{2, 1}}, false},
		{"exceeds extent", Hyperslab{Start: []int{8, 0}, Stride: []int{1, 1}, Count: []int{1, 1}, Block: []int{3, 1}}, false},
		{"touches last index", Hyperslab{Start: []int{8, 8}, Stride: []int{1, 1}, Count: []int{1, 1}, Block: []int{2, 2}}, true},
	}
	for _, c := range cases {
		err := c.h.Validate(s)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestHyperslabEachStrided(t *testing.T) {
	// 2 blocks of 2 along dim0 at stride 4: rows 0,1,4,5.
	h := Hyperslab{Start: []int{0, 3}, Stride: []int{4, 1}, Count: []int{2, 1}, Block: []int{2, 1}}
	var rows []int
	h.Each(func(ix array.Index) bool {
		rows = append(rows, ix[0])
		if ix[1] != 3 {
			t.Fatalf("col = %d, want 3", ix[1])
		}
		return true
	})
	want := []int{0, 1, 4, 5}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}

func TestHyperslabEachEarlyStop(t *testing.T) {
	h := Slab([]int{0, 0}, []int{5, 5})
	n := 0
	h.Each(func(array.Index) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: Each visits exactly NumElements distinct indices, all
// valid under Validate's space.
func TestHyperslabEachCountProperty(t *testing.T) {
	s := array.MustSpace(32, 32)
	f := func(st1, st2, c1, c2, b1, b2 uint8) bool {
		h := Hyperslab{
			Start:  []int{int(st1 % 4), int(st2 % 4)},
			Stride: []int{int(b1%3) + int(c1%3) + 1, int(b2%3) + int(c2%3) + 1},
			Count:  []int{int(c1%3) + 1, int(c2%3) + 1},
			Block:  []int{int(b1%3) + 1, int(b2%3) + 1},
		}
		if err := h.Validate(s); err != nil {
			return true // constructed selection out of bounds; skip
		}
		seen := map[[2]int]bool{}
		h.Each(func(ix array.Index) bool {
			seen[[2]int{ix[0], ix[1]}] = true
			return true
		})
		return int64(len(seen)) == h.NumElements()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadHyperslabValuesAndCoalescing(t *testing.T) {
	space := array.MustSpace(8, 8)
	path := writeTestFile(t, "d", space, array.Float64, nil, linValue(space))
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")

	// A dense 3x4 slab: values must come back in row-major order.
	vals, err := ds.ReadHyperslab(Slab([]int{2, 1}, []int{3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 12 {
		t.Fatalf("got %d values", len(vals))
	}
	k := 0
	for r := 2; r < 5; r++ {
		for c := 1; c < 5; c++ {
			if vals[k] != float64(r*8+c) {
				t.Fatalf("vals[%d] = %v, want %v", k, vals[k], r*8+c)
			}
			k++
		}
	}

	// Invalid selection errors.
	if _, err := ds.ReadHyperslab(Slab([]int{7, 7}, []int{3, 3})); err == nil {
		t.Error("out-of-bounds hyperslab should error")
	}
}

func TestReadHyperslabOnDebloatedMissing(t *testing.T) {
	space := array.MustSpace(8, 8)
	path := t.TempDir() + "/d.sdf"
	w := NewWriter(path)
	dw, err := w.CreateDataset("d", space, array.Float64, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(linValue(space)); err != nil {
		t.Fatal(err)
	}
	if err := dw.OmitChunksExcept(map[int64]bool{0: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	// Fully inside the kept chunk: fine.
	if _, err := ds.ReadHyperslab(Slab([]int{0, 0}, []int{4, 4})); err != nil {
		t.Errorf("read inside kept chunk: %v", err)
	}
	// Crossing into a carved chunk: data missing.
	if _, err := ds.ReadHyperslab(Slab([]int{0, 0}, []int{4, 8})); !isDataMissing(err) {
		t.Errorf("read crossing carved chunk = %v, want ErrDataMissing", err)
	}
}
