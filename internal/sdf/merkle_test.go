package sdf

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/array"
)

// merkleTestFile materializes a chunked 2-D dataset and returns its
// opened dataset handle plus a cleanup.
func merkleTestFile(t *testing.T, dims, chunk []int) *Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.sdf")
	w := NewWriter(path)
	space, err := array.NewSpace(dims...)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := w.CreateDataset("data", space, array.Float64, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)*1.5 + 0.25
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMerkleProofsVerify(t *testing.T) {
	// 40x24 over 16x16 chunks → 3x2 grid = 6 leaves, with clipped edge
	// chunks, and an odd level (3 nodes) exercising promotion.
	ds := merkleTestFile(t, []int{40, 24}, []int{16, 16})
	tree, err := BuildDatasetMerkle(ds, ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 6 {
		t.Fatalf("leaves = %d, want 6", tree.Leaves())
	}
	root := tree.Root()
	space := ds.Space()
	chunk := ServingChunk(ds)
	grid, _ := array.NewChunkedLayout(space, ds.DType(), chunk)
	for leaf := int64(0); leaf < tree.Leaves(); leaf++ {
		proof, err := tree.Proof(leaf)
		if err != nil {
			t.Fatal(err)
		}
		cc, _ := grid.Grid().Unlinear(leaf)
		start, count := ChunkSlab(space, chunk, cc)
		vals, err := ds.ReadHyperslab(Slab(start, count))
		if err != nil {
			t.Fatal(err)
		}
		lh := ChunkLeafHash(leaf, vals)
		if !VerifyChunkProof(root, tree.Leaves(), leaf, lh, proof) {
			t.Fatalf("leaf %d: valid proof rejected", leaf)
		}
		// Wrong leaf index: the same proof must not validate another
		// position even with the right bytes.
		other := (leaf + 1) % tree.Leaves()
		if VerifyChunkProof(root, tree.Leaves(), other, lh, proof) {
			t.Fatalf("leaf %d: proof accepted for wrong leaf %d", leaf, other)
		}
		// Tampered value: recompute the leaf over modified bytes.
		tampered := append([]float64(nil), vals...)
		tampered[0] += 1
		if VerifyChunkProof(root, tree.Leaves(), leaf, ChunkLeafHash(leaf, tampered), proof) {
			t.Fatalf("leaf %d: tampered values verified", leaf)
		}
		if len(proof) > 0 {
			// Corrupted sibling.
			bad := append([][HashSize]byte(nil), proof...)
			bad[0][0] ^= 0xff
			if VerifyChunkProof(root, tree.Leaves(), leaf, lh, bad) {
				t.Fatalf("leaf %d: corrupted proof verified", leaf)
			}
			// Truncated proof.
			if VerifyChunkProof(root, tree.Leaves(), leaf, lh, proof[:len(proof)-1]) {
				t.Fatalf("leaf %d: truncated proof verified", leaf)
			}
			// Extra sibling.
			if VerifyChunkProof(root, tree.Leaves(), leaf, lh, append(append([][HashSize]byte(nil), proof...), proof[0])) {
				t.Fatalf("leaf %d: over-long proof verified", leaf)
			}
		}
		if len(proof) > 1 {
			// Reordered siblings.
			swapped := append([][HashSize]byte(nil), proof...)
			swapped[0], swapped[1] = swapped[1], swapped[0]
			if VerifyChunkProof(root, tree.Leaves(), leaf, lh, swapped) {
				t.Fatalf("leaf %d: reordered proof verified", leaf)
			}
		}
	}
}

func TestMerkleLeafIndexBindsPosition(t *testing.T) {
	vals := []float64{1, 2, 3}
	if ChunkLeafHash(0, vals) == ChunkLeafHash(1, vals) {
		t.Fatal("identical values at different leaves hash identically")
	}
}

func TestMerkleDeterministic(t *testing.T) {
	ds := merkleTestFile(t, []int{32, 32}, []int{16, 16})
	a, err := BuildDatasetMerkle(ds, ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDatasetMerkle(ds, ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRoot(a.Root(), b.Root()) {
		t.Fatal("two builds over the same dataset disagree on the root")
	}
}

func TestMerkleRootChangesWithOneByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.sdf")
	w := NewWriter(path)
	space, _ := array.NewSpace(32, 32)
	dw, err := w.CreateDataset("data", space, array.Float64, []int{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(func(ix array.Index) float64 { lin, _ := space.Linear(ix); return float64(lin) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rootOf := func() [HashSize]byte {
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ds, err := f.Dataset("data")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := BuildDatasetMerkle(ds, ServingChunk(ds))
		if err != nil {
			t.Fatal(err)
		}
		return tr.Root()
	}
	before := rootOf()
	// Flip one byte near the end of the file — inside the data region.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-9] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if EqualRoot(before, rootOf()) {
		t.Fatal("root unchanged after flipping a data byte")
	}
}

func TestMerkleSpecValidate(t *testing.T) {
	ds := merkleTestFile(t, []int{40, 24}, []int{16, 16})
	tree, err := BuildDatasetMerkle(ds, ServingChunk(ds))
	if err != nil {
		t.Fatal(err)
	}
	spec := tree.SpecOf(ds)
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := spec
	bad.Algo = "md5/please-no"
	if bad.Validate() == nil {
		t.Fatal("unknown algo accepted")
	}
	bad = spec
	bad.Leaves = 7
	if bad.Validate() == nil {
		t.Fatal("inconsistent leaf count accepted")
	}
	bad = spec
	bad.Root = [HashSize]byte{}
	if bad.Validate() == nil {
		t.Fatal("zero root accepted")
	}
	bad = spec
	bad.Chunk = []int{16}
	if bad.Validate() == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := spec.MatchesGeometry([]int{40, 24}, []int{16, 16}); err != nil {
		t.Fatalf("matching geometry rejected: %v", err)
	}
	if spec.MatchesGeometry([]int{40, 25}, []int{16, 16}) == nil {
		t.Fatal("lying dims accepted")
	}
	if spec.MatchesGeometry([]int{40, 24}, []int{8, 16}) == nil {
		t.Fatal("lying chunk shape accepted")
	}
	if _, err := ParseMerkleRoot(spec.RootHex()); err != nil {
		t.Fatalf("round-tripped root rejected: %v", err)
	}
	if _, err := ParseMerkleRoot("zz"); err == nil {
		t.Fatal("garbage root hex accepted")
	}
	if _, err := ParseMerkleRoot("abcd"); err == nil {
		t.Fatal("short root accepted")
	}
}

func TestServingChunkSharedDerivation(t *testing.T) {
	// Contiguous dataset: derived shape must match the dataserve
	// derivation contract (halve the largest extent toward the target).
	got := ServingChunkShape([]int{256, 256}, DefaultServingElems)
	want := []int{64, 64}
	if !equalInts(got, want) {
		t.Fatalf("ServingChunkShape(256x256) = %v, want %v", got, want)
	}
}
