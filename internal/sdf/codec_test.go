package sdf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/array"
)

func TestCodecRoundTripFloats(t *testing.T) {
	buf := make([]byte, 16)
	for _, dt := range []array.DType{array.Float64, array.LongDouble} {
		f := func(v float64) bool {
			if math.IsNaN(v) {
				return true // NaN != NaN; storage still works but skip compare
			}
			encodeValue(buf, dt, v)
			return decodeValue(buf, dt) == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", dt, err)
		}
	}
}

func TestCodecFloat32Precision(t *testing.T) {
	buf := make([]byte, 4)
	encodeValue(buf, array.Float32, 1.5)
	if got := decodeValue(buf, array.Float32); got != 1.5 {
		t.Errorf("float32 round trip = %v", got)
	}
	// Values beyond float32 precision are truncated, not corrupted.
	encodeValue(buf, array.Float32, math.Pi)
	if got := decodeValue(buf, array.Float32); math.Abs(got-math.Pi) > 1e-6 {
		t.Errorf("float32 pi = %v", got)
	}
}

func TestCodecIntegersTruncate(t *testing.T) {
	buf := make([]byte, 8)
	cases := []struct {
		dt   array.DType
		in   float64
		want float64
	}{
		{array.Int32, 42.9, 42},
		{array.Int32, -7.2, -7},
		{array.Int64, 1 << 40, 1 << 40},
		{array.Int64, -3.999, -3},
	}
	for _, c := range cases {
		encodeValue(buf, c.dt, c.in)
		if got := decodeValue(buf, c.dt); got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.dt, c.in, got, c.want)
		}
	}
}

func TestCodecNaNStorable(t *testing.T) {
	buf := make([]byte, 8)
	encodeValue(buf, array.Float64, math.NaN())
	if got := decodeValue(buf, array.Float64); !math.IsNaN(got) {
		t.Errorf("NaN round trip = %v", got)
	}
}

func TestCodecLongDoublePaddingZeroed(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	encodeValue(buf, array.LongDouble, 1.0)
	for i := 8; i < 16; i++ {
		if buf[i] != 0 {
			t.Fatalf("padding byte %d = %d, want 0", i, buf[i])
		}
	}
}

func TestCodecInvalidDTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid dtype")
		}
	}()
	encodeValue(make([]byte, 16), array.DType(99), 1)
}
