package sdf

import (
	"fmt"

	"repro/internal/array"
)

// Hyperslab is an HDF5-style rectangular selection: along each
// dimension k it selects Count[k] blocks of Block[k] consecutive
// positions, the blocks spaced Stride[k] apart, starting at Start[k].
// The h5bench stencil programs (paper §V-A) express their I/O patterns
// as hyperslab selections.
type Hyperslab struct {
	Start  []int
	Stride []int
	Count  []int
	Block  []int
}

// Slab returns the hyperslab selecting a single dense block of shape
// count starting at start (stride = block = 1 semantics, expressed as
// one block per dimension).
func Slab(start, count []int) Hyperslab {
	rank := len(start)
	h := Hyperslab{
		Start:  append([]int(nil), start...),
		Stride: make([]int, rank),
		Count:  make([]int, rank),
		Block:  append([]int(nil), count...),
	}
	for k := 0; k < rank; k++ {
		h.Stride[k] = 1
		h.Count[k] = 1
	}
	return h
}

// Validate checks the selection against a space and returns a
// descriptive error for any violation.
func (h Hyperslab) Validate(space array.Space) error {
	rank := space.Rank()
	if len(h.Start) != rank || len(h.Stride) != rank || len(h.Count) != rank || len(h.Block) != rank {
		return fmt.Errorf("sdf: hyperslab rank mismatch (space rank %d)", rank)
	}
	for k := 0; k < rank; k++ {
		if h.Start[k] < 0 {
			return fmt.Errorf("sdf: hyperslab start[%d] = %d < 0", k, h.Start[k])
		}
		if h.Count[k] <= 0 || h.Block[k] <= 0 {
			return fmt.Errorf("sdf: hyperslab count/block[%d] must be positive", k)
		}
		if h.Stride[k] <= 0 {
			return fmt.Errorf("sdf: hyperslab stride[%d] must be positive", k)
		}
		if h.Block[k] > h.Stride[k] && h.Count[k] > 1 {
			return fmt.Errorf("sdf: hyperslab blocks overlap along dim %d (block %d > stride %d)",
				k, h.Block[k], h.Stride[k])
		}
		last := h.Start[k] + (h.Count[k]-1)*h.Stride[k] + h.Block[k] - 1
		if last >= space.Dim(k) {
			return fmt.Errorf("sdf: hyperslab exceeds dim %d (last index %d >= extent %d)",
				k, last, space.Dim(k))
		}
	}
	return nil
}

// NumElements returns the number of selected elements.
func (h Hyperslab) NumElements() int64 {
	n := int64(1)
	for k := range h.Count {
		n *= int64(h.Count[k]) * int64(h.Block[k])
	}
	return n
}

// Each visits every selected index in row-major selection order,
// stopping early if fn returns false. The index passed to fn is reused
// between calls.
func (h Hyperslab) Each(fn func(array.Index) bool) {
	rank := len(h.Start)
	// Per-dimension position counters: which block and which offset
	// within the block.
	block := make([]int, rank)
	within := make([]int, rank)
	ix := make(array.Index, rank)
	for {
		for k := 0; k < rank; k++ {
			ix[k] = h.Start[k] + block[k]*h.Stride[k] + within[k]
		}
		if !fn(ix) {
			return
		}
		// Odometer increment over (block, within) pairs, last
		// dimension fastest, within varying faster than block.
		k := rank - 1
		for k >= 0 {
			within[k]++
			if within[k] < h.Block[k] {
				break
			}
			within[k] = 0
			block[k]++
			if block[k] < h.Count[k] {
				break
			}
			block[k] = 0
			k--
		}
		if k < 0 {
			return
		}
	}
}
