package sdf

import (
	"fmt"
	"sort"

	"repro/internal/array"
)

// Packed layout: element-granular debloating. Where the chunked layout
// keeps or drops whole chunks, a packed dataset stores exactly the
// approved elements, as runs of consecutive row-major linear positions
// packed back to back. This realizes offset-level debloating at its
// finest granularity — the paper's §VI observes that chunks are the
// practical unit of access, but the format supports both so the
// granularity trade-off is measurable (see the debloat package's
// benchmarks).
//
// On-disk metadata per run: the starting linear position, the run
// length in elements, and the absolute file offset of the run's first
// element.

// packRun is one maximal run of kept consecutive linear positions.
type packRun struct {
	startLin int64 // first row-major linear element position
	count    int64 // elements in the run
	off      int64 // absolute file offset of the run's data
}

// packRunsFromSet converts a kept-index set into sorted, coalesced
// runs (offsets unassigned).
func packRunsFromSet(keep *array.IndexSet) []packRun {
	lins := make([]int64, 0, keep.Len())
	keep.EachLinear(func(lin int64) bool {
		lins = append(lins, lin)
		return true
	})
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	var runs []packRun
	for _, lin := range lins {
		if n := len(runs); n > 0 && runs[n-1].startLin+runs[n-1].count == lin {
			runs[n-1].count++
			continue
		}
		runs = append(runs, packRun{startLin: lin, count: 1})
	}
	return runs
}

// PackElements switches the staged dataset to the packed layout,
// keeping exactly the elements of keep. The dataset must have been
// created contiguous (chunk shape nil); the packed run table replaces
// the chunk table.
func (dw *DatasetWriter) PackElements(keep *array.IndexSet) error {
	sd := dw.sd
	if sd.meta.Layout != layoutContiguous {
		return fmt.Errorf("sdf: PackElements requires a contiguous staged dataset, %q is %v",
			sd.meta.Name, sd.meta.Layout)
	}
	if keep.Space().Size() != sd.space.Size() {
		return fmt.Errorf("sdf: keep set space %v does not match dataset space %v",
			keep.Space(), sd.space)
	}
	sd.packedRuns = packRunsFromSet(keep)
	sd.meta.Layout = layoutPacked
	sd.meta.Debloated = true
	return nil
}

// packedIndex provides binary-searched lookups over a dataset's runs.
type packedIndex struct {
	runs []packRun // sorted by startLin; offsets ascend in the same order
	elem int64
}

// fileOffset maps a linear element position to its stored offset, or
// ErrDataMissing.
func (pi *packedIndex) fileOffset(lin int64) (int64, error) {
	i := sort.Search(len(pi.runs), func(i int) bool {
		return pi.runs[i].startLin+pi.runs[i].count > lin
	})
	if i >= len(pi.runs) || lin < pi.runs[i].startLin {
		return 0, fmt.Errorf("%w: linear position %d", ErrDataMissing, lin)
	}
	r := pi.runs[i]
	return r.off + (lin-r.startLin)*pi.elem, nil
}

// linAt is the inverse: it maps an absolute file offset back to the
// linear element position stored there.
func (pi *packedIndex) linAt(abs int64) (int64, error) {
	i := sort.Search(len(pi.runs), func(i int) bool {
		return pi.runs[i].off+pi.runs[i].count*pi.elem > abs
	})
	if i >= len(pi.runs) || abs < pi.runs[i].off {
		return 0, fmt.Errorf("sdf: offset %d not within any packed run", abs)
	}
	r := pi.runs[i]
	rel := abs - r.off
	if rel%pi.elem != 0 {
		return 0, fmt.Errorf("sdf: offset %d not element-aligned", abs)
	}
	return r.startLin + rel/pi.elem, nil
}

// regions returns the stored data regions, one per run.
func (pi *packedIndex) regions() []Region {
	out := make([]Region, len(pi.runs))
	for i, r := range pi.runs {
		out[i] = Region{Off: r.off, Len: r.count * pi.elem}
	}
	return out
}

// storedBytes returns the packed data size.
func (pi *packedIndex) storedBytes() int64 {
	var total int64
	for _, r := range pi.runs {
		total += r.count * pi.elem
	}
	return total
}
