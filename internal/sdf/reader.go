package sdf

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/array"
)

// ByteSource is the random-access handle an sdf File reads through.
// Kondo's audit layer (internal/trace) interposes on this interface
// the way the paper's ptrace-based Sciunit interposes on read/lseek
// system calls: every ReadAt turns into a recorded I/O event.
type ByteSource interface {
	io.ReaderAt
	io.Closer
}

// File is an open sdf file.
type File struct {
	src    ByteSource
	byName map[string]*Dataset
	names  []string
}

// Open opens the sdf file at path through the operating system
// directly (untraced).
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sdf: open %s: %w", path, err)
	}
	file, err := OpenFrom(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sdf: %s: %w", path, err)
	}
	return file, nil
}

// OpenFrom opens an sdf file through an arbitrary ByteSource, e.g. a
// traced handle. On error the source is not closed; the caller owns it
// until OpenFrom succeeds.
func OpenFrom(src ByteSource) (*File, error) {
	header := make([]byte, headerSize)
	if _, err := src.ReadAt(header, 0); err != nil {
		return nil, fmt.Errorf("sdf: read header: %w", err)
	}
	if string(header[:4]) != Magic {
		return nil, fmt.Errorf("sdf: bad magic %q", header[:4])
	}
	if v := binary.LittleEndian.Uint16(header[4:]); v != Version {
		return nil, fmt.Errorf("sdf: unsupported version %d", v)
	}
	metaLen := binary.LittleEndian.Uint32(header[8:])
	wantCRC := binary.LittleEndian.Uint32(header[12:])
	metaBytes := make([]byte, metaLen)
	if _, err := src.ReadAt(metaBytes, headerSize); err != nil {
		return nil, fmt.Errorf("sdf: read metadata: %w", err)
	}
	if got := metaCRC(metaBytes); got != wantCRC {
		return nil, fmt.Errorf("sdf: metadata checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	metas, err := decodeMeta(metaBytes)
	if err != nil {
		return nil, err
	}
	file := &File{src: src, byName: make(map[string]*Dataset, len(metas))}
	for _, m := range metas {
		ds, err := newDataset(file, m)
		if err != nil {
			return nil, err
		}
		file.byName[m.Name] = ds
		file.names = append(file.names, m.Name)
	}
	sort.Strings(file.names)
	return file, nil
}

// Names returns the dataset names in the file, sorted.
func (f *File) Names() []string {
	return append([]string(nil), f.names...)
}

// Dataset returns the named dataset or ErrNotFound.
func (f *File) Dataset(name string) (*Dataset, error) {
	ds, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ds, nil
}

// Close closes the underlying source.
func (f *File) Close() error { return f.src.Close() }

// Dataset is one named array within an open file.
type Dataset struct {
	file    *File
	meta    *datasetMeta
	space   array.Space
	layout  array.Layout
	chunked *array.ChunkedLayout // nil for contiguous
	elem    int64
	// stored lists present chunks in ascending file-offset order for
	// binary-searched offset→index resolution.
	stored []storedChunk
	// packed indexes the run table of a packed dataset.
	packed *packedIndex
}

type storedChunk struct {
	base int64
	lin  int64
}

func newDataset(f *File, m *datasetMeta) (*Dataset, error) {
	space, err := m.space()
	if err != nil {
		return nil, fmt.Errorf("sdf: dataset %q: %w", m.Name, err)
	}
	ds := &Dataset{file: f, meta: m, space: space, elem: int64(m.DType.Size())}
	switch m.Layout {
	case layoutContiguous:
		ds.layout = array.NewContiguousLayout(space, m.DType)
	case layoutChunked:
		cl, err := array.NewChunkedLayout(space, m.DType, m.Chunk)
		if err != nil {
			return nil, fmt.Errorf("sdf: dataset %q: %w", m.Name, err)
		}
		if int64(len(m.ChunkTable)) != cl.NumChunks() {
			return nil, fmt.Errorf("sdf: dataset %q: chunk table has %d entries, want %d",
				m.Name, len(m.ChunkTable), cl.NumChunks())
		}
		ds.layout = cl
		ds.chunked = cl
		for lin, base := range m.ChunkTable {
			if base != missingChunk {
				ds.stored = append(ds.stored, storedChunk{base: base, lin: int64(lin)})
			}
		}
		sort.Slice(ds.stored, func(i, j int) bool { return ds.stored[i].base < ds.stored[j].base })
	case layoutPacked:
		ds.layout = array.NewContiguousLayout(space, m.DType)
		runs := append([]packRun(nil), m.PackRuns...)
		sort.Slice(runs, func(i, j int) bool { return runs[i].startLin < runs[j].startLin })
		for i := 1; i < len(runs); i++ {
			if runs[i].startLin < runs[i-1].startLin+runs[i-1].count {
				return nil, fmt.Errorf("sdf: dataset %q: overlapping packed runs", m.Name)
			}
		}
		ds.packed = &packedIndex{runs: runs, elem: ds.elem}
	default:
		return nil, fmt.Errorf("sdf: dataset %q: invalid layout", m.Name)
	}
	return ds, nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.meta.Name }

// Space returns the dataset's index space.
func (d *Dataset) Space() array.Space { return d.space }

// DType returns the element type.
func (d *Dataset) DType() array.DType { return d.meta.DType }

// Debloated reports whether this dataset was carved by Kondo.
func (d *Dataset) Debloated() bool { return d.meta.Debloated }

// ChunkShape returns the chunk extents, or nil for contiguous
// datasets.
func (d *Dataset) ChunkShape() []int {
	if d.chunked == nil {
		return nil
	}
	return d.chunked.ChunkShape()
}

// ChunkLayout returns the chunked layout of a chunked dataset, or nil
// for contiguous and packed datasets. The recovery data plane uses it
// to enumerate chunk coordinates for chunk-granular serving.
func (d *Dataset) ChunkLayout() *array.ChunkedLayout { return d.chunked }

// StoredBytes returns the number of data bytes this dataset occupies
// in the file. For a debloated dataset this excludes carved-away
// chunks — the quantity Fig. 9's % data reduction is computed from.
func (d *Dataset) StoredBytes() int64 { return d.meta.DataLen }

// LogicalBytes returns the size the dataset would occupy fully
// materialized (including edge-chunk padding for chunked layouts).
func (d *Dataset) LogicalBytes() int64 { return d.layout.DataSize() }

// Region is a contiguous stretch of element data in the file.
type Region struct {
	Off int64 // absolute file offset of the region start
	Len int64 // region length in bytes
}

// DataRegions returns the file regions holding this dataset's element
// data in ascending offset order: one region for a contiguous dataset,
// one per stored chunk for a chunked dataset. Every element offset is
// elem-aligned relative to its region start, which is what the audit
// resolver needs to step ranges back to indices.
func (d *Dataset) DataRegions() []Region {
	if d.packed != nil {
		return d.packed.regions()
	}
	if d.chunked == nil {
		return []Region{{Off: d.meta.DataOff, Len: d.meta.DataLen}}
	}
	chunkBytes := d.chunked.ChunkSizeBytes()
	out := make([]Region, len(d.stored))
	for i, sc := range d.stored {
		out[i] = Region{Off: sc.base, Len: chunkBytes}
	}
	return out
}

// FileOffset maps an element index to its absolute byte offset in the
// file, or ErrDataMissing if the containing chunk was carved away.
func (d *Dataset) FileOffset(ix array.Index) (int64, error) {
	if d.packed != nil {
		lin, err := d.space.Linear(ix)
		if err != nil {
			return 0, err
		}
		off, err := d.packed.fileOffset(lin)
		if err != nil {
			return 0, fmt.Errorf("%w (index %v of %q)", err, ix, d.meta.Name)
		}
		return off, nil
	}
	if d.chunked == nil {
		rel, err := d.layout.Offset(ix)
		if err != nil {
			return 0, err
		}
		return d.meta.DataOff + rel, nil
	}
	chunk, within, err := d.chunked.ChunkCoord(ix)
	if err != nil {
		return 0, err
	}
	chunkLin, err := d.chunked.ChunkLinear(chunk)
	if err != nil {
		return 0, err
	}
	base := d.meta.ChunkTable[chunkLin]
	if base == missingChunk {
		return 0, fmt.Errorf("%w: index %v of %q", ErrDataMissing, ix, d.meta.Name)
	}
	shape := d.chunked.ChunkShape()
	var withinLin int64
	for k, v := range within {
		withinLin = withinLin*int64(shape[k]) + int64(v)
	}
	return base + withinLin*d.elem, nil
}

// ResolveOffset is the inverse of FileOffset: it maps an absolute file
// offset back to the element index stored there. The audit pipeline
// uses it to translate system-call byte offsets into index tuples
// (paper §IV-C).
func (d *Dataset) ResolveOffset(abs int64) (array.Index, error) {
	if d.packed != nil {
		lin, err := d.packed.linAt(abs)
		if err != nil {
			return nil, err
		}
		return d.space.Unlinear(lin)
	}
	if d.chunked == nil {
		rel := abs - d.meta.DataOff
		if rel < 0 || rel >= d.meta.DataLen {
			return nil, fmt.Errorf("sdf: offset %d outside data region of %q", abs, d.meta.Name)
		}
		return d.layout.IndexAt(rel)
	}
	chunkBytes := d.chunked.ChunkSizeBytes()
	// Present chunks are laid out in ascending file order by the
	// writer, so the stored-chunk index is binary searchable.
	i := sort.Search(len(d.stored), func(i int) bool {
		return d.stored[i].base+chunkBytes > abs
	})
	if i >= len(d.stored) || abs < d.stored[i].base {
		return nil, fmt.Errorf("sdf: offset %d not within any stored chunk of %q", abs, d.meta.Name)
	}
	base, chunkLin := d.stored[i].base, d.stored[i].lin
	rel := abs - base
	if rel%d.elem != 0 {
		return nil, fmt.Errorf("sdf: offset %d not element-aligned in %q", abs, d.meta.Name)
	}
	withinLin := rel / d.elem
	chunkIx, err := d.chunked.Grid().Unlinear(chunkLin)
	if err != nil {
		return nil, err
	}
	shape := d.chunked.ChunkShape()
	ix := make(array.Index, len(shape))
	for k := len(shape) - 1; k >= 0; k-- {
		c := int64(shape[k])
		ix[k] = chunkIx[k]*shape[k] + int(withinLin%c)
		withinLin /= c
	}
	if !d.space.Contains(ix) {
		return nil, fmt.Errorf("sdf: offset %d falls in edge-chunk padding of %q", abs, d.meta.Name)
	}
	return ix, nil
}

// ReadElement reads the value of one element, issuing a single
// element-sized read against the underlying source.
func (d *Dataset) ReadElement(ix array.Index) (float64, error) {
	abs, err := d.FileOffset(ix)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, d.elem)
	if _, err := d.file.src.ReadAt(buf, abs); err != nil {
		return 0, fmt.Errorf("sdf: read element %v of %q: %w", ix, d.meta.Name, err)
	}
	return decodeValue(buf, d.meta.DType), nil
}

// ReadHyperslab reads the selected elements in row-major selection
// order. Physically contiguous runs of selected elements are coalesced
// into single reads, matching how HDF5 performs hyperslab I/O; each
// run is one I/O event under audit.
func (d *Dataset) ReadHyperslab(sel Hyperslab) ([]float64, error) {
	if err := sel.Validate(d.space); err != nil {
		return nil, err
	}
	n := sel.NumElements()
	out := make([]float64, 0, n)

	type run struct {
		off   int64
		count int64
	}
	var cur run
	var missErr error
	flush := func() error {
		if cur.count == 0 {
			return nil
		}
		buf := make([]byte, cur.count*d.elem)
		if _, err := d.file.src.ReadAt(buf, cur.off); err != nil {
			return fmt.Errorf("sdf: hyperslab read of %q: %w", d.meta.Name, err)
		}
		for i := int64(0); i < cur.count; i++ {
			out = append(out, decodeValue(buf[i*d.elem:], d.meta.DType))
		}
		cur = run{}
		return nil
	}

	var readErr error
	sel.Each(func(ix array.Index) bool {
		abs, err := d.FileOffset(ix)
		if err != nil {
			missErr = err
			return false
		}
		if cur.count > 0 && abs == cur.off+cur.count*d.elem {
			cur.count++
			return true
		}
		if err := flush(); err != nil {
			readErr = err
			return false
		}
		cur = run{off: abs, count: 1}
		return true
	})
	if missErr != nil {
		return nil, missErr
	}
	if readErr != nil {
		return nil, readErr
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
