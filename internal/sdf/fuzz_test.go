package sdf

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/array"
)

// TestOpenNeverPanicsOnCorruptInput flips random bytes of a valid file
// and checks that Open either fails cleanly or yields a readable file
// — never panics. The CRC catches metadata damage; damage to the data
// region is indistinguishable from valid data by design (values are
// opaque), so a successful open is acceptable there.
func TestOpenNeverPanicsOnCorruptInput(t *testing.T) {
	space := array.MustSpace(8, 8)
	path := writeTestFile(t, "d", space, array.Float64, []int{4, 4}, linValue(space))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), orig...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 + rng.Intn(255))
		}
		p := filepath.Join(dir, "c.sdf")
		if err := os.WriteFile(p, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on corrupt input: %v", trial, r)
				}
			}()
			f, err := Open(p)
			if err != nil {
				return // clean rejection
			}
			// If it opened, reading must not panic either.
			for _, name := range f.Names() {
				ds, err := f.Dataset(name)
				if err != nil {
					continue
				}
				ds.ReadElement(array.NewIndex(0, 0))
				ds.ReadHyperslab(Slab([]int{0, 0}, []int{2, 2}))
			}
			f.Close()
		}()
	}
}

// TestOpenNeverPanicsOnTruncation truncates a valid file at every
// length and checks Open fails cleanly.
func TestOpenNeverPanicsOnTruncation(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeTestFile(t, "d", space, array.Float64, nil, linValue(space))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	step := len(orig)/64 + 1
	for cut := 0; cut < len(orig); cut += step {
		p := filepath.Join(dir, "t.sdf")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			if f, err := Open(p); err == nil {
				f.Close()
			}
		}()
	}
}

// TestConcurrentReaders exercises parallel element reads on one open
// file; ReadAt is stateless, so this must be race-free (run with
// -race).
func TestConcurrentReaders(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeTestFile(t, "d", space, array.Float64, []int{4, 4}, linValue(space))
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				lin := int64((g*200 + i) % 256)
				ix, _ := space.Unlinear(lin)
				v, err := ds.ReadElement(ix)
				if err != nil {
					done <- err
					return
				}
				if v != float64(lin) {
					done <- errValue
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errValue = os.ErrInvalid
