package sdf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/array"
)

// writeTestFile creates an sdf file with one dataset filled from fn
// and returns its path.
func writeTestFile(t *testing.T, name string, space array.Space, dt array.DType, chunk []int, fn func(array.Index) float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.sdf")
	w := NewWriter(path)
	dw, err := w.CreateDataset(name, space, dt, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(fn); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func linValue(space array.Space) func(array.Index) float64 {
	return func(ix array.Index) float64 {
		lin, _ := space.Linear(ix)
		return float64(lin)
	}
}

func TestRoundTripContiguous(t *testing.T) {
	space := array.MustSpace(8, 6)
	path := writeTestFile(t, "data", space, array.Float64, nil, linValue(space))
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("data")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "data" || ds.DType() != array.Float64 || ds.Debloated() {
		t.Errorf("metadata wrong: %q %v %v", ds.Name(), ds.DType(), ds.Debloated())
	}
	space.Each(func(ix array.Index) bool {
		v, err := ds.ReadElement(ix)
		if err != nil {
			t.Fatalf("ReadElement(%v): %v", ix, err)
		}
		lin, _ := space.Linear(ix)
		if v != float64(lin) {
			t.Fatalf("ReadElement(%v) = %v, want %v", ix, v, lin)
		}
		return true
	})
}

func TestRoundTripChunkedAllDTypes(t *testing.T) {
	space := array.MustSpace(5, 7)
	for _, dt := range []array.DType{array.Float32, array.Float64, array.Int32, array.Int64, array.LongDouble} {
		t.Run(dt.String(), func(t *testing.T) {
			path := writeTestFile(t, "d", space, dt, []int{2, 3}, linValue(space))
			f, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ds, err := f.Dataset("d")
			if err != nil {
				t.Fatal(err)
			}
			space.Each(func(ix array.Index) bool {
				v, err := ds.ReadElement(ix)
				if err != nil {
					t.Fatalf("ReadElement(%v): %v", ix, err)
				}
				lin, _ := space.Linear(ix)
				if v != float64(lin) {
					t.Fatalf("ReadElement(%v) = %v, want %v (dtype %v)", ix, v, lin, dt)
				}
				return true
			})
		})
	}
}

func TestMultipleDatasets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "multi.sdf")
	w := NewWriter(path)
	s1 := array.MustSpace(4, 4)
	s2 := array.MustSpace(3, 3, 3)
	d1, err := w.CreateDataset("zeta", s1, array.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := w.CreateDataset("alpha", s2, array.Int32, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Fill(func(array.Index) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := d2.Fill(func(array.Index) float64 { return 2 }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	names := f.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
	ds, err := f.Dataset("alpha")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ds.ReadElement(array.NewIndex(2, 2, 2))
	if err != nil || v != 2 {
		t.Errorf("alpha element = %v, %v", v, err)
	}
	if _, err := f.Dataset("nope"); err == nil {
		t.Error("missing dataset should error")
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter(filepath.Join(t.TempDir(), "x.sdf"))
	s := array.MustSpace(4, 4)
	if _, err := w.CreateDataset("", s, array.Float64, nil); err == nil {
		t.Error("empty name should error")
	}
	if _, err := w.CreateDataset("a", s, array.DType(42), nil); err == nil {
		t.Error("bad dtype should error")
	}
	if _, err := w.CreateDataset("a", s, array.Float64, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateDataset("a", s, array.Float64, nil); err == nil {
		t.Error("duplicate name should error")
	}
	if _, err := w.CreateDataset("b", s, array.Float64, []int{0, 1}); err == nil {
		t.Error("bad chunk shape should error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("double Close should error")
	}
	if _, err := w.CreateDataset("c", s, array.Float64, nil); err == nil {
		t.Error("CreateDataset after Close should error")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	space := array.MustSpace(4, 4)
	path := writeTestFile(t, "d", space, array.Float64, nil, linValue(space))

	// Bad magic.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	badPath := filepath.Join(t.TempDir(), "badmagic.sdf")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath); err == nil {
		t.Error("bad magic should fail to open")
	}

	// Corrupt metadata (flip a byte inside the metadata block).
	bad2 := append([]byte(nil), raw...)
	bad2[headerSize+3] ^= 0xFF
	badPath2 := filepath.Join(t.TempDir(), "badmeta.sdf")
	if err := os.WriteFile(badPath2, bad2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath2); err == nil {
		t.Error("corrupt metadata should fail CRC check")
	}

	// Truncated file.
	badPath3 := filepath.Join(t.TempDir(), "trunc.sdf")
	if err := os.WriteFile(badPath3, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(badPath3); err == nil {
		t.Error("truncated file should fail to open")
	}
}

func TestFileOffsetResolveOffsetRoundTrip(t *testing.T) {
	for _, chunk := range [][]int{nil, {3, 4}} {
		space := array.MustSpace(7, 9)
		path := writeTestFile(t, "d", space, array.LongDouble, chunk, linValue(space))
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := f.Dataset("d")
		if err != nil {
			t.Fatal(err)
		}
		space.Each(func(ix array.Index) bool {
			abs, err := ds.FileOffset(ix)
			if err != nil {
				t.Fatalf("FileOffset(%v): %v", ix, err)
			}
			back, err := ds.ResolveOffset(abs)
			if err != nil {
				t.Fatalf("ResolveOffset(%d): %v", abs, err)
			}
			if !back.Equal(ix) {
				t.Fatalf("round trip %v -> %d -> %v (chunk %v)", ix, abs, back, chunk)
			}
			return true
		})
		if _, err := ds.ResolveOffset(1); err == nil {
			t.Error("offset in header should not resolve")
		}
		f.Close()
	}
}

func TestDebloatedFile(t *testing.T) {
	space := array.MustSpace(8, 8)
	path := filepath.Join(t.TempDir(), "debloat.sdf")
	w := NewWriter(path)
	dw, err := w.CreateDataset("d", space, array.Float64, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Fill(linValue(space)); err != nil {
		t.Fatal(err)
	}
	// Keep only chunks 0 and 3 (top-left and bottom-right 4x4 blocks).
	if err := dw.OmitChunksExcept(map[int64]bool{0: true, 3: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := f.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Debloated() {
		t.Error("dataset should be marked debloated")
	}
	if ds.StoredBytes() != 2*16*8 {
		t.Errorf("StoredBytes = %d, want %d", ds.StoredBytes(), 2*16*8)
	}
	if ds.LogicalBytes() != 4*16*8 {
		t.Errorf("LogicalBytes = %d, want %d", ds.LogicalBytes(), 4*16*8)
	}

	// Present element.
	v, err := ds.ReadElement(array.NewIndex(1, 1))
	if err != nil || v != 9 {
		t.Errorf("present element = %v, %v", v, err)
	}
	v, err = ds.ReadElement(array.NewIndex(7, 7))
	if err != nil || v != 63 {
		t.Errorf("present element (7,7) = %v, %v", v, err)
	}
	// Carved-away element.
	if _, err := ds.ReadElement(array.NewIndex(0, 7)); !isDataMissing(err) {
		t.Errorf("carved element error = %v, want ErrDataMissing", err)
	}
	if _, err := ds.FileOffset(array.NewIndex(7, 0)); !isDataMissing(err) {
		t.Errorf("carved FileOffset error = %v, want ErrDataMissing", err)
	}
}

func isDataMissing(err error) bool {
	if err == nil {
		return false
	}
	for unwrap := err; unwrap != nil; {
		if unwrap == ErrDataMissing {
			return true
		}
		u, ok := unwrap.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		unwrap = u.Unwrap()
	}
	return false
}

func TestStoredBytesMatchFileSize(t *testing.T) {
	space := array.MustSpace(16, 16)
	path := writeTestFile(t, "d", space, array.LongDouble, []int{4, 4}, linValue(space))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	// Data bytes: 16*16*16 = 4096. File adds header + metadata.
	if ds.StoredBytes() != 16*16*16 {
		t.Errorf("StoredBytes = %d", ds.StoredBytes())
	}
	if info.Size() < ds.StoredBytes()+headerSize {
		t.Errorf("file size %d smaller than data %d", info.Size(), ds.StoredBytes())
	}
}

func TestLongDoubleRoundTripsFloat64Payload(t *testing.T) {
	space := array.MustSpace(2, 2)
	want := math.Pi
	path := writeTestFile(t, "d", space, array.LongDouble, nil, func(array.Index) float64 { return want })
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _ := f.Dataset("d")
	v, err := ds.ReadElement(array.NewIndex(1, 0))
	if err != nil || v != want {
		t.Errorf("long double payload = %v, %v", v, err)
	}
}
