package sdf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/array"
)

// datasetMeta is the self-description of one dataset within a file.
type datasetMeta struct {
	Name   string
	DType  array.DType
	Dims   []int
	Layout layoutKind
	Chunk  []int // chunk shape; nil for contiguous
	// DataOff is the absolute file offset of the dataset's data
	// region (contiguous data, or the base chunks are addressed
	// against for chunked datasets).
	DataOff int64
	// DataLen is the stored byte length of the data region. For a
	// debloated chunked dataset this is smaller than the logical
	// region because absent chunks take no space.
	DataLen int64
	// ChunkTable maps chunk linear id to the chunk's absolute file
	// offset, or missingChunk for carved-away chunks. Nil for
	// contiguous datasets.
	ChunkTable []int64
	// PackRuns is the run table of a packed (element-granular
	// debloated) dataset. Nil for other layouts.
	PackRuns []packRun
	// Debloated records that this dataset was carved by Kondo; reads
	// of absent chunks raise ErrDataMissing rather than a corruption
	// error.
	Debloated bool
	// Attrs carries HDF5-style string attributes (provenance stamps).
	Attrs map[string]string
}

func (m *datasetMeta) space() (array.Space, error) {
	return array.NewSpace(m.Dims...)
}

// encodeMeta serializes the metadata block. The encoding is
// little-endian with length-prefixed strings and slices:
//
//	count u32, then per dataset:
//	  name (u16 len + bytes), dtype u8, layout u8, debloated u8,
//	  rank u8, dims [rank]u64, chunk [rank]u64 (chunked only),
//	  dataOff u64, dataLen u64,
//	  chunkTableLen u64 + entries [n]i64 (chunked only)
func encodeMeta(ds []*datasetMeta) ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes never fail.
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(uint32(len(ds)))
	for _, m := range ds {
		if len(m.Name) > 0xFFFF {
			return nil, fmt.Errorf("sdf: dataset name too long (%d bytes)", len(m.Name))
		}
		if !m.DType.Valid() {
			return nil, fmt.Errorf("sdf: dataset %q has invalid dtype", m.Name)
		}
		if !m.Layout.valid() {
			return nil, fmt.Errorf("sdf: dataset %q has invalid layout", m.Name)
		}
		if len(m.Dims) == 0 || len(m.Dims) > 255 {
			return nil, fmt.Errorf("sdf: dataset %q has unsupported rank %d", m.Name, len(m.Dims))
		}
		w(uint16(len(m.Name)))
		buf.WriteString(m.Name)
		w(uint8(m.DType))
		w(uint8(m.Layout))
		deb := uint8(0)
		if m.Debloated {
			deb = 1
		}
		w(deb)
		w(uint8(len(m.Dims)))
		for _, d := range m.Dims {
			w(uint64(d))
		}
		if m.Layout == layoutChunked {
			if len(m.Chunk) != len(m.Dims) {
				return nil, fmt.Errorf("sdf: dataset %q chunk rank mismatch", m.Name)
			}
			for _, c := range m.Chunk {
				w(uint64(c))
			}
		}
		w(uint64(m.DataOff))
		w(uint64(m.DataLen))
		if m.Layout == layoutChunked {
			w(uint64(len(m.ChunkTable)))
			for _, off := range m.ChunkTable {
				w(off)
			}
		}
		if m.Layout == layoutPacked {
			w(uint64(len(m.PackRuns)))
			for _, r := range m.PackRuns {
				w(r.startLin)
				w(r.count)
				w(r.off)
			}
		}
		// Attributes, sorted for byte-stable output.
		keys := make([]string, 0, len(m.Attrs))
		for k := range m.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w(uint32(len(keys)))
		for _, k := range keys {
			v := m.Attrs[k]
			if len(k) > maxAttrLen || len(v) > maxAttrLen {
				return nil, fmt.Errorf("sdf: attribute %q of %q too long", k, m.Name)
			}
			w(uint16(len(k)))
			buf.WriteString(k)
			w(uint16(len(v)))
			buf.WriteString(v)
		}
	}
	return buf.Bytes(), nil
}

// decodeMeta parses a metadata block produced by encodeMeta.
func decodeMeta(b []byte) ([]*datasetMeta, error) {
	r := bytes.NewReader(b)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var count uint32
	if err := rd(&count); err != nil {
		return nil, fmt.Errorf("sdf: truncated metadata: %w", err)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("sdf: implausible dataset count %d", count)
	}
	ds := make([]*datasetMeta, 0, count)
	for i := uint32(0); i < count; i++ {
		m := &datasetMeta{}
		var nameLen uint16
		if err := rd(&nameLen); err != nil {
			return nil, fmt.Errorf("sdf: truncated metadata: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("sdf: truncated dataset name: %w", err)
		}
		m.Name = string(name)
		var dt, lk, deb, rank uint8
		if err := firstErr(rd(&dt), rd(&lk), rd(&deb), rd(&rank)); err != nil {
			return nil, fmt.Errorf("sdf: truncated metadata for %q: %w", m.Name, err)
		}
		m.DType = array.DType(dt)
		if !m.DType.Valid() {
			return nil, fmt.Errorf("sdf: dataset %q: invalid dtype %d", m.Name, dt)
		}
		m.Layout = layoutKind(lk)
		if !m.Layout.valid() {
			return nil, fmt.Errorf("sdf: dataset %q: invalid layout %d", m.Name, lk)
		}
		m.Debloated = deb != 0
		if rank == 0 {
			return nil, fmt.Errorf("sdf: dataset %q: zero rank", m.Name)
		}
		m.Dims = make([]int, rank)
		for k := range m.Dims {
			var v uint64
			if err := rd(&v); err != nil {
				return nil, fmt.Errorf("sdf: truncated dims for %q: %w", m.Name, err)
			}
			m.Dims[k] = int(v)
		}
		if m.Layout == layoutChunked {
			m.Chunk = make([]int, rank)
			for k := range m.Chunk {
				var v uint64
				if err := rd(&v); err != nil {
					return nil, fmt.Errorf("sdf: truncated chunk shape for %q: %w", m.Name, err)
				}
				m.Chunk[k] = int(v)
			}
		}
		var off, length uint64
		if err := firstErr(rd(&off), rd(&length)); err != nil {
			return nil, fmt.Errorf("sdf: truncated data extent for %q: %w", m.Name, err)
		}
		m.DataOff = int64(off)
		m.DataLen = int64(length)
		if m.Layout == layoutChunked {
			var n uint64
			if err := rd(&n); err != nil {
				return nil, fmt.Errorf("sdf: truncated chunk table for %q: %w", m.Name, err)
			}
			// Each entry takes 8 bytes; a count beyond the remaining
			// buffer is corruption — reject before allocating.
			if n > uint64(r.Len())/8 {
				return nil, fmt.Errorf("sdf: implausible chunk table size %d for %q", n, m.Name)
			}
			m.ChunkTable = make([]int64, n)
			for k := range m.ChunkTable {
				if err := rd(&m.ChunkTable[k]); err != nil {
					return nil, fmt.Errorf("sdf: truncated chunk table for %q: %w", m.Name, err)
				}
			}
		}
		if m.Layout == layoutPacked {
			var n uint64
			if err := rd(&n); err != nil {
				return nil, fmt.Errorf("sdf: truncated pack table for %q: %w", m.Name, err)
			}
			// Each run takes 24 bytes in the buffer.
			if n > uint64(r.Len())/24 {
				return nil, fmt.Errorf("sdf: implausible pack table size %d for %q", n, m.Name)
			}
			m.PackRuns = make([]packRun, n)
			for k := range m.PackRuns {
				if err := firstErr(rd(&m.PackRuns[k].startLin), rd(&m.PackRuns[k].count), rd(&m.PackRuns[k].off)); err != nil {
					return nil, fmt.Errorf("sdf: truncated pack table for %q: %w", m.Name, err)
				}
			}
		}
		var attrCount uint32
		if err := rd(&attrCount); err != nil {
			return nil, fmt.Errorf("sdf: truncated attributes for %q: %w", m.Name, err)
		}
		if attrCount > 1<<20 {
			return nil, fmt.Errorf("sdf: implausible attribute count %d for %q", attrCount, m.Name)
		}
		if attrCount > 0 {
			m.Attrs = make(map[string]string, attrCount)
			for a := uint32(0); a < attrCount; a++ {
				k, err := readString16(r)
				if err != nil {
					return nil, fmt.Errorf("sdf: truncated attribute key for %q: %w", m.Name, err)
				}
				v, err := readString16(r)
				if err != nil {
					return nil, fmt.Errorf("sdf: truncated attribute value for %q: %w", m.Name, err)
				}
				m.Attrs[k] = v
			}
		}
		ds = append(ds, m)
	}
	return ds, nil
}

// readString16 reads a u16-length-prefixed string.
func readString16(r *bytes.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// metaCRC computes the checksum stored in the header for the metadata
// block.
func metaCRC(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
