package sdf

import (
	"fmt"
	"sort"
)

// Dataset attributes: small string key/value pairs carried in the
// file's metadata block, mirroring HDF5 attributes. Kondo's debloat
// step stamps the carved file with provenance attributes (tool,
// configuration, source digest) so a runtime — or a human — can tell
// how the subset was produced without a sidecar file.

// maxAttrLen bounds attribute keys and values.
const maxAttrLen = 0xFFFF

// SetAttr attaches an attribute to the staged dataset, replacing any
// previous value for the key.
func (dw *DatasetWriter) SetAttr(key, value string) error {
	if key == "" {
		return fmt.Errorf("sdf: empty attribute key")
	}
	if len(key) > maxAttrLen || len(value) > maxAttrLen {
		return fmt.Errorf("sdf: attribute %q too long", key)
	}
	if dw.sd.meta.Attrs == nil {
		dw.sd.meta.Attrs = make(map[string]string)
	}
	dw.sd.meta.Attrs[key] = value
	return nil
}

// Attr returns the value of a dataset attribute and whether it exists.
func (d *Dataset) Attr(key string) (string, bool) {
	v, ok := d.meta.Attrs[key]
	return v, ok
}

// AttrKeys returns the dataset's attribute keys, sorted.
func (d *Dataset) AttrKeys() []string {
	keys := make([]string, 0, len(d.meta.Attrs))
	for k := range d.meta.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
